//! Quickstart: factorise a many-to-many join and compare it with the flat
//! relational result.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use fdb::common::{Catalog, Query};
use fdb::datagen::{populate, ValueDistribution};
use fdb::engine::FdbEngine;
use fdb::frep::materialize;
use fdb::relation::RdbEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A small schema with three binary relations sharing join attributes:
    // R(a, b), S(c, d), T(e, f) joined on b = c and d = e — a chain of
    // many-to-many joins whose flat result blows up quadratically.
    let mut catalog = Catalog::new();
    let (r, _) = catalog.add_relation("R", &["a", "b"]);
    let (s, _) = catalog.add_relation("S", &["c", "d"]);
    let (t, _) = catalog.add_relation("T", &["e", "f"]);

    let mut rng = StdRng::seed_from_u64(42);
    let db = populate(&mut rng, &catalog, 2_000, 100, ValueDistribution::Uniform);

    let query = Query::product(vec![r, s, t])
        .with_equality(
            catalog.find_attr("R.b").unwrap(),
            catalog.find_attr("S.c").unwrap(),
        )
        .with_equality(
            catalog.find_attr("S.d").unwrap(),
            catalog.find_attr("T.e").unwrap(),
        );

    // FDB: optimise the f-tree and build the factorised result directly.
    let fdb = FdbEngine::new();
    let output = fdb
        .evaluate_flat(&db, &query)
        .expect("FDB evaluation succeeds");
    println!("== FDB (factorised) ==");
    println!("optimal f-tree cost s(T) : {:.2}", output.stats.plan_cost);
    println!(
        "optimisation time        : {:?}",
        output.stats.optimisation_time
    );
    println!(
        "evaluation time          : {:?}",
        output.stats.execution_time
    );
    println!("result singletons        : {}", output.stats.result_size);
    println!("result tuples            : {}", output.stats.result_tuples);
    println!();
    println!("f-tree of the result:");
    let cat = db.catalog();
    print!(
        "{}",
        output.result.tree().render(|a| cat.qualified_attr_name(a))
    );

    // RDB: the flat baseline.
    let rdb = RdbEngine::new();
    let start = std::time::Instant::now();
    let flat = rdb.evaluate(&db, &query).expect("RDB evaluation succeeds");
    let rdb_time = start.elapsed();
    println!();
    println!("== RDB (flat baseline) ==");
    println!("evaluation time          : {rdb_time:?}");
    println!("result tuples            : {}", flat.len());
    println!("result data elements     : {}", flat.data_element_count());

    let ratio = flat.data_element_count() as f64 / output.stats.result_size.max(1) as f64;
    println!();
    println!("compression factor (flat data elements / singletons): {ratio:.1}×");

    // Sanity: both engines agree on the represented relation.
    let factorised_flat = materialize(&output.result).expect("enumeration succeeds");
    assert_eq!(factorised_flat.len(), flat.len());
    println!("both engines agree on {} result tuples ✓", flat.len());
}
