//! Many-to-many workload: the scenario where factorisation shines.
//!
//! Generates the paper's Experiment-3 style dataset (three ternary relations,
//! values drawn uniformly or Zipf-skewed from [1, 100]) and sweeps the
//! relation size, comparing FDB's factorised result sizes and evaluation
//! times against the flat RDB baseline.
//!
//! ```bash
//! cargo run --release --example many_to_many
//! ```

use fdb::common::{Query, RelId};
use fdb::datagen::{populate, random_query, random_schema, ValueDistribution};
use fdb::engine::FdbEngine;
use fdb::relation::{EvalLimits, RdbEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn main() {
    let mut rng = StdRng::seed_from_u64(2012);
    // Three relations of three attributes each, as in Figure 7.
    let catalog = random_schema(&mut rng, 3, 9);
    let relations: Vec<RelId> = catalog.rels().collect();

    println!(
        "{:>12} {:>6} {:>9} {:>16} {:>16} {:>12} {:>12}",
        "distribution", "N", "K", "FDB singletons", "RDB data elems", "FDB time", "RDB time"
    );

    for distribution in [ValueDistribution::Uniform, ValueDistribution::Zipf(1.0)] {
        for n in [500usize, 1_000, 2_000] {
            let db = populate(&mut rng, &catalog, n, 100, distribution);
            for k in [2usize, 3, 4] {
                let query: Query = random_query(&mut rng, &catalog, &relations, k);

                let fdb_start = Instant::now();
                let fdb_out = FdbEngine::new()
                    .evaluate_flat(&db, &query)
                    .expect("FDB evaluates");
                let fdb_time = fdb_start.elapsed();

                // The flat baseline gets a timeout so the sweep always
                // finishes — exactly how the paper reports missing points.
                let rdb = RdbEngine::new().with_limits(
                    EvalLimits::unlimited()
                        .with_timeout(Duration::from_secs(10))
                        .with_max_tuples(5_000_000),
                );
                let rdb_start = Instant::now();
                let rdb_result = rdb.evaluate(&db, &query);
                let rdb_time = rdb_start.elapsed();
                let (rdb_size, rdb_label) = match &rdb_result {
                    Ok(rel) => (
                        rel.data_element_count().to_string(),
                        format!("{rdb_time:?}"),
                    ),
                    Err(_) => ("—".to_string(), "timeout".to_string()),
                };

                let dist_label = match distribution {
                    ValueDistribution::Uniform => "uniform",
                    ValueDistribution::Zipf(_) => "zipf",
                };
                println!(
                    "{:>12} {:>6} {:>9} {:>16} {:>16} {:>12} {:>12}",
                    dist_label,
                    n,
                    k,
                    fdb_out.stats.result_size,
                    rdb_size,
                    format!("{fdb_time:?}"),
                    rdb_label,
                );
            }
        }
    }

    println!();
    println!(
        "Factorised results stay orders of magnitude smaller than the flat ones as N grows,\n\
         and FDB's evaluation time follows its (small) output size — the behaviour of Figure 7."
    );
}
