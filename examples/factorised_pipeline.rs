//! A pipeline of queries evaluated directly on factorised data.
//!
//! The paper's Experiments 2 and 4 show that factorised processing is
//! *sustainable*: results of queries are again factorised representations,
//! so follow-up queries run on the compact form without ever unfolding it.
//! This example builds the combinatorial dataset of Experiment 3, factorises
//! a first join, and then keeps applying follow-up equality selections on the
//! factorised result, reporting the chosen f-plan, its cost, and the result
//! size after every step — comparing the exhaustive and greedy optimisers.
//!
//! ```bash
//! cargo run --release --example factorised_pipeline
//! ```

use fdb::common::RelId;
use fdb::datagen::{
    combinatorial_database, random_followup_equalities, random_query, ValueDistribution,
};
use fdb::engine::{FactorisedQuery, FdbEngine, OptimizerKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let db = combinatorial_database(&mut rng, ValueDistribution::Uniform);
    let catalog = db.catalog().clone();
    let relations: Vec<RelId> = catalog.rels().collect();

    // Step 0: factorise a first query with two equality conditions.
    let base_query = random_query(&mut rng, &catalog, &relations, 2);
    let engine = FdbEngine::new();
    let base = engine
        .evaluate_flat(&db, &base_query)
        .expect("base query evaluates");
    println!(
        "base query: K = {} equalities over {} relations",
        base_query.equalities.len(),
        relations.len()
    );
    println!(
        "  factorised result: {} singletons, {} tuples, f-tree cost {:.1}",
        base.stats.result_size, base.stats.result_tuples, base.stats.result_tree_cost
    );

    // Steps 1..: follow-up equality selections, evaluated on the factorised
    // result of the previous step.
    let mut current = base.result;
    let mut accumulated_query = base_query;
    for step in 1..=3 {
        let follow = random_followup_equalities(&mut rng, &catalog, &accumulated_query, 1);
        let Some(&(a, b)) = follow.first() else {
            println!("no further non-redundant equalities exist — stopping");
            break;
        };
        for (x, y) in &follow {
            accumulated_query = accumulated_query.with_equality(*x, *y);
        }
        println!();
        println!(
            "step {step}: enforce {} = {} on the factorised input ({} singletons)",
            catalog.qualified_attr_name(a),
            catalog.qualified_attr_name(b),
            current.size()
        );

        let mut next_input = None;
        for kind in [OptimizerKind::Exhaustive, OptimizerKind::Greedy] {
            let engine = FdbEngine { optimizer: kind };
            let out = engine
                .evaluate_factorised(&current, &FactorisedQuery::equalities(vec![(a, b)]))
                .expect("follow-up query evaluates");
            println!(
                "  {:>10?}: plan {} | s(f) = {:.1}, result cost = {:.1}, {} singletons, {} tuples, optimise {:?}, execute {:?}",
                kind,
                out.stats.plan,
                out.stats.plan_cost,
                out.stats.result_tree_cost,
                out.stats.result_size,
                out.stats.result_tuples,
                out.stats.optimisation_time,
                out.stats.execution_time,
            );
            // Keep the exhaustive optimiser's result as the next input (both
            // optimisers are evaluated against the same factorised input).
            if kind == OptimizerKind::Exhaustive {
                next_input = Some(out.result);
            }
        }
        current = next_input.expect("the exhaustive optimiser always runs");
        if current.represents_empty() {
            println!("the result became empty — stopping the pipeline");
            break;
        }
    }

    println!();
    println!(
        "The factorisation quality does not decay along the pipeline: every intermediate\n\
         result stays compact and every follow-up query is answered on the factorised form."
    );
}
