//! The paper's running example (Examples 1 and 2): the grocery retailer.
//!
//! Builds the factorised results of Q1 and Q2 of the paper, restructures the
//! Q1 factorisation from the f-tree T1 to T2 with a swap, and evaluates the
//! follow-up join Q1 ⋈_{item, location} Q2 directly on the factorised
//! results — the sequence of steps walked through in Section 1.
//!
//! ```bash
//! cargo run --release --example grocery_retailer
//! ```

use fdb::datagen::grocery::{grocery_database, DISPATCHERS, ITEMS, LOCATIONS, SUPPLIERS};
use fdb::engine::{FactorisedQuery, FdbEngine};
use fdb::frep::{materialize, ops};

fn main() {
    let grocery = grocery_database();
    let cat = grocery.catalog().clone();
    let engine = FdbEngine::new();

    // Pretty-printing helpers that translate encoded integers back to names.
    let attr_name = |a| cat.qualified_attr_name(a);

    println!("=== Q1: Orders ⋈ item Store ⋈ location Disp ===");
    let q1 = engine
        .evaluate_flat(&grocery.db, &grocery.q1())
        .expect("Q1 evaluates");
    println!("optimal f-tree (cost s = {:.0}):", q1.stats.plan_cost);
    print!("{}", q1.result.tree().render(attr_name));
    println!(
        "factorised size: {} singletons for {} tuples (flat size {} data elements)",
        q1.stats.result_size,
        q1.stats.result_tuples,
        q1.stats.result_tuples * 4
    );
    println!();
    println!("factorisation over T1 (values decoded):");
    print!("{}", q1.result.render(attr_name));

    // Restructure: group by location first (T1 → T2 via a swap), as in
    // Example 1's second factorisation.
    println!();
    println!("=== Restructuring Q1 from T1 to T2 (swap item ↔ location) ===");
    let mut regrouped = q1.result.clone();
    let location_node = regrouped
        .tree()
        .node_of_attr(grocery.attr("Store.location"))
        .expect("location labels a node");
    ops::swap(&mut regrouped, location_node).expect("swap is valid");
    print!("{}", regrouped.tree().render(attr_name));
    println!("size after regrouping: {} singletons", regrouped.size());

    println!();
    println!("=== Q2: Produce ⋈ supplier Serve ===");
    let q2 = engine
        .evaluate_flat(&grocery.db, &grocery.q2())
        .expect("Q2 evaluates");
    println!("optimal f-tree (cost s = {:.0}):", q2.stats.plan_cost);
    print!("{}", q2.result.tree().render(attr_name));
    println!("factorisation over T3:");
    print!("{}", q2.result.render(attr_name));

    // Example 2: join the two factorised results on item and location.
    println!();
    println!("=== Q1 ⋈ item,location Q2 on factorised inputs (Example 2) ===");
    let product =
        ops::product(q1.result.clone(), q2.result.clone()).expect("attribute sets are disjoint");
    let follow_up = FactorisedQuery::equalities(vec![
        (grocery.attr("Orders.item"), grocery.attr("Produce.item")),
        (
            grocery.attr("Store.location"),
            grocery.attr("Serve.location"),
        ),
    ]);
    let joined = engine
        .evaluate_factorised(&product, &follow_up)
        .expect("join evaluates");
    println!("chosen f-plan: {}", joined.stats.plan);
    println!(
        "plan cost s(f) = {:.0}, result f-tree cost = {:.0}",
        joined.stats.plan_cost, joined.stats.result_tree_cost
    );
    println!("result f-tree (T6 of Figure 2):");
    print!("{}", joined.result.tree().render(attr_name));
    println!(
        "result: {} singletons representing {} tuples",
        joined.stats.result_size, joined.stats.result_tuples
    );

    // Decode and print a handful of result tuples.
    let flat = materialize(&joined.result).expect("enumeration succeeds");
    let attrs = joined.result.visible_attrs();
    println!();
    println!("first result tuples (decoded):");
    for row in flat.rows().take(5) {
        let rendered: Vec<String> = attrs
            .iter()
            .zip(row)
            .map(|(&a, v)| {
                let name = cat.attr_name(a);
                let idx = (v.raw() as usize).saturating_sub(1);
                let decoded = match name {
                    "item" => ITEMS.get(idx).copied().unwrap_or("?"),
                    "location" => LOCATIONS.get(idx).copied().unwrap_or("?"),
                    "dispatcher" => DISPATCHERS.get(idx).copied().unwrap_or("?"),
                    "supplier" => SUPPLIERS.get(idx).copied().unwrap_or("?"),
                    _ => return format!("{}={}", cat.qualified_attr_name(a), v),
                };
                format!("{}={}", cat.qualified_attr_name(a), decoded)
            })
            .collect();
        println!("  ({})", rendered.join(", "));
    }
}
