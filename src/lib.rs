//! Umbrella crate re-exporting the public API of the FDB workspace.
//!
//! Downstream users depend on this single `fdb` crate and get the factorised
//! query engine ([`engine`]), the flat relational baseline ([`relation`]),
//! the data structures (f-trees, f-representations), the optimisers, and the
//! workload generators used by the paper's experiments.

#![warn(missing_docs)]

pub use fdb_common as common;
pub use fdb_core as engine;
pub use fdb_datagen as datagen;
pub use fdb_frep as frep;
pub use fdb_ftree as ftree;
pub use fdb_lp as lp;
pub use fdb_plan as plan;
pub use fdb_relation as relation;

pub use fdb_common::{AttrId, Catalog, ComparisonOp, FdbError, Query, RelId, Result, Value};
