//! In-memory relations with row-major storage.
//!
//! A [`Relation`] is an ordered multiset of tuples over a fixed list of
//! attributes.  Storage is a single flat `Vec<Value>` in row-major order,
//! which keeps scans and sorts cache-friendly and makes the "number of data
//! elements" the paper reports (`arity × tuple count`) trivially available.

use fdb_common::{AttrId, FdbError, Result, Value};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

/// A tuple is simply a vector of values, positionally aligned with the
/// relation's attribute list.
pub type Tuple = Vec<Value>;

/// An in-memory relation: a list of attributes (columns) plus a row-major
/// data buffer.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    attrs: Vec<AttrId>,
    data: Vec<Value>,
}

impl Relation {
    /// Creates an empty relation over the given attributes.
    pub fn new(attrs: Vec<AttrId>) -> Self {
        Relation {
            attrs,
            data: Vec::new(),
        }
    }

    /// Creates a relation from rows, validating arity.
    pub fn from_rows<I>(attrs: Vec<AttrId>, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut rel = Relation::new(attrs);
        for row in rows {
            rel.push_row(&row)?;
        }
        Ok(rel)
    }

    /// Creates a relation from rows of raw integers (convenient in tests and
    /// generators), validating arity.
    pub fn from_raw_rows(attrs: Vec<AttrId>, rows: &[Vec<u64>]) -> Result<Self> {
        let mut rel = Relation::new(attrs);
        for row in rows {
            let tuple: Tuple = row.iter().map(|&v| Value::new(v)).collect();
            rel.push_row(&tuple)?;
        }
        Ok(rel)
    }

    /// The relation's attributes, in column order.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        if self.attrs.is_empty() {
            0
        } else {
            self.data.len() / self.attrs.len()
        }
    }

    /// Returns `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of data elements (`arity × rows`), the size measure used by the
    /// paper when comparing flat and factorised result sizes.
    pub fn data_element_count(&self) -> usize {
        self.data.len()
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.arity() {
            return Err(FdbError::ArityMismatch {
                expected: self.arity(),
                actual: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        Ok(())
    }

    /// Returns the `i`-th row as a slice.
    pub fn row(&self, i: usize) -> &[Value] {
        let a = self.arity();
        &self.data[i * a..(i + 1) * a]
    }

    /// Iterates over rows as slices.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> + '_ {
        let a = self.arity().max(1);
        self.data.chunks_exact(a)
    }

    /// Returns the rows materialised as owned tuples.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.rows().map(|r| r.to_vec()).collect()
    }

    /// Position of an attribute in the column order, if present.
    pub fn col_index(&self, attr: AttrId) -> Option<usize> {
        self.attrs.iter().position(|&a| a == attr)
    }

    /// Returns `true` if the relation contains the attribute.
    pub fn has_attr(&self, attr: AttrId) -> bool {
        self.col_index(attr).is_some()
    }

    /// Value of attribute `attr` in row `i`.
    pub fn value(&self, i: usize, attr: AttrId) -> Option<Value> {
        self.col_index(attr).map(|c| self.row(i)[c])
    }

    /// Sorts rows lexicographically by the given attributes (attributes not
    /// mentioned do not participate in the ordering, ties keep their relative
    /// order).
    pub fn sort_by_attrs(&mut self, sort_attrs: &[AttrId]) {
        let cols: Vec<usize> = sort_attrs
            .iter()
            .filter_map(|&a| self.col_index(a))
            .collect();
        self.sort_by_cols(&cols);
    }

    /// Sorts rows lexicographically by the given column indices.
    pub fn sort_by_cols(&mut self, cols: &[usize]) {
        let a = self.arity();
        if a == 0 || self.is_empty() {
            return;
        }
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.sort_by(|&i, &j| {
            let ri = &self.data[i * a..(i + 1) * a];
            let rj = &self.data[j * a..(j + 1) * a];
            for &c in cols {
                match ri[c].cmp(&rj[c]) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        });
        let mut new_data = Vec::with_capacity(self.data.len());
        for i in indices {
            new_data.extend_from_slice(&self.data[i * a..(i + 1) * a]);
        }
        self.data = new_data;
    }

    /// Sorts rows lexicographically over all columns and removes duplicates.
    pub fn sort_and_dedup(&mut self) {
        let cols: Vec<usize> = (0..self.arity()).collect();
        self.sort_by_cols(&cols);
        self.dedup_sorted();
    }

    /// Removes adjacent duplicate rows (the relation must already be sorted
    /// for this to deduplicate globally).
    pub fn dedup_sorted(&mut self) {
        let a = self.arity();
        if a == 0 || self.len() <= 1 {
            return;
        }
        let mut new_data: Vec<Value> = Vec::with_capacity(self.data.len());
        let mut prev: Option<Vec<Value>> = None;
        for row in self.data.chunks_exact(a) {
            if prev.as_deref() != Some(row) {
                new_data.extend_from_slice(row);
                prev = Some(row.to_vec());
            }
        }
        self.data = new_data;
    }

    /// Returns the sorted list of distinct values in the given column.
    pub fn distinct_values(&self, attr: AttrId) -> Vec<Value> {
        let Some(c) = self.col_index(attr) else {
            return Vec::new();
        };
        let mut vals: BTreeSet<Value> = BTreeSet::new();
        for row in self.rows() {
            vals.insert(row[c]);
        }
        vals.into_iter().collect()
    }

    /// Keeps only the rows satisfying the predicate.
    pub fn filter<F>(&self, mut pred: F) -> Relation
    where
        F: FnMut(&[Value]) -> bool,
    {
        let mut out = Relation::new(self.attrs.clone());
        for row in self.rows() {
            if pred(row) {
                out.data.extend_from_slice(row);
            }
        }
        out
    }

    /// Projects onto the given attributes (in the given order), without
    /// duplicate elimination (bag semantics).
    pub fn project(&self, attrs: &[AttrId]) -> Result<Relation> {
        let cols: Vec<usize> = attrs
            .iter()
            .map(|&a| {
                self.col_index(a)
                    .ok_or(FdbError::UnknownAttribute { attr: a.0 })
            })
            .collect::<Result<_>>()?;
        let mut out = Relation::new(attrs.to_vec());
        for row in self.rows() {
            for &c in &cols {
                out.data.push(row[c]);
            }
        }
        Ok(out)
    }

    /// Projects onto the given attributes with duplicate elimination (set
    /// semantics), returning a sorted relation.
    pub fn project_distinct(&self, attrs: &[AttrId]) -> Result<Relation> {
        let mut out = self.project(attrs)?;
        out.sort_and_dedup();
        Ok(out)
    }

    /// Returns the set of rows as a `BTreeSet` of tuples — handy for
    /// order-insensitive comparisons in tests.
    pub fn tuple_set(&self) -> BTreeSet<Tuple> {
        self.rows().map(|r| r.to_vec()).collect()
    }

    /// Reorders the columns to the given attribute order (which must be a
    /// permutation of the current attributes).
    pub fn reorder_columns(&self, attrs: &[AttrId]) -> Result<Relation> {
        if attrs.len() != self.arity() {
            return Err(FdbError::InvalidInput {
                detail: format!(
                    "reorder_columns: expected {} attributes, got {}",
                    self.arity(),
                    attrs.len()
                ),
            });
        }
        self.project(attrs)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation({:?}) [{} rows]", self.attrs, self.len())?;
        for (i, row) in self.rows().enumerate() {
            if i >= 20 {
                writeln!(f, "  … ({} more rows)", self.len() - 20)?;
                break;
            }
            writeln!(f, "  {row:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(ids: &[u32]) -> Vec<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    fn rel(ids: &[u32], rows: &[Vec<u64>]) -> Relation {
        Relation::from_raw_rows(attrs(ids), rows).unwrap()
    }

    #[test]
    fn construction_and_basic_accessors() {
        let r = rel(&[0, 1], &[vec![1, 2], vec![3, 4], vec![5, 6]]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.data_element_count(), 6);
        assert_eq!(r.row(1), &[Value::new(3), Value::new(4)]);
        assert_eq!(r.value(2, AttrId(1)), Some(Value::new(6)));
        assert_eq!(r.value(2, AttrId(9)), None);
        assert!(!r.is_empty());
        assert!(Relation::new(attrs(&[0])).is_empty());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut r = Relation::new(attrs(&[0, 1]));
        let err = r.push_row(&[Value::new(1)]).unwrap_err();
        assert_eq!(
            err,
            FdbError::ArityMismatch {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn sorting_is_lexicographic_and_stable() {
        let mut r = rel(&[0, 1], &[vec![2, 1], vec![1, 9], vec![2, 0], vec![1, 3]]);
        r.sort_by_attrs(&attrs(&[0, 1]));
        let rows: Vec<Vec<u64>> = r
            .rows()
            .map(|row| row.iter().map(|v| v.raw()).collect())
            .collect();
        assert_eq!(rows, vec![vec![1, 3], vec![1, 9], vec![2, 0], vec![2, 1]]);
    }

    #[test]
    fn sort_by_single_column_keeps_other_columns_attached() {
        let mut r = rel(&[0, 1], &[vec![3, 30], vec![1, 10], vec![2, 20]]);
        r.sort_by_attrs(&attrs(&[0]));
        assert_eq!(r.row(0), &[Value::new(1), Value::new(10)]);
        assert_eq!(r.row(2), &[Value::new(3), Value::new(30)]);
    }

    #[test]
    fn dedup_removes_duplicates_globally_after_sort() {
        let mut r = rel(
            &[0, 1],
            &[vec![1, 1], vec![2, 2], vec![1, 1], vec![2, 2], vec![1, 1]],
        );
        r.sort_and_dedup();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn distinct_values_are_sorted() {
        let r = rel(&[0, 1], &[vec![5, 1], vec![3, 1], vec![5, 2], vec![1, 2]]);
        let vals: Vec<u64> = r
            .distinct_values(AttrId(0))
            .iter()
            .map(|v| v.raw())
            .collect();
        assert_eq!(vals, vec![1, 3, 5]);
        assert!(r.distinct_values(AttrId(7)).is_empty());
    }

    #[test]
    fn filter_and_project() {
        let r = rel(
            &[0, 1, 2],
            &[vec![1, 10, 100], vec![2, 20, 200], vec![3, 30, 300]],
        );
        let f = r.filter(|row| row[0].raw() >= 2);
        assert_eq!(f.len(), 2);
        let p = f.project(&attrs(&[2, 0])).unwrap();
        assert_eq!(p.attrs(), &attrs(&[2, 0])[..]);
        assert_eq!(p.row(0), &[Value::new(200), Value::new(2)]);
        assert!(f.project(&attrs(&[9])).is_err());
    }

    #[test]
    fn project_distinct_eliminates_duplicates() {
        let r = rel(&[0, 1], &[vec![1, 10], vec![1, 20], vec![2, 10]]);
        let p = r.project_distinct(&attrs(&[0])).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn reorder_columns_validates_arity() {
        let r = rel(&[0, 1], &[vec![1, 2]]);
        assert!(r.reorder_columns(&attrs(&[1])).is_err());
        let swapped = r.reorder_columns(&attrs(&[1, 0])).unwrap();
        assert_eq!(swapped.row(0), &[Value::new(2), Value::new(1)]);
    }

    #[test]
    fn tuple_set_is_order_insensitive() {
        let r1 = rel(&[0, 1], &[vec![1, 2], vec![3, 4]]);
        let r2 = rel(&[0, 1], &[vec![3, 4], vec![1, 2]]);
        assert_eq!(r1.tuple_set(), r2.tuple_set());
    }
}
