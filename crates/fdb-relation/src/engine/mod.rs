//! The RDB baseline engine: select-project-join evaluation on flat relations.
//!
//! This is the "homebred in-memory relational engine" the paper measures FDB
//! against.  It evaluates a [`Query`] bottom-up on flat relations:
//!
//! 1. constant selections and intra-relation equality selections are pushed
//!    onto the base relations;
//! 2. relations are joined pairwise following a greedy plan that always picks
//!    the pair with the smallest estimated intermediate result, using either
//!    multi-way sort-merge joins (the paper's choice — the input relations
//!    are given sorted) or hash joins;
//! 3. remaining cross products are taken when no join condition links the
//!    remaining intermediates;
//! 4. the projection is applied last (with duplicate elimination, matching
//!    the set semantics of the paper's relational algebra).
//!
//! Evaluation can be bounded with [`EvalLimits`] (output-tuple budget and/or
//! wall-clock deadline) so that experiment sweeps can report timeouts the
//! way the paper's plots leave out points that exceeded 100 seconds.

mod join;
mod plan;

pub use join::{hash_join, sort_merge_join};
pub use plan::{GreedyJoinPlanner, JoinStep};

use crate::database::Database;
use crate::relation::Relation;
use fdb_common::{AttrId, FdbError, Query, Result};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Which pairwise join algorithm the RDB engine uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum JoinAlgorithm {
    /// Sort both inputs on the join key and merge (the paper's RDB uses
    /// sort-merge joins over pre-sorted relations).
    #[default]
    SortMerge,
    /// Build a hash table on the smaller input and probe with the larger.
    Hash,
}

/// Resource limits for a single query evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalLimits {
    /// Maximum number of tuples any intermediate or final result may reach.
    pub max_tuples: Option<usize>,
    /// Wall-clock budget for the whole evaluation.
    pub timeout: Option<Duration>,
}

impl EvalLimits {
    /// No limits at all.
    pub fn unlimited() -> Self {
        EvalLimits::default()
    }

    /// Limits evaluation to `max_tuples` tuples per (intermediate) result.
    pub fn with_max_tuples(mut self, max_tuples: usize) -> Self {
        self.max_tuples = Some(max_tuples);
        self
    }

    /// Limits evaluation to the given wall-clock duration.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

/// Ticking deadline/budget checker handed to the join kernels.  Constructed
/// from [`EvalLimits`]; exposed so the kernels can be reused directly.
#[derive(Clone, Copy, Debug)]
pub struct LimitChecker {
    max_tuples: usize,
    deadline: Option<Instant>,
}

impl LimitChecker {
    /// Creates a checker from the given limits (the deadline starts now).
    pub fn new(limits: &EvalLimits) -> Self {
        LimitChecker {
            max_tuples: limits.max_tuples.unwrap_or(usize::MAX),
            deadline: limits.timeout.map(|t| Instant::now() + t),
        }
    }

    /// Fails when the produced-tuple count exceeds the budget or the
    /// deadline has passed.
    #[inline]
    pub fn check(&self, produced: usize) -> Result<()> {
        if produced > self.max_tuples {
            return Err(FdbError::LimitExceeded {
                detail: format!("result exceeded the {}-tuple budget", self.max_tuples),
            });
        }
        // Checking the clock on every tuple would dominate tight loops; the
        // callers only invoke `check` every few thousand tuples.
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(FdbError::LimitExceeded {
                    detail: "evaluation exceeded its wall-clock budget".to_owned(),
                });
            }
        }
        Ok(())
    }
}

/// Statistics of a single RDB evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RdbStats {
    /// Number of pairwise joins performed.
    pub joins: usize,
    /// Number of cross products performed (no join condition available).
    pub cross_products: usize,
    /// Largest intermediate result, in tuples.
    pub max_intermediate_tuples: usize,
    /// Tuples in the final result.
    pub output_tuples: usize,
}

/// The flat relational query engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct RdbEngine {
    /// Join algorithm used for every pairwise join.
    pub algorithm: JoinAlgorithm,
    /// Resource limits applied to every evaluation.
    pub limits: EvalLimits,
}

impl RdbEngine {
    /// Creates an engine with the default (sort-merge) join algorithm and no
    /// resource limits.
    pub fn new() -> Self {
        RdbEngine::default()
    }

    /// Sets the join algorithm.
    pub fn with_algorithm(mut self, algorithm: JoinAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the resource limits.
    pub fn with_limits(mut self, limits: EvalLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Evaluates the query on the database, returning the flat result.
    pub fn evaluate(&self, db: &Database, query: &Query) -> Result<Relation> {
        self.evaluate_with_stats(db, query).map(|(rel, _)| rel)
    }

    /// Evaluates the query, also returning evaluation statistics.
    pub fn evaluate_with_stats(
        &self,
        db: &Database,
        query: &Query,
    ) -> Result<(Relation, RdbStats)> {
        query.validate(db.catalog())?;
        let checker = LimitChecker::new(&self.limits);
        let mut stats = RdbStats::default();

        // Attribute → equivalence-class index, used to find join keys.
        let classes = query.equivalence_classes(db.catalog());
        let mut class_of: BTreeMap<AttrId, usize> = BTreeMap::new();
        for (i, class) in classes.iter().enumerate() {
            for &a in class {
                class_of.insert(a, i);
            }
        }

        // Base relations with constant selections and intra-relation
        // equality selections pushed down.
        let mut pending: Vec<Relation> = Vec::with_capacity(query.relations.len());
        for &rel_id in &query.relations {
            let mut rel = db.relation(rel_id);
            rel = self.apply_const_selections(rel, query);
            rel = Self::apply_intra_relation_equalities(rel, &class_of);
            pending.push(rel);
        }
        if pending.is_empty() {
            return Err(FdbError::InvalidInput {
                detail: "query has no relations".into(),
            });
        }

        // Greedy pairwise joining.
        let planner = GreedyJoinPlanner::new(&class_of);
        while pending.len() > 1 {
            let step = planner.next_step(&pending);
            let right = pending.swap_remove(step.right);
            let left = pending.swap_remove(step.left);
            let joined = if step.key_classes.is_empty() {
                stats.cross_products += 1;
                join::cross_product(&left, &right, &checker)?
            } else {
                stats.joins += 1;
                let keys = plan::key_columns(&left, &right, &class_of, &step.key_classes);
                match self.algorithm {
                    JoinAlgorithm::SortMerge => sort_merge_join(&left, &right, &keys, &checker)?,
                    JoinAlgorithm::Hash => hash_join(&left, &right, &keys, &checker)?,
                }
            };
            stats.max_intermediate_tuples = stats.max_intermediate_tuples.max(joined.len());
            pending.push(joined);
        }
        let mut result = pending.pop().expect("at least one relation");

        // Projection (set semantics).
        if let Some(_proj) = &query.projection {
            let out_attrs = query.output_attrs(db.catalog());
            result = result.project_distinct(&out_attrs)?;
        }
        stats.output_tuples = result.len();
        Ok((result, stats))
    }

    fn apply_const_selections(&self, rel: Relation, query: &Query) -> Relation {
        let applicable: Vec<_> = query
            .const_selections
            .iter()
            .filter(|sel| rel.has_attr(sel.attr))
            .copied()
            .collect();
        if applicable.is_empty() {
            return rel;
        }
        let cols: Vec<(usize, _)> = applicable
            .iter()
            .map(|sel| (rel.col_index(sel.attr).expect("checked above"), *sel))
            .collect();
        rel.filter(|row| cols.iter().all(|(c, sel)| sel.op.eval(row[*c], sel.value)))
    }

    fn apply_intra_relation_equalities(
        rel: Relation,
        class_of: &BTreeMap<AttrId, usize>,
    ) -> Relation {
        // Columns of the same equivalence class within one relation must be
        // pairwise equal.
        let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (col, &attr) in rel.attrs().iter().enumerate() {
            if let Some(&class) = class_of.get(&attr) {
                by_class.entry(class).or_default().push(col);
            }
        }
        let groups: Vec<Vec<usize>> = by_class
            .into_values()
            .filter(|cols| cols.len() > 1)
            .collect();
        if groups.is_empty() {
            return rel;
        }
        rel.filter(|row| {
            groups
                .iter()
                .all(|cols| cols.windows(2).all(|w| row[w[0]] == row[w[1]]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_common::{Catalog, ComparisonOp, Value};

    /// R(A,B), S(B,C), T(C,D) with a small many-to-many instance.
    fn chain_db() -> (Database, Vec<fdb_common::RelId>, Vec<AttrId>) {
        let mut catalog = Catalog::new();
        let (r, ra) = catalog.add_relation("R", &["A", "B"]);
        let (s, sa) = catalog.add_relation("S", &["B", "C"]);
        let (t, ta) = catalog.add_relation("T", &["C", "D"]);
        let mut db = Database::new(catalog);
        db.insert_raw_rows(r, &[vec![1, 10], vec![1, 20], vec![2, 10]])
            .unwrap();
        db.insert_raw_rows(s, &[vec![10, 100], vec![10, 200], vec![20, 100]])
            .unwrap();
        db.insert_raw_rows(t, &[vec![100, 7], vec![200, 7], vec![200, 8]])
            .unwrap();
        let attrs = [ra, sa, ta].concat();
        (db, vec![r, s, t], attrs)
    }

    fn chain_query(rels: &[fdb_common::RelId], attrs: &[AttrId]) -> Query {
        // R.B = S.B, S.C = T.C
        Query::product(rels.to_vec())
            .with_equality(attrs[1], attrs[2])
            .with_equality(attrs[3], attrs[4])
    }

    fn brute_force_chain(db: &Database, query: &Query) -> std::collections::BTreeSet<Vec<Value>> {
        // Nested-loop reference implementation over the product of all
        // relations, filtering by all equalities and constant selections.
        let cat = db.catalog();
        let rels: Vec<Relation> = query.relations.iter().map(|&r| db.relation(r)).collect();
        let all_attrs: Vec<AttrId> = query
            .relations
            .iter()
            .flat_map(|&r| cat.rel_attrs(r).to_vec())
            .collect();
        let mut result = std::collections::BTreeSet::new();
        let mut indices = vec![0usize; rels.len()];
        'outer: loop {
            if rels.iter().any(|r| r.is_empty()) {
                break;
            }
            let mut tuple: Vec<Value> = Vec::new();
            for (rel, &i) in rels.iter().zip(&indices) {
                tuple.extend_from_slice(rel.row(i));
            }
            let pos = |a: AttrId| all_attrs.iter().position(|&x| x == a).unwrap();
            let eq_ok = query
                .equalities
                .iter()
                .all(|eq| tuple[pos(eq.left)] == tuple[pos(eq.right)]);
            let sel_ok = query
                .const_selections
                .iter()
                .all(|sel| sel.op.eval(tuple[pos(sel.attr)], sel.value));
            if eq_ok && sel_ok {
                let projected: Vec<Value> = match &query.projection {
                    Some(_) => {
                        let outs = query.output_attrs(cat);
                        outs.iter().map(|&a| tuple[pos(a)]).collect()
                    }
                    None => {
                        let mut sorted = all_attrs.clone();
                        sorted.sort_unstable();
                        sorted.iter().map(|&a| tuple[pos(a)]).collect()
                    }
                };
                result.insert(projected);
            }
            // Advance the odometer.
            for k in (0..indices.len()).rev() {
                indices[k] += 1;
                if indices[k] < rels[k].len() {
                    continue 'outer;
                }
                indices[k] = 0;
                if k == 0 {
                    break 'outer;
                }
            }
        }
        result
    }

    #[test]
    fn chain_join_matches_brute_force_with_both_algorithms() {
        let (db, rels, attrs) = chain_db();
        let query = chain_query(&rels, &attrs);
        let expected = brute_force_chain(&db, &query);
        for algo in [JoinAlgorithm::SortMerge, JoinAlgorithm::Hash] {
            let engine = RdbEngine::new().with_algorithm(algo);
            let result = engine.evaluate(&db, &query).unwrap();
            // Reorder the columns to ascending attribute id for comparison.
            let mut sorted_attrs = result.attrs().to_vec();
            sorted_attrs.sort_unstable();
            let canon = result.reorder_columns(&sorted_attrs).unwrap();
            assert_eq!(canon.tuple_set(), expected, "algorithm {algo:?}");
        }
    }

    #[test]
    fn const_selection_is_applied() {
        let (db, rels, attrs) = chain_db();
        let query = chain_query(&rels, &attrs).with_const_selection(
            attrs[0],
            ComparisonOp::Eq,
            Value::new(1),
        );
        let expected = brute_force_chain(&db, &query);
        let result = RdbEngine::new().evaluate(&db, &query).unwrap();
        let mut sorted_attrs = result.attrs().to_vec();
        sorted_attrs.sort_unstable();
        assert_eq!(
            result.reorder_columns(&sorted_attrs).unwrap().tuple_set(),
            expected
        );
        assert!(expected.iter().all(|t| t[0] == Value::new(1)));
    }

    #[test]
    fn projection_uses_set_semantics() {
        let (db, rels, attrs) = chain_db();
        // Project the chain join onto A only: duplicates must collapse.
        let query = chain_query(&rels, &attrs).with_projection(vec![attrs[0]]);
        let result = RdbEngine::new().evaluate(&db, &query).unwrap();
        let expected = brute_force_chain(&db, &query);
        assert_eq!(result.tuple_set(), expected);
        assert_eq!(result.len(), expected.len());
    }

    #[test]
    fn cross_product_is_used_when_no_join_exists() {
        let (db, rels, _) = chain_db();
        let query = Query::product(vec![rels[0], rels[2]]);
        let (result, stats) = RdbEngine::new().evaluate_with_stats(&db, &query).unwrap();
        assert_eq!(result.len(), 9);
        assert_eq!(stats.cross_products, 1);
        assert_eq!(stats.joins, 0);
    }

    #[test]
    fn tuple_budget_aborts_evaluation() {
        let (db, rels, attrs) = chain_db();
        let query = chain_query(&rels, &attrs);
        let engine = RdbEngine::new().with_limits(EvalLimits::unlimited().with_max_tuples(1));
        let err = engine.evaluate(&db, &query).unwrap_err();
        assert!(matches!(err, FdbError::LimitExceeded { .. }));
    }

    #[test]
    fn intra_relation_equality_is_a_selection() {
        let mut catalog = Catalog::new();
        let (r, ra) = catalog.add_relation("R", &["A", "B"]);
        let mut db = Database::new(catalog);
        db.insert_raw_rows(r, &[vec![1, 1], vec![1, 2], vec![3, 3]])
            .unwrap();
        let query = Query::product(vec![r]).with_equality(ra[0], ra[1]);
        let result = RdbEngine::new().evaluate(&db, &query).unwrap();
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn empty_relation_yields_empty_result() {
        let (mut db, rels, attrs) = chain_db();
        db.insert_raw_rows(rels[1], &[]).unwrap();
        let query = chain_query(&rels, &attrs);
        let result = RdbEngine::new().evaluate(&db, &query).unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn stats_count_joins() {
        let (db, rels, attrs) = chain_db();
        let query = chain_query(&rels, &attrs);
        let (_, stats) = RdbEngine::new().evaluate_with_stats(&db, &query).unwrap();
        assert_eq!(stats.joins, 2);
        assert_eq!(stats.cross_products, 0);
        assert!(stats.output_tuples > 0);
    }
}
