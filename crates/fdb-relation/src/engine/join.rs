//! Pairwise join kernels used by the RDB engine.

use super::LimitChecker;
use crate::relation::Relation;
use fdb_common::{Result, Value};
use std::collections::HashMap;

/// How often (in produced tuples) the resource limits are re-checked.
const CHECK_EVERY: usize = 4096;

/// Concatenates every pair of rows (cross product).
pub(crate) fn cross_product(
    left: &Relation,
    right: &Relation,
    checker: &LimitChecker,
) -> Result<Relation> {
    let mut out_attrs = left.attrs().to_vec();
    out_attrs.extend_from_slice(right.attrs());
    let mut out = Relation::new(out_attrs);
    let mut produced = 0usize;
    let mut row_buf: Vec<Value> = Vec::with_capacity(left.arity() + right.arity());
    for lrow in left.rows() {
        for rrow in right.rows() {
            row_buf.clear();
            row_buf.extend_from_slice(lrow);
            row_buf.extend_from_slice(rrow);
            out.push_row(&row_buf)?;
            produced += 1;
            if produced.is_multiple_of(CHECK_EVERY) {
                checker.check(produced)?;
            }
        }
    }
    checker.check(produced)?;
    Ok(out)
}

/// Equi-join on the given `(left column, right column)` key pairs using a
/// hash table built on the smaller input.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    keys: &[(usize, usize)],
    checker: &LimitChecker,
) -> Result<Relation> {
    let mut out_attrs = left.attrs().to_vec();
    out_attrs.extend_from_slice(right.attrs());
    let mut out = Relation::new(out_attrs);

    // Build on the smaller side; remember whether sides were flipped so the
    // output column order stays `left ++ right`.
    let (build, probe, flipped) = if left.len() <= right.len() {
        (left, right, false)
    } else {
        (right, left, true)
    };
    let build_cols: Vec<usize> = keys
        .iter()
        .map(|&(l, r)| if flipped { r } else { l })
        .collect();
    let probe_cols: Vec<usize> = keys
        .iter()
        .map(|&(l, r)| if flipped { l } else { r })
        .collect();

    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(build.len());
    for (i, row) in build.rows().enumerate() {
        let key: Vec<Value> = build_cols.iter().map(|&c| row[c]).collect();
        table.entry(key).or_default().push(i);
    }

    let mut produced = 0usize;
    let mut row_buf: Vec<Value> = Vec::with_capacity(left.arity() + right.arity());
    for prow in probe.rows() {
        let key: Vec<Value> = probe_cols.iter().map(|&c| prow[c]).collect();
        if let Some(matches) = table.get(&key) {
            for &bi in matches {
                let brow = build.row(bi);
                row_buf.clear();
                if flipped {
                    // build = right, probe = left
                    row_buf.extend_from_slice(prow);
                    row_buf.extend_from_slice(brow);
                } else {
                    row_buf.extend_from_slice(brow);
                    row_buf.extend_from_slice(prow);
                }
                out.push_row(&row_buf)?;
                produced += 1;
                if produced.is_multiple_of(CHECK_EVERY) {
                    checker.check(produced)?;
                }
            }
        }
    }
    checker.check(produced)?;
    Ok(out)
}

/// Equi-join on the given `(left column, right column)` key pairs by sorting
/// both inputs on the key and merging.
pub fn sort_merge_join(
    left: &Relation,
    right: &Relation,
    keys: &[(usize, usize)],
    checker: &LimitChecker,
) -> Result<Relation> {
    let mut out_attrs = left.attrs().to_vec();
    out_attrs.extend_from_slice(right.attrs());
    let mut out = Relation::new(out_attrs);
    if left.is_empty() || right.is_empty() {
        return Ok(out);
    }

    let left_cols: Vec<usize> = keys.iter().map(|&(l, _)| l).collect();
    let right_cols: Vec<usize> = keys.iter().map(|&(_, r)| r).collect();

    let mut sorted_left = left.clone();
    sorted_left.sort_by_cols(&left_cols);
    let mut sorted_right = right.clone();
    sorted_right.sort_by_cols(&right_cols);

    let key_of =
        |row: &[Value], cols: &[usize]| -> Vec<Value> { cols.iter().map(|&c| row[c]).collect() };

    let mut produced = 0usize;
    let mut row_buf: Vec<Value> = Vec::with_capacity(left.arity() + right.arity());
    let (n, m) = (sorted_left.len(), sorted_right.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        let lkey = key_of(sorted_left.row(i), &left_cols);
        let rkey = key_of(sorted_right.row(j), &right_cols);
        match lkey.cmp(&rkey) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Determine the runs of equal keys on both sides and emit the
                // product of the two runs.
                let mut i_end = i + 1;
                while i_end < n && key_of(sorted_left.row(i_end), &left_cols) == lkey {
                    i_end += 1;
                }
                let mut j_end = j + 1;
                while j_end < m && key_of(sorted_right.row(j_end), &right_cols) == rkey {
                    j_end += 1;
                }
                for li in i..i_end {
                    for rj in j..j_end {
                        row_buf.clear();
                        row_buf.extend_from_slice(sorted_left.row(li));
                        row_buf.extend_from_slice(sorted_right.row(rj));
                        out.push_row(&row_buf)?;
                        produced += 1;
                        if produced.is_multiple_of(CHECK_EVERY) {
                            checker.check(produced)?;
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    checker.check(produced)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EvalLimits;
    use fdb_common::AttrId;

    fn checker() -> LimitChecker {
        LimitChecker::new(&EvalLimits::unlimited())
    }

    fn rel(ids: &[u32], rows: &[Vec<u64>]) -> Relation {
        let attrs = ids.iter().map(|&i| AttrId(i)).collect();
        Relation::from_raw_rows(attrs, rows).unwrap()
    }

    #[test]
    fn hash_and_sort_merge_agree() {
        let left = rel(
            &[0, 1],
            &[vec![1, 10], vec![2, 10], vec![3, 20], vec![4, 30]],
        );
        let right = rel(
            &[2, 3],
            &[vec![10, 7], vec![10, 8], vec![20, 9], vec![40, 1]],
        );
        let keys = [(1usize, 0usize)];
        let h = hash_join(&left, &right, &keys, &checker()).unwrap();
        let s = sort_merge_join(&left, &right, &keys, &checker()).unwrap();
        assert_eq!(h.tuple_set(), s.tuple_set());
        // (1,10)/(2,10) × (10,7)/(10,8) plus (3,20) × (20,9) = 5 rows.
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn multi_column_keys_are_supported() {
        let left = rel(&[0, 1], &[vec![1, 1], vec![1, 2], vec![2, 2]]);
        let right = rel(&[2, 3], &[vec![1, 1], vec![2, 2], vec![2, 3]]);
        // Join on both columns: (A,B) = (C,D).
        let keys = [(0usize, 0usize), (1usize, 1usize)];
        let h = hash_join(&left, &right, &keys, &checker()).unwrap();
        let s = sort_merge_join(&left, &right, &keys, &checker()).unwrap();
        assert_eq!(h.tuple_set(), s.tuple_set());
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let left = rel(&[0], &[]);
        let right = rel(&[1], &[vec![1], vec![2]]);
        let keys = [(0usize, 0usize)];
        assert!(hash_join(&left, &right, &keys, &checker())
            .unwrap()
            .is_empty());
        assert!(sort_merge_join(&left, &right, &keys, &checker())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn column_order_is_left_then_right_even_when_flipped() {
        // Right is smaller, so the hash join builds on it; the output column
        // order must still be left ++ right.
        let left = rel(&[0, 1], &[vec![1, 5], vec![2, 5], vec![3, 6]]);
        let right = rel(&[2], &[vec![5]]);
        let keys = [(1usize, 0usize)];
        let h = hash_join(&left, &right, &keys, &checker()).unwrap();
        assert_eq!(h.attrs(), &[AttrId(0), AttrId(1), AttrId(2)]);
        for row in h.rows() {
            assert_eq!(row[1], row[2]);
        }
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn cross_product_counts() {
        let left = rel(&[0], &[vec![1], vec![2], vec![3]]);
        let right = rel(&[1], &[vec![7], vec![8]]);
        let p = cross_product(&left, &right, &checker()).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.arity(), 2);
    }

    #[test]
    fn budget_is_enforced_in_kernels() {
        let left = rel(&[0], &(0..200).map(|i| vec![i % 3]).collect::<Vec<_>>());
        let right = rel(&[1], &(0..200).map(|i| vec![i % 3]).collect::<Vec<_>>());
        let limited = LimitChecker::new(&EvalLimits::unlimited().with_max_tuples(10));
        let keys = [(0usize, 0usize)];
        assert!(hash_join(&left, &right, &keys, &limited).is_err());
        assert!(sort_merge_join(&left, &right, &keys, &limited).is_err());
        assert!(cross_product(&left, &right, &limited).is_err());
    }
}
