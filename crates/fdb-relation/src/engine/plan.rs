//! Greedy join planning for the RDB engine.
//!
//! The paper's RDB baseline runs "hand-crafted optimised query plans"; the
//! closest automated stand-in is the classic greedy heuristic: repeatedly
//! join the pair of intermediates with the smallest estimated output
//! (product of input cardinalities, refined by whether they share a join
//! class at all).  Cross products are deferred until no joinable pair
//! remains.

use crate::relation::Relation;
use fdb_common::AttrId;
use std::collections::{BTreeMap, BTreeSet};

/// One pairwise step chosen by the planner: join `pending[left]` with
/// `pending[right]` (indices into the current list of intermediates) on the
/// listed equivalence classes (empty ⇒ cross product).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinStep {
    /// Index of the left input in the pending list.  Always greater than or
    /// equal to zero and strictly less than `right` so that callers can
    /// `swap_remove(right)` then `swap_remove(left)` safely.
    pub left: usize,
    /// Index of the right input in the pending list.
    pub right: usize,
    /// Equivalence classes shared by the two inputs (join key classes).
    pub key_classes: Vec<usize>,
}

/// Greedy smallest-intermediate-first join planner.
#[derive(Clone, Debug)]
pub struct GreedyJoinPlanner {
    class_of: BTreeMap<AttrId, usize>,
}

impl GreedyJoinPlanner {
    /// Creates a planner given the attribute → equivalence class mapping of
    /// the query.
    pub fn new(class_of: &BTreeMap<AttrId, usize>) -> Self {
        GreedyJoinPlanner {
            class_of: class_of.clone(),
        }
    }

    /// Returns the equivalence classes present in a relation's columns.
    fn classes_of(&self, rel: &Relation) -> BTreeSet<usize> {
        rel.attrs()
            .iter()
            .filter_map(|a| self.class_of.get(a).copied())
            .collect()
    }

    /// Chooses the next pair of intermediates to combine.
    ///
    /// Joinable pairs (sharing at least one class) are preferred over cross
    /// products; among candidates the pair with the smallest product of
    /// cardinalities wins, with index order as the tie-breaker for
    /// determinism.
    pub fn next_step(&self, pending: &[Relation]) -> JoinStep {
        assert!(pending.len() >= 2, "need at least two intermediates");
        let classes: Vec<BTreeSet<usize>> = pending.iter().map(|r| self.classes_of(r)).collect();

        let mut best: Option<(bool, u128, usize, usize, Vec<usize>)> = None;
        for i in 0..pending.len() {
            for j in (i + 1)..pending.len() {
                let shared: Vec<usize> = classes[i].intersection(&classes[j]).copied().collect();
                let joinable = !shared.is_empty();
                let cost = pending[i].len() as u128 * pending[j].len() as u128;
                let candidate = (joinable, cost, i, j, shared);
                let better = match &best {
                    None => true,
                    Some((best_joinable, best_cost, ..)) => {
                        // Prefer joinable pairs; then smaller estimated size.
                        (candidate.0 && !best_joinable)
                            || (candidate.0 == *best_joinable && candidate.1 < *best_cost)
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
        let (_, _, left, right, key_classes) = best.expect("at least one pair exists");
        JoinStep {
            left,
            right,
            key_classes,
        }
    }
}

/// Translates shared equivalence classes into concrete `(left column, right
/// column)` key pairs, one per class, using the first attribute of the class
/// found on each side.
pub(crate) fn key_columns(
    left: &Relation,
    right: &Relation,
    class_of: &BTreeMap<AttrId, usize>,
    key_classes: &[usize],
) -> Vec<(usize, usize)> {
    let find = |rel: &Relation, class: usize| -> Option<usize> {
        rel.attrs()
            .iter()
            .position(|a| class_of.get(a).copied() == Some(class))
    };
    key_classes
        .iter()
        .filter_map(|&class| Some((find(left, class)?, find(right, class)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(ids: &[u32], len: usize) -> Relation {
        let attrs: Vec<AttrId> = ids.iter().map(|&i| AttrId(i)).collect();
        let arity = attrs.len();
        let rows: Vec<Vec<u64>> = (0..len).map(|i| vec![i as u64; arity]).collect();
        Relation::from_raw_rows(attrs, &rows).unwrap()
    }

    fn class_map(pairs: &[(u32, usize)]) -> BTreeMap<AttrId, usize> {
        pairs.iter().map(|&(a, c)| (AttrId(a), c)).collect()
    }

    #[test]
    fn joinable_pairs_beat_cross_products() {
        // R(A0) and S(A1) share class 0; T(A2) shares nothing.
        let class_of = class_map(&[(0, 0), (1, 0), (2, 1)]);
        let planner = GreedyJoinPlanner::new(&class_of);
        let pending = vec![rel(&[0], 1000), rel(&[1], 1000), rel(&[2], 1)];
        let step = planner.next_step(&pending);
        // Even though joining with T would give the smallest product, T is
        // not joinable, so R ⋈ S must be chosen.
        assert_eq!((step.left, step.right), (0, 1));
        assert_eq!(step.key_classes, vec![0]);
    }

    #[test]
    fn smallest_joinable_pair_is_chosen() {
        let class_of = class_map(&[(0, 0), (1, 0), (2, 0)]);
        let planner = GreedyJoinPlanner::new(&class_of);
        let pending = vec![rel(&[0], 100), rel(&[1], 10), rel(&[2], 20)];
        let step = planner.next_step(&pending);
        assert_eq!((step.left, step.right), (1, 2));
    }

    #[test]
    fn cross_product_step_has_no_keys() {
        let class_of = class_map(&[(0, 0), (1, 1)]);
        let planner = GreedyJoinPlanner::new(&class_of);
        let pending = vec![rel(&[0], 5), rel(&[1], 5)];
        let step = planner.next_step(&pending);
        assert!(step.key_classes.is_empty());
    }

    #[test]
    fn key_columns_resolve_class_to_columns() {
        let class_of = class_map(&[(0, 7), (1, 8), (2, 8), (3, 7)]);
        let left = rel(&[0, 1], 1);
        let right = rel(&[2, 3], 1);
        let keys = key_columns(&left, &right, &class_of, &[7, 8]);
        assert_eq!(keys, vec![(0, 1), (1, 0)]);
    }
}
