//! A database: a catalog plus the stored instance of every relation.

use crate::relation::Relation;
use fdb_common::{AttrId, Catalog, FdbError, RelId, Result, Value};
use std::collections::BTreeMap;

/// An in-memory database instance.
///
/// The [`Catalog`] describes the schema (relations and attributes); the
/// database stores one [`Relation`] instance per catalog relation.  Relations
/// that have not been populated are treated as empty.
#[derive(Clone, Debug, Default)]
pub struct Database {
    catalog: Catalog,
    relations: BTreeMap<RelId, Relation>,
}

impl Database {
    /// Creates an empty database over the given catalog.
    pub fn new(catalog: Catalog) -> Self {
        Database {
            catalog,
            relations: BTreeMap::new(),
        }
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Installs (or replaces) the instance of a relation.  The relation's
    /// columns must be exactly the catalog attributes of `rel`, in catalog
    /// order.
    pub fn insert_relation(&mut self, rel: RelId, instance: Relation) -> Result<()> {
        self.catalog.check_rel(rel)?;
        let expected = self.catalog.rel_attrs(rel);
        if instance.attrs() != expected {
            return Err(FdbError::InvalidInput {
                detail: format!(
                    "relation {} expects columns {:?}, instance has {:?}",
                    self.catalog.rel_name(rel),
                    expected,
                    instance.attrs()
                ),
            });
        }
        self.relations.insert(rel, instance);
        Ok(())
    }

    /// Convenience: installs a relation from rows of raw integers.
    pub fn insert_raw_rows(&mut self, rel: RelId, rows: &[Vec<u64>]) -> Result<()> {
        self.catalog.check_rel(rel)?;
        let attrs = self.catalog.rel_attrs(rel).to_vec();
        let instance = Relation::from_raw_rows(attrs, rows)?;
        self.insert_relation(rel, instance)
    }

    /// Returns the stored instance of a relation, or an empty instance if it
    /// has not been populated.
    pub fn relation(&self, rel: RelId) -> Relation {
        match self.relations.get(&rel) {
            Some(r) => r.clone(),
            None => Relation::new(self.catalog.rel_attrs(rel).to_vec()),
        }
    }

    /// Returns a reference to the stored instance, if it was populated.
    pub fn relation_ref(&self, rel: RelId) -> Option<&Relation> {
        self.relations.get(&rel)
    }

    /// Number of tuples stored in a relation.
    pub fn rel_len(&self, rel: RelId) -> usize {
        self.relations.get(&rel).map_or(0, Relation::len)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Total number of data elements (`Σ arity × rows`) across all relations,
    /// the `|D|` size measure the paper's bounds are stated in.
    pub fn total_data_elements(&self) -> usize {
        self.relations
            .values()
            .map(Relation::data_element_count)
            .sum()
    }

    /// Number of distinct values of an attribute in its stored relation.
    pub fn distinct_count(&self, attr: AttrId) -> usize {
        let rel = self.catalog.attr_relation(attr);
        self.relations
            .get(&rel)
            .map_or(0, |r| r.distinct_values(attr).len())
    }

    /// Sorted distinct values of an attribute in its stored relation.
    pub fn distinct_values(&self, attr: AttrId) -> Vec<Value> {
        let rel = self.catalog.attr_relation(attr);
        self.relations
            .get(&rel)
            .map_or_else(Vec::new, |r| r.distinct_values(attr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Database, RelId, RelId) {
        let mut catalog = Catalog::new();
        let (r, _) = catalog.add_relation("R", &["A", "B"]);
        let (s, _) = catalog.add_relation("S", &["B", "C"]);
        let mut db = Database::new(catalog);
        db.insert_raw_rows(r, &[vec![1, 2], vec![1, 3], vec![2, 3]])
            .unwrap();
        db.insert_raw_rows(s, &[vec![2, 7], vec![3, 8]]).unwrap();
        (db, r, s)
    }

    #[test]
    fn sizes_are_tracked() {
        let (db, r, s) = setup();
        assert_eq!(db.rel_len(r), 3);
        assert_eq!(db.rel_len(s), 2);
        assert_eq!(db.total_tuples(), 5);
        assert_eq!(db.total_data_elements(), 10);
    }

    #[test]
    fn unpopulated_relation_is_empty() {
        let mut catalog = Catalog::new();
        let (r, _) = catalog.add_relation("R", &["A"]);
        let db = Database::new(catalog);
        assert_eq!(db.rel_len(r), 0);
        assert!(db.relation(r).is_empty());
        assert!(db.relation_ref(r).is_none());
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let (mut db, r, _) = setup();
        let bogus = Relation::from_raw_rows(vec![AttrId(5)], &[vec![1]]).unwrap();
        assert!(db.insert_relation(r, bogus).is_err());
        assert!(db.insert_relation(RelId(9), Relation::new(vec![])).is_err());
    }

    #[test]
    fn distinct_values_look_in_the_owning_relation() {
        let (db, _, _) = setup();
        // Attribute B of R (AttrId 1) has values {2, 3}; attribute B of S
        // (AttrId 2) has values {2, 3} as well but is a different attribute.
        assert_eq!(db.distinct_count(AttrId(1)), 2);
        let vals: Vec<u64> = db
            .distinct_values(AttrId(3))
            .iter()
            .map(|v| v.raw())
            .collect();
        assert_eq!(vals, vec![7, 8]);
    }
}
