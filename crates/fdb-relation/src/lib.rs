//! Flat relational substrate and the RDB baseline engine.
//!
//! The FDB paper compares its factorised engine against a "homebred
//! in-memory" relational engine (RDB) that evaluates select-project-join
//! queries on ordinary, flat relations with hand-crafted multi-way
//! sort-merge join plans.  This crate provides that entire substrate from
//! scratch:
//!
//! * [`Relation`]: an in-memory relation with row-major storage, sorting,
//!   selection and projection primitives;
//! * [`Database`]: a catalog plus one [`Relation`] per catalog entry;
//! * [`engine`]: the RDB query engine — join planning (greedy, smallest
//!   intermediate first), hash and sort-merge join implementations,
//!   constant selections pushed below joins, projections, and resource
//!   limits so that experiment sweeps can report timeouts the way the paper
//!   does.

#![warn(missing_docs)]

pub mod database;
pub mod engine;
pub mod relation;

pub use database::Database;
pub use engine::{EvalLimits, JoinAlgorithm, LimitChecker, RdbEngine, RdbStats};
pub use relation::{Relation, Tuple};
