//! Cost measures for f-plans (Section 4.1 of the paper).
//!
//! Two measures are provided:
//!
//! * **Asymptotic bounds**: the cost of an f-plan `f : T₀ ↦ T₁ ↦ … ↦ T_k` is
//!   `s(f) = max_i s(T_i)` — the evaluation time is `O(|D|^{s(f)} log |D|)`,
//!   so the most expensive intermediate f-tree dominates.  Plans are compared
//!   lexicographically: first by `s(f)`, then by the cost `s(T_k)` of the
//!   result, then (as a tie-breaker) by plan length.
//! * **Cardinality estimates**: the size of an f-representation over `T` is
//!   `Σ_{A} |Q_anc(A)(D)|` over the attributes `A` of `T`, where `anc(A)` is
//!   the set of attribute classes from the root to `A`'s node.  Each term is
//!   estimated from the relation cardinalities and per-class distinct value
//!   counts with the classic System-R style formula.

use crate::fplan::FPlan;
use fdb_common::Result;
use fdb_ftree::{s_cost, FTree, NodeId};

/// The cost of an f-plan under the asymptotic measure.
#[derive(Clone, Debug, PartialEq)]
pub struct FPlanCost {
    /// `s(f)`: the maximum `s(T_i)` over all intermediate trees (including
    /// the input and the final tree).
    pub max_intermediate: f64,
    /// `s(T_final)`: the cost of the result's f-tree.
    pub final_cost: f64,
    /// The cost of every intermediate tree, in order (input first).
    pub steps: Vec<f64>,
}

impl FPlanCost {
    /// Lexicographic comparison used by the optimisers: smaller
    /// `max_intermediate` first, then smaller `final_cost`, then fewer
    /// steps.
    pub fn better_than(&self, other: &FPlanCost) -> bool {
        const EPS: f64 = 1e-9;
        if self.max_intermediate + EPS < other.max_intermediate {
            return true;
        }
        if self.max_intermediate > other.max_intermediate + EPS {
            return false;
        }
        if self.final_cost + EPS < other.final_cost {
            return true;
        }
        if self.final_cost > other.final_cost + EPS {
            return false;
        }
        self.steps.len() < other.steps.len()
    }
}

/// Computes the asymptotic cost of a plan on the given input f-tree.
pub fn plan_cost(plan: &FPlan, input: &FTree) -> Result<FPlanCost> {
    let trees = plan.simulate(input)?;
    let mut steps = Vec::with_capacity(trees.len());
    for t in &trees {
        steps.push(s_cost(t)?);
    }
    let max_intermediate = steps.iter().copied().fold(0.0, f64::max);
    let final_cost = *steps.last().expect("at least the input tree");
    Ok(FPlanCost {
        max_intermediate,
        final_cost,
        steps,
    })
}

/// The cost model used by the optimisers.
///
/// [`CostModel::Asymptotic`] uses `s(T)` only; [`CostModel::Estimated`]
/// additionally weighs candidate trees by the estimated size of their
/// f-representations (given per-class distinct-value counts).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum CostModel {
    /// The `s(T)`-based measure (the paper's default; also what its
    /// experiments report).
    #[default]
    Asymptotic,
    /// Cardinality-estimate-based measure.
    Estimated,
}

/// Estimates the number of singletons of the f-representation of a query
/// result over `tree`, from the cardinalities stored on the dependency edges
/// and a per-node distinct-value estimate.
///
/// For each node `N`, the number of `N`-singletons equals the cardinality of
/// `π_{anc(N)}(Q)`; it is estimated as
///
/// ```text
/// min( Π_{M ∈ anc(N) ∪ {N}} ndv(M),
///      Π_{edges e touching anc(N) ∪ {N}} |e|  /  Π_{M joined by >1 edge} ndv(M)^(cover(M)−1) )
/// ```
///
/// i.e. the textbook join-size estimate capped by the product of distinct
/// counts, summed over all nodes (weighted by class size, since a node
/// labelled by `k` attributes contributes `k` singletons per combination).
pub fn estimate_frep_size<F>(tree: &FTree, ndv: F) -> f64
where
    F: Fn(NodeId) -> f64,
{
    let mut total = 0.0;
    for node in tree.node_ids() {
        let mut path: Vec<NodeId> = tree.ancestors(node);
        path.push(node);
        // Product of distinct counts along the path.
        let ndv_product: f64 = path.iter().map(|&n| ndv(n).max(1.0)).product();
        // Join-size estimate over the edges touching the path.
        let mut join_size = 1.0_f64;
        let mut seen_edge = vec![false; tree.edges().len()];
        for &n in &path {
            for e in tree.edges_of_node(n) {
                if !seen_edge[e] {
                    seen_edge[e] = true;
                    join_size *= tree.edges()[e].cardinality.max(1) as f64;
                }
            }
        }
        for &n in &path {
            let covering = tree.edges_of_node(n).len();
            if covering > 1 {
                join_size /= ndv(n).max(1.0).powi(covering as i32 - 1);
            }
        }
        let combinations = ndv_product.min(join_size).max(1.0);
        total += combinations * tree.visible_attrs(node).len() as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fplan::FPlanOp;
    use fdb_common::AttrId;
    use fdb_ftree::DepEdge;
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// Example 11 of the paper: dependency sets {A,B,C} and {D,E,F} with the
    /// f-tree {A,D} → (B → C, E → F).  Attribute ids A=0,B=1,C=2,D=3,E=4,F=5.
    fn example11_tree() -> FTree {
        let edges = vec![
            DepEdge::new("R1", attrs(&[0, 1, 2]), 10),
            DepEdge::new("R2", attrs(&[3, 4, 5]), 10),
        ];
        let mut t = FTree::new(edges);
        let ad = t.add_node(attrs(&[0, 3]), None).unwrap();
        let b = t.add_node(attrs(&[1]), Some(ad)).unwrap();
        t.add_node(attrs(&[2]), Some(b)).unwrap();
        let e = t.add_node(attrs(&[4]), Some(ad)).unwrap();
        t.add_node(attrs(&[5]), Some(e)).unwrap();
        t
    }

    #[test]
    fn example11_two_plans_have_costs_two_and_one() {
        let tree = example11_tree();
        assert!((s_cost(&tree).unwrap() - 1.0).abs() < 1e-6);
        let b = tree.node_of_attr(AttrId(1)).unwrap();
        let f = tree.node_of_attr(AttrId(5)).unwrap();

        // Plan 1: swap B with {A,D} (B becomes root), then absorb F into B.
        // Its intermediate tree has cost 2.
        let plan1 = FPlan::new(vec![FPlanOp::Swap(b), FPlanOp::Absorb(b, f)]);
        let cost1 = plan_cost(&plan1, &tree).unwrap();
        assert!(
            (cost1.max_intermediate - 2.0).abs() < 1e-6,
            "plan1 cost {cost1:?}"
        );
        assert!((cost1.final_cost - 1.0).abs() < 1e-6);

        // Plan 2: swap F with E, then merge F with B — all trees have cost 1.
        let plan2 = FPlan::new(vec![FPlanOp::Swap(f), FPlanOp::Merge(b, f)]);
        let cost2 = plan_cost(&plan2, &tree).unwrap();
        assert!(
            (cost2.max_intermediate - 1.0).abs() < 1e-6,
            "plan2 cost {cost2:?}"
        );
        assert!((cost2.final_cost - 1.0).abs() < 1e-6);

        assert!(cost2.better_than(&cost1));
        assert!(!cost1.better_than(&cost2));
    }

    #[test]
    fn better_than_breaks_ties_on_final_cost_then_length() {
        let a = FPlanCost {
            max_intermediate: 2.0,
            final_cost: 1.0,
            steps: vec![1.0, 2.0, 1.0],
        };
        let b = FPlanCost {
            max_intermediate: 2.0,
            final_cost: 2.0,
            steps: vec![2.0, 2.0],
        };
        assert!(a.better_than(&b));
        let c = FPlanCost {
            max_intermediate: 2.0,
            final_cost: 1.0,
            steps: vec![1.0, 1.0],
        };
        assert!(c.better_than(&a));
    }

    #[test]
    fn size_estimate_prefers_shallower_trees() {
        // Two independent unary relations of 100 tuples each: as a forest of
        // two roots the estimate is 200 singletons; as a chain it is
        // 100 + 100·100.
        let edges = vec![
            DepEdge::new("R", attrs(&[0]), 100),
            DepEdge::new("S", attrs(&[1]), 100),
        ];
        let mut forest = FTree::new(edges.clone());
        forest.add_node(attrs(&[0]), None).unwrap();
        forest.add_node(attrs(&[1]), None).unwrap();
        let mut chain = FTree::new(edges);
        let r = chain.add_node(attrs(&[0]), None).unwrap();
        chain.add_node(attrs(&[1]), Some(r)).unwrap();

        let ndv = |_: NodeId| 100.0;
        let forest_size = estimate_frep_size(&forest, ndv);
        let chain_size = estimate_frep_size(&chain, ndv);
        assert!((forest_size - 200.0).abs() < 1e-6);
        assert!(chain_size > forest_size);
    }

    #[test]
    fn size_estimate_caps_by_join_size() {
        // A single relation {A,B} of 50 tuples with 100 distinct values per
        // attribute: the number of B-singletons is bounded by the relation
        // size (50), not by 100 × 100.
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 50)];
        let mut chain = FTree::new(edges);
        let a = chain.add_node(attrs(&[0]), None).unwrap();
        chain.add_node(attrs(&[1]), Some(a)).unwrap();
        let est = estimate_frep_size(&chain, |_| 100.0);
        assert!(est <= 100.0 + 50.0 + 1e-6);
    }
}
