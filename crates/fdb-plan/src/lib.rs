//! F-plans and query optimisation for factorised databases.
//!
//! An *f-plan* is a sequence of f-plan operators (swap, merge, absorb,
//! push-up, selection with a constant, projection) that evaluates a
//! select-project-join query over a factorised representation.  This crate
//! provides:
//!
//! * the [`FPlan`] / [`FPlanOp`] description of plans ([`fplan`]), their
//!   schema-level simulation on f-trees and their data-level execution on
//!   f-representations;
//! * the two cost measures of the paper's Section 4.1 ([`cost`]): the
//!   asymptotic measure based on the size-bound parameter `s(T)` of every
//!   intermediate f-tree, and the estimate-based measure derived from
//!   relation cardinalities;
//! * the optimisers ([`optimizer`]):
//!   - [`optimizer::ftree_search`] finds an optimal (minimum `s(T)`) f-tree
//!     of a query over flat input — Experiment 1 of the paper;
//!   - [`optimizer::exhaustive`] runs Dijkstra over the space of normalised
//!     f-trees reachable by f-plan operators to find an optimal f-plan for a
//!     query over factorised input — Section 4.2;
//!   - [`optimizer::greedy`] is the polynomial-time heuristic of Section 4.3.

#![warn(missing_docs)]

pub mod cost;
pub mod fplan;
pub mod optimizer;
pub mod ordering;

pub use cost::{estimate_frep_size, CostModel, FPlanCost};
pub use fplan::{FPlan, FPlanOp};
pub use optimizer::exhaustive::{ExhaustiveConfig, ExhaustiveOptimizer};
pub use optimizer::ftree_search::{optimal_ftree, FTreeSearchResult};
pub use optimizer::greedy::GreedyOptimizer;
pub use optimizer::OptimizedPlan;
pub use ordering::{plan_chain_restructure, ChainDecision, ChainStrategy};

/// Compile-time pin of the frozen plan types' shareability: a plan produced
/// by the optimisers is immutable data that the serving layer caches behind
/// an `Arc` and hands to concurrent workers, so [`FPlan`] and friends must
/// stay `Send + Sync` (no `Rc`, no interior mutability).
#[allow(dead_code)]
fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    #[allow(dead_code)]
    fn frozen_plan_types_are_shareable() {
        _assert_send_sync::<FPlan>();
        _assert_send_sync::<FPlanOp>();
        _assert_send_sync::<FPlanCost>();
        _assert_send_sync::<OptimizedPlan>();
    }
};
