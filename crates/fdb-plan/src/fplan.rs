//! F-plans: sequences of f-plan operators.
//!
//! Operators are described at the schema level (node identifiers of the
//! input f-tree, attribute identifiers for selections and projections).  The
//! same plan can be *simulated* on an f-tree alone (used by the optimisers
//! to cost candidate plans without touching data) or *executed* on an
//! f-representation (which transforms both the data and its tree).
//!
//! # Whole-plan fused execution
//!
//! [`FPlan::execute`] does not run the operators one at a time — and since
//! PR 5 it no longer segments the op list either.  Selections with
//! constants and projections, formerly *fusion barriers* that forced an
//! arena materialisation on each side, are now overlay transforms like
//! every structural step (`fdb_frep::ops::fuse`: a selection is a per-union
//! entry filter composed with the liveness sweep, a projection replays as
//! leaf removals plus swap-downs), so the **whole plan compiles into one
//! overlay program** and pays a single arena emission no matter how many
//! operators it chains.  Before compilation the plan is peephole-simplified
//! against a simulated f-tree ([`FPlan::simplified`]): normalisations of an
//! already-normalised tree (e.g. the `Normalise` after an `Absorb`, which
//! normalises internally), identity projections, and selections made
//! trivially total by an earlier equality selection are data no-ops and are
//! dropped, and adjacent projections merge when the first only marks
//! attributes.  Aggregate plans go further still:
//! [`FPlan::execute_aggregate`] folds the aggregate — and the plan's
//! trailing selections — directly over the overlay, emitting **no arena at
//! all**.
//!
//! Two reference paths survive for oracles and benchmarks: the PR 2
//! operator-at-a-time path as [`FPlan::execute_stepwise`] (the bit-for-bit
//! oracle of the randomized equivalence suite) and the PR 3
//! segment-at-barriers path as [`FPlan::execute_segmented`] (the baseline
//! `bench-pr5` measures whole-plan fusion against).

use fdb_common::{AttrId, ComparisonOp, ExecCtx, FdbError, Result, Value};
use fdb_frep::ops::FusedOp;
use fdb_frep::{aggregate, ops, AggregateKind, AggregateResult, FRep};
use fdb_ftree::{FTree, NodeId};
use std::collections::BTreeSet;
use std::fmt;

/// One f-plan operator.
#[derive(Clone, Debug, PartialEq)]
pub enum FPlanOp {
    /// Push-up `ψ_B`: lift `node` above its parent.
    PushUp(NodeId),
    /// Normalisation `η`: push up nodes until the tree is normalised.
    Normalise,
    /// Swap `χ`: exchange `node` with its parent.
    Swap(NodeId),
    /// Merge `µ`: fuse the two sibling nodes (enforces equality of their
    /// classes); the first node survives.
    Merge(NodeId, NodeId),
    /// Absorb `α`: fuse the descendant (second) node into the ancestor
    /// (first) node, then normalise.
    Absorb(NodeId, NodeId),
    /// Selection with a constant `σ_{A θ c}`.
    SelectConst {
        /// Attribute compared against the constant.
        attr: AttrId,
        /// Comparison operator.
        op: ComparisonOp,
        /// The constant.
        value: Value,
    },
    /// Projection `π` onto the given attributes.
    Project(BTreeSet<AttrId>),
}

impl fmt::Display for FPlanOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FPlanOp::PushUp(n) => write!(f, "ψ({n})"),
            FPlanOp::Normalise => write!(f, "η"),
            FPlanOp::Swap(n) => write!(f, "χ({n})"),
            FPlanOp::Merge(a, b) => write!(f, "µ({a},{b})"),
            FPlanOp::Absorb(a, b) => write!(f, "α({a},{b})"),
            FPlanOp::SelectConst { attr, op, value } => write!(f, "σ({attr} {op:?} {value})"),
            FPlanOp::Project(attrs) => write!(f, "π({} attrs)", attrs.len()),
        }
    }
}

impl FPlanOp {
    /// Applies the operator to an f-tree only (schema-level simulation).
    pub fn apply_to_tree(&self, tree: &mut FTree) -> Result<()> {
        match self {
            FPlanOp::PushUp(n) => tree.push_up(*n),
            FPlanOp::Normalise => {
                tree.normalise();
                Ok(())
            }
            FPlanOp::Swap(n) => tree.swap_with_parent(*n).map(|_| ()),
            FPlanOp::Merge(a, b) => tree.merge_siblings(*a, *b).map(|_| ()),
            FPlanOp::Absorb(a, b) => {
                tree.absorb_into_ancestor(*a, *b)?;
                tree.normalise();
                Ok(())
            }
            FPlanOp::SelectConst { attr, op, value } => {
                let Some(node) = tree.node_of_attr(*attr) else {
                    return Err(FdbError::AttributeNotInQuery {
                        attr: format!("{attr}"),
                    });
                };
                if *op == ComparisonOp::Eq {
                    tree.bind_constant(node, *value)?;
                }
                Ok(())
            }
            FPlanOp::Project(keep) => {
                let all = tree.all_attrs();
                let marked: BTreeSet<AttrId> = all.difference(keep).copied().collect();
                tree.mark_attrs_projected(&marked);
                // Schema-level projection: repeatedly drop exhausted leaves;
                // fully-projected inner nodes are kept (they would be swapped
                // to leaves during execution, which does not change s(T) for
                // the worse).
                loop {
                    let removable = tree.removable_projected_leaves();
                    if removable.is_empty() {
                        break;
                    }
                    for leaf in removable {
                        tree.remove_projected_leaf(leaf)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Executes the operator on an f-representation (data level).
    pub fn execute(&self, rep: &mut FRep) -> Result<()> {
        match self {
            FPlanOp::PushUp(n) => ops::push_up(rep, *n),
            FPlanOp::Normalise => ops::normalise(rep).map(|_| ()),
            FPlanOp::Swap(n) => ops::swap(rep, *n).map(|_| ()),
            FPlanOp::Merge(a, b) => ops::merge(rep, *a, *b).map(|_| ()),
            FPlanOp::Absorb(a, b) => ops::absorb(rep, *a, *b).map(|_| ()),
            FPlanOp::SelectConst { attr, op, value } => ops::select_const(rep, *attr, *op, *value),
            FPlanOp::Project(keep) => ops::project(rep, keep),
        }
    }

    /// The fused-step form of this operator.  Total since PR 5: selections
    /// and projections compile into overlay transforms like every structural
    /// step.
    pub fn to_fused(&self) -> FusedOp {
        match self {
            FPlanOp::PushUp(n) => FusedOp::PushUp(*n),
            FPlanOp::Normalise => FusedOp::Normalise,
            FPlanOp::Swap(n) => FusedOp::Swap(*n),
            FPlanOp::Merge(a, b) => FusedOp::Merge(*a, *b),
            FPlanOp::Absorb(a, b) => FusedOp::Absorb(*a, *b),
            FPlanOp::SelectConst { attr, op, value } => FusedOp::SelectConst {
                attr: *attr,
                op: *op,
                value: *value,
            },
            FPlanOp::Project(keep) => FusedOp::Project(keep.clone()),
        }
    }

    /// Whether this operator was a *fusion barrier* before whole-plan fusion
    /// (selections with constants and projections).  The PR 3 segmented
    /// baseline [`FPlan::execute_segmented`] still splits at these, and the
    /// engine counts how many of them execute inside a fused program
    /// (`barriers_fused`).
    pub fn is_barrier(&self) -> bool {
        matches!(self, FPlanOp::SelectConst { .. } | FPlanOp::Project(_))
    }
}

/// A sequence of f-plan operators.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FPlan {
    /// The operators, in execution order.
    pub ops: Vec<FPlanOp>,
}

impl FPlan {
    /// The empty plan (the identity transformation).
    pub fn empty() -> Self {
        FPlan { ops: Vec::new() }
    }

    /// Creates a plan from a list of operators.
    pub fn new(ops: Vec<FPlanOp>) -> Self {
        FPlan { ops }
    }

    /// Number of operators in the plan.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the plan has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends an operator.
    pub fn push(&mut self, op: FPlanOp) {
        self.ops.push(op);
    }

    /// Appends all operators of another plan.
    pub fn extend(&mut self, other: FPlan) {
        self.ops.extend(other.ops);
    }

    /// Simulates the plan on a copy of the given f-tree, returning every
    /// intermediate tree (including the input as the first element and the
    /// final tree as the last).
    pub fn simulate(&self, tree: &FTree) -> Result<Vec<FTree>> {
        let mut trees = Vec::with_capacity(self.ops.len() + 1);
        let mut current = tree.clone();
        trees.push(current.clone());
        for op in &self.ops {
            op.apply_to_tree(&mut current)?;
            trees.push(current.clone());
        }
        Ok(trees)
    }

    /// Returns the final f-tree after simulating the plan.
    pub fn final_tree(&self, tree: &FTree) -> Result<FTree> {
        let mut current = tree.clone();
        for op in &self.ops {
            op.apply_to_tree(&mut current)?;
        }
        Ok(current)
    }

    /// Executes the plan on the representation, transforming it in place.
    ///
    /// The plan is peephole-simplified ([`FPlan::simplified`]) and, whenever
    /// the step-wise path would pay more than one arena pass
    /// ([`FPlan::fuses`]), compiled **whole** — selections and projections
    /// included — into a single overlay program that emits exactly one
    /// arena.  The output is bit-for-bit identical to
    /// [`FPlan::execute_stepwise`]; the only observable difference is on
    /// error, where a failing program leaves the representation unmodified
    /// instead of stopped at the failing operator.
    pub fn execute(&self, rep: &mut FRep) -> Result<()> {
        self.simplified(rep.tree()).execute_presimplified(rep)
    }

    /// The compilation half of [`FPlan::execute`], without the peephole
    /// pass — for callers that already hold a simplified plan (the engine
    /// simplifies once, reads the fusion counters off it for its stats,
    /// then executes it through this).
    pub fn execute_presimplified(&self, rep: &mut FRep) -> Result<()> {
        self.execute_presimplified_ctx(rep, &ExecCtx::unlimited())
    }

    /// [`FPlan::execute_presimplified`] under a governance context: the
    /// fused program threads the context through every overlay sweep and
    /// the final emission; the rare non-fused path (zero or one single-pass
    /// operator) checks the context between operators and governs the
    /// selection rebuild.  An aborted plan leaves the representation
    /// exactly as it was — the fused executor only installs its output
    /// arena on success, and a single governed selection rebuilds into a
    /// fresh store before swapping it in.
    pub fn execute_presimplified_ctx(&self, rep: &mut FRep, ctx: &ExecCtx) -> Result<()> {
        if !self.fuses() {
            // Zero or one single-pass operator: the overlay machinery would
            // only add overhead.
            for op in &self.ops {
                ctx.check_now()?;
                match op {
                    FPlanOp::SelectConst { attr, op, value } => {
                        ops::select_const_ctx(rep, *attr, *op, *value, ctx)?;
                    }
                    _ => op.execute(rep)?,
                }
            }
            return Ok(());
        }
        let program: Vec<FusedOp> = self.ops.iter().map(FPlanOp::to_fused).collect();
        ops::execute_fused_ctx(rep, &program, ctx)
    }

    /// Executes the plan operator by operator — the pre-fusion PR 2 path,
    /// kept as the oracle for the fused executor's equivalence tests and
    /// benchmarks.
    pub fn execute_stepwise(&self, rep: &mut FRep) -> Result<()> {
        for op in &self.ops {
            op.execute(rep)?;
        }
        Ok(())
    }

    /// Executes the plan the PR 3 way: the op list is split into segments at
    /// the former fusion barriers (selections and projections), each
    /// barrier runs as its own arena pass, and each multi-step structural
    /// segment runs as one fused pass.  Kept as the measured baseline of
    /// `bench-pr5` (whole-plan fusion vs segmented execution) and as an
    /// additional oracle in the equivalence suite; output arenas are
    /// bit-for-bit identical to both other paths.
    pub fn execute_segmented(&self, rep: &mut FRep) -> Result<()> {
        let mut segment: Vec<FusedOp> = Vec::new();
        for op in &self.ops {
            if op.is_barrier() {
                flush_segment(rep, &mut segment)?;
                op.execute(rep)?;
            } else {
                segment.push(op.to_fused());
            }
        }
        flush_segment(rep, &mut segment)
    }

    /// Executes the plan into an **aggregate sink**: the whole plan —
    /// barriers included — is applied only to the fused overlay and the
    /// aggregate is folded over the overlay itself
    /// ([`ops::execute_fused_aggregate`]), with the plan's trailing
    /// selections folded into the accumulation as entry filters.  **No
    /// arena is emitted at any point**: the input is borrowed, never cloned
    /// and never modified, and an aggregate consumer has no use for the
    /// transformed arena.
    ///
    /// Returns the aggregate result and whether the sink ran on the overlay
    /// (`false` only for the empty plan, where the aggregate is a plain
    /// flat pass over the input arena).
    pub fn execute_aggregate(
        &self,
        rep: &FRep,
        kind: AggregateKind,
        group_by: &[AttrId],
    ) -> Result<(AggregateResult, bool)> {
        self.simplified(rep.tree())
            .execute_aggregate_presimplified(rep, kind, group_by)
    }

    /// The sink half of [`FPlan::execute_aggregate`], without the peephole
    /// pass — for callers that already hold a simplified plan (the engine
    /// simplifies once, reads the fusion counters off it, then executes it
    /// through this).
    pub fn execute_aggregate_presimplified(
        &self,
        rep: &FRep,
        kind: AggregateKind,
        group_by: &[AttrId],
    ) -> Result<(AggregateResult, bool)> {
        self.execute_aggregate_presimplified_ctx(rep, kind, group_by, &ExecCtx::unlimited())
    }

    /// [`FPlan::execute_aggregate_presimplified`] under a governance
    /// context: both the empty-plan flat fold and the overlay fold charge
    /// per record, and the input is never mutated, so an abort has no
    /// partial state to clean up.
    pub fn execute_aggregate_presimplified_ctx(
        &self,
        rep: &FRep,
        kind: AggregateKind,
        group_by: &[AttrId],
        ctx: &ExecCtx,
    ) -> Result<(AggregateResult, bool)> {
        if self.ops.is_empty() {
            return Ok((aggregate::evaluate_ctx(rep, kind, group_by, ctx)?, false));
        }
        let program: Vec<FusedOp> = self.ops.iter().map(FPlanOp::to_fused).collect();
        let result = ops::execute_fused_aggregate_ctx(rep, &program, kind, group_by, ctx)?;
        Ok((result, true))
    }

    /// Peephole simplification against a simulated f-tree: drops or merges
    /// operators whose data-level effect is the identity —
    ///
    /// * `Normalise` when the tree is already normalised at that point of
    ///   the plan (so consecutive normalisations, and the common
    ///   `Absorb; Normalise` double normalisation, collapse);
    /// * projections that keep every attribute;
    /// * selections made trivially *total* by an earlier equality selection
    ///   (the node is bound to a constant the predicate accepts, so every
    ///   remaining entry passes); a selection an earlier binding makes
    ///   trivially *empty* is kept — emptying the representation is a data
    ///   effect;
    /// * adjacent projections, merged into one projection onto the
    ///   intersection when the first projection only *marks* attributes
    ///   (removes no node: every node keeps a visible attribute) — marking
    ///   is cumulative, so the merged projection replays the identical
    ///   data-level decisions.
    ///
    /// If simulation fails at some operator, that operator and everything
    /// after it are kept verbatim so execution reports the error faithfully.
    pub fn simplified(&self, tree: &FTree) -> FPlan {
        let mut cur = tree.clone();
        let mut out: Vec<FPlanOp> = Vec::with_capacity(self.ops.len());
        // Tree state *before* the most recently pushed op, when that op is a
        // projection that only marked attributes — the merge window.
        let mut mark_only_projection: Option<FTree> = None;
        for (i, op) in self.ops.iter().enumerate() {
            let mut op = op.clone();
            if let FPlanOp::Project(keep_attrs) = &op {
                if let (Some(before), Some(FPlanOp::Project(prev_keep))) =
                    (&mark_only_projection, out.last())
                {
                    // Merge π_{K1}; π_{K2} into π_{K1 ∩ K2}: the first
                    // projection touched no data, and the marking it
                    // performed is a subset of the merged projection's.
                    let merged: BTreeSet<AttrId> =
                        prev_keep.intersection(keep_attrs).copied().collect();
                    cur = before.clone();
                    out.pop();
                    op = FPlanOp::Project(merged);
                }
            }
            let keep = match &op {
                FPlanOp::Normalise => {
                    let mut probe = cur.clone();
                    !probe.normalise().is_empty()
                }
                FPlanOp::Project(keep_attrs) => {
                    cur.all_attrs().difference(keep_attrs).next().is_some()
                }
                FPlanOp::SelectConst {
                    attr,
                    op: cmp,
                    value,
                } => !cur
                    .node_of_attr(*attr)
                    .and_then(|node| cur.constant(node))
                    .is_some_and(|bound| cmp.eval(bound, *value)),
                _ => true,
            };
            if !keep {
                continue;
            }
            let before = cur.clone();
            if op.apply_to_tree(&mut cur).is_err() {
                // Simulation failed: stop simplifying here so execution
                // surfaces the same error at the same operator.
                out.push(op);
                out.extend(self.ops[i + 1..].iter().cloned());
                return FPlan { ops: out };
            }
            mark_only_projection = match &op {
                FPlanOp::Project(keep_attrs) if projection_only_marks(&before, keep_attrs) => {
                    Some(before)
                }
                _ => None,
            };
            out.push(op);
        }
        FPlan { ops: out }
    }

    /// Whole-plan fusion criterion: the plan compiles into one overlay
    /// program when the step-wise path would pay more than one arena pass —
    /// two or more operators, or a single internally multi-pass operator
    /// (normalise, absorb, projection).  A lone single-pass operator (swap,
    /// push-up, merge, selection) runs directly; the overlay would only add
    /// overhead.
    pub fn fuses(&self) -> bool {
        self.ops.len() >= 2
            || matches!(
                self.ops.first(),
                Some(FPlanOp::Normalise | FPlanOp::Absorb(_, _) | FPlanOp::Project(_))
            )
    }

    /// Number of former fusion barriers (selections with constants,
    /// projections) in the plan.  When the plan fuses, these execute inside
    /// the overlay program instead of as standalone arena passes — the
    /// engine reports the count as `barriers_fused`.
    pub fn barrier_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_barrier()).count()
    }

    /// Lower bound on the intermediate arenas whole-plan fused execution
    /// skips relative to the step-wise path: one per operator beyond the
    /// single emission (internally multi-pass operators skip more).  Zero
    /// when the plan does not fuse.
    pub fn arenas_skipped(&self) -> usize {
        if self.fuses() {
            self.ops.len() - 1
        } else {
            0
        }
    }
}

/// Returns `true` when projecting onto `keep` only marks attributes on the
/// tree without removing any node: after marking, every node still has at
/// least one visible attribute, so the data-level projection loop performs
/// zero leaf removals and zero swap-downs.
fn projection_only_marks(tree: &FTree, keep: &BTreeSet<AttrId>) -> bool {
    let mut probe = tree.clone();
    let marked: BTreeSet<AttrId> = probe.all_attrs().difference(keep).copied().collect();
    probe.mark_attrs_projected(&marked);
    probe
        .node_ids()
        .into_iter()
        .all(|n| !probe.visible_attrs(n).is_empty())
}

/// The PR 3 segment-fusion criterion, used by [`FPlan::execute_segmented`]:
/// a structural run executes as one fused pass when the step-wise path would
/// pay more than one arena pass — two or more steps, or a single internally
/// multi-pass normalise/absorb.
fn segment_fuses(segment: &[FusedOp]) -> bool {
    segment.len() >= 2
        || matches!(
            segment.first(),
            Some(FusedOp::Normalise | FusedOp::Absorb(_, _))
        )
}

/// Executes and clears a pending structural segment of the segmented
/// baseline: fused when [`segment_fuses`] says so, as the single step-wise
/// operator otherwise.
fn flush_segment(rep: &mut FRep, segment: &mut Vec<FusedOp>) -> Result<()> {
    if segment.is_empty() {
        return Ok(());
    }
    let result = if segment_fuses(segment) {
        ops::execute_fused(rep, segment)
    } else {
        match &segment[0] {
            FusedOp::PushUp(n) => ops::push_up(rep, *n),
            FusedOp::Swap(n) => ops::swap(rep, *n).map(|_| ()),
            FusedOp::Merge(a, b) => ops::merge(rep, *a, *b).map(|_| ()),
            FusedOp::Normalise
            | FusedOp::Absorb(_, _)
            | FusedOp::SelectConst { .. }
            | FusedOp::Project(_) => {
                unreachable!("multi-pass ops handled above; barriers never enter a segment")
            }
        }
    };
    segment.clear();
    result
}

impl fmt::Display for FPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.ops.iter().map(|op| op.to_string()).collect();
        write!(f, "[{}]", parts.join(" ; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_frep::{Entry, Union};
    use fdb_ftree::DepEdge;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// item{0,2} → (oid{1}, supplier{3}) over Orders{1,0} and Produce{3,2},
    /// already merged on item — a mini version of the paper's T5.
    fn sample_rep() -> FRep {
        let edges = vec![
            DepEdge::new("Orders", attrs(&[0, 1]), 3),
            DepEdge::new("Produce", attrs(&[2, 3]), 3),
        ];
        let mut tree = FTree::new(edges);
        let item = tree.add_node(attrs(&[0, 2]), None).unwrap();
        let oid = tree.add_node(attrs(&[1]), Some(item)).unwrap();
        let supplier = tree.add_node(attrs(&[3]), Some(item)).unwrap();
        let entry = |v: u64, oids: &[u64], sups: &[u64]| Entry {
            value: Value::new(v),
            children: vec![
                Union::new(
                    oid,
                    oids.iter().map(|&x| Entry::leaf(Value::new(x))).collect(),
                ),
                Union::new(
                    supplier,
                    sups.iter().map(|&x| Entry::leaf(Value::new(x))).collect(),
                ),
            ],
        };
        let u = Union::new(
            item,
            vec![entry(1, &[10, 11], &[7]), entry(2, &[12], &[7, 8])],
        );
        FRep::from_parts(tree, vec![u]).unwrap()
    }

    #[test]
    fn simulate_and_execute_stay_consistent() {
        let rep = sample_rep();
        let oid = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let plan = FPlan::new(vec![
            FPlanOp::Swap(oid),
            FPlanOp::SelectConst {
                attr: AttrId(3),
                op: ComparisonOp::Eq,
                value: Value::new(7),
            },
            FPlanOp::Project(attrs(&[1, 3])),
        ]);
        // Schema-level simulation.
        let trees = plan.simulate(rep.tree()).unwrap();
        assert_eq!(trees.len(), 4);
        let final_tree = plan.final_tree(rep.tree()).unwrap();
        assert_eq!(
            trees.last().unwrap().canonical_key(),
            final_tree.canonical_key()
        );
        // Data-level execution ends up over the same tree shape.
        let mut executed = rep.clone();
        plan.execute(&mut executed).unwrap();
        executed.validate().unwrap();
        assert_eq!(
            executed.visible_attrs(),
            vec![AttrId(1), AttrId(3)],
            "projection kept only oid and supplier"
        );
    }

    #[test]
    fn plan_display_is_readable() {
        let plan = FPlan::new(vec![FPlanOp::Normalise, FPlanOp::Swap(NodeId(1))]);
        let text = plan.to_string();
        assert!(text.contains("η"));
        assert!(text.contains("χ(n1)"));
    }

    #[test]
    fn invalid_operator_is_reported() {
        let rep = sample_rep();
        let item = rep.tree().node_of_attr(AttrId(0)).unwrap();
        // Swapping a root is invalid both in simulation and execution.
        let plan = FPlan::new(vec![FPlanOp::Swap(item)]);
        assert!(plan.simulate(rep.tree()).is_err());
        let mut rep = rep;
        assert!(plan.execute(&mut rep).is_err());
    }

    #[test]
    fn empty_plan_is_identity() {
        let rep = sample_rep();
        let plan = FPlan::empty();
        assert!(plan.is_empty());
        let final_tree = plan.final_tree(rep.tree()).unwrap();
        assert_eq!(final_tree.canonical_key(), rep.tree().canonical_key());
    }

    #[test]
    fn fused_execution_matches_the_stepwise_oracle() {
        let rep = sample_rep();
        let oid = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let supplier = rep.tree().node_of_attr(AttrId(3)).unwrap();
        // A multi-step structural segment followed by a barrier and another
        // structural step.
        let plan = FPlan::new(vec![
            FPlanOp::Swap(oid),
            FPlanOp::Normalise,
            FPlanOp::SelectConst {
                attr: AttrId(3),
                op: ComparisonOp::Ge,
                value: Value::new(7),
            },
            FPlanOp::Swap(supplier),
        ]);
        let mut fused = rep.clone();
        let mut stepwise = rep;
        plan.execute(&mut fused).unwrap();
        plan.execute_stepwise(&mut stepwise).unwrap();
        fused.validate().unwrap();
        assert!(
            fused.store_identical(&stepwise),
            "fused:\n{}\nstepwise:\n{}",
            fused.dump_store(),
            stepwise.dump_store()
        );
    }

    #[test]
    fn peephole_drops_redundant_normalise_and_identity_projection() {
        let rep = sample_rep();
        let oid = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let item = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let supplier_node = rep.tree().node_of_attr(AttrId(3)).unwrap();
        let plan = FPlan::new(vec![
            // The sample tree is normalised: an immediate Normalise is a
            // data no-op.
            FPlanOp::Normalise,
            FPlanOp::Swap(oid),
            // Absorb normalises internally; the trailing Normalise is
            // redundant.
            FPlanOp::Absorb(oid, item),
            FPlanOp::Normalise,
            // Identity projection keeps every attribute.
            FPlanOp::Project(attrs(&[0, 1, 2, 3])),
            FPlanOp::Project(attrs(&[1, 3])),
        ]);
        let simplified = plan.simplified(rep.tree());
        assert_eq!(
            simplified.ops,
            vec![
                FPlanOp::Swap(oid),
                FPlanOp::Absorb(oid, item),
                FPlanOp::Project(attrs(&[1, 3])),
            ]
        );
        // Same result either way, bit for bit.
        let mut fused = rep.clone();
        let mut stepwise = rep;
        plan.execute(&mut fused).unwrap();
        plan.execute_stepwise(&mut stepwise).unwrap();
        assert!(fused.store_identical(&stepwise));
        let _ = supplier_node;
    }

    #[test]
    fn peephole_keeps_failing_suffixes_verbatim() {
        let rep = sample_rep();
        let item = rep.tree().node_of_attr(AttrId(0)).unwrap();
        // Swapping the root fails; the invalid op and its suffix survive
        // simplification so execution reports the error.
        let plan = FPlan::new(vec![FPlanOp::Swap(item), FPlanOp::Normalise]);
        let simplified = plan.simplified(rep.tree());
        assert_eq!(simplified.ops, plan.ops);
        let mut rep = rep;
        assert!(plan.execute(&mut rep).is_err());
    }

    #[test]
    fn aggregate_sink_matches_execute_then_aggregate() {
        let rep = sample_rep();
        let oid = rep.tree().node_of_attr(AttrId(1)).unwrap();
        // Barrier in the middle, structural segment at the end: the sink
        // must run the tail on the overlay.
        let plan = FPlan::new(vec![
            FPlanOp::SelectConst {
                attr: AttrId(3),
                op: ComparisonOp::Ge,
                value: Value::new(7),
            },
            FPlanOp::Swap(oid),
            FPlanOp::Normalise,
        ]);
        let mut executed = rep.clone();
        plan.execute(&mut executed).unwrap();
        for kind in [
            AggregateKind::Count,
            AggregateKind::Sum(AttrId(1)),
            AggregateKind::Min(AttrId(3)),
            AggregateKind::Avg(AttrId(0)),
        ] {
            let expected = aggregate::evaluate(&executed, kind, &[]).unwrap();
            let (got, on_overlay) = plan.execute_aggregate(&rep, kind, &[]).unwrap();
            assert!(
                on_overlay,
                "trailing structural segment runs on the overlay"
            );
            assert_eq!(got, expected, "{kind}");
        }
        // Grouping by the executed tree's root attribute.
        let root = executed.tree().roots()[0];
        let group = *executed
            .tree()
            .visible_attrs(root)
            .iter()
            .next()
            .expect("root has a visible attribute");
        let expected = aggregate::evaluate(&executed, AggregateKind::Count, &[group]).unwrap();
        let (got, _) = plan
            .execute_aggregate(&rep, AggregateKind::Count, &[group])
            .unwrap();
        assert_eq!(got, expected);
        // The borrowed input is untouched by the sink.
        assert!(rep.store_identical(&sample_rep()));
    }

    #[test]
    fn aggregate_sink_consumes_trailing_barriers_on_the_overlay() {
        // A selection-then-aggregate plan: the selection folds into the
        // aggregate accumulation as an entry filter — no arena, no clone.
        let rep = sample_rep();
        let plan = FPlan::new(vec![FPlanOp::SelectConst {
            attr: AttrId(0),
            op: ComparisonOp::Eq,
            value: Value::new(1),
        }]);
        let mut executed = rep.clone();
        plan.execute(&mut executed).unwrap();
        for kind in [
            AggregateKind::Count,
            AggregateKind::Sum(AttrId(1)),
            AggregateKind::Min(AttrId(3)),
        ] {
            let expected = aggregate::evaluate(&executed, kind, &[]).unwrap();
            let (got, on_overlay) = plan.execute_aggregate(&rep, kind, &[]).unwrap();
            assert!(on_overlay, "trailing selections fold into the sink");
            assert_eq!(got, expected, "{kind}");
        }
        // Only the empty plan falls back to the plain arena pass.
        let (_, on_overlay) = FPlan::empty()
            .execute_aggregate(&rep, AggregateKind::Count, &[])
            .unwrap();
        assert!(!on_overlay, "the empty plan aggregates on the arena");
        // The borrowed input is untouched.
        assert!(rep.store_identical(&sample_rep()));
    }

    #[test]
    fn segmented_baseline_matches_the_other_paths() {
        let rep = sample_rep();
        let oid = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let plan = FPlan::new(vec![
            FPlanOp::Swap(oid),
            FPlanOp::Normalise,
            FPlanOp::SelectConst {
                attr: AttrId(3),
                op: ComparisonOp::Ge,
                value: Value::new(7),
            },
            FPlanOp::Project(attrs(&[1, 3])),
        ]);
        let mut fused = rep.clone();
        let mut segmented = rep.clone();
        let mut stepwise = rep;
        plan.execute(&mut fused).unwrap();
        plan.execute_segmented(&mut segmented).unwrap();
        plan.execute_stepwise(&mut stepwise).unwrap();
        assert!(fused.store_identical(&segmented));
        assert!(segmented.store_identical(&stepwise));
    }

    #[test]
    fn fusion_counters_reflect_the_whole_plan() {
        let oid = NodeId(1);
        let plan = FPlan::new(vec![
            FPlanOp::Swap(oid),
            FPlanOp::Normalise,
            FPlanOp::SelectConst {
                attr: AttrId(3),
                op: ComparisonOp::Eq,
                value: Value::new(7),
            },
            FPlanOp::Swap(oid),
            FPlanOp::Project(attrs(&[1])),
            FPlanOp::Normalise,
        ]);
        assert!(plan.fuses());
        assert_eq!(plan.barrier_count(), 2);
        assert_eq!(plan.arenas_skipped(), 5, "six ops, one emission");
        // Single single-pass operators do not fuse…
        assert!(!FPlan::new(vec![FPlanOp::Swap(oid)]).fuses());
        assert_eq!(FPlan::new(vec![FPlanOp::Swap(oid)]).arenas_skipped(), 0);
        assert!(!FPlan::new(vec![FPlanOp::SelectConst {
            attr: AttrId(3),
            op: ComparisonOp::Eq,
            value: Value::new(7),
        }])
        .fuses());
        // …but single internally multi-pass operators do.
        assert!(FPlan::new(vec![FPlanOp::Normalise]).fuses());
        assert!(FPlan::new(vec![FPlanOp::Project(attrs(&[1]))]).fuses());
        assert!(!FPlan::empty().fuses());
        assert_eq!(FPlan::empty().arenas_skipped(), 0);
    }

    #[test]
    fn peephole_merges_adjacent_mark_only_projections() {
        // sample_rep: item{0,2} → (oid{1}, supplier{3}); keeping {0,2,1}
        // only marks supplier's attribute?  No — supplier{3} would lose its
        // only attribute.  Keep {0,1,3} instead: item keeps 0, drops 2 —
        // every node still has a visible attribute, so the projection is
        // mark-only and merges with the next one.
        let rep = sample_rep();
        let plan = FPlan::new(vec![
            FPlanOp::Project(attrs(&[0, 1, 3])),
            FPlanOp::Project(attrs(&[0, 1])),
        ]);
        let simplified = plan.simplified(rep.tree());
        assert_eq!(
            simplified.ops,
            vec![FPlanOp::Project(attrs(&[0, 1]))],
            "adjacent projections merge into the intersection"
        );
        // Bit-for-bit: merged execution equals the sequential step-wise run.
        let mut fused = rep.clone();
        let mut stepwise = rep;
        plan.execute(&mut fused).unwrap();
        plan.execute_stepwise(&mut stepwise).unwrap();
        assert!(fused.store_identical(&stepwise));
    }

    #[test]
    fn peephole_keeps_node_removing_projection_chains() {
        // Keeping {1,3} removes the item node's attributes entirely on both
        // nodes?  item{0,2} loses everything → the first projection removes
        // nodes, so the pair must NOT merge.
        let rep = sample_rep();
        let plan = FPlan::new(vec![
            FPlanOp::Project(attrs(&[1, 3])),
            FPlanOp::Project(attrs(&[1])),
        ]);
        let simplified = plan.simplified(rep.tree());
        assert_eq!(simplified.ops.len(), 2, "node-removing projections stay");
        let mut fused = rep.clone();
        let mut stepwise = rep;
        plan.execute(&mut fused).unwrap();
        plan.execute_stepwise(&mut stepwise).unwrap();
        assert!(fused.store_identical(&stepwise));
    }

    #[test]
    fn peephole_drops_selections_made_total_by_an_earlier_binding() {
        let rep = sample_rep();
        let select = |op: ComparisonOp, value: u64| FPlanOp::SelectConst {
            attr: AttrId(0),
            op,
            value: Value::new(value),
        };
        let plan = FPlan::new(vec![
            select(ComparisonOp::Eq, 1),
            // The node is now bound to 1: repeats and implied ranges are
            // total and drop…
            select(ComparisonOp::Eq, 1),
            select(ComparisonOp::Ge, 1),
            select(ComparisonOp::Ne, 5),
            // …but a contradicted predicate empties the data and stays.
            select(ComparisonOp::Eq, 2),
        ]);
        let simplified = plan.simplified(rep.tree());
        assert_eq!(
            simplified.ops,
            vec![select(ComparisonOp::Eq, 1), select(ComparisonOp::Eq, 2)]
        );
        let mut fused = rep.clone();
        let mut stepwise = rep;
        plan.execute(&mut fused).unwrap();
        plan.execute_stepwise(&mut stepwise).unwrap();
        assert!(fused.store_identical(&stepwise));
        assert!(fused.represents_empty());
    }
}
