//! F-plans: sequences of f-plan operators.
//!
//! Operators are described at the schema level (node identifiers of the
//! input f-tree, attribute identifiers for selections and projections).  The
//! same plan can be *simulated* on an f-tree alone (used by the optimisers
//! to cost candidate plans without touching data) or *executed* on an
//! f-representation (which transforms both the data and its tree).
//!
//! # Fused execution
//!
//! [`FPlan::execute`] does not run the operators one at a time.  The op list
//! is split into *segments* at fusion barriers — selections with constants
//! and projections, whose data-level effect is value-dependent — and every
//! multi-step run of structural operators between two barriers executes as
//! a **single arena pass** through [`fdb_frep::ops::fuse`], materialising no
//! intermediate arenas.  Before segmentation the plan is peephole-simplified
//! against a simulated f-tree ([`FPlan::simplified`]): normalisations of an
//! already-normalised tree (e.g. the `Normalise` after an `Absorb`, which
//! normalises internally) and identity projections are data no-ops and are
//! dropped.  The pre-fusion operator-at-a-time path survives as
//! [`FPlan::execute_stepwise`] — the oracle the randomized equivalence suite
//! compares fused execution against, bit for bit.

use fdb_common::{AttrId, ComparisonOp, FdbError, Result, Value};
use fdb_frep::ops::FusedOp;
use fdb_frep::{aggregate, ops, AggregateKind, AggregateResult, FRep};
use fdb_ftree::{FTree, NodeId};
use std::collections::BTreeSet;
use std::fmt;

/// One f-plan operator.
#[derive(Clone, Debug, PartialEq)]
pub enum FPlanOp {
    /// Push-up `ψ_B`: lift `node` above its parent.
    PushUp(NodeId),
    /// Normalisation `η`: push up nodes until the tree is normalised.
    Normalise,
    /// Swap `χ`: exchange `node` with its parent.
    Swap(NodeId),
    /// Merge `µ`: fuse the two sibling nodes (enforces equality of their
    /// classes); the first node survives.
    Merge(NodeId, NodeId),
    /// Absorb `α`: fuse the descendant (second) node into the ancestor
    /// (first) node, then normalise.
    Absorb(NodeId, NodeId),
    /// Selection with a constant `σ_{A θ c}`.
    SelectConst {
        /// Attribute compared against the constant.
        attr: AttrId,
        /// Comparison operator.
        op: ComparisonOp,
        /// The constant.
        value: Value,
    },
    /// Projection `π` onto the given attributes.
    Project(BTreeSet<AttrId>),
}

impl fmt::Display for FPlanOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FPlanOp::PushUp(n) => write!(f, "ψ({n})"),
            FPlanOp::Normalise => write!(f, "η"),
            FPlanOp::Swap(n) => write!(f, "χ({n})"),
            FPlanOp::Merge(a, b) => write!(f, "µ({a},{b})"),
            FPlanOp::Absorb(a, b) => write!(f, "α({a},{b})"),
            FPlanOp::SelectConst { attr, op, value } => write!(f, "σ({attr} {op:?} {value})"),
            FPlanOp::Project(attrs) => write!(f, "π({} attrs)", attrs.len()),
        }
    }
}

impl FPlanOp {
    /// Applies the operator to an f-tree only (schema-level simulation).
    pub fn apply_to_tree(&self, tree: &mut FTree) -> Result<()> {
        match self {
            FPlanOp::PushUp(n) => tree.push_up(*n),
            FPlanOp::Normalise => {
                tree.normalise();
                Ok(())
            }
            FPlanOp::Swap(n) => tree.swap_with_parent(*n).map(|_| ()),
            FPlanOp::Merge(a, b) => tree.merge_siblings(*a, *b).map(|_| ()),
            FPlanOp::Absorb(a, b) => {
                tree.absorb_into_ancestor(*a, *b)?;
                tree.normalise();
                Ok(())
            }
            FPlanOp::SelectConst { attr, op, value } => {
                let Some(node) = tree.node_of_attr(*attr) else {
                    return Err(FdbError::AttributeNotInQuery {
                        attr: format!("{attr}"),
                    });
                };
                if *op == ComparisonOp::Eq {
                    tree.bind_constant(node, *value)?;
                }
                Ok(())
            }
            FPlanOp::Project(keep) => {
                let all = tree.all_attrs();
                let marked: BTreeSet<AttrId> = all.difference(keep).copied().collect();
                tree.mark_attrs_projected(&marked);
                // Schema-level projection: repeatedly drop exhausted leaves;
                // fully-projected inner nodes are kept (they would be swapped
                // to leaves during execution, which does not change s(T) for
                // the worse).
                loop {
                    let removable = tree.removable_projected_leaves();
                    if removable.is_empty() {
                        break;
                    }
                    for leaf in removable {
                        tree.remove_projected_leaf(leaf)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Executes the operator on an f-representation (data level).
    pub fn execute(&self, rep: &mut FRep) -> Result<()> {
        match self {
            FPlanOp::PushUp(n) => ops::push_up(rep, *n),
            FPlanOp::Normalise => ops::normalise(rep).map(|_| ()),
            FPlanOp::Swap(n) => ops::swap(rep, *n).map(|_| ()),
            FPlanOp::Merge(a, b) => ops::merge(rep, *a, *b).map(|_| ()),
            FPlanOp::Absorb(a, b) => ops::absorb(rep, *a, *b).map(|_| ()),
            FPlanOp::SelectConst { attr, op, value } => ops::select_const(rep, *attr, *op, *value),
            FPlanOp::Project(keep) => ops::project(rep, keep),
        }
    }

    /// The fusable-step form of this operator, or `None` for a fusion
    /// barrier (selections with constants and projections).
    pub fn as_fused(&self) -> Option<FusedOp> {
        match self {
            FPlanOp::PushUp(n) => Some(FusedOp::PushUp(*n)),
            FPlanOp::Normalise => Some(FusedOp::Normalise),
            FPlanOp::Swap(n) => Some(FusedOp::Swap(*n)),
            FPlanOp::Merge(a, b) => Some(FusedOp::Merge(*a, *b)),
            FPlanOp::Absorb(a, b) => Some(FusedOp::Absorb(*a, *b)),
            FPlanOp::SelectConst { .. } | FPlanOp::Project(_) => None,
        }
    }
}

/// A sequence of f-plan operators.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FPlan {
    /// The operators, in execution order.
    pub ops: Vec<FPlanOp>,
}

impl FPlan {
    /// The empty plan (the identity transformation).
    pub fn empty() -> Self {
        FPlan { ops: Vec::new() }
    }

    /// Creates a plan from a list of operators.
    pub fn new(ops: Vec<FPlanOp>) -> Self {
        FPlan { ops }
    }

    /// Number of operators in the plan.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the plan has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends an operator.
    pub fn push(&mut self, op: FPlanOp) {
        self.ops.push(op);
    }

    /// Appends all operators of another plan.
    pub fn extend(&mut self, other: FPlan) {
        self.ops.extend(other.ops);
    }

    /// Simulates the plan on a copy of the given f-tree, returning every
    /// intermediate tree (including the input as the first element and the
    /// final tree as the last).
    pub fn simulate(&self, tree: &FTree) -> Result<Vec<FTree>> {
        let mut trees = Vec::with_capacity(self.ops.len() + 1);
        let mut current = tree.clone();
        trees.push(current.clone());
        for op in &self.ops {
            op.apply_to_tree(&mut current)?;
            trees.push(current.clone());
        }
        Ok(trees)
    }

    /// Returns the final f-tree after simulating the plan.
    pub fn final_tree(&self, tree: &FTree) -> Result<FTree> {
        let mut current = tree.clone();
        for op in &self.ops {
            op.apply_to_tree(&mut current)?;
        }
        Ok(current)
    }

    /// Executes the plan on the representation, transforming it in place.
    ///
    /// The plan is peephole-simplified ([`FPlan::simplified`]) and split into
    /// segments at fusion barriers; every structural segment that would pay
    /// more than one arena pass on the step-wise path (two or more steps, or
    /// a single internally multi-pass normalise/absorb) runs as one fused
    /// pass.  The output arena is bit-for-bit identical to
    /// [`FPlan::execute_stepwise`]; the only observable difference is on
    /// error, where a failing fused segment leaves the representation at the
    /// segment boundary instead of at the failing operator.
    pub fn execute(&self, rep: &mut FRep) -> Result<()> {
        self.simplified(rep.tree()).execute_presimplified(rep)
    }

    /// The segmentation half of [`FPlan::execute`], without the peephole
    /// pass — for callers that already hold a simplified plan (the engine
    /// simplifies once, reads [`FPlan::fused_segment_count`] off it for its
    /// stats, then executes it through this).
    pub fn execute_presimplified(&self, rep: &mut FRep) -> Result<()> {
        let mut segment: Vec<FusedOp> = Vec::new();
        for op in &self.ops {
            match op.as_fused() {
                Some(fused) => segment.push(fused),
                None => {
                    flush_segment(rep, &mut segment)?;
                    op.execute(rep)?;
                }
            }
        }
        flush_segment(rep, &mut segment)
    }

    /// Executes the plan operator by operator — the pre-fusion PR 2 path,
    /// kept as the oracle for the fused executor's equivalence tests and
    /// benchmarks.
    pub fn execute_stepwise(&self, rep: &mut FRep) -> Result<()> {
        for op in &self.ops {
            op.execute(rep)?;
        }
        Ok(())
    }

    /// Executes the plan into an **aggregate sink**: the prefix up to and
    /// including the last fusion barrier runs exactly like
    /// [`FPlan::execute`], but the trailing structural segment is applied
    /// only to the fused overlay and the aggregate is folded over the
    /// overlay itself ([`ops::execute_fused_aggregate`]) — the final arena
    /// is never frozen, because an aggregate consumer has no use for it.
    ///
    /// The input is borrowed and never modified; a working copy is cloned
    /// lazily at the first barrier, so a purely structural plan — the
    /// common shape for aggregate queries over factorised input — touches
    /// the input arena read-only and pays **no copy at all**.  Returns the
    /// aggregate result and whether the sink ran on the overlay (`false`
    /// when the plan ends in a barrier or is empty, in which case the
    /// aggregate is a flat pass over the last-barrier arena).
    pub fn execute_aggregate(
        &self,
        rep: &FRep,
        kind: AggregateKind,
        group_by: Option<AttrId>,
    ) -> Result<(AggregateResult, bool)> {
        self.simplified(rep.tree())
            .execute_aggregate_presimplified(rep, kind, group_by)
    }

    /// The sink half of [`FPlan::execute_aggregate`], without the peephole
    /// pass — for callers that already hold a simplified plan (the engine
    /// simplifies once, reads [`FPlan::fused_segment_count`] off it, then
    /// executes it through this).
    pub fn execute_aggregate_presimplified(
        &self,
        rep: &FRep,
        kind: AggregateKind,
        group_by: Option<AttrId>,
    ) -> Result<(AggregateResult, bool)> {
        let mut owned: Option<FRep> = None;
        let mut segment: Vec<FusedOp> = Vec::new();
        for op in &self.ops {
            match op.as_fused() {
                Some(fused) => segment.push(fused),
                None => {
                    let target = owned.get_or_insert_with(|| rep.clone());
                    flush_segment(target, &mut segment)?;
                    op.execute(target)?;
                }
            }
        }
        let current = owned.as_ref().unwrap_or(rep);
        if segment.is_empty() {
            return Ok((aggregate::evaluate(current, kind, group_by)?, false));
        }
        let result = ops::execute_fused_aggregate(current, &segment, kind, group_by)?;
        Ok((result, true))
    }

    /// Peephole simplification against a simulated f-tree: drops operators
    /// whose data-level effect is the identity — `Normalise` when the tree
    /// is already normalised at that point of the plan (so consecutive
    /// normalisations, and the common `Absorb; Normalise` double
    /// normalisation, collapse) and projections that keep every attribute.
    /// If simulation fails at some operator, that operator and everything
    /// after it are kept verbatim so execution reports the error faithfully.
    pub fn simplified(&self, tree: &FTree) -> FPlan {
        let mut cur = tree.clone();
        let mut out = Vec::with_capacity(self.ops.len());
        for (i, op) in self.ops.iter().enumerate() {
            let keep = match op {
                FPlanOp::Normalise => {
                    let mut probe = cur.clone();
                    !probe.normalise().is_empty()
                }
                FPlanOp::Project(keep_attrs) => {
                    cur.all_attrs().difference(keep_attrs).next().is_some()
                }
                _ => true,
            };
            if !keep {
                continue;
            }
            if op.apply_to_tree(&mut cur).is_err() {
                // Simulation failed: stop simplifying here so execution
                // surfaces the same error at the same operator.
                out.extend(self.ops[i..].iter().cloned());
                return FPlan { ops: out };
            }
            out.push(op.clone());
        }
        FPlan { ops: out }
    }

    /// Number of multi-step structural segments this op list fuses into
    /// single arena passes.  Counted on the plan as given; since
    /// [`FPlan::execute`] simplifies first, call this on
    /// [`FPlan::simplified`] output for the exact executed count.
    pub fn fused_segment_count(&self) -> usize {
        let mut count = 0;
        let mut run: Vec<FusedOp> = Vec::new();
        for op in &self.ops {
            match op.as_fused() {
                Some(fused) => run.push(fused),
                None => {
                    count += usize::from(segment_fuses(&run));
                    run.clear();
                }
            }
        }
        count + usize::from(segment_fuses(&run))
    }
}

/// The fusion criterion, shared between execution ([`flush_segment`]) and
/// the [`FPlan::fused_segment_count`] stat: a structural run executes as one
/// fused pass when the step-wise path would pay more than one arena pass —
/// two or more steps, or a single internally multi-pass normalise/absorb.
fn segment_fuses(segment: &[FusedOp]) -> bool {
    segment.len() >= 2
        || matches!(
            segment.first(),
            Some(FusedOp::Normalise | FusedOp::Absorb(_, _))
        )
}

/// Executes and clears a pending structural segment: fused when
/// [`segment_fuses`] says so, as the single step-wise operator otherwise.
fn flush_segment(rep: &mut FRep, segment: &mut Vec<FusedOp>) -> Result<()> {
    if segment.is_empty() {
        return Ok(());
    }
    let result = if segment_fuses(segment) {
        ops::execute_fused(rep, segment)
    } else {
        match segment[0] {
            FusedOp::PushUp(n) => ops::push_up(rep, n),
            FusedOp::Swap(n) => ops::swap(rep, n).map(|_| ()),
            FusedOp::Merge(a, b) => ops::merge(rep, a, b).map(|_| ()),
            FusedOp::Normalise | FusedOp::Absorb(_, _) => unreachable!("multi-pass handled above"),
        }
    };
    segment.clear();
    result
}

impl fmt::Display for FPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.ops.iter().map(|op| op.to_string()).collect();
        write!(f, "[{}]", parts.join(" ; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_frep::{Entry, Union};
    use fdb_ftree::DepEdge;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// item{0,2} → (oid{1}, supplier{3}) over Orders{1,0} and Produce{3,2},
    /// already merged on item — a mini version of the paper's T5.
    fn sample_rep() -> FRep {
        let edges = vec![
            DepEdge::new("Orders", attrs(&[0, 1]), 3),
            DepEdge::new("Produce", attrs(&[2, 3]), 3),
        ];
        let mut tree = FTree::new(edges);
        let item = tree.add_node(attrs(&[0, 2]), None).unwrap();
        let oid = tree.add_node(attrs(&[1]), Some(item)).unwrap();
        let supplier = tree.add_node(attrs(&[3]), Some(item)).unwrap();
        let entry = |v: u64, oids: &[u64], sups: &[u64]| Entry {
            value: Value::new(v),
            children: vec![
                Union::new(
                    oid,
                    oids.iter().map(|&x| Entry::leaf(Value::new(x))).collect(),
                ),
                Union::new(
                    supplier,
                    sups.iter().map(|&x| Entry::leaf(Value::new(x))).collect(),
                ),
            ],
        };
        let u = Union::new(
            item,
            vec![entry(1, &[10, 11], &[7]), entry(2, &[12], &[7, 8])],
        );
        FRep::from_parts(tree, vec![u]).unwrap()
    }

    #[test]
    fn simulate_and_execute_stay_consistent() {
        let rep = sample_rep();
        let oid = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let plan = FPlan::new(vec![
            FPlanOp::Swap(oid),
            FPlanOp::SelectConst {
                attr: AttrId(3),
                op: ComparisonOp::Eq,
                value: Value::new(7),
            },
            FPlanOp::Project(attrs(&[1, 3])),
        ]);
        // Schema-level simulation.
        let trees = plan.simulate(rep.tree()).unwrap();
        assert_eq!(trees.len(), 4);
        let final_tree = plan.final_tree(rep.tree()).unwrap();
        assert_eq!(
            trees.last().unwrap().canonical_key(),
            final_tree.canonical_key()
        );
        // Data-level execution ends up over the same tree shape.
        let mut executed = rep.clone();
        plan.execute(&mut executed).unwrap();
        executed.validate().unwrap();
        assert_eq!(
            executed.visible_attrs(),
            vec![AttrId(1), AttrId(3)],
            "projection kept only oid and supplier"
        );
    }

    #[test]
    fn plan_display_is_readable() {
        let plan = FPlan::new(vec![FPlanOp::Normalise, FPlanOp::Swap(NodeId(1))]);
        let text = plan.to_string();
        assert!(text.contains("η"));
        assert!(text.contains("χ(n1)"));
    }

    #[test]
    fn invalid_operator_is_reported() {
        let rep = sample_rep();
        let item = rep.tree().node_of_attr(AttrId(0)).unwrap();
        // Swapping a root is invalid both in simulation and execution.
        let plan = FPlan::new(vec![FPlanOp::Swap(item)]);
        assert!(plan.simulate(rep.tree()).is_err());
        let mut rep = rep;
        assert!(plan.execute(&mut rep).is_err());
    }

    #[test]
    fn empty_plan_is_identity() {
        let rep = sample_rep();
        let plan = FPlan::empty();
        assert!(plan.is_empty());
        let final_tree = plan.final_tree(rep.tree()).unwrap();
        assert_eq!(final_tree.canonical_key(), rep.tree().canonical_key());
    }

    #[test]
    fn fused_execution_matches_the_stepwise_oracle() {
        let rep = sample_rep();
        let oid = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let supplier = rep.tree().node_of_attr(AttrId(3)).unwrap();
        // A multi-step structural segment followed by a barrier and another
        // structural step.
        let plan = FPlan::new(vec![
            FPlanOp::Swap(oid),
            FPlanOp::Normalise,
            FPlanOp::SelectConst {
                attr: AttrId(3),
                op: ComparisonOp::Ge,
                value: Value::new(7),
            },
            FPlanOp::Swap(supplier),
        ]);
        let mut fused = rep.clone();
        let mut stepwise = rep;
        plan.execute(&mut fused).unwrap();
        plan.execute_stepwise(&mut stepwise).unwrap();
        fused.validate().unwrap();
        assert!(
            fused.store_identical(&stepwise),
            "fused:\n{}\nstepwise:\n{}",
            fused.dump_store(),
            stepwise.dump_store()
        );
    }

    #[test]
    fn peephole_drops_redundant_normalise_and_identity_projection() {
        let rep = sample_rep();
        let oid = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let item = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let supplier_node = rep.tree().node_of_attr(AttrId(3)).unwrap();
        let plan = FPlan::new(vec![
            // The sample tree is normalised: an immediate Normalise is a
            // data no-op.
            FPlanOp::Normalise,
            FPlanOp::Swap(oid),
            // Absorb normalises internally; the trailing Normalise is
            // redundant.
            FPlanOp::Absorb(oid, item),
            FPlanOp::Normalise,
            // Identity projection keeps every attribute.
            FPlanOp::Project(attrs(&[0, 1, 2, 3])),
            FPlanOp::Project(attrs(&[1, 3])),
        ]);
        let simplified = plan.simplified(rep.tree());
        assert_eq!(
            simplified.ops,
            vec![
                FPlanOp::Swap(oid),
                FPlanOp::Absorb(oid, item),
                FPlanOp::Project(attrs(&[1, 3])),
            ]
        );
        // Same result either way, bit for bit.
        let mut fused = rep.clone();
        let mut stepwise = rep;
        plan.execute(&mut fused).unwrap();
        plan.execute_stepwise(&mut stepwise).unwrap();
        assert!(fused.store_identical(&stepwise));
        let _ = supplier_node;
    }

    #[test]
    fn peephole_keeps_failing_suffixes_verbatim() {
        let rep = sample_rep();
        let item = rep.tree().node_of_attr(AttrId(0)).unwrap();
        // Swapping the root fails; the invalid op and its suffix survive
        // simplification so execution reports the error.
        let plan = FPlan::new(vec![FPlanOp::Swap(item), FPlanOp::Normalise]);
        let simplified = plan.simplified(rep.tree());
        assert_eq!(simplified.ops, plan.ops);
        let mut rep = rep;
        assert!(plan.execute(&mut rep).is_err());
    }

    #[test]
    fn aggregate_sink_matches_execute_then_aggregate() {
        let rep = sample_rep();
        let oid = rep.tree().node_of_attr(AttrId(1)).unwrap();
        // Barrier in the middle, structural segment at the end: the sink
        // must run the tail on the overlay.
        let plan = FPlan::new(vec![
            FPlanOp::SelectConst {
                attr: AttrId(3),
                op: ComparisonOp::Ge,
                value: Value::new(7),
            },
            FPlanOp::Swap(oid),
            FPlanOp::Normalise,
        ]);
        let mut executed = rep.clone();
        plan.execute(&mut executed).unwrap();
        for kind in [
            AggregateKind::Count,
            AggregateKind::Sum(AttrId(1)),
            AggregateKind::Min(AttrId(3)),
            AggregateKind::Avg(AttrId(0)),
        ] {
            let expected = aggregate::evaluate(&executed, kind, None).unwrap();
            let (got, on_overlay) = plan.execute_aggregate(&rep, kind, None).unwrap();
            assert!(
                on_overlay,
                "trailing structural segment runs on the overlay"
            );
            assert_eq!(got, expected, "{kind}");
        }
        // Grouping by the executed tree's root attribute.
        let root = executed.tree().roots()[0];
        let group = *executed
            .tree()
            .visible_attrs(root)
            .iter()
            .next()
            .expect("root has a visible attribute");
        let expected = aggregate::evaluate(&executed, AggregateKind::Count, Some(group)).unwrap();
        let (got, _) = plan
            .execute_aggregate(&rep, AggregateKind::Count, Some(group))
            .unwrap();
        assert_eq!(got, expected);
        // The borrowed input is untouched by the sink.
        assert!(rep.store_identical(&sample_rep()));
    }

    #[test]
    fn aggregate_sink_falls_back_to_the_arena_after_a_trailing_barrier() {
        let rep = sample_rep();
        let plan = FPlan::new(vec![FPlanOp::SelectConst {
            attr: AttrId(0),
            op: ComparisonOp::Eq,
            value: Value::new(1),
        }]);
        let mut executed = rep.clone();
        plan.execute(&mut executed).unwrap();
        let expected = aggregate::evaluate(&executed, AggregateKind::Count, None).unwrap();
        let (got, on_overlay) = plan
            .execute_aggregate(&rep, AggregateKind::Count, None)
            .unwrap();
        assert!(!on_overlay, "plan ends in a barrier: plain arena pass");
        assert_eq!(got, expected);
    }

    #[test]
    fn fused_segment_count_reflects_barriers() {
        let oid = NodeId(1);
        let plan = FPlan::new(vec![
            FPlanOp::Swap(oid),
            FPlanOp::Normalise, // segment 1 (2 steps)
            FPlanOp::SelectConst {
                attr: AttrId(3),
                op: ComparisonOp::Eq,
                value: Value::new(7),
            },
            FPlanOp::Swap(oid), // single swap: not a fused segment
            FPlanOp::Project(attrs(&[1])),
            FPlanOp::Normalise, // single but internally multi-pass: fused
        ]);
        assert_eq!(plan.fused_segment_count(), 2);
        assert_eq!(FPlan::empty().fused_segment_count(), 0);
    }
}
