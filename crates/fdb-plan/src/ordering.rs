//! Restructure-to-root planning for `ORDER BY` and root-path `GROUP BY`.
//!
//! The 2013 follow-up paper evaluates ordering and grouping heads on a
//! factorised representation by *restructuring* its f-tree so that the
//! requested attributes form a root-to-node path: once `A₁ … Aₖ` sit on a
//! chain starting at a root, ordered enumeration falls out of the cursor's
//! slot priority ([`fdb_frep::enumerate`]) and grouped aggregation becomes
//! one descent along the path ([`fdb_frep::aggregate`]).  Restructuring is
//! a sequence of the paper's swap operators `χ`, so it is itself an f-plan
//! and has an asymptotic cost under the `s(T)` measure — and sometimes that
//! cost is *worse* than just materialising the result and sorting it flat.
//!
//! This module makes that call.  [`plan_chain_restructure`] builds the
//! candidate swap plan (lifting each requested attribute's node to the root
//! of its tree, innermost attribute first), simulates it, and compares the
//! worst intermediate tree against the input:
//!
//! * the attributes already form a root path → [`ChainStrategy::AlreadyChain`]
//!   with an empty plan;
//! * a swap plan exists whose every intermediate tree costs no more than the
//!   input (`max_intermediate ≤ s(T_in) + ε`) → [`ChainStrategy::Restructure`]
//!   with the plan;
//! * no chain is achievable (the attributes span independent trees, a swap
//!   is structurally impossible, or lifting one attribute drags another off
//!   the path) **or** the plan blows up an intermediate tree →
//!   [`ChainStrategy::FlatSort`]: the caller should materialise (or
//!   hash-group) and sort flat instead.
//!
//! The decision is purely schema-level — only f-trees are simulated, no
//! data is touched — so the engine can make it per query at planning time
//! and cache it with the plan.

use fdb_common::{AttrId, FdbError, Result};
use fdb_frep::order_chain;
use fdb_ftree::{s_cost, FTree};

use crate::cost::{plan_cost, FPlanCost};
use crate::fplan::{FPlan, FPlanOp};

/// Tolerance for the cost comparison (matches the optimiser's tie-break
/// epsilon in [`FPlanCost::better_than`]).
const EPS: f64 = 1e-9;

/// How the engine should satisfy an ordering / path-grouping head.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainStrategy {
    /// The attributes already form a root-to-node path in the input f-tree;
    /// no restructuring is needed.
    AlreadyChain,
    /// Apply [`ChainDecision::plan`] (a sequence of swaps) first; the
    /// attributes form a root path in the resulting tree and every
    /// intermediate tree is asymptotically no worse than the input.
    Restructure,
    /// No root-path restructuring is achievable at acceptable cost:
    /// materialise and sort (ordering) or hash-group (grouping) instead.
    FlatSort,
}

/// The outcome of [`plan_chain_restructure`].
#[derive(Clone, Debug)]
pub struct ChainDecision {
    /// The chosen strategy.
    pub strategy: ChainStrategy,
    /// The swap plan to run first ([`ChainStrategy::Restructure`] only;
    /// empty otherwise).
    pub plan: FPlan,
    /// The f-tree after `plan` (the input tree itself for
    /// [`ChainStrategy::AlreadyChain`] and [`ChainStrategy::FlatSort`]).
    pub final_tree: FTree,
    /// `s(T)` of the input tree.
    pub input_cost: f64,
    /// The candidate plan's cost, when a chain-achieving plan existed (also
    /// populated when it lost to the flat sort, for observability).
    pub restructure_cost: Option<FPlanCost>,
}

impl ChainDecision {
    fn flat(tree: &FTree, input_cost: f64, restructure_cost: Option<FPlanCost>) -> ChainDecision {
        ChainDecision {
            strategy: ChainStrategy::FlatSort,
            plan: FPlan::empty(),
            final_tree: tree.clone(),
            input_cost,
            restructure_cost,
        }
    }
}

/// Plans how to bring `attrs` onto a root-to-node path of `tree`.
///
/// `attrs` is the ordering (or grouping) head in request order: the first
/// attribute must end up at a root, each following attribute on the same
/// node or a direct child of the previous one.  Every attribute must exist
/// in the tree and be visible (not projected away); unknown or invisible
/// attributes are an [`FdbError::AttributeNotInQuery`] — a planning bug,
/// not a data condition.  An empty `attrs` trivially returns
/// [`ChainStrategy::AlreadyChain`] with an empty plan.
///
/// The candidate plan lifts each attribute's node to the root of its tree
/// with repeated swaps, **innermost (last) attribute first**, so each
/// earlier attribute's lift stacks the later ones directly beneath it.
/// Lifting can fail to produce a chain — swapping `A₀` past an unrelated
/// node makes that node a child of `A₀`, and dependent children can be
/// dragged off the path — so the chain property is re-verified on the
/// simulated final tree rather than assumed.
pub fn plan_chain_restructure(tree: &FTree, attrs: &[AttrId]) -> Result<ChainDecision> {
    let input_cost = s_cost(tree)?;
    for &attr in attrs {
        let node = tree
            .node_of_attr(attr)
            .ok_or_else(|| FdbError::AttributeNotInQuery {
                attr: format!("{attr}"),
            })?;
        if !tree.visible_attrs(node).contains(&attr) {
            return Err(FdbError::AttributeNotInQuery {
                attr: format!("{attr} (projected away)"),
            });
        }
    }
    if attrs.is_empty() || order_chain(tree, attrs).is_some() {
        return Ok(ChainDecision {
            strategy: ChainStrategy::AlreadyChain,
            plan: FPlan::empty(),
            final_tree: tree.clone(),
            input_cost,
            restructure_cost: None,
        });
    }

    // Build the candidate plan by simulation: lift the last attribute's
    // node to its root, then the one before it, and so on.  Any swap the
    // tree refuses (or a final tree without the chain) means no root-path
    // restructuring exists along this strategy — fall back to flat sort.
    let mut work = tree.clone();
    let mut ops: Vec<FPlanOp> = Vec::new();
    for &attr in attrs.iter().rev() {
        // Re-resolve on the working tree: earlier lifts may have moved it.
        let node = work
            .node_of_attr(attr)
            .expect("attr verified above; swaps never drop nodes");
        while work.parent(node).is_some() {
            let op = FPlanOp::Swap(node);
            if op.apply_to_tree(&mut work).is_err() {
                return Ok(ChainDecision::flat(tree, input_cost, None));
            }
            ops.push(op);
        }
    }
    if order_chain(&work, attrs).is_none() {
        // Lifting succeeded but dependent children were dragged between
        // the chain nodes (or the attrs span independent trees — their
        // roots can never stack).
        return Ok(ChainDecision::flat(tree, input_cost, None));
    }

    let plan = FPlan::new(ops);
    let cost = plan_cost(&plan, tree)?;
    if cost.max_intermediate <= input_cost + EPS {
        Ok(ChainDecision {
            strategy: ChainStrategy::Restructure,
            plan,
            final_tree: work,
            input_cost,
            restructure_cost: Some(cost),
        })
    } else {
        Ok(ChainDecision::flat(tree, input_cost, Some(cost)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_ftree::DepEdge;
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// A → B → C over one relation {A,B,C}: any of the three attributes can
    /// be lifted to the root for free (a path tree stays a path tree).
    fn path_tree() -> FTree {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1, 2]), 10)];
        let mut t = FTree::new(edges);
        let a = t.add_node(attrs(&[0]), None).unwrap();
        let b = t.add_node(attrs(&[1]), Some(a)).unwrap();
        t.add_node(attrs(&[2]), Some(b)).unwrap();
        t
    }

    /// Example 11 of the paper: {A,D} → (B → C, E → F) over R1{A,B,C},
    /// R2{D,E,F}; s(T) = 1.
    fn example11_tree() -> FTree {
        let edges = vec![
            DepEdge::new("R1", attrs(&[0, 1, 2]), 10),
            DepEdge::new("R2", attrs(&[3, 4, 5]), 10),
        ];
        let mut t = FTree::new(edges);
        let ad = t.add_node(attrs(&[0, 3]), None).unwrap();
        let b = t.add_node(attrs(&[1]), Some(ad)).unwrap();
        t.add_node(attrs(&[2]), Some(b)).unwrap();
        let e = t.add_node(attrs(&[4]), Some(ad)).unwrap();
        t.add_node(attrs(&[5]), Some(e)).unwrap();
        t
    }

    #[test]
    fn existing_chains_need_no_plan() {
        let t = path_tree();
        for head in [vec![], vec![AttrId(0)], vec![AttrId(0), AttrId(1)]] {
            let d = plan_chain_restructure(&t, &head).unwrap();
            assert_eq!(d.strategy, ChainStrategy::AlreadyChain, "{head:?}");
            assert!(d.plan.is_empty());
        }
    }

    #[test]
    fn lifting_within_a_path_tree_is_free() {
        let t = path_tree();
        // ORDER BY B: one swap, every intermediate tree still a path.
        let d = plan_chain_restructure(&t, &[AttrId(1)]).unwrap();
        assert_eq!(d.strategy, ChainStrategy::Restructure);
        assert_eq!(d.plan.len(), 1);
        assert!(order_chain(&d.final_tree, &[AttrId(1)]).is_some());
        // ORDER BY (B, A): B to the root, A right under it.
        let d = plan_chain_restructure(&t, &[AttrId(1), AttrId(0)]).unwrap();
        assert_eq!(d.strategy, ChainStrategy::Restructure);
        assert!(order_chain(&d.final_tree, &[AttrId(1), AttrId(0)]).is_some());
        let cost = d.restructure_cost.unwrap();
        assert!(cost.max_intermediate <= d.input_cost + EPS);
    }

    #[test]
    fn costly_lifts_fall_back_to_flat_sort() {
        // Lifting C above B in Example 11 breaks the A-D/B nesting: the
        // intermediate trees cost more than s(T_in) = 1, so the planner
        // must refuse and report the rejected plan's cost.
        let t = example11_tree();
        let d = plan_chain_restructure(&t, &[AttrId(2)]).unwrap();
        assert_eq!(d.strategy, ChainStrategy::FlatSort);
        assert!(d.plan.is_empty());
        let cost = d.restructure_cost.expect("candidate plan was costed");
        assert!(cost.max_intermediate > d.input_cost + EPS);
        // The reported final tree is the *input* tree: no plan runs.
        assert_eq!(t.canonical_key(), d.final_tree.canonical_key());
    }

    #[test]
    fn independent_trees_cannot_chain() {
        // Two unconnected relations: their roots can never stack, so an
        // ordering across both has no root path whatever we swap.
        let edges = vec![
            DepEdge::new("R1", attrs(&[0]), 10),
            DepEdge::new("R2", attrs(&[1]), 10),
        ];
        let mut t = FTree::new(edges);
        t.add_node(attrs(&[0]), None).unwrap();
        t.add_node(attrs(&[1]), None).unwrap();
        let d = plan_chain_restructure(&t, &[AttrId(0), AttrId(1)]).unwrap();
        assert_eq!(d.strategy, ChainStrategy::FlatSort);
        assert!(d.restructure_cost.is_none(), "no candidate plan exists");
    }

    #[test]
    fn unknown_and_invisible_attributes_are_rejected() {
        let t = path_tree();
        assert!(matches!(
            plan_chain_restructure(&t, &[AttrId(9)]),
            Err(FdbError::AttributeNotInQuery { .. })
        ));
    }

    #[test]
    fn class_siblings_share_a_chain_node() {
        // ORDER BY (A, D) on Example 11: both live in the root class, so
        // the chain is already there.
        let t = example11_tree();
        let d = plan_chain_restructure(&t, &[AttrId(0), AttrId(3)]).unwrap();
        assert_eq!(d.strategy, ChainStrategy::AlreadyChain);
    }

    #[test]
    fn grouping_head_reuses_the_same_planner() {
        // GROUP BY E on Example 11: E does lift to the root in one swap,
        // but the lifted tree nests {A,D} (and everything below) under E —
        // the path E → {A,D} → B → C now touches both relations and costs
        // s = 2 > s(T_in) = 1.  The honest answer is to hash-group flat.
        let t = example11_tree();
        let d = plan_chain_restructure(&t, &[AttrId(4)]).unwrap();
        assert_eq!(d.strategy, ChainStrategy::FlatSort);
        let cost = d
            .restructure_cost
            .expect("the one-swap candidate is costed");
        assert!(cost.max_intermediate > d.input_cost + EPS);
        // GROUP BY B on the path tree: the same planner says yes there.
        let t = path_tree();
        let d = plan_chain_restructure(&t, &[AttrId(1)]).unwrap();
        assert_eq!(d.strategy, ChainStrategy::Restructure);
        assert!(order_chain(&d.final_tree, &[AttrId(1)]).is_some());
    }
}
