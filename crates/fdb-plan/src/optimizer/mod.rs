//! Query optimisers for factorised data.
//!
//! * [`ftree_search`] — finds an optimal f-tree (minimum `s(T)`) for a query
//!   over *flat* relational input, searching the space of normalised f-trees
//!   by recursive decomposition with memoisation (Experiment 1).
//! * [`exhaustive`] — finds an optimal f-plan for a conjunction of equality
//!   selections over *factorised* input by running Dijkstra over the space
//!   of f-trees reachable through f-plan operators (Section 4.2).
//! * [`greedy`] — the polynomial-time heuristic that restructures only the
//!   nodes participating in selection conditions and orders the conditions
//!   by the cost of their individual plans (Section 4.3).

pub mod exhaustive;
pub mod ftree_search;
pub mod greedy;

use crate::cost::FPlanCost;
use crate::fplan::FPlan;

/// The outcome of f-plan optimisation: the chosen plan, its cost, and how
/// much of the search space was explored.
#[derive(Clone, Debug)]
pub struct OptimizedPlan {
    /// The chosen f-plan.
    pub plan: FPlan,
    /// Cost of the chosen plan under the asymptotic measure.
    pub cost: FPlanCost,
    /// Number of f-trees (states) examined by the optimiser.
    pub explored_states: usize,
}
