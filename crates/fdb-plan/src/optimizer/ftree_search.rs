//! Optimal f-tree search for queries over flat relational input.
//!
//! Given a query, the FDB optimiser must pick the f-tree over which the
//! factorised query result will be built (Experiment 1 of the paper).  The
//! space of *normalised* f-trees of a query has a convenient recursive
//! structure: pick a class as the root of a (sub)tree, and the remaining
//! classes split into connected components — two classes are connected when
//! some relation has attributes in both — each becoming an independent child
//! subtree.  (Sibling subtrees of a valid f-tree can never share a relation,
//! because the path constraint would be violated; conversely every such
//! recursive decomposition satisfies the path constraint.)
//!
//! Two observations make the search fast in practice:
//!
//! * the cost `s(T)` of a root-to-leaf path only depends on the *set of
//!   relation signatures* of the classes on the path, so classes with the
//!   same signature (the same set of covering relations) are
//!   interchangeable — the search branches over distinct signatures only;
//! * subproblems are memoised on (signature multiset of the component,
//!   signature set of the ancestors), which collapses the exponentially many
//!   orderings of same-signature classes.

use fdb_common::{Catalog, FdbError, Query, RelId, Result};
use fdb_ftree::{dep_edges_for_query, DepEdge, FTree, NodeId};
use fdb_lp::{fractional_edge_cover, CoverInstance};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The result of the optimal f-tree search.
#[derive(Clone, Debug)]
pub struct FTreeSearchResult {
    /// An f-tree of the query with minimum `s(T)`.
    pub tree: FTree,
    /// Its cost `s(T)`.
    pub cost: f64,
    /// Number of memoised subproblems solved.
    pub explored_states: usize,
}

/// Finds an f-tree of the query with minimum cost `s(T)`.
///
/// `cardinality_of` supplies relation sizes for the dependency edges (they do
/// not influence the asymptotic cost but are carried along for the
/// estimate-based cost measure and later stages).
pub fn optimal_ftree(
    catalog: &Catalog,
    query: &Query,
    cardinality_of: impl Fn(RelId) -> u64,
) -> Result<FTreeSearchResult> {
    query.validate(catalog)?;
    let classes = query.equivalence_classes(catalog);
    let edges = dep_edges_for_query(catalog, query, cardinality_of);
    if classes.is_empty() {
        return Ok(FTreeSearchResult {
            tree: FTree::new(edges),
            cost: 0.0,
            explored_states: 0,
        });
    }

    // Signature of a class: the set of relations (edge indices) with an
    // attribute in it.
    let mut sig_of_class: Vec<BTreeSet<usize>> = Vec::with_capacity(classes.len());
    for class in &classes {
        let sig: BTreeSet<usize> = edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.attrs.iter().any(|a| class.contains(a)))
            .map(|(i, _)| i)
            .collect();
        if sig.is_empty() {
            return Err(FdbError::InvalidInput {
                detail: "query class not covered by any relation".into(),
            });
        }
        sig_of_class.push(sig);
    }
    // Deduplicate signatures.
    let mut unique_sigs: Vec<BTreeSet<usize>> = Vec::new();
    let mut sig_id_of_class: Vec<usize> = Vec::with_capacity(classes.len());
    for sig in &sig_of_class {
        let id = match unique_sigs.iter().position(|s| s == sig) {
            Some(i) => i,
            None => {
                unique_sigs.push(sig.clone());
                unique_sigs.len() - 1
            }
        };
        sig_id_of_class.push(id);
    }

    let mut search = Search {
        unique_sigs: &unique_sigs,
        num_edges: edges.len(),
        memo: HashMap::new(),
        cover_cache: HashMap::new(),
    };

    let all_classes: Vec<usize> = (0..classes.len()).collect();
    let anc: BTreeSet<usize> = BTreeSet::new();
    let cost = search
        .best_forest(&all_classes, &sig_id_of_class, &anc)?
        .max;

    // Reconstruct an optimal tree from the memoised root choices.
    let mut tree = FTree::new(edges);
    search.reconstruct_forest(
        &all_classes,
        &sig_id_of_class,
        &anc,
        None,
        &classes,
        &mut tree,
    )?;
    tree.check_path_constraint()?;

    let explored_states = search.memo.len();
    Ok(FTreeSearchResult {
        tree,
        cost,
        explored_states,
    })
}

type MultisetKey = Vec<(usize, usize)>;
type AncKey = Vec<usize>;

/// Nominal database size used by the size-proxy tie-breaker: among trees
/// with the same `s(T)`, the search prefers the one whose estimated
/// representation size `Σ_nodes N^{cover(path to node)}` is smallest.
const NOMINAL_N: f64 = 100.0;

/// Cost of a (sub)forest arrangement: the maximum path cover over its nodes
/// (the primary objective — its overall maximum is `s(T)`) and the estimated
/// representation size under a nominal database size (the tie-breaker that
/// steers the search towards bushier, smaller factorisations).
#[derive(Clone, Copy, Debug, PartialEq)]
struct SubCost {
    max: f64,
    size_proxy: f64,
}

impl SubCost {
    const ZERO: SubCost = SubCost {
        max: 0.0,
        size_proxy: 0.0,
    };

    fn combine_forest(self, other: SubCost) -> SubCost {
        SubCost {
            max: self.max.max(other.max),
            size_proxy: self.size_proxy + other.size_proxy,
        }
    }

    fn better_than(self, other: SubCost) -> bool {
        if self.max + 1e-9 < other.max {
            return true;
        }
        if self.max > other.max + 1e-9 {
            return false;
        }
        self.size_proxy + 1e-6 < other.size_proxy
    }
}

struct Search<'a> {
    unique_sigs: &'a [BTreeSet<usize>],
    num_edges: usize,
    /// (component signature multiset, ancestor signature set) →
    /// (best cost, best root signature).
    memo: HashMap<(MultisetKey, AncKey), (SubCost, usize)>,
    cover_cache: HashMap<AncKey, f64>,
}

impl Search<'_> {
    /// Fractional edge cover of a set of signatures (a root-to-leaf path).
    fn cover(&mut self, sigs: &BTreeSet<usize>) -> Result<f64> {
        let key: AncKey = sigs.iter().copied().collect();
        if let Some(&c) = self.cover_cache.get(&key) {
            return Ok(c);
        }
        let mut instance = CoverInstance::new(key.len());
        for edge in 0..self.num_edges {
            let covered: Vec<usize> = key
                .iter()
                .enumerate()
                .filter(|(_, &sig)| self.unique_sigs[sig].contains(&edge))
                .map(|(i, _)| i)
                .collect();
            if !covered.is_empty() {
                instance.add_edge(covered);
            }
        }
        let cost = fractional_edge_cover(&instance)?;
        self.cover_cache.insert(key, cost);
        Ok(cost)
    }

    /// Splits the classes into connected components (two classes are
    /// connected when their signatures share a relation).
    fn components(&self, classes: &[usize], sig_id_of_class: &[usize]) -> Vec<Vec<usize>> {
        let mut remaining: Vec<usize> = classes.to_vec();
        let mut components = Vec::new();
        while let Some(seed) = remaining.pop() {
            let mut component = vec![seed];
            let mut frontier_rels: BTreeSet<usize> = self.unique_sigs[sig_id_of_class[seed]]
                .iter()
                .copied()
                .collect();
            loop {
                let (connected, rest): (Vec<usize>, Vec<usize>) =
                    remaining.into_iter().partition(|&c| {
                        self.unique_sigs[sig_id_of_class[c]]
                            .iter()
                            .any(|r| frontier_rels.contains(r))
                    });
                remaining = rest;
                if connected.is_empty() {
                    break;
                }
                for &c in &connected {
                    frontier_rels.extend(self.unique_sigs[sig_id_of_class[c]].iter().copied());
                }
                component.extend(connected);
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    fn multiset_key(&self, classes: &[usize], sig_id_of_class: &[usize]) -> MultisetKey {
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for &c in classes {
            *counts.entry(sig_id_of_class[c]).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Minimum achievable cost for arranging `classes` (a forest of
    /// independent components) below ancestors with signature set `anc`.
    fn best_forest(
        &mut self,
        classes: &[usize],
        sig_id_of_class: &[usize],
        anc: &BTreeSet<usize>,
    ) -> Result<SubCost> {
        if classes.is_empty() {
            return Ok(SubCost::ZERO);
        }
        let mut total = SubCost::ZERO;
        for component in self.components(classes, sig_id_of_class) {
            let cost = self.best_tree(&component, sig_id_of_class, anc)?;
            total = total.combine_forest(cost);
        }
        Ok(total)
    }

    /// Minimum achievable cost for arranging one connected component as a
    /// single subtree below ancestors `anc`.
    fn best_tree(
        &mut self,
        component: &[usize],
        sig_id_of_class: &[usize],
        anc: &BTreeSet<usize>,
    ) -> Result<SubCost> {
        let key = (
            self.multiset_key(component, sig_id_of_class),
            anc.iter().copied().collect::<AncKey>(),
        );
        if let Some(&(cost, _)) = self.memo.get(&key) {
            return Ok(cost);
        }
        let mut best = SubCost {
            max: f64::INFINITY,
            size_proxy: f64::INFINITY,
        };
        let mut best_root_sig = usize::MAX;
        // Branch over distinct signatures present in the component.
        let mut tried: BTreeSet<usize> = BTreeSet::new();
        for &class in component {
            let sig = sig_id_of_class[class];
            if !tried.insert(sig) {
                continue;
            }
            let rest: Vec<usize> = component.iter().copied().filter(|&c| c != class).collect();
            let mut new_anc = anc.clone();
            new_anc.insert(sig);
            let node_cover = self.cover(&new_anc)?;
            let sub = self.best_forest(&rest, sig_id_of_class, &new_anc)?;
            let cost = SubCost {
                max: node_cover.max(sub.max),
                size_proxy: NOMINAL_N.powf(node_cover) + sub.size_proxy,
            };
            if cost.better_than(best) {
                best = cost;
                best_root_sig = sig;
            }
        }
        self.memo.insert(key, (best, best_root_sig));
        Ok(best)
    }

    /// Rebuilds an optimal forest below `parent` by replaying the memoised
    /// root choices on the concrete classes.
    fn reconstruct_forest(
        &mut self,
        classes: &[usize],
        sig_id_of_class: &[usize],
        anc: &BTreeSet<usize>,
        parent: Option<NodeId>,
        class_attrs: &[BTreeSet<fdb_common::AttrId>],
        tree: &mut FTree,
    ) -> Result<()> {
        if classes.is_empty() {
            return Ok(());
        }
        for component in self.components(classes, sig_id_of_class) {
            // Ensure the component's subproblem has been solved (it always
            // has been by the preceding best_forest call, but re-solving is
            // harmless and keeps this method self-contained).
            self.best_tree(&component, sig_id_of_class, anc)?;
            let key = (
                self.multiset_key(&component, sig_id_of_class),
                anc.iter().copied().collect::<AncKey>(),
            );
            let (_, root_sig) = self.memo[&key];
            let root_class = component
                .iter()
                .copied()
                .find(|&c| sig_id_of_class[c] == root_sig)
                .expect("memoised root signature occurs in the component");
            let node = tree.add_node(class_attrs[root_class].clone(), parent)?;
            let rest: Vec<usize> = component
                .iter()
                .copied()
                .filter(|&c| c != root_class)
                .collect();
            let mut new_anc = anc.clone();
            new_anc.insert(root_sig);
            self.reconstruct_forest(
                &rest,
                sig_id_of_class,
                &new_anc,
                Some(node),
                class_attrs,
                tree,
            )?;
        }
        Ok(())
    }
}

/// Convenience wrapper: optimal f-tree plus dependency edges for a query
/// whose relation sizes are all unknown (cardinality 1).
pub fn optimal_ftree_unit_cardinalities(
    catalog: &Catalog,
    query: &Query,
) -> Result<FTreeSearchResult> {
    optimal_ftree(catalog, query, |_| 1)
}

/// Builds the dependency edges the search would use (exposed for tests and
/// for callers that want to inspect the hypergraph).
pub fn query_edges(catalog: &Catalog, query: &Query) -> Vec<DepEdge> {
    dep_edges_for_query(catalog, query, |_| 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_ftree::s_cost;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    /// The grocery catalog with the five relations of Figure 1.
    fn grocery() -> (Catalog, Vec<RelId>) {
        let mut catalog = Catalog::new();
        let (o, _) = catalog.add_relation("Orders", &["oid", "item"]);
        let (s, _) = catalog.add_relation("Store", &["location", "item"]);
        let (d, _) = catalog.add_relation("Disp", &["dispatcher", "location"]);
        let (p, _) = catalog.add_relation("Produce", &["supplier", "item"]);
        let (sv, _) = catalog.add_relation("Serve", &["supplier", "location"]);
        (catalog, vec![o, s, d, p, sv])
    }

    #[test]
    fn q1_has_optimal_cost_two() {
        // Example 5: s(Q1) = 2 for Orders ⋈ Store ⋈ Disp.
        let (catalog, rels) = grocery();
        let q1 = Query::product(vec![rels[0], rels[1], rels[2]])
            .with_equality(
                catalog.find_attr("Orders.item").unwrap(),
                catalog.find_attr("Store.item").unwrap(),
            )
            .with_equality(
                catalog.find_attr("Store.location").unwrap(),
                catalog.find_attr("Disp.location").unwrap(),
            );
        let result = optimal_ftree(&catalog, &q1, |_| 1).unwrap();
        assert!(close(result.cost, 2.0), "cost = {}", result.cost);
        assert!(close(s_cost(&result.tree).unwrap(), result.cost));
        result.tree.check_path_constraint().unwrap();
        assert_eq!(result.tree.all_attrs().len(), 6);
    }

    #[test]
    fn q2_has_optimal_cost_one() {
        // Example 5: s(Q2) = 1 for Produce ⋈_supplier Serve (f-tree T3).
        let (catalog, rels) = grocery();
        let q2 = Query::product(vec![rels[3], rels[4]]).with_equality(
            catalog.find_attr("Produce.supplier").unwrap(),
            catalog.find_attr("Serve.supplier").unwrap(),
        );
        let result = optimal_ftree(&catalog, &q2, |_| 1).unwrap();
        assert!(close(result.cost, 1.0), "cost = {}", result.cost);
        // The optimal tree groups by supplier first: the supplier class is
        // the root and item/location hang below it.
        let supplier_class_node = result
            .tree
            .node_of_attr(catalog.find_attr("Produce.supplier").unwrap())
            .unwrap();
        assert!(result.tree.parent(supplier_class_node).is_none());
        assert_eq!(result.tree.children(supplier_class_node).len(), 2);
    }

    #[test]
    fn single_relation_queries_cost_one() {
        let (catalog, rels) = grocery();
        let q = Query::product(vec![rels[0]]);
        let result = optimal_ftree(&catalog, &q, |_| 1).unwrap();
        assert!(close(result.cost, 1.0));
        assert_eq!(result.tree.node_count(), 2);
    }

    #[test]
    fn chain_queries_grow_logarithmically() {
        // Example 6: a chain of equality joins R1(A1,B1) ⋈ … has
        // s(Q_n) = Θ(log n); for n = 2 the cost is 1, for n = 4 it is 2.
        let mut catalog = Catalog::new();
        let mut rels = Vec::new();
        for i in 0..4 {
            let (r, _) = catalog.add_relation(&format!("R{i}"), &["A", "B"]);
            rels.push(r);
        }
        let attr = |i: usize, name: &str| catalog.find_attr(&format!("R{i}.{name}")).unwrap();
        // 2-chain: R0.B = R1.A.
        let q2 = Query::product(vec![rels[0], rels[1]]).with_equality(attr(0, "B"), attr(1, "A"));
        let r2 = optimal_ftree(&catalog, &q2, |_| 1).unwrap();
        assert!(close(r2.cost, 1.0), "2-chain cost = {}", r2.cost);
        // 4-chain: R0.B=R1.A, R1.B=R2.A, R2.B=R3.A.
        let q4 = Query::product(rels.clone())
            .with_equality(attr(0, "B"), attr(1, "A"))
            .with_equality(attr(1, "B"), attr(2, "A"))
            .with_equality(attr(2, "B"), attr(3, "A"));
        let r4 = optimal_ftree(&catalog, &q4, |_| 1).unwrap();
        assert!(close(r4.cost, 2.0), "4-chain cost = {}", r4.cost);
        r4.tree.check_path_constraint().unwrap();
    }

    #[test]
    fn product_of_disjoint_relations_costs_one() {
        let (catalog, rels) = grocery();
        let q = Query::product(vec![rels[0], rels[2]]);
        let result = optimal_ftree(&catalog, &q, |_| 1).unwrap();
        assert!(close(result.cost, 1.0));
        // Two independent relations give two root subtrees.
        assert_eq!(result.tree.roots().len(), 2);
    }

    #[test]
    fn triangle_query_costs_three_halves() {
        // R(A,B), S(B,C), T(C,A) joined pairwise: the fractional edge cover
        // of any root-to-leaf order of the three classes is 1.5.
        let mut catalog = Catalog::new();
        let (r, _) = catalog.add_relation("R", &["A", "B"]);
        let (s, _) = catalog.add_relation("S", &["B", "C"]);
        let (t, _) = catalog.add_relation("T", &["C", "A"]);
        let q = Query::product(vec![r, s, t])
            .with_equality(
                catalog.find_attr("R.A").unwrap(),
                catalog.find_attr("T.A").unwrap(),
            )
            .with_equality(
                catalog.find_attr("R.B").unwrap(),
                catalog.find_attr("S.B").unwrap(),
            )
            .with_equality(
                catalog.find_attr("S.C").unwrap(),
                catalog.find_attr("T.C").unwrap(),
            );
        let result = optimal_ftree(&catalog, &q, |_| 1).unwrap();
        assert!(close(result.cost, 1.5), "triangle cost = {}", result.cost);
    }

    #[test]
    fn larger_random_style_query_terminates_quickly() {
        // 6 relations of 5 attributes each (30 attributes), 5 equalities —
        // the scale of Experiment 1's mid-range settings.
        let mut catalog = Catalog::new();
        let mut rels = Vec::new();
        for i in 0..6 {
            let names: Vec<String> = (0..5).map(|j| format!("a{j}")).collect();
            let (r, _) = catalog.add_relation(&format!("R{i}"), &names);
            rels.push(r);
        }
        let attr = |i: usize, j: usize| catalog.find_attr(&format!("R{i}.a{j}")).unwrap();
        let q = Query::product(rels)
            .with_equality(attr(0, 0), attr(1, 0))
            .with_equality(attr(1, 1), attr(2, 0))
            .with_equality(attr(2, 1), attr(3, 0))
            .with_equality(attr(0, 1), attr(4, 0))
            .with_equality(attr(4, 1), attr(5, 0));
        let result = optimal_ftree(&catalog, &q, |_| 1).unwrap();
        assert!(result.cost >= 1.0 && result.cost <= 3.0);
        assert_eq!(result.tree.all_attrs().len(), 30);
        result.tree.check_path_constraint().unwrap();
    }
}
