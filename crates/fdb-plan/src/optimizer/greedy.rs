//! Greedy f-plan optimisation (Section 4.3 of the paper).
//!
//! The heuristic restricts the search in two ways: it only restructures the
//! nodes that participate in selection conditions, and it orders the
//! conditions greedily by the cost of their individual plans.  For each
//! condition `A = B` three restructuring scenarios are costed:
//!
//! 1. swap `A` upwards until it is an ancestor of `B`, then absorb;
//! 2. swap `B` upwards until it is an ancestor of `A`, then absorb;
//! 3. swap both upwards until they are siblings, then merge.
//!
//! The cheapest scenario becomes the condition's candidate plan; the
//! condition with the cheapest candidate is applied first, and the process
//! repeats on the resulting f-tree until no condition remains.  The overall
//! running time is polynomial in the size of the input f-tree, in contrast
//! to the exponential exhaustive search.

use crate::cost::{plan_cost, FPlanCost};
use crate::fplan::{FPlan, FPlanOp};
use crate::optimizer::OptimizedPlan;
use fdb_common::{AttrId, FdbError, Result};
use fdb_ftree::{FTree, NodeId};

/// The greedy f-plan optimiser.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyOptimizer;

impl GreedyOptimizer {
    /// Creates a greedy optimiser.
    pub fn new() -> Self {
        GreedyOptimizer
    }

    /// Builds an f-plan enforcing the given equality conditions on an input
    /// over `input_tree`.
    pub fn optimize(
        &self,
        input_tree: &FTree,
        equalities: &[(AttrId, AttrId)],
    ) -> Result<OptimizedPlan> {
        for (a, b) in equalities {
            if input_tree.node_of_attr(*a).is_none() || input_tree.node_of_attr(*b).is_none() {
                return Err(FdbError::AttributeNotInQuery {
                    attr: format!("{a} = {b}"),
                });
            }
        }
        let mut tree = input_tree.clone();
        let mut overall = FPlan::empty();
        let mut remaining: Vec<(AttrId, AttrId)> = equalities.to_vec();
        let mut explored = 0usize;

        loop {
            // Conditions already satisfied (their attributes label the same
            // node) cost nothing and are simply dropped.
            remaining.retain(|&(a, b)| tree.node_of_attr(a) != tree.node_of_attr(b));
            if remaining.is_empty() {
                break;
            }
            // Cost the cheapest scenario of every remaining condition on the
            // current tree.
            let mut best: Option<(usize, FPlan, FPlanCost)> = None;
            for (idx, &(a, b)) in remaining.iter().enumerate() {
                let Some(candidate) = cheapest_scenario(&tree, a, b)? else {
                    continue;
                };
                explored += 3;
                let cost = plan_cost(&candidate, &tree)?;
                let better = match &best {
                    None => true,
                    Some((_, _, best_cost)) => cost.better_than(best_cost),
                };
                if better {
                    best = Some((idx, candidate, cost));
                }
            }
            let Some((idx, plan, _)) = best else {
                return Err(FdbError::NoPlanFound {
                    detail: "greedy optimiser could not restructure for the remaining conditions"
                        .into(),
                });
            };
            remaining.remove(idx);
            // Apply the chosen condition's plan to the working tree and
            // append it to the overall plan.
            for op in &plan.ops {
                op.apply_to_tree(&mut tree)?;
            }
            overall.extend(plan);
            // Conditions already satisfied by side effects can be dropped.
            remaining.retain(|&(a, b)| tree.node_of_attr(a) != tree.node_of_attr(b));
        }

        let cost = plan_cost(&overall, input_tree)?;
        Ok(OptimizedPlan {
            plan: overall,
            cost,
            explored_states: explored,
        })
    }
}

/// Builds the cheapest of the three restructuring scenarios for one equality
/// condition, or `None` if the condition is already satisfied.
fn cheapest_scenario(tree: &FTree, a_attr: AttrId, b_attr: AttrId) -> Result<Option<FPlan>> {
    let na = tree.node_of_attr(a_attr).expect("checked by caller");
    let nb = tree.node_of_attr(b_attr).expect("checked by caller");
    if na == nb {
        return Ok(None);
    }
    let scenarios = [
        ancestor_scenario(tree, na, nb),
        ancestor_scenario(tree, nb, na),
        sibling_scenario(tree, na, nb),
    ];
    let mut best: Option<(FPlan, FPlanCost)> = None;
    for scenario in scenarios.into_iter().flatten() {
        let cost = plan_cost(&scenario, tree)?;
        let better = match &best {
            None => true,
            Some((_, best_cost)) => cost.better_than(best_cost),
        };
        if better {
            best = Some((scenario, cost));
        }
    }
    match best {
        Some((plan, _)) => Ok(Some(plan)),
        None => Err(FdbError::NoPlanFound {
            detail: "no restructuring scenario applies to the condition".into(),
        }),
    }
}

/// Scenario: swap `anc` upwards until it is an ancestor of `desc`, then
/// absorb `desc` into it.  Returns `None` if `anc` can never become an
/// ancestor of `desc` (they live in different trees of the forest).
fn ancestor_scenario(tree: &FTree, anc: NodeId, desc: NodeId) -> Option<FPlan> {
    let mut work = tree.clone();
    let mut plan = FPlan::empty();
    let budget = work.node_count() + 1;
    for _ in 0..budget {
        if work.is_ancestor(anc, desc) {
            plan.push(FPlanOp::Absorb(anc, desc));
            return Some(plan);
        }
        work.parent(anc)?;
        work.swap_with_parent(anc).ok()?;
        plan.push(FPlanOp::Swap(anc));
    }
    None
}

/// Scenario: swap `a` and `b` upwards until they become siblings (children of
/// their lowest common ancestor, or both roots of the forest), then merge.
/// Returns `None` when one is an ancestor of the other (the ancestor
/// scenarios cover that case) or when they never become siblings.
fn sibling_scenario(tree: &FTree, a: NodeId, b: NodeId) -> Option<FPlan> {
    let mut work = tree.clone();
    let mut plan = FPlan::empty();
    let budget = 2 * work.node_count() + 2;
    for _ in 0..budget {
        if work.are_siblings(a, b) {
            plan.push(FPlanOp::Merge(a, b));
            return Some(plan);
        }
        if work.is_ancestor(a, b) || work.is_ancestor(b, a) {
            return None;
        }
        // Swap the deeper of the two upwards (ties: a).
        let (da, db) = (work.depth(a), work.depth(b));
        let target = if da >= db { a } else { b };
        if work.parent(target).is_none() {
            let other = if target == a { b } else { a };
            work.parent(other)?;
            work.swap_with_parent(other).ok()?;
            plan.push(FPlanOp::Swap(other));
            continue;
        }
        work.swap_with_parent(target).ok()?;
        plan.push(FPlanOp::Swap(target));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::exhaustive::ExhaustiveOptimizer;
    use fdb_ftree::DepEdge;
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// Example 11: {A,D} → (B → C, E → F) with relations {A,B,C}, {D,E,F}.
    fn example11_tree() -> FTree {
        let edges = vec![
            DepEdge::new("R1", attrs(&[0, 1, 2]), 10),
            DepEdge::new("R2", attrs(&[3, 4, 5]), 10),
        ];
        let mut t = FTree::new(edges);
        let ad = t.add_node(attrs(&[0, 3]), None).unwrap();
        let b = t.add_node(attrs(&[1]), Some(ad)).unwrap();
        t.add_node(attrs(&[2]), Some(b)).unwrap();
        let e = t.add_node(attrs(&[4]), Some(ad)).unwrap();
        t.add_node(attrs(&[5]), Some(e)).unwrap();
        t
    }

    #[test]
    fn greedy_finds_the_cost_one_plan_for_example11() {
        let tree = example11_tree();
        let result = GreedyOptimizer::new()
            .optimize(&tree, &[(AttrId(1), AttrId(5))])
            .unwrap();
        assert!(
            (result.cost.max_intermediate - 1.0).abs() < 1e-6,
            "{:?}",
            result.cost
        );
        let final_tree = result.plan.final_tree(&tree).unwrap();
        assert_eq!(
            final_tree.node_of_attr(AttrId(1)),
            final_tree.node_of_attr(AttrId(5))
        );
    }

    #[test]
    fn greedy_handles_multiple_conditions() {
        let tree = example11_tree();
        let conditions = [(AttrId(1), AttrId(5)), (AttrId(2), AttrId(4))];
        let result = GreedyOptimizer::new().optimize(&tree, &conditions).unwrap();
        let final_tree = result.plan.final_tree(&tree).unwrap();
        for (a, b) in conditions {
            assert_eq!(final_tree.node_of_attr(a), final_tree.node_of_attr(b));
        }
        final_tree.check_path_constraint().unwrap();
    }

    #[test]
    fn greedy_is_never_better_than_exhaustive() {
        // On Example 11 with assorted condition sets, greedy's cost is at
        // least the exhaustive optimum (and usually equal).
        let tree = example11_tree();
        let condition_sets: Vec<Vec<(AttrId, AttrId)>> = vec![
            vec![(AttrId(1), AttrId(5))],
            vec![(AttrId(2), AttrId(4))],
            vec![(AttrId(1), AttrId(4))],
            vec![(AttrId(1), AttrId(5)), (AttrId(2), AttrId(4))],
        ];
        for conditions in condition_sets {
            let greedy = GreedyOptimizer::new().optimize(&tree, &conditions).unwrap();
            let exhaustive = ExhaustiveOptimizer::new()
                .optimize(&tree, &conditions)
                .unwrap();
            assert!(
                greedy.cost.max_intermediate + 1e-6 >= exhaustive.cost.max_intermediate,
                "greedy beat exhaustive on {conditions:?}"
            );
        }
    }

    #[test]
    fn satisfied_conditions_yield_the_empty_plan() {
        let tree = example11_tree();
        let result = GreedyOptimizer::new()
            .optimize(&tree, &[(AttrId(0), AttrId(3))])
            .unwrap();
        assert!(result.plan.is_empty());
    }

    #[test]
    fn conditions_across_forest_roots_are_merged_at_the_top() {
        let edges = vec![
            DepEdge::new("R", attrs(&[0, 1]), 5),
            DepEdge::new("S", attrs(&[2, 3]), 5),
        ];
        let mut tree = FTree::new(edges);
        let r_root = tree.add_node(attrs(&[0]), None).unwrap();
        tree.add_node(attrs(&[1]), Some(r_root)).unwrap();
        let s_root = tree.add_node(attrs(&[2]), None).unwrap();
        tree.add_node(attrs(&[3]), Some(s_root)).unwrap();
        // Join the two leaves: both must be swapped up to the top and merged.
        let result = GreedyOptimizer::new()
            .optimize(&tree, &[(AttrId(1), AttrId(3))])
            .unwrap();
        let final_tree = result.plan.final_tree(&tree).unwrap();
        assert_eq!(
            final_tree.node_of_attr(AttrId(1)),
            final_tree.node_of_attr(AttrId(3))
        );
        assert!(result.plan.len() >= 3, "two swaps plus a merge expected");
    }

    #[test]
    fn unknown_attributes_are_rejected() {
        let tree = example11_tree();
        assert!(GreedyOptimizer::new()
            .optimize(&tree, &[(AttrId(0), AttrId(70))])
            .is_err());
    }
}
