//! Exhaustive f-plan search (Section 4.2 of the paper).
//!
//! The search space is a directed graph whose nodes are the normalised
//! f-trees reachable from the input f-tree and whose edges are the f-plan
//! operators: any swap, and — for the equality conditions of the query —
//! merges of sibling nodes and absorbs of descendant nodes.  The cost of a
//! path is the largest `s(T)` of any tree on it (a bottleneck metric), so
//! Dijkstra's algorithm applies directly.  Among the final f-trees that
//! satisfy all equalities and are reachable at the minimum bottleneck cost,
//! the one with the smallest own cost `s(T_final)` (then the shortest plan)
//! is chosen — the lexicographic order `<_max × <_{s(T)}` of the paper.

use crate::cost::FPlanCost;
use crate::fplan::{FPlan, FPlanOp};
use crate::optimizer::OptimizedPlan;
use fdb_common::{AttrId, FdbError, Result};
use fdb_ftree::{s_cost, FTree};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Configuration of the exhaustive search.
#[derive(Clone, Copy, Debug)]
pub struct ExhaustiveConfig {
    /// Upper bound on the number of distinct f-trees the search may visit
    /// before giving up (protects against pathological inputs).
    pub max_states: usize,
}

impl Default for ExhaustiveConfig {
    fn default() -> Self {
        ExhaustiveConfig {
            max_states: 500_000,
        }
    }
}

/// The exhaustive (Dijkstra) f-plan optimiser.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExhaustiveOptimizer {
    /// Search configuration.
    pub config: ExhaustiveConfig,
}

/// An `f64` wrapper with a total order (no NaNs are ever produced here).
#[derive(Clone, Copy, PartialEq, Debug)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Clone)]
struct State {
    tree: FTree,
    plan: Vec<FPlanOp>,
    bottleneck: f64,
}

struct QueueItem {
    bottleneck: OrdF64,
    plan_len: usize,
    key: String,
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.bottleneck == other.bottleneck && self.plan_len == other.plan_len
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the smallest cost pops first.
        other
            .bottleneck
            .cmp(&self.bottleneck)
            .then_with(|| other.plan_len.cmp(&self.plan_len))
    }
}

impl ExhaustiveOptimizer {
    /// Creates an optimiser with the default configuration.
    pub fn new() -> Self {
        ExhaustiveOptimizer::default()
    }

    /// Finds an optimal f-plan enforcing the given equality conditions on an
    /// input over `input_tree`.
    ///
    /// Constant selections and projections are deliberately not part of the
    /// search: FDB applies constant selections first (they are cheap and
    /// only shrink the data) and defers projections to the end of the plan.
    pub fn optimize(
        &self,
        input_tree: &FTree,
        equalities: &[(AttrId, AttrId)],
    ) -> Result<OptimizedPlan> {
        for (a, b) in equalities {
            if input_tree.node_of_attr(*a).is_none() || input_tree.node_of_attr(*b).is_none() {
                return Err(FdbError::AttributeNotInQuery {
                    attr: format!("{a} = {b}"),
                });
            }
        }

        let initial_cost = s_cost(input_tree)?;
        let initial = State {
            tree: input_tree.clone(),
            plan: Vec::new(),
            bottleneck: initial_cost,
        };
        let initial_key = input_tree.canonical_key();

        let mut best: HashMap<String, State> = HashMap::new();
        let mut heap: BinaryHeap<QueueItem> = BinaryHeap::new();
        heap.push(QueueItem {
            bottleneck: OrdF64(initial.bottleneck),
            plan_len: 0,
            key: initial_key.clone(),
        });
        best.insert(initial_key, initial);

        let mut explored = 0usize;
        let mut goals: Vec<State> = Vec::new();
        let mut goal_bottleneck: Option<f64> = None;

        while let Some(item) = heap.pop() {
            let Some(state) = best.get(&item.key).cloned() else {
                continue;
            };
            // Skip stale queue entries.
            if item.bottleneck.0 > state.bottleneck + 1e-9 {
                continue;
            }
            // Once a goal has been found, only states with the same bottleneck
            // can still yield a better (lexicographically smaller) goal.
            if let Some(gb) = goal_bottleneck {
                if state.bottleneck > gb + 1e-9 {
                    break;
                }
            }
            explored += 1;
            if explored > self.config.max_states {
                return Err(FdbError::NoPlanFound {
                    detail: format!(
                        "exhaustive search exceeded its {}-state budget",
                        self.config.max_states
                    ),
                });
            }

            if Self::is_goal(&state.tree, equalities) {
                goal_bottleneck.get_or_insert(state.bottleneck);
                goals.push(state);
                continue;
            }

            for (op, next_tree) in Self::neighbours(&state.tree, equalities)? {
                let next_cost = s_cost(&next_tree)?;
                let bottleneck = state.bottleneck.max(next_cost);
                let key = next_tree.canonical_key();
                let mut plan = state.plan.clone();
                plan.push(op);
                let candidate = State {
                    tree: next_tree,
                    plan,
                    bottleneck,
                };
                let replace = match best.get(&key) {
                    None => true,
                    Some(existing) => {
                        bottleneck + 1e-9 < existing.bottleneck
                            || (bottleneck < existing.bottleneck + 1e-9
                                && candidate.plan.len() < existing.plan.len())
                    }
                };
                if replace {
                    heap.push(QueueItem {
                        bottleneck: OrdF64(candidate.bottleneck),
                        plan_len: candidate.plan.len(),
                        key: key.clone(),
                    });
                    best.insert(key, candidate);
                }
            }
        }

        let Some(_) = goal_bottleneck else {
            return Err(FdbError::NoPlanFound {
                detail: "no sequence of operators satisfies all equality conditions".into(),
            });
        };
        // Among the minimum-bottleneck goals pick the one with the smallest
        // final cost, then the shortest plan.
        let mut chosen: Option<(State, f64)> = None;
        for goal in goals {
            let final_cost = s_cost(&goal.tree)?;
            let better = match &chosen {
                None => true,
                Some((existing, existing_final)) => {
                    final_cost + 1e-9 < *existing_final
                        || (final_cost < existing_final + 1e-9
                            && goal.plan.len() < existing.plan.len())
                }
            };
            if better {
                chosen = Some((goal, final_cost));
            }
        }
        let (goal, _) = chosen.expect("at least one goal collected");
        let plan = FPlan::new(goal.plan);
        let cost = crate::cost::plan_cost(&plan, input_tree)?;
        Ok(OptimizedPlan {
            plan,
            cost,
            explored_states: explored,
        })
    }

    fn is_goal(tree: &FTree, equalities: &[(AttrId, AttrId)]) -> bool {
        equalities
            .iter()
            .all(|(a, b)| tree.node_of_attr(*a) == tree.node_of_attr(*b))
    }

    /// Enumerates the operator applications available from a state.
    fn neighbours(tree: &FTree, equalities: &[(AttrId, AttrId)]) -> Result<Vec<(FPlanOp, FTree)>> {
        let mut out = Vec::new();
        // All swaps.
        for node in tree.node_ids() {
            if tree.parent(node).is_some() {
                let mut next = tree.clone();
                next.swap_with_parent(node)?;
                out.push((FPlanOp::Swap(node), next));
            }
        }
        // Merges and absorbs demanded by the remaining equalities.
        for (a_attr, b_attr) in equalities {
            let (Some(na), Some(nb)) = (tree.node_of_attr(*a_attr), tree.node_of_attr(*b_attr))
            else {
                continue;
            };
            if na == nb {
                continue;
            }
            if tree.are_siblings(na, nb) {
                let mut next = tree.clone();
                next.merge_siblings(na, nb)?;
                out.push((FPlanOp::Merge(na, nb), next));
            } else if tree.is_ancestor(na, nb) {
                let mut next = tree.clone();
                next.absorb_into_ancestor(na, nb)?;
                next.normalise();
                out.push((FPlanOp::Absorb(na, nb), next));
            } else if tree.is_ancestor(nb, na) {
                let mut next = tree.clone();
                next.absorb_into_ancestor(nb, na)?;
                next.normalise();
                out.push((FPlanOp::Absorb(nb, na), next));
            }
        }
        Ok(out)
    }
}

/// The cost of an optimised plan, re-exported for convenience.
pub type PlanCost = FPlanCost;

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_ftree::DepEdge;
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// Example 11: {A,D} → (B → C, E → F) with relations {A,B,C}, {D,E,F}.
    fn example11_tree() -> FTree {
        let edges = vec![
            DepEdge::new("R1", attrs(&[0, 1, 2]), 10),
            DepEdge::new("R2", attrs(&[3, 4, 5]), 10),
        ];
        let mut t = FTree::new(edges);
        let ad = t.add_node(attrs(&[0, 3]), None).unwrap();
        let b = t.add_node(attrs(&[1]), Some(ad)).unwrap();
        t.add_node(attrs(&[2]), Some(b)).unwrap();
        let e = t.add_node(attrs(&[4]), Some(ad)).unwrap();
        t.add_node(attrs(&[5]), Some(e)).unwrap();
        t
    }

    #[test]
    fn example11_finds_the_cost_one_plan() {
        // The selection B = F admits a plan of cost 1 (swap F up, then merge
        // with B); the naive plan through absorb costs 2.  The exhaustive
        // optimiser must find cost 1.
        let tree = example11_tree();
        let result = ExhaustiveOptimizer::new()
            .optimize(&tree, &[(AttrId(1), AttrId(5))])
            .unwrap();
        assert!(
            (result.cost.max_intermediate - 1.0).abs() < 1e-6,
            "{:?}",
            result.cost
        );
        assert!((result.cost.final_cost - 1.0).abs() < 1e-6);
        // The plan transforms the tree into one where B and F share a node.
        let final_tree = result.plan.final_tree(&tree).unwrap();
        assert_eq!(
            final_tree.node_of_attr(AttrId(1)),
            final_tree.node_of_attr(AttrId(5))
        );
        final_tree.check_path_constraint().unwrap();
    }

    #[test]
    fn already_satisfied_conditions_need_no_operators() {
        let tree = example11_tree();
        // A and D label the same node already.
        let result = ExhaustiveOptimizer::new()
            .optimize(&tree, &[(AttrId(0), AttrId(3))])
            .unwrap();
        assert!(result.plan.is_empty());
        assert!((result.cost.max_intermediate - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sibling_conditions_use_a_single_merge() {
        // Two independent unary relations as two roots; equating their
        // attributes is a single merge of sibling roots.
        let edges = vec![
            DepEdge::new("R", attrs(&[0]), 5),
            DepEdge::new("S", attrs(&[1]), 5),
        ];
        let mut tree = FTree::new(edges);
        tree.add_node(attrs(&[0]), None).unwrap();
        tree.add_node(attrs(&[1]), None).unwrap();
        let result = ExhaustiveOptimizer::new()
            .optimize(&tree, &[(AttrId(0), AttrId(1))])
            .unwrap();
        assert_eq!(result.plan.len(), 1);
        assert!(matches!(result.plan.ops[0], FPlanOp::Merge(_, _)));
    }

    #[test]
    fn multiple_conditions_are_all_enforced() {
        let tree = example11_tree();
        // B = F and C = E.
        let result = ExhaustiveOptimizer::new()
            .optimize(&tree, &[(AttrId(1), AttrId(5)), (AttrId(2), AttrId(4))])
            .unwrap();
        let final_tree = result.plan.final_tree(&tree).unwrap();
        assert_eq!(
            final_tree.node_of_attr(AttrId(1)),
            final_tree.node_of_attr(AttrId(5))
        );
        assert_eq!(
            final_tree.node_of_attr(AttrId(2)),
            final_tree.node_of_attr(AttrId(4))
        );
        final_tree.check_path_constraint().unwrap();
        assert!(result.cost.max_intermediate <= 2.0 + 1e-6);
    }

    #[test]
    fn unknown_attributes_are_rejected() {
        let tree = example11_tree();
        assert!(ExhaustiveOptimizer::new()
            .optimize(&tree, &[(AttrId(1), AttrId(77))])
            .is_err());
    }

    #[test]
    fn state_budget_is_respected() {
        let tree = example11_tree();
        let tiny = ExhaustiveOptimizer {
            config: ExhaustiveConfig { max_states: 1 },
        };
        // With a one-state budget the search cannot finish unless the goal is
        // immediate; B = F is not, so it must fail gracefully.
        assert!(tiny.optimize(&tree, &[(AttrId(1), AttrId(5))]).is_err());
    }
}
