//! The FDB query engine: select-project-join evaluation on factorised
//! relational databases.
//!
//! This crate ties the substrates together into the engine the paper
//! describes:
//!
//! * [`FdbEngine::evaluate_flat`] answers a query over a flat relational
//!   database: the optimiser picks an f-tree of minimal cost `s(T)` for the
//!   query result and the factorised result is built directly over it,
//!   without ever materialising the flat result (Experiments 1 and 3);
//! * [`FdbEngine::evaluate_factorised`] answers a query over a factorised
//!   input (typically the result of a previous query): the optimiser — the
//!   exhaustive Dijkstra search or the greedy heuristic — produces an
//!   f-plan of restructuring and selection operators, which is then executed
//!   on the representation (Experiments 2 and 4);
//! * [`FdbEngine::evaluate_flat_via_operators`] is the alternative
//!   evaluation path that treats each flat relation as a trivially
//!   factorised input and runs a pure f-plan over the product — useful for
//!   cross-checking the two pipelines against each other;
//! * the serving layer ([`serving`]): an `Arc`-shared [`SharedDatabase`] of
//!   frozen representations — with versioned slots that support atomic hot
//!   swap ([`FdbServer::replace`]) — the multi-threaded [`FdbServer`]
//!   executing request batches on a work-stealing pool, and the shape-keyed
//!   [`PlanCache`] that lets repeated traffic skip optimisation
//!   ([`FdbEngine::evaluate_factorised_cached`]) and drops exactly the
//!   swapped tree's plans on replacement;
//! * durability ([`snapshot`]): self-verifying snapshots of single
//!   representations and whole databases — atomic writes, checksummed
//!   sections, and mandatory structural re-validation on load.

#![warn(missing_docs)]

pub mod engine;
pub mod serving;
pub mod snapshot;

pub use engine::{
    AggregateOutput, EvalOutput, EvalStats, FactorisedQuery, FdbEngine, OptimizerKind,
    OrderedOutput,
};
pub use serving::{
    default_threads, FdbServer, PlanCache, RepId, ServeOutcome, ServeRequest, ServerStats,
    SharedDatabase, ThreadPool,
};
pub use snapshot::{load_database, load_rep, save_database, save_rep};
