//! The FDB engine: optimisation plus evaluation, on flat or factorised input.

use fdb_common::{AttrId, ConstSelection, FdbError, Query, Result};
use fdb_frep::{build_frep, ops, FRep};
use fdb_ftree::s_cost;
use fdb_plan::{ExhaustiveOptimizer, FPlan, FPlanOp, GreedyOptimizer};
use fdb_relation::Database;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Which f-plan optimiser the engine uses for queries over factorised input.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OptimizerKind {
    /// Exhaustive Dijkstra search over reachable f-trees (Section 4.2).
    #[default]
    Exhaustive,
    /// Greedy heuristic (Section 4.3).
    Greedy,
}

/// A query over a factorised input: a conjunction of equality conditions
/// between attributes of the representation, optional selections with
/// constants, and an optional projection.
#[derive(Clone, Debug, Default)]
pub struct FactorisedQuery {
    /// Equality conditions `A = B`.
    pub equalities: Vec<(AttrId, AttrId)>,
    /// Selections with constants `A θ c`.
    pub const_selections: Vec<ConstSelection>,
    /// Projection list (`None` keeps every attribute).
    pub projection: Option<Vec<AttrId>>,
}

impl FactorisedQuery {
    /// A query with only equality conditions.
    pub fn equalities(equalities: Vec<(AttrId, AttrId)>) -> Self {
        FactorisedQuery {
            equalities,
            ..Default::default()
        }
    }

    /// Adds a selection with a constant.
    pub fn with_const_selection(mut self, sel: ConstSelection) -> Self {
        self.const_selections.push(sel);
        self
    }

    /// Sets the projection list.
    pub fn with_projection(mut self, attrs: Vec<AttrId>) -> Self {
        self.projection = Some(attrs);
        self
    }
}

/// Statistics of one evaluation.
#[derive(Clone, Debug, Default)]
pub struct EvalStats {
    /// Time spent in query optimisation (f-tree search or f-plan search).
    pub optimisation_time: Duration,
    /// Time spent building or transforming the factorised representation.
    pub execution_time: Duration,
    /// The cost `s(T)` of the result's f-tree.
    pub result_tree_cost: f64,
    /// The f-plan cost `s(f)` (maximum intermediate cost); equals the result
    /// tree cost for evaluation on flat input.
    pub plan_cost: f64,
    /// Number of singletons in the result representation.
    pub result_size: usize,
    /// Number of tuples in the represented result.
    pub result_tuples: u128,
    /// The executed f-plan (empty for direct construction on flat input).
    pub plan: FPlan,
    /// Number of optimiser states explored.
    pub explored_states: usize,
    /// Number of multi-step structural segments of the plan that executed as
    /// single fused arena passes (see `fdb_frep::ops::fuse`).
    pub fused_segments: usize,
}

/// The result of an evaluation: the factorised representation plus
/// statistics.
#[derive(Clone, Debug)]
pub struct EvalOutput {
    /// The factorised query result.
    pub result: FRep,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl EvalOutput {
    /// Streams the result tuples with the constant-delay arena cursor
    /// (columns in ascending attribute-id order) without materialising the
    /// flat relation.
    pub fn tuples(&self) -> fdb_frep::TupleCursor<'_> {
        fdb_frep::TupleCursor::new(&self.result)
    }
}

/// The FDB query engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct FdbEngine {
    /// Which optimiser to use for queries over factorised input.
    pub optimizer: OptimizerKind,
}

impl FdbEngine {
    /// Creates an engine with the exhaustive optimiser.
    pub fn new() -> Self {
        FdbEngine::default()
    }

    /// Creates an engine using the greedy optimiser.
    pub fn greedy() -> Self {
        FdbEngine {
            optimizer: OptimizerKind::Greedy,
        }
    }

    /// Evaluates a select-project-join query on a flat relational database.
    ///
    /// The optimiser finds an f-tree of the query with minimum `s(T)`; the
    /// factorised result is built directly over that tree and the projection
    /// (if any) is applied at the end with the projection operator.
    pub fn evaluate_flat(&self, db: &Database, query: &Query) -> Result<EvalOutput> {
        let opt_start = Instant::now();
        let search = fdb_plan::optimal_ftree(db.catalog(), query, |r| db.rel_len(r) as u64)?;
        let optimisation_time = opt_start.elapsed();

        let exec_start = Instant::now();
        let mut result = build_frep(db, query, &search.tree)?;
        let mut plan = FPlan::empty();
        if let Some(proj) = &query.projection {
            let keep: BTreeSet<AttrId> = proj.iter().copied().collect();
            ops::project(&mut result, &keep)?;
            plan.push(FPlanOp::Project(keep));
        }
        let execution_time = exec_start.elapsed();

        let result_tree_cost = s_cost(result.tree())?;
        // The flat path runs no structural plan (the recorded plan holds at
        // most the final projection, a barrier), so nothing fuses.
        let fused_segments = 0;
        Ok(EvalOutput {
            stats: EvalStats {
                optimisation_time,
                execution_time,
                result_tree_cost,
                plan_cost: search.cost,
                result_size: result.size(),
                result_tuples: result.tuple_count(),
                plan,
                explored_states: search.explored_states,
                fused_segments,
            },
            result,
        })
    }

    /// Evaluates a query over a factorised input.
    ///
    /// Selections with constants are applied first (they are cheap and only
    /// shrink the representation), then the optimised restructuring/selection
    /// plan for the equality conditions, and the projection last — the
    /// operator ordering FDB uses (Section 4).  The plan does not execute
    /// operator by operator: after peephole simplification it is segmented
    /// at selections/projections, and every multi-step structural run
    /// between barriers executes as a **single fused arena pass**
    /// (`fdb_frep::ops::fuse`), so a k-step restructuring chain pays one
    /// arena copy instead of k.  [`EvalStats::fused_segments`] reports how
    /// many segments fused.
    pub fn evaluate_factorised(&self, input: &FRep, query: &FactorisedQuery) -> Result<EvalOutput> {
        // Optimise the equality conditions on the input f-tree.
        let opt_start = Instant::now();
        let optimised = match self.optimizer {
            OptimizerKind::Exhaustive => {
                ExhaustiveOptimizer::new().optimize(input.tree(), &query.equalities)?
            }
            OptimizerKind::Greedy => {
                GreedyOptimizer::new().optimize(input.tree(), &query.equalities)?
            }
        };
        let optimisation_time = opt_start.elapsed();

        // Assemble the full plan: constant selections, restructuring and
        // equality selections, projection.
        let mut plan = FPlan::empty();
        for sel in &query.const_selections {
            plan.push(FPlanOp::SelectConst {
                attr: sel.attr,
                op: sel.op,
                value: sel.value,
            });
        }
        plan.extend(optimised.plan.clone());
        if let Some(proj) = &query.projection {
            plan.push(FPlanOp::Project(proj.iter().copied().collect()));
        }

        // Simplify once: the segment count is read off the same op list
        // that actually executes, so the stat matches what really fused.
        let simplified = plan.simplified(input.tree());
        let fused_segments = simplified.fused_segment_count();
        let exec_start = Instant::now();
        let mut result = input.clone();
        simplified.execute_presimplified(&mut result)?;
        let execution_time = exec_start.elapsed();

        let result_tree_cost = s_cost(result.tree())?;
        Ok(EvalOutput {
            stats: EvalStats {
                optimisation_time,
                execution_time,
                result_tree_cost,
                plan_cost: optimised.cost.max_intermediate,
                result_size: result.size(),
                result_tuples: result.tuple_count(),
                plan,
                explored_states: optimised.explored_states,
                fused_segments,
            },
            result,
        })
    }

    /// Evaluates a query on flat input purely with f-plan operators: every
    /// relation is loaded as a trivially factorised representation (a chain
    /// of its attributes), the representations are multiplied together, and
    /// the query's conditions are evaluated as an f-plan on the product.
    ///
    /// This is slower than [`FdbEngine::evaluate_flat`] (the intermediate
    /// product is large) but exercises the operator pipeline end to end; the
    /// integration tests use it to cross-check the direct construction.
    pub fn evaluate_flat_via_operators(&self, db: &Database, query: &Query) -> Result<EvalOutput> {
        query.validate(db.catalog())?;
        if query.relations.is_empty() {
            return Err(FdbError::InvalidInput {
                detail: "query has no relations".into(),
            });
        }
        let exec_start = Instant::now();
        // Load each relation as a factorised representation over its own
        // chain f-tree and multiply them together.
        let mut combined: Option<FRep> = None;
        for &rel in &query.relations {
            let single = Query::product(vec![rel]);
            let tree =
                fdb_ftree::flat_database_ftree(db.catalog(), &[rel], |r| db.rel_len(r) as u64)?;
            let rep = build_frep(db, &single, &tree)?;
            combined = Some(match combined {
                None => rep,
                Some(acc) => ops::product(acc, rep)?,
            });
        }
        let mut rep = combined.expect("at least one relation");

        // Constant selections first.
        let mut plan = FPlan::empty();
        for sel in &query.const_selections {
            plan.push(FPlanOp::SelectConst {
                attr: sel.attr,
                op: sel.op,
                value: sel.value,
            });
        }

        // Optimise and append the equality conditions.
        let opt_start = Instant::now();
        let equalities: Vec<(AttrId, AttrId)> = query
            .equalities
            .iter()
            .map(|eq| (eq.left, eq.right))
            .collect();
        let optimised = match self.optimizer {
            OptimizerKind::Exhaustive => {
                ExhaustiveOptimizer::new().optimize(rep.tree(), &equalities)?
            }
            OptimizerKind::Greedy => GreedyOptimizer::new().optimize(rep.tree(), &equalities)?,
        };
        let optimisation_time = opt_start.elapsed();
        plan.extend(optimised.plan.clone());
        if let Some(proj) = &query.projection {
            plan.push(FPlanOp::Project(proj.iter().copied().collect()));
        }

        let simplified = plan.simplified(rep.tree());
        let fused_segments = simplified.fused_segment_count();
        simplified.execute_presimplified(&mut rep)?;
        let execution_time = exec_start.elapsed();

        let result_tree_cost = s_cost(rep.tree())?;
        Ok(EvalOutput {
            stats: EvalStats {
                optimisation_time,
                execution_time,
                result_tree_cost,
                plan_cost: optimised.cost.max_intermediate,
                result_size: rep.size(),
                result_tuples: rep.tuple_count(),
                plan,
                explored_states: optimised.explored_states,
                fused_segments,
            },
            result: rep,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_common::{Catalog, ComparisonOp, RelId, Value};
    use fdb_frep::materialize;
    use fdb_relation::RdbEngine;

    /// The grocery database of Figure 1 (values encoded as small integers).
    fn grocery() -> (Database, Vec<RelId>) {
        let mut catalog = Catalog::new();
        let (orders, _) = catalog.add_relation("Orders", &["oid", "item"]);
        let (store, _) = catalog.add_relation("Store", &["location", "item"]);
        let (disp, _) = catalog.add_relation("Disp", &["dispatcher", "location"]);
        let (produce, _) = catalog.add_relation("Produce", &["supplier", "item"]);
        let (serve, _) = catalog.add_relation("Serve", &["supplier", "location"]);
        let mut db = Database::new(catalog);
        db.insert_raw_rows(
            orders,
            &[vec![1, 1], vec![1, 2], vec![2, 3], vec![3, 2], vec![3, 3]],
        )
        .unwrap();
        db.insert_raw_rows(
            store,
            &[
                vec![1, 1],
                vec![1, 2],
                vec![1, 3],
                vec![2, 1],
                vec![3, 1],
                vec![3, 2],
            ],
        )
        .unwrap();
        db.insert_raw_rows(disp, &[vec![1, 1], vec![1, 2], vec![2, 1], vec![3, 3]])
            .unwrap();
        db.insert_raw_rows(produce, &[vec![1, 1], vec![1, 2], vec![2, 1], vec![3, 3]])
            .unwrap();
        db.insert_raw_rows(
            serve,
            &[vec![1, 3], vec![2, 1], vec![2, 2], vec![2, 3], vec![3, 1]],
        )
        .unwrap();
        (db, vec![orders, store, disp, produce, serve])
    }

    fn q1(db: &Database, rels: &[RelId]) -> Query {
        let cat = db.catalog();
        Query::product(vec![rels[0], rels[1], rels[2]])
            .with_equality(
                cat.find_attr("Orders.item").unwrap(),
                cat.find_attr("Store.item").unwrap(),
            )
            .with_equality(
                cat.find_attr("Store.location").unwrap(),
                cat.find_attr("Disp.location").unwrap(),
            )
    }

    fn rdb_canonical(db: &Database, query: &Query) -> std::collections::BTreeSet<Vec<Value>> {
        let result = RdbEngine::new().evaluate(db, query).unwrap();
        let mut sorted = result.attrs().to_vec();
        sorted.sort_unstable();
        result.reorder_columns(&sorted).unwrap().tuple_set()
    }

    #[test]
    fn flat_evaluation_matches_rdb_on_q1() {
        let (db, rels) = grocery();
        let query = q1(&db, &rels);
        let out = FdbEngine::new().evaluate_flat(&db, &query).unwrap();
        out.result.validate().unwrap();
        assert_eq!(
            materialize(&out.result).unwrap().tuple_set(),
            rdb_canonical(&db, &query)
        );
        // Q1 admits no f-tree better than s = 2 (Example 5).
        assert!((out.stats.plan_cost - 2.0).abs() < 1e-6);
        assert_eq!(out.stats.result_tuples, out.result.tuple_count());
        // The streaming cursor sees exactly as many tuples as the count.
        let mut cursor = out.tuples();
        let mut streamed = 0u128;
        while cursor.advance() {
            streamed += 1;
        }
        assert_eq!(streamed, out.stats.result_tuples);
    }

    #[test]
    fn both_flat_pipelines_agree() {
        let (db, rels) = grocery();
        let query = q1(&db, &rels);
        let direct = FdbEngine::new().evaluate_flat(&db, &query).unwrap();
        let via_ops = FdbEngine::new()
            .evaluate_flat_via_operators(&db, &query)
            .unwrap();
        via_ops.result.validate().unwrap();
        assert_eq!(
            materialize(&direct.result).unwrap().tuple_set(),
            materialize(&via_ops.result).unwrap().tuple_set()
        );
    }

    #[test]
    fn projection_and_constant_selection_are_applied() {
        let (db, rels) = grocery();
        let cat = db.catalog();
        let oid = cat.find_attr("Orders.oid").unwrap();
        let dispatcher = cat.find_attr("Disp.dispatcher").unwrap();
        let query = q1(&db, &rels)
            .with_const_selection(oid, ComparisonOp::Eq, Value::new(1))
            .with_projection(vec![oid, dispatcher]);
        let out = FdbEngine::new().evaluate_flat(&db, &query).unwrap();
        out.result.validate().unwrap();
        assert_eq!(out.result.visible_attrs(), vec![oid, dispatcher]);
        assert_eq!(
            materialize(&out.result).unwrap().tuple_set(),
            rdb_canonical(&db, &query)
        );
    }

    #[test]
    fn factorised_evaluation_joins_two_previous_results() {
        // Example 2 of the paper: Q1 ⋈_{item, location} Q2, evaluated on the
        // factorised results of Q1 and Q2.
        let (db, rels) = grocery();
        let cat = db.catalog();
        let query1 = q1(&db, &rels);
        let q2 = Query::product(vec![rels[3], rels[4]]).with_equality(
            cat.find_attr("Produce.supplier").unwrap(),
            cat.find_attr("Serve.supplier").unwrap(),
        );
        let engine = FdbEngine::new();
        let r1 = engine.evaluate_flat(&db, &query1).unwrap();
        let r2 = engine.evaluate_flat(&db, &q2).unwrap();
        // Product of the two factorised results, then equality selections on
        // item and location.
        let product = ops::product(r1.result.clone(), r2.result.clone()).unwrap();
        let fq = FactorisedQuery::equalities(vec![
            (
                cat.find_attr("Orders.item").unwrap(),
                cat.find_attr("Produce.item").unwrap(),
            ),
            (
                cat.find_attr("Store.location").unwrap(),
                cat.find_attr("Serve.location").unwrap(),
            ),
        ]);
        let joined = engine.evaluate_factorised(&product, &fq).unwrap();
        joined.result.validate().unwrap();

        // Reference: the flat join of all five relations.
        let full_query = Query::product(rels.clone())
            .with_equality(
                cat.find_attr("Orders.item").unwrap(),
                cat.find_attr("Store.item").unwrap(),
            )
            .with_equality(
                cat.find_attr("Store.location").unwrap(),
                cat.find_attr("Disp.location").unwrap(),
            )
            .with_equality(
                cat.find_attr("Produce.supplier").unwrap(),
                cat.find_attr("Serve.supplier").unwrap(),
            )
            .with_equality(
                cat.find_attr("Orders.item").unwrap(),
                cat.find_attr("Produce.item").unwrap(),
            )
            .with_equality(
                cat.find_attr("Store.location").unwrap(),
                cat.find_attr("Serve.location").unwrap(),
            );
        assert_eq!(
            materialize(&joined.result).unwrap().tuple_set(),
            rdb_canonical(&db, &full_query)
        );
        assert!(!joined.stats.plan.is_empty());
    }

    #[test]
    fn greedy_and_exhaustive_engines_agree_on_the_result() {
        let (db, rels) = grocery();
        let cat = db.catalog();
        let query1 = q1(&db, &rels);
        let base = FdbEngine::new().evaluate_flat(&db, &query1).unwrap();
        let fq = FactorisedQuery::equalities(vec![(
            cat.find_attr("Orders.oid").unwrap(),
            cat.find_attr("Disp.dispatcher").unwrap(),
        )]);
        let a = FdbEngine::new()
            .evaluate_factorised(&base.result, &fq)
            .unwrap();
        let b = FdbEngine::greedy()
            .evaluate_factorised(&base.result, &fq)
            .unwrap();
        assert_eq!(
            materialize(&a.result).unwrap().tuple_set(),
            materialize(&b.result).unwrap().tuple_set()
        );
        assert!(b.stats.plan_cost + 1e-6 >= a.stats.plan_cost);
    }

    #[test]
    fn factorised_query_with_selection_and_projection() {
        let (db, rels) = grocery();
        let cat = db.catalog();
        let base = FdbEngine::new()
            .evaluate_flat(&db, &q1(&db, &rels))
            .unwrap();
        let item = cat.find_attr("Orders.item").unwrap();
        let dispatcher = cat.find_attr("Disp.dispatcher").unwrap();
        let fq = FactorisedQuery::default()
            .with_const_selection(ConstSelection {
                attr: item,
                op: ComparisonOp::Eq,
                value: Value::new(2),
            })
            .with_projection(vec![dispatcher]);
        let out = FdbEngine::new()
            .evaluate_factorised(&base.result, &fq)
            .unwrap();
        out.result.validate().unwrap();
        assert_eq!(out.result.visible_attrs(), vec![dispatcher]);
        // Reference through the flat engine.
        let reference = q1(&db, &rels)
            .with_const_selection(item, ComparisonOp::Eq, Value::new(2))
            .with_projection(vec![dispatcher]);
        assert_eq!(
            materialize(&out.result).unwrap().tuple_set(),
            rdb_canonical(&db, &reference)
        );
    }
}
