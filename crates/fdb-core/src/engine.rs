//! The FDB engine: optimisation plus evaluation, on flat or factorised input.

use crate::serving::PlanCache;
use fdb_common::{
    AggregateFunc, AggregateHead, AttrId, ConstSelection, ExecCtx, FdbError, Query, Result,
};
use fdb_frep::{build_frep, ops, AggregateKind, AggregateResult, FRep, OrderStrategy};
use fdb_ftree::s_cost;
use fdb_plan::{
    plan_chain_restructure, ChainStrategy, ExhaustiveOptimizer, FPlan, FPlanOp, GreedyOptimizer,
};
use fdb_relation::{Database, Relation};
use std::collections::BTreeSet;
use std::fmt;
use std::time::{Duration, Instant};

/// Which f-plan optimiser the engine uses for queries over factorised input.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OptimizerKind {
    /// Exhaustive Dijkstra search over reachable f-trees (Section 4.2).
    #[default]
    Exhaustive,
    /// Greedy heuristic (Section 4.3).
    Greedy,
}

/// A query over a factorised input: a conjunction of equality conditions
/// between attributes of the representation, optional selections with
/// constants, and an optional projection.
#[derive(Clone, Debug, Default)]
pub struct FactorisedQuery {
    /// Equality conditions `A = B`.
    pub equalities: Vec<(AttrId, AttrId)>,
    /// Selections with constants `A θ c`.
    pub const_selections: Vec<ConstSelection>,
    /// Projection list (`None` keeps every attribute).
    pub projection: Option<Vec<AttrId>>,
}

impl FactorisedQuery {
    /// A query with only equality conditions.
    pub fn equalities(equalities: Vec<(AttrId, AttrId)>) -> Self {
        FactorisedQuery {
            equalities,
            ..Default::default()
        }
    }

    /// Adds a selection with a constant.
    pub fn with_const_selection(mut self, sel: ConstSelection) -> Self {
        self.const_selections.push(sel);
        self
    }

    /// Sets the projection list.
    pub fn with_projection(mut self, attrs: Vec<AttrId>) -> Self {
        self.projection = Some(attrs);
        self
    }
}

/// Statistics of one evaluation.
#[derive(Clone, Debug, Default)]
pub struct EvalStats {
    /// Time spent in query optimisation (f-tree search or f-plan search).
    pub optimisation_time: Duration,
    /// Time spent building or transforming the factorised representation.
    pub execution_time: Duration,
    /// The cost `s(T)` of the result's f-tree.
    pub result_tree_cost: f64,
    /// The f-plan cost `s(f)` (maximum intermediate cost); equals the result
    /// tree cost for evaluation on flat input.
    pub plan_cost: f64,
    /// Number of singletons in the result representation.
    pub result_size: usize,
    /// Number of tuples in the represented result.
    pub result_tuples: u128,
    /// The executed f-plan (empty for direct construction on flat input).
    pub plan: FPlan,
    /// Number of optimiser states explored.
    pub explored_states: usize,
    /// Number of fused overlay programs the plan executed as (0 or 1 since
    /// whole-plan fusion — the entire plan compiles into one program when it
    /// would pay more than one arena pass step-wise; see
    /// `fdb_frep::ops::fuse`).
    pub fused_segments: usize,
    /// Number of aggregate evaluations folded directly over the fused
    /// overlay (no arena emission at all); 0 for non-aggregate queries and
    /// for empty-plan aggregates, which run as plain arena passes.
    pub aggregates_on_overlay: usize,
    /// Former fusion barriers (constant selections, projections) executed
    /// *inside* a fused overlay program instead of as standalone arena
    /// passes — the PR 5 whole-plan fusion win.
    pub barriers_fused: usize,
    /// Intermediate arenas fused execution skipped relative to the
    /// step-wise path (a lower bound: one per plan operator beyond the
    /// single emission; for aggregate sinks every operator's arena,
    /// including the final one, is skipped).
    pub arenas_skipped: usize,
    /// Queries this statistics record covers: 1 for a single evaluation;
    /// serving-layer reports that aggregate a batch sum the records and
    /// report the total here.
    pub queries_served: u64,
    /// Plan-cache hits (the optimiser was skipped; see
    /// `serving::PlanCache`).  0 for uncached evaluation paths.
    pub plan_cache_hits: u64,
    /// Plan-cache misses (the optimiser ran and its plan was published).
    /// 0 for uncached evaluation paths.
    pub plan_cache_misses: u64,
    /// Plan-cache entries evicted to make room for this evaluation's
    /// published plan (the cache is bounded; see `serving::PlanCache`).
    /// 0 for uncached evaluation paths and for hits.
    pub plan_cache_evictions: u64,
    /// Ordering/grouping heads satisfied on a root path of the f-tree —
    /// either already there or brought there by a costed swap chain
    /// (`fdb_plan::plan_chain_restructure`).  0 for queries without such a
    /// head.
    pub chain_heads: u64,
    /// Ordering/grouping heads that fell back to flat sorting (ordering) or
    /// hash grouping over enumerated tuples (grouping) because no root-path
    /// restructuring exists at acceptable cost.
    pub flat_head_fallbacks: u64,
}

impl EvalStats {
    /// The execution counters as aligned `name value` rows, with the
    /// fused-segment/overlay-aggregate and barrier/arena counters on shared
    /// rows.  Reports that show per-evaluation statistics (e.g. the
    /// `bench-pr4` table) print this instead of improvising their own lines.
    pub fn counters_table(&self) -> String {
        let rows: [(&str, String); 10] = [
            ("optimisation time", format!("{:?}", self.optimisation_time)),
            ("execution time", format!("{:?}", self.execution_time)),
            ("plan cost s(f)", format!("{:.2}", self.plan_cost)),
            ("result singletons", self.result_size.to_string()),
            ("result tuples", self.result_tuples.to_string()),
            ("explored states", self.explored_states.to_string()),
            (
                "fused segments / overlay aggregates",
                format!("{} / {}", self.fused_segments, self.aggregates_on_overlay),
            ),
            (
                "barriers fused / arenas skipped",
                format!("{} / {}", self.barriers_fused, self.arenas_skipped),
            ),
            (
                "queries served / cache hits / misses / evictions",
                format!(
                    "{} / {} / {} / {}",
                    self.queries_served,
                    self.plan_cache_hits,
                    self.plan_cache_misses,
                    self.plan_cache_evictions
                ),
            ),
            (
                "chain heads / flat fallbacks",
                format!("{} / {}", self.chain_heads, self.flat_head_fallbacks),
            ),
        ];
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in rows {
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        out
    }

    /// Accumulates another record into this one: times and counters add
    /// (including `queries_served` and the cache counters), so a serving
    /// report can total a whole batch.  The per-result fields (`plan`,
    /// costs) keep this record's values — a batch has no single plan.
    pub fn accumulate(&mut self, other: &EvalStats) {
        self.optimisation_time += other.optimisation_time;
        self.execution_time += other.execution_time;
        self.result_size += other.result_size;
        self.result_tuples += other.result_tuples;
        self.explored_states += other.explored_states;
        self.fused_segments += other.fused_segments;
        self.aggregates_on_overlay += other.aggregates_on_overlay;
        self.barriers_fused += other.barriers_fused;
        self.arenas_skipped += other.arenas_skipped;
        self.queries_served += other.queries_served;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.plan_cache_evictions += other.plan_cache_evictions;
        self.chain_heads += other.chain_heads;
        self.flat_head_fallbacks += other.flat_head_fallbacks;
    }
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.counters_table())
    }
}

/// The result of an aggregate evaluation: the aggregate value(s) plus
/// statistics.  No result representation is materialised — that is the
/// point of the aggregate path — so `stats.result_size`/`result_tuples`
/// are 0 and `stats.aggregates_on_overlay` records whether the final
/// structural segment was consumed on the fused overlay without emitting an
/// arena.
#[derive(Clone, Debug)]
pub struct AggregateOutput {
    /// The aggregate result (a scalar or one row per group).
    pub result: AggregateResult,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

/// The result of an ordered evaluation (`ORDER BY`): the flat result rows
/// in the canonical order — sorted by the ordering attributes in request
/// order, ties broken by the remaining output columns in ascending
/// attribute-id order — plus which strategy produced them and statistics.
/// Both strategies return bit-for-bit identical rows
/// ([`fdb_frep::OrderStrategy`] is observability, not semantics); the
/// strategy is also mirrored in [`EvalStats::chain_heads`] /
/// [`EvalStats::flat_head_fallbacks`].
#[derive(Clone, Debug)]
pub struct OrderedOutput {
    /// The result rows, in the canonical total order (columns in ascending
    /// attribute-id order, like every materialised relation).
    pub rows: Relation,
    /// Whether the rows came off the priority cursor of a root-path chain
    /// or from a full flat sort.
    pub strategy: OrderStrategy,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

/// How an ordering or grouping head will be satisfied: the (possibly empty)
/// swap chain to append to the plan, and whether the head runs on a root
/// path or falls back to the flat strategy (sort / hash-group).
struct HeadDecision {
    /// Swaps bringing the head attributes onto a root path; empty when they
    /// are already there — or when the head falls back to flat.
    plan: FPlan,
    /// The head's attributes form a root path after `plan` runs.
    on_chain: bool,
}

/// Plans a root path for a grouping or ordering head via
/// [`plan_chain_restructure`]: path grouping and ordered enumeration both
/// need the head attributes on a root-to-node chain, the restructuring is
/// the same costed swap lifting for both, and both fall back to a flat
/// strategy when no chain exists at acceptable cost (`s(f) ≤ s(T_in)`).
fn plan_head_chain(tree: &fdb_ftree::FTree, attrs: &[AttrId]) -> Result<HeadDecision> {
    let decision = plan_chain_restructure(tree, attrs)?;
    Ok(match decision.strategy {
        ChainStrategy::AlreadyChain => HeadDecision {
            plan: FPlan::empty(),
            on_chain: true,
        },
        ChainStrategy::Restructure => HeadDecision {
            plan: decision.plan,
            on_chain: true,
        },
        ChainStrategy::FlatSort => HeadDecision {
            plan: FPlan::empty(),
            on_chain: false,
        },
    })
}

/// Fusion counters `(fused_segments, barriers_fused, arenas_skipped)` of a
/// simplified plan about to execute through `FPlan::execute_presimplified`:
/// when the plan fuses, the whole op list runs as one overlay program, its
/// barriers included, and every intermediate arena but the single emission
/// is skipped.
fn fusion_counters(plan: &FPlan) -> (usize, usize, usize) {
    let fused = plan.fuses();
    (
        usize::from(fused),
        if fused { plan.barrier_count() } else { 0 },
        plan.arenas_skipped(),
    )
}

/// Fusion counters of a simplified plan consumed by the aggregate sink.
/// When the sink ran on the overlay (`on_overlay`), the whole plan —
/// however short — executed as one fused overlay program and **every**
/// operator's output arena was skipped: the sink folds the aggregate over
/// the overlay and never emits, so even a single-operator plan counts one
/// fused program and one skipped arena.
fn aggregate_fusion_counters(plan: &FPlan, on_overlay: bool) -> (usize, usize, usize) {
    if !on_overlay {
        return (0, 0, 0);
    }
    (1, plan.barrier_count(), plan.len())
}

/// `(chain_heads, flat_head_fallbacks)` counter values for a grouped
/// aggregate evaluation: a grouped head counts under exactly one of the
/// two, a scalar head under neither.
fn head_strategy_counters(head: &AggregateHead, on_chain: bool) -> (u64, u64) {
    if head.group_by.is_empty() {
        (0, 0)
    } else if on_chain {
        (1, 0)
    } else {
        (0, 1)
    }
}

/// Translates a query-level aggregate head into the evaluator's kind.
fn aggregate_kind(head: &AggregateHead) -> Result<AggregateKind> {
    if head.distinct {
        let Some(a) = head.attr else {
            return Err(FdbError::InvalidInput {
                detail: "DISTINCT aggregate requires an attribute".into(),
            });
        };
        return match head.func {
            AggregateFunc::Count => Ok(AggregateKind::CountDistinct(a)),
            AggregateFunc::Sum => Ok(AggregateKind::SumDistinct(a)),
            AggregateFunc::Avg => Ok(AggregateKind::AvgDistinct(a)),
            AggregateFunc::Min | AggregateFunc::Max => Err(FdbError::InvalidInput {
                detail: format!(
                    "{:?}(DISTINCT) is meaningless: MIN/MAX are insensitive to multiplicity",
                    head.func
                ),
            }),
        };
    }
    match (head.func, head.attr) {
        (AggregateFunc::Count, _) => Ok(AggregateKind::Count),
        (AggregateFunc::Sum, Some(a)) => Ok(AggregateKind::Sum(a)),
        (AggregateFunc::Min, Some(a)) => Ok(AggregateKind::Min(a)),
        (AggregateFunc::Max, Some(a)) => Ok(AggregateKind::Max(a)),
        (AggregateFunc::Avg, Some(a)) => Ok(AggregateKind::Avg(a)),
        (func, None) => Err(FdbError::InvalidInput {
            detail: format!("aggregate {func:?} requires an attribute"),
        }),
    }
}

/// The result of an evaluation: the factorised representation plus
/// statistics.
#[derive(Clone, Debug)]
pub struct EvalOutput {
    /// The factorised query result.
    pub result: FRep,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl EvalOutput {
    /// Streams the result tuples with the constant-delay arena cursor
    /// (columns in ascending attribute-id order) without materialising the
    /// flat relation.
    pub fn tuples(&self) -> fdb_frep::TupleCursor<'_> {
        fdb_frep::TupleCursor::new(&self.result)
    }
}

/// The FDB query engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct FdbEngine {
    /// Which optimiser to use for queries over factorised input.
    pub optimizer: OptimizerKind,
}

/// How a factorised evaluation obtained its plan: either fresh from the
/// optimiser, or through a [`PlanCache`] (with the hit/miss recorded for
/// the stats).
struct ResolvedPlan {
    plan: std::sync::Arc<fdb_plan::OptimizedPlan>,
    optimisation_time: Duration,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
}

impl FdbEngine {
    /// Creates an engine with the exhaustive optimiser.
    pub fn new() -> Self {
        FdbEngine::default()
    }

    /// Creates an engine using the greedy optimiser.
    pub fn greedy() -> Self {
        FdbEngine {
            optimizer: OptimizerKind::Greedy,
        }
    }

    /// Runs the configured optimiser on the equality conditions.
    fn optimise_equalities(
        &self,
        tree: &fdb_ftree::FTree,
        equalities: &[(AttrId, AttrId)],
    ) -> Result<fdb_plan::OptimizedPlan> {
        match self.optimizer {
            OptimizerKind::Exhaustive => ExhaustiveOptimizer::new().optimize(tree, equalities),
            OptimizerKind::Greedy => GreedyOptimizer::new().optimize(tree, equalities),
        }
    }

    /// Obtains the optimised plan for a factorised query, through the plan
    /// cache when one is supplied.  On a hit the optimiser is skipped
    /// entirely; on a miss the freshly optimised plan is published under
    /// the query-shape key (constants abstracted — see
    /// [`crate::serving::PlanCache`]).  The key covers the request's head —
    /// `aggregate` and `order_by` — so requests with the same structural
    /// body but different heads never share an entry.
    fn resolve_factorised_plan(
        &self,
        input: &FRep,
        query: &FactorisedQuery,
        cache: Option<&PlanCache>,
        aggregate: Option<&AggregateHead>,
        order_by: &[AttrId],
    ) -> Result<ResolvedPlan> {
        use std::sync::Arc;
        let opt_start = Instant::now();
        let (plan, cache_hits, cache_misses, cache_evictions) = match cache {
            None => (
                Arc::new(self.optimise_equalities(input.tree(), &query.equalities)?),
                0,
                0,
                0,
            ),
            Some(cache) => {
                let key = crate::serving::plan_key(self, input.tree(), query, aggregate, order_by);
                match cache.lookup(&key) {
                    Some(plan) => (plan, 1, 0, 0),
                    None => {
                        let plan =
                            Arc::new(self.optimise_equalities(input.tree(), &query.equalities)?);
                        let evicted = cache.insert(key, Arc::clone(&plan));
                        (plan, 0, 1, evicted)
                    }
                }
            }
        };
        Ok(ResolvedPlan {
            plan,
            optimisation_time: opt_start.elapsed(),
            cache_hits,
            cache_misses,
            cache_evictions,
        })
    }

    /// Evaluates a select-project-join query on a flat relational database.
    ///
    /// The optimiser finds an f-tree of the query with minimum `s(T)`; the
    /// factorised result is built directly over that tree and the projection
    /// (if any) is applied at the end with the projection operator.
    pub fn evaluate_flat(&self, db: &Database, query: &Query) -> Result<EvalOutput> {
        let opt_start = Instant::now();
        let search = fdb_plan::optimal_ftree(db.catalog(), query, |r| db.rel_len(r) as u64)?;
        let optimisation_time = opt_start.elapsed();

        let exec_start = Instant::now();
        let mut result = build_frep(db, query, &search.tree)?;
        let mut plan = FPlan::empty();
        if let Some(proj) = &query.projection {
            let keep: BTreeSet<AttrId> = proj.iter().copied().collect();
            plan.push(FPlanOp::Project(keep));
        }
        // The flat path's plan holds at most the final projection — which,
        // being internally multi-pass (leaf removals, swap-downs), still
        // compiles into one overlay program.
        let simplified = plan.simplified(result.tree());
        let (fused_segments, barriers_fused, arenas_skipped) = fusion_counters(&simplified);
        simplified.execute_presimplified(&mut result)?;
        let execution_time = exec_start.elapsed();

        let result_tree_cost = s_cost(result.tree())?;
        Ok(EvalOutput {
            stats: EvalStats {
                optimisation_time,
                execution_time,
                result_tree_cost,
                plan_cost: search.cost,
                result_size: result.size(),
                result_tuples: result.tuple_count(),
                plan,
                explored_states: search.explored_states,
                fused_segments,
                aggregates_on_overlay: 0,
                barriers_fused,
                arenas_skipped,
                queries_served: 1,
                plan_cache_hits: 0,
                plan_cache_misses: 0,
                plan_cache_evictions: 0,
                chain_heads: 0,
                flat_head_fallbacks: 0,
            },
            result,
        })
    }

    /// Evaluates a query over a factorised input.
    ///
    /// Selections with constants are applied first (they are cheap and only
    /// shrink the representation), then the optimised restructuring/selection
    /// plan for the equality conditions, and the projection last — the
    /// operator ordering FDB uses (Section 4).  The plan does not execute
    /// operator by operator, and since PR 5 it is not segmented at
    /// selections or projections either: after peephole simplification the
    /// **whole plan** compiles into one overlay program
    /// (`fdb_frep::ops::fuse`) that emits a single arena, so a k-operator
    /// plan — barriers included — pays one arena copy instead of k.
    /// [`EvalStats::barriers_fused`] and [`EvalStats::arenas_skipped`]
    /// report the win.
    pub fn evaluate_factorised(&self, input: &FRep, query: &FactorisedQuery) -> Result<EvalOutput> {
        self.evaluate_factorised_inner(input, query, None, &ExecCtx::unlimited())
    }

    /// [`FdbEngine::evaluate_factorised`] through a [`PlanCache`]: when the
    /// query shape (f-tree + operator skeleton, constants abstracted) has
    /// been optimised before, the cached plan is reused and the optimiser
    /// is skipped — the serving layer's fast path for repeated traffic.
    /// [`EvalStats::plan_cache_hits`]/[`EvalStats::plan_cache_misses`]
    /// record which way this evaluation went.
    pub fn evaluate_factorised_cached(
        &self,
        input: &FRep,
        query: &FactorisedQuery,
        cache: &PlanCache,
    ) -> Result<EvalOutput> {
        self.evaluate_factorised_inner(input, query, Some(cache), &ExecCtx::unlimited())
    }

    /// [`FdbEngine::evaluate_factorised`] under a governance context (an
    /// optional [`PlanCache`] rides along): the plan's overlay sweeps,
    /// emission and selection rebuilds charge the context per record, so a
    /// deadline, budget or cancellation flag aborts the evaluation with a
    /// structured error and the input representation untouched.
    pub fn evaluate_factorised_ctx(
        &self,
        input: &FRep,
        query: &FactorisedQuery,
        cache: Option<&PlanCache>,
        ctx: &ExecCtx,
    ) -> Result<EvalOutput> {
        self.evaluate_factorised_inner(input, query, cache, ctx)
    }

    fn evaluate_factorised_inner(
        &self,
        input: &FRep,
        query: &FactorisedQuery,
        cache: Option<&PlanCache>,
        ctx: &ExecCtx,
    ) -> Result<EvalOutput> {
        // Optimise the equality conditions on the input f-tree (or reuse a
        // cached plan for the same query shape).
        let resolved = self.resolve_factorised_plan(input, query, cache, None, &[])?;
        let optimisation_time = resolved.optimisation_time;
        let optimised = &resolved.plan;

        // Assemble the full plan: constant selections, restructuring and
        // equality selections, projection.
        let mut plan = FPlan::empty();
        for sel in &query.const_selections {
            plan.push(FPlanOp::SelectConst {
                attr: sel.attr,
                op: sel.op,
                value: sel.value,
            });
        }
        plan.extend(optimised.plan.clone());
        if let Some(proj) = &query.projection {
            plan.push(FPlanOp::Project(proj.iter().copied().collect()));
        }

        // Simplify once: the fusion counters are read off the same op list
        // that actually executes, so the stats match what really fused.
        let simplified = plan.simplified(input.tree());
        let (fused_segments, barriers_fused, arenas_skipped) = fusion_counters(&simplified);
        let exec_start = Instant::now();
        let mut result = input.clone();
        simplified.execute_presimplified_ctx(&mut result, ctx)?;
        let execution_time = exec_start.elapsed();

        let result_tree_cost = s_cost(result.tree())?;
        Ok(EvalOutput {
            stats: EvalStats {
                optimisation_time,
                execution_time,
                result_tree_cost,
                plan_cost: optimised.cost.max_intermediate,
                result_size: result.size(),
                result_tuples: result.tuple_count(),
                plan,
                explored_states: optimised.explored_states,
                fused_segments,
                aggregates_on_overlay: 0,
                barriers_fused,
                arenas_skipped,
                queries_served: 1,
                plan_cache_hits: resolved.cache_hits,
                plan_cache_misses: resolved.cache_misses,
                plan_cache_evictions: resolved.cache_evictions,
                chain_heads: 0,
                flat_head_fallbacks: 0,
            },
            result,
        })
    }

    /// Evaluates a query on flat input purely with f-plan operators: every
    /// relation is loaded as a trivially factorised representation (a chain
    /// of its attributes), the representations are multiplied together, and
    /// the query's conditions are evaluated as an f-plan on the product.
    ///
    /// This is slower than [`FdbEngine::evaluate_flat`] (the intermediate
    /// product is large) but exercises the operator pipeline end to end; the
    /// integration tests use it to cross-check the direct construction.
    pub fn evaluate_flat_via_operators(&self, db: &Database, query: &Query) -> Result<EvalOutput> {
        query.validate(db.catalog())?;
        if query.relations.is_empty() {
            return Err(FdbError::InvalidInput {
                detail: "query has no relations".into(),
            });
        }
        let exec_start = Instant::now();
        // Load each relation as a factorised representation over its own
        // chain f-tree and multiply them together.
        let mut combined: Option<FRep> = None;
        for &rel in &query.relations {
            let single = Query::product(vec![rel]);
            let tree =
                fdb_ftree::flat_database_ftree(db.catalog(), &[rel], |r| db.rel_len(r) as u64)?;
            let rep = build_frep(db, &single, &tree)?;
            combined = Some(match combined {
                None => rep,
                Some(acc) => ops::product(acc, rep)?,
            });
        }
        let mut rep = combined.expect("at least one relation");

        // Constant selections first.
        let mut plan = FPlan::empty();
        for sel in &query.const_selections {
            plan.push(FPlanOp::SelectConst {
                attr: sel.attr,
                op: sel.op,
                value: sel.value,
            });
        }

        // Optimise and append the equality conditions.
        let opt_start = Instant::now();
        let equalities: Vec<(AttrId, AttrId)> = query
            .equalities
            .iter()
            .map(|eq| (eq.left, eq.right))
            .collect();
        let optimised = match self.optimizer {
            OptimizerKind::Exhaustive => {
                ExhaustiveOptimizer::new().optimize(rep.tree(), &equalities)?
            }
            OptimizerKind::Greedy => GreedyOptimizer::new().optimize(rep.tree(), &equalities)?,
        };
        let optimisation_time = opt_start.elapsed();
        plan.extend(optimised.plan.clone());
        if let Some(proj) = &query.projection {
            plan.push(FPlanOp::Project(proj.iter().copied().collect()));
        }

        let simplified = plan.simplified(rep.tree());
        let (fused_segments, barriers_fused, arenas_skipped) = fusion_counters(&simplified);
        simplified.execute_presimplified(&mut rep)?;
        let execution_time = exec_start.elapsed();

        let result_tree_cost = s_cost(rep.tree())?;
        Ok(EvalOutput {
            stats: EvalStats {
                optimisation_time,
                execution_time,
                result_tree_cost,
                plan_cost: optimised.cost.max_intermediate,
                result_size: rep.size(),
                result_tuples: rep.tuple_count(),
                plan,
                explored_states: optimised.explored_states,
                fused_segments,
                aggregates_on_overlay: 0,
                barriers_fused,
                arenas_skipped,
                queries_served: 1,
                plan_cache_hits: 0,
                plan_cache_misses: 0,
                plan_cache_evictions: 0,
                chain_heads: 0,
                flat_head_fallbacks: 0,
            },
            result: rep,
        })
    }

    /// Evaluates an aggregate query on a flat relational database: the
    /// factorised result is built over the optimal f-tree exactly like
    /// [`FdbEngine::evaluate_flat`], then the aggregate head is folded over
    /// the representation — the flat result is never enumerated.  The query
    /// must carry an [`AggregateHead`].
    ///
    /// Root-attribute grouping is an evaluator precondition, not a caller
    /// one: the f-tree search is cost-driven and may put the group attribute
    /// anywhere, so the engine appends the swaps that lift its node to a
    /// root ([`lift_group_to_root`]) — a structural tail the aggregate sink
    /// consumes on the fused overlay without emitting an arena.
    pub fn evaluate_flat_aggregate(&self, db: &Database, query: &Query) -> Result<AggregateOutput> {
        let Some(head) = &query.aggregate else {
            return Err(FdbError::InvalidInput {
                detail: "evaluate_flat_aggregate: query has no aggregate head".into(),
            });
        };
        let kind = aggregate_kind(head)?;
        let opt_start = Instant::now();
        let search = fdb_plan::optimal_ftree(db.catalog(), query, |r| db.rel_len(r) as u64)?;
        let optimisation_time = opt_start.elapsed();

        let exec_start = Instant::now();
        let rep = build_frep(db, query, &search.tree)?;
        let mut plan = FPlan::empty();
        if let Some(proj) = &query.projection {
            plan.push(FPlanOp::Project(proj.iter().copied().collect()));
        }
        let pre_lift_tree = plan.final_tree(rep.tree())?;
        let head_decision = if head.group_by.is_empty() {
            None
        } else {
            Some(plan_head_chain(&pre_lift_tree, &head.group_by)?)
        };
        let on_chain = head_decision.as_ref().is_none_or(|d| d.on_chain);
        if let Some(d) = head_decision {
            plan.extend(d.plan);
        }
        let simplified = plan.simplified(rep.tree());
        let (result, on_overlay) = if on_chain {
            simplified.execute_aggregate_presimplified(&rep, kind, &head.group_by)?
        } else {
            // No root path for the grouping head at acceptable cost: run the
            // structural plan and hash-group over the enumerated tuples.
            let mut grouped = rep.clone();
            simplified.execute_presimplified(&mut grouped)?;
            (
                fdb_frep::aggregate::by_enumeration(&grouped, kind, &head.group_by)?,
                false,
            )
        };
        let execution_time = exec_start.elapsed();
        let (fused_segments, barriers_fused, arenas_skipped) =
            aggregate_fusion_counters(&simplified, on_overlay);
        let (chain_heads, flat_head_fallbacks) = head_strategy_counters(head, on_chain);

        Ok(AggregateOutput {
            result,
            stats: EvalStats {
                optimisation_time,
                execution_time,
                result_tree_cost: s_cost(&pre_lift_tree)?,
                plan_cost: search.cost,
                result_size: 0,
                result_tuples: 0,
                plan,
                explored_states: search.explored_states,
                fused_segments,
                aggregates_on_overlay: usize::from(on_overlay),
                barriers_fused,
                arenas_skipped,
                queries_served: 1,
                plan_cache_hits: 0,
                plan_cache_misses: 0,
                plan_cache_evictions: 0,
                chain_heads,
                flat_head_fallbacks,
            },
        })
    }

    /// Evaluates an aggregate query over a factorised input.
    ///
    /// The restructuring plan for the equality conditions is assembled
    /// exactly like [`FdbEngine::evaluate_factorised`], but it executes into
    /// an **aggregate sink** ([`FPlan::execute_aggregate`]): the whole plan
    /// — selections and projections included — is applied only to the fused
    /// overlay and the aggregate folds over the overlay itself, with the
    /// plan's trailing selections folded into the accumulation as entry
    /// filters.  **No arena is emitted or cloned at any point**; a
    /// selection-then-aggregate query reads the input arena in place.
    /// [`EvalStats::aggregates_on_overlay`] reports whether that fast path
    /// was taken (only the empty plan falls back to a plain arena pass) and
    /// [`EvalStats::arenas_skipped`] counts the passes avoided.  When the
    /// head groups by an attribute that the plan's final tree does not put
    /// at a root, the engine appends the lifting swaps
    /// ([`lift_group_to_root`]) so root-attribute grouping works on any
    /// input shape.
    pub fn evaluate_factorised_aggregate(
        &self,
        input: &FRep,
        query: &FactorisedQuery,
        head: &AggregateHead,
    ) -> Result<AggregateOutput> {
        self.evaluate_factorised_aggregate_inner(input, query, head, None, &ExecCtx::unlimited())
    }

    /// [`FdbEngine::evaluate_factorised_aggregate`] through a [`PlanCache`]
    /// (see [`FdbEngine::evaluate_factorised_cached`]).  The cache key
    /// includes the full aggregate head (function, attribute, `DISTINCT`,
    /// grouping attributes): the head steers the chain-restructuring swaps
    /// appended after the cached body plan, so same-body requests with
    /// different heads get distinct entries.
    pub fn evaluate_factorised_aggregate_cached(
        &self,
        input: &FRep,
        query: &FactorisedQuery,
        head: &AggregateHead,
        cache: &PlanCache,
    ) -> Result<AggregateOutput> {
        self.evaluate_factorised_aggregate_inner(
            input,
            query,
            head,
            Some(cache),
            &ExecCtx::unlimited(),
        )
    }

    /// [`FdbEngine::evaluate_factorised_aggregate`] under a governance
    /// context (see [`FdbEngine::evaluate_factorised_ctx`]); the overlay
    /// fold charges per record and the input is never mutated.
    pub fn evaluate_factorised_aggregate_ctx(
        &self,
        input: &FRep,
        query: &FactorisedQuery,
        head: &AggregateHead,
        cache: Option<&PlanCache>,
        ctx: &ExecCtx,
    ) -> Result<AggregateOutput> {
        self.evaluate_factorised_aggregate_inner(input, query, head, cache, ctx)
    }

    fn evaluate_factorised_aggregate_inner(
        &self,
        input: &FRep,
        query: &FactorisedQuery,
        head: &AggregateHead,
        cache: Option<&PlanCache>,
        ctx: &ExecCtx,
    ) -> Result<AggregateOutput> {
        let kind = aggregate_kind(head)?;
        let resolved = self.resolve_factorised_plan(input, query, cache, Some(head), &[])?;
        let optimisation_time = resolved.optimisation_time;
        let optimised = &resolved.plan;

        let mut plan = FPlan::empty();
        for sel in &query.const_selections {
            plan.push(FPlanOp::SelectConst {
                attr: sel.attr,
                op: sel.op,
                value: sel.value,
            });
        }
        plan.extend(optimised.plan.clone());
        if let Some(proj) = &query.projection {
            plan.push(FPlanOp::Project(proj.iter().copied().collect()));
        }
        // The aggregate sink never builds the result representation, but its
        // tree is known from simulation — and it tells us which swaps bring
        // the grouping attributes onto a root path (or that no acceptable
        // swap chain exists and the head must hash-group flat).
        let pre_lift_tree = plan.final_tree(input.tree())?;
        let head_decision = if head.group_by.is_empty() {
            None
        } else {
            Some(plan_head_chain(&pre_lift_tree, &head.group_by)?)
        };
        let on_chain = head_decision.as_ref().is_none_or(|d| d.on_chain);
        if let Some(d) = head_decision {
            plan.extend(d.plan);
        }

        let simplified = plan.simplified(input.tree());
        let exec_start = Instant::now();
        let (result, on_overlay) = if on_chain {
            simplified.execute_aggregate_presimplified_ctx(input, kind, &head.group_by, ctx)?
        } else {
            // No root path for the grouping head at acceptable cost: run the
            // structural plan (fused, governed) and hash-group over the
            // enumerated tuples instead.
            let mut grouped = input.clone();
            simplified.execute_presimplified_ctx(&mut grouped, ctx)?;
            (
                fdb_frep::aggregate::by_enumeration(&grouped, kind, &head.group_by)?,
                false,
            )
        };
        let execution_time = exec_start.elapsed();
        let (fused_segments, barriers_fused, arenas_skipped) =
            aggregate_fusion_counters(&simplified, on_overlay);
        let (chain_heads, flat_head_fallbacks) = head_strategy_counters(head, on_chain);

        let result_tree_cost = s_cost(&pre_lift_tree)?;
        Ok(AggregateOutput {
            result,
            stats: EvalStats {
                optimisation_time,
                execution_time,
                result_tree_cost,
                plan_cost: optimised.cost.max_intermediate,
                result_size: 0,
                result_tuples: 0,
                plan,
                explored_states: optimised.explored_states,
                fused_segments,
                aggregates_on_overlay: usize::from(on_overlay),
                barriers_fused,
                arenas_skipped,
                queries_served: 1,
                plan_cache_hits: resolved.cache_hits,
                plan_cache_misses: resolved.cache_misses,
                plan_cache_evictions: resolved.cache_evictions,
                chain_heads,
                flat_head_fallbacks,
            },
        })
    }

    /// Evaluates an `ORDER BY` query on a flat relational database: the
    /// factorised result is built over the optimal f-tree exactly like
    /// [`FdbEngine::evaluate_flat`], then enumerated in the canonical order
    /// (see [`OrderedOutput`]).  When the ordering attributes sit on — or
    /// can be swapped onto, at no asymptotic cost — a root path of the
    /// result's f-tree, the ordered rows come straight off the priority
    /// cursor with per-run tie-break sorts; otherwise the result is
    /// materialised and sorted flat.  The query must carry a non-empty
    /// `order_by` and no aggregate head ([`Query::validate`] rejects the
    /// combination).
    pub fn evaluate_flat_ordered(&self, db: &Database, query: &Query) -> Result<OrderedOutput> {
        if query.order_by.is_empty() {
            return Err(FdbError::InvalidInput {
                detail: "evaluate_flat_ordered: query has no ORDER BY head".into(),
            });
        }
        let opt_start = Instant::now();
        let search = fdb_plan::optimal_ftree(db.catalog(), query, |r| db.rel_len(r) as u64)?;
        let optimisation_time = opt_start.elapsed();

        let exec_start = Instant::now();
        let mut result = build_frep(db, query, &search.tree)?;
        let mut plan = FPlan::empty();
        if let Some(proj) = &query.projection {
            let keep: BTreeSet<AttrId> = proj.iter().copied().collect();
            plan.push(FPlanOp::Project(keep));
        }
        let pre_order_tree = plan.final_tree(result.tree())?;
        let decision = plan_head_chain(&pre_order_tree, &query.order_by)?;
        plan.extend(decision.plan);
        let simplified = plan.simplified(result.tree());
        let (fused_segments, barriers_fused, arenas_skipped) = fusion_counters(&simplified);
        simplified.execute_presimplified(&mut result)?;
        let (rows, strategy) = fdb_frep::materialize_ordered(&result, &query.order_by)?;
        let execution_time = exec_start.elapsed();

        Ok(OrderedOutput {
            stats: EvalStats {
                optimisation_time,
                execution_time,
                result_tree_cost: s_cost(result.tree())?,
                plan_cost: search.cost,
                result_size: result.size(),
                result_tuples: result.tuple_count(),
                plan,
                explored_states: search.explored_states,
                fused_segments,
                aggregates_on_overlay: 0,
                barriers_fused,
                arenas_skipped,
                queries_served: 1,
                plan_cache_hits: 0,
                plan_cache_misses: 0,
                plan_cache_evictions: 0,
                chain_heads: u64::from(strategy == OrderStrategy::Chain),
                flat_head_fallbacks: u64::from(strategy == OrderStrategy::FlatSort),
            },
            rows,
            strategy,
        })
    }

    /// Evaluates a query over a factorised input and returns the result
    /// rows in the canonical `ORDER BY` order (see [`OrderedOutput`]).  The
    /// restructuring plan for the equality conditions is assembled exactly
    /// like [`FdbEngine::evaluate_factorised`]; the ordering chain swaps
    /// (when the costed planner chooses them) are appended to the same plan
    /// and execute inside the same fused overlay program, so bringing the
    /// ordering attributes to the root path costs no extra arena pass.
    pub fn evaluate_factorised_ordered(
        &self,
        input: &FRep,
        query: &FactorisedQuery,
        order_by: &[AttrId],
    ) -> Result<OrderedOutput> {
        self.evaluate_factorised_ordered_inner(input, query, order_by, None, &ExecCtx::unlimited())
    }

    /// [`FdbEngine::evaluate_factorised_ordered`] through a [`PlanCache`]
    /// (see [`FdbEngine::evaluate_factorised_cached`]).  The cache key
    /// includes the ordering head: the same structural query ordered
    /// differently needs different chain swaps, so the shapes must not
    /// share an entry.
    pub fn evaluate_factorised_ordered_cached(
        &self,
        input: &FRep,
        query: &FactorisedQuery,
        order_by: &[AttrId],
        cache: &PlanCache,
    ) -> Result<OrderedOutput> {
        self.evaluate_factorised_ordered_inner(
            input,
            query,
            order_by,
            Some(cache),
            &ExecCtx::unlimited(),
        )
    }

    /// [`FdbEngine::evaluate_factorised_ordered`] under a governance
    /// context (see [`FdbEngine::evaluate_factorised_ctx`]): the plan
    /// execution, the ordered enumeration and the sort all charge the
    /// context per record.
    pub fn evaluate_factorised_ordered_ctx(
        &self,
        input: &FRep,
        query: &FactorisedQuery,
        order_by: &[AttrId],
        cache: Option<&PlanCache>,
        ctx: &ExecCtx,
    ) -> Result<OrderedOutput> {
        self.evaluate_factorised_ordered_inner(input, query, order_by, cache, ctx)
    }

    fn evaluate_factorised_ordered_inner(
        &self,
        input: &FRep,
        query: &FactorisedQuery,
        order_by: &[AttrId],
        cache: Option<&PlanCache>,
        ctx: &ExecCtx,
    ) -> Result<OrderedOutput> {
        if order_by.is_empty() {
            return Err(FdbError::InvalidInput {
                detail: "evaluate_factorised_ordered: empty ORDER BY head".into(),
            });
        }
        let resolved = self.resolve_factorised_plan(input, query, cache, None, order_by)?;
        let optimisation_time = resolved.optimisation_time;
        let optimised = &resolved.plan;

        let mut plan = FPlan::empty();
        for sel in &query.const_selections {
            plan.push(FPlanOp::SelectConst {
                attr: sel.attr,
                op: sel.op,
                value: sel.value,
            });
        }
        plan.extend(optimised.plan.clone());
        if let Some(proj) = &query.projection {
            plan.push(FPlanOp::Project(proj.iter().copied().collect()));
        }
        let pre_order_tree = plan.final_tree(input.tree())?;
        let decision = plan_head_chain(&pre_order_tree, order_by)?;
        plan.extend(decision.plan);

        let simplified = plan.simplified(input.tree());
        let (fused_segments, barriers_fused, arenas_skipped) = fusion_counters(&simplified);
        let exec_start = Instant::now();
        let mut result = input.clone();
        simplified.execute_presimplified_ctx(&mut result, ctx)?;
        let (rows, strategy) = fdb_frep::materialize_ordered_ctx(&result, order_by, ctx)?;
        let execution_time = exec_start.elapsed();

        Ok(OrderedOutput {
            stats: EvalStats {
                optimisation_time,
                execution_time,
                result_tree_cost: s_cost(result.tree())?,
                plan_cost: optimised.cost.max_intermediate,
                result_size: result.size(),
                result_tuples: result.tuple_count(),
                plan,
                explored_states: optimised.explored_states,
                fused_segments,
                aggregates_on_overlay: 0,
                barriers_fused,
                arenas_skipped,
                queries_served: 1,
                plan_cache_hits: resolved.cache_hits,
                plan_cache_misses: resolved.cache_misses,
                plan_cache_evictions: resolved.cache_evictions,
                chain_heads: u64::from(strategy == OrderStrategy::Chain),
                flat_head_fallbacks: u64::from(strategy == OrderStrategy::FlatSort),
            },
            rows,
            strategy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_common::{Catalog, ComparisonOp, RelId, Value};
    use fdb_frep::materialize;
    use fdb_relation::RdbEngine;

    /// The grocery database of Figure 1 (values encoded as small integers).
    fn grocery() -> (Database, Vec<RelId>) {
        let mut catalog = Catalog::new();
        let (orders, _) = catalog.add_relation("Orders", &["oid", "item"]);
        let (store, _) = catalog.add_relation("Store", &["location", "item"]);
        let (disp, _) = catalog.add_relation("Disp", &["dispatcher", "location"]);
        let (produce, _) = catalog.add_relation("Produce", &["supplier", "item"]);
        let (serve, _) = catalog.add_relation("Serve", &["supplier", "location"]);
        let mut db = Database::new(catalog);
        db.insert_raw_rows(
            orders,
            &[vec![1, 1], vec![1, 2], vec![2, 3], vec![3, 2], vec![3, 3]],
        )
        .unwrap();
        db.insert_raw_rows(
            store,
            &[
                vec![1, 1],
                vec![1, 2],
                vec![1, 3],
                vec![2, 1],
                vec![3, 1],
                vec![3, 2],
            ],
        )
        .unwrap();
        db.insert_raw_rows(disp, &[vec![1, 1], vec![1, 2], vec![2, 1], vec![3, 3]])
            .unwrap();
        db.insert_raw_rows(produce, &[vec![1, 1], vec![1, 2], vec![2, 1], vec![3, 3]])
            .unwrap();
        db.insert_raw_rows(
            serve,
            &[vec![1, 3], vec![2, 1], vec![2, 2], vec![2, 3], vec![3, 1]],
        )
        .unwrap();
        (db, vec![orders, store, disp, produce, serve])
    }

    fn q1(db: &Database, rels: &[RelId]) -> Query {
        let cat = db.catalog();
        Query::product(vec![rels[0], rels[1], rels[2]])
            .with_equality(
                cat.find_attr("Orders.item").unwrap(),
                cat.find_attr("Store.item").unwrap(),
            )
            .with_equality(
                cat.find_attr("Store.location").unwrap(),
                cat.find_attr("Disp.location").unwrap(),
            )
    }

    fn rdb_canonical(db: &Database, query: &Query) -> std::collections::BTreeSet<Vec<Value>> {
        let result = RdbEngine::new().evaluate(db, query).unwrap();
        let mut sorted = result.attrs().to_vec();
        sorted.sort_unstable();
        result.reorder_columns(&sorted).unwrap().tuple_set()
    }

    #[test]
    fn flat_evaluation_matches_rdb_on_q1() {
        let (db, rels) = grocery();
        let query = q1(&db, &rels);
        let out = FdbEngine::new().evaluate_flat(&db, &query).unwrap();
        out.result.validate().unwrap();
        assert_eq!(
            materialize(&out.result).unwrap().tuple_set(),
            rdb_canonical(&db, &query)
        );
        // Q1 admits no f-tree better than s = 2 (Example 5).
        assert!((out.stats.plan_cost - 2.0).abs() < 1e-6);
        assert_eq!(out.stats.result_tuples, out.result.tuple_count());
        // The streaming cursor sees exactly as many tuples as the count.
        let mut cursor = out.tuples();
        let mut streamed = 0u128;
        while cursor.advance() {
            streamed += 1;
        }
        assert_eq!(streamed, out.stats.result_tuples);
    }

    #[test]
    fn both_flat_pipelines_agree() {
        let (db, rels) = grocery();
        let query = q1(&db, &rels);
        let direct = FdbEngine::new().evaluate_flat(&db, &query).unwrap();
        let via_ops = FdbEngine::new()
            .evaluate_flat_via_operators(&db, &query)
            .unwrap();
        via_ops.result.validate().unwrap();
        assert_eq!(
            materialize(&direct.result).unwrap().tuple_set(),
            materialize(&via_ops.result).unwrap().tuple_set()
        );
    }

    #[test]
    fn projection_and_constant_selection_are_applied() {
        let (db, rels) = grocery();
        let cat = db.catalog();
        let oid = cat.find_attr("Orders.oid").unwrap();
        let dispatcher = cat.find_attr("Disp.dispatcher").unwrap();
        let query = q1(&db, &rels)
            .with_const_selection(oid, ComparisonOp::Eq, Value::new(1))
            .with_projection(vec![oid, dispatcher]);
        let out = FdbEngine::new().evaluate_flat(&db, &query).unwrap();
        out.result.validate().unwrap();
        assert_eq!(out.result.visible_attrs(), vec![oid, dispatcher]);
        assert_eq!(
            materialize(&out.result).unwrap().tuple_set(),
            rdb_canonical(&db, &query)
        );
    }

    #[test]
    fn factorised_evaluation_joins_two_previous_results() {
        // Example 2 of the paper: Q1 ⋈_{item, location} Q2, evaluated on the
        // factorised results of Q1 and Q2.
        let (db, rels) = grocery();
        let cat = db.catalog();
        let query1 = q1(&db, &rels);
        let q2 = Query::product(vec![rels[3], rels[4]]).with_equality(
            cat.find_attr("Produce.supplier").unwrap(),
            cat.find_attr("Serve.supplier").unwrap(),
        );
        let engine = FdbEngine::new();
        let r1 = engine.evaluate_flat(&db, &query1).unwrap();
        let r2 = engine.evaluate_flat(&db, &q2).unwrap();
        // Product of the two factorised results, then equality selections on
        // item and location.
        let product = ops::product(r1.result.clone(), r2.result.clone()).unwrap();
        let fq = FactorisedQuery::equalities(vec![
            (
                cat.find_attr("Orders.item").unwrap(),
                cat.find_attr("Produce.item").unwrap(),
            ),
            (
                cat.find_attr("Store.location").unwrap(),
                cat.find_attr("Serve.location").unwrap(),
            ),
        ]);
        let joined = engine.evaluate_factorised(&product, &fq).unwrap();
        joined.result.validate().unwrap();

        // Reference: the flat join of all five relations.
        let full_query = Query::product(rels.clone())
            .with_equality(
                cat.find_attr("Orders.item").unwrap(),
                cat.find_attr("Store.item").unwrap(),
            )
            .with_equality(
                cat.find_attr("Store.location").unwrap(),
                cat.find_attr("Disp.location").unwrap(),
            )
            .with_equality(
                cat.find_attr("Produce.supplier").unwrap(),
                cat.find_attr("Serve.supplier").unwrap(),
            )
            .with_equality(
                cat.find_attr("Orders.item").unwrap(),
                cat.find_attr("Produce.item").unwrap(),
            )
            .with_equality(
                cat.find_attr("Store.location").unwrap(),
                cat.find_attr("Serve.location").unwrap(),
            );
        assert_eq!(
            materialize(&joined.result).unwrap().tuple_set(),
            rdb_canonical(&db, &full_query)
        );
        assert!(!joined.stats.plan.is_empty());
    }

    #[test]
    fn greedy_and_exhaustive_engines_agree_on_the_result() {
        let (db, rels) = grocery();
        let cat = db.catalog();
        let query1 = q1(&db, &rels);
        let base = FdbEngine::new().evaluate_flat(&db, &query1).unwrap();
        let fq = FactorisedQuery::equalities(vec![(
            cat.find_attr("Orders.oid").unwrap(),
            cat.find_attr("Disp.dispatcher").unwrap(),
        )]);
        let a = FdbEngine::new()
            .evaluate_factorised(&base.result, &fq)
            .unwrap();
        let b = FdbEngine::greedy()
            .evaluate_factorised(&base.result, &fq)
            .unwrap();
        assert_eq!(
            materialize(&a.result).unwrap().tuple_set(),
            materialize(&b.result).unwrap().tuple_set()
        );
        assert!(b.stats.plan_cost + 1e-6 >= a.stats.plan_cost);
    }

    #[test]
    fn flat_aggregate_matches_enumeration() {
        use fdb_frep::AggregateValue;
        let (db, rels) = grocery();
        let cat = db.catalog();
        let oid = cat.find_attr("Orders.oid").unwrap();
        let base = FdbEngine::new()
            .evaluate_flat(&db, &q1(&db, &rels))
            .unwrap();
        let flat = materialize(&base.result).unwrap();
        let col = flat.attrs().iter().position(|&a| a == oid).unwrap();

        let query = q1(&db, &rels).with_aggregate(fdb_common::AggregateHead::count());
        let out = FdbEngine::new()
            .evaluate_flat_aggregate(&db, &query)
            .unwrap();
        assert_eq!(
            out.result,
            fdb_frep::AggregateResult::Scalar(AggregateValue::Count(flat.len() as u128))
        );
        assert_eq!(out.stats.aggregates_on_overlay, 0);

        let query = q1(&db, &rels).with_aggregate(fdb_common::AggregateHead::over(
            fdb_common::AggregateFunc::Sum,
            oid,
        ));
        let expected: u128 = flat.rows().map(|r| r[col].raw() as u128).sum();
        let out = FdbEngine::new()
            .evaluate_flat_aggregate(&db, &query)
            .unwrap();
        assert_eq!(
            out.result,
            fdb_frep::AggregateResult::Scalar(AggregateValue::Sum(expected))
        );

        // A query without an aggregate head is rejected.
        assert!(FdbEngine::new()
            .evaluate_flat_aggregate(&db, &q1(&db, &rels))
            .is_err());
    }

    #[test]
    fn flat_grouped_aggregate_works_for_any_group_attribute() {
        // Root-attribute grouping must not depend on where the cost-driven
        // f-tree search happens to put the group attribute: the engine lifts
        // it to a root with swaps.  Check every attribute of the query
        // against the enumeration oracle (which groups on anything).
        let (db, rels) = grocery();
        let base = FdbEngine::new()
            .evaluate_flat(&db, &q1(&db, &rels))
            .unwrap();
        for group in base.result.visible_attrs() {
            let query =
                q1(&db, &rels).with_aggregate(fdb_common::AggregateHead::count().grouped_by(group));
            let out = FdbEngine::new()
                .evaluate_flat_aggregate(&db, &query)
                .unwrap_or_else(|e| panic!("group by {group} failed: {e:?}"));
            let expected = fdb_frep::aggregate::by_enumeration(
                &base.result,
                fdb_frep::AggregateKind::Count,
                &[group],
            )
            .unwrap();
            assert_eq!(out.result, expected, "group by {group}");
        }
    }

    #[test]
    fn factorised_aggregate_runs_on_the_overlay_and_matches_the_result() {
        let (db, rels) = grocery();
        let cat = db.catalog();
        let base = FdbEngine::new()
            .evaluate_flat(&db, &q1(&db, &rels))
            .unwrap();
        let fq = FactorisedQuery::equalities(vec![(
            cat.find_attr("Orders.oid").unwrap(),
            cat.find_attr("Disp.dispatcher").unwrap(),
        )]);
        let engine = FdbEngine::new();
        let full = engine.evaluate_factorised(&base.result, &fq).unwrap();
        let head = fdb_common::AggregateHead::count();
        let agg = engine
            .evaluate_factorised_aggregate(&base.result, &fq, &head)
            .unwrap();
        assert_eq!(
            agg.result,
            fdb_frep::AggregateResult::Scalar(fdb_frep::AggregateValue::Count(
                full.stats.result_tuples
            ))
        );
        assert_eq!(
            agg.stats.aggregates_on_overlay, 1,
            "equality-only plans end structurally: the aggregate folds over the overlay"
        );
        assert!((agg.stats.result_tree_cost - full.stats.result_tree_cost).abs() < 1e-9);

        // The counters table formats both counters on one consistent row.
        let table = agg.stats.counters_table();
        assert!(table.contains("fused segments / overlay aggregates"));
        assert!(table.contains(&format!(
            "{} / {}",
            agg.stats.fused_segments, agg.stats.aggregates_on_overlay
        )));
        // The whole plan ran on the overlay: every operator's arena was
        // skipped, none was emitted.
        assert!(
            agg.stats.arenas_skipped > 0,
            "aggregate sink skips every arena pass"
        );
        assert_eq!(agg.stats.arenas_skipped, agg.stats.plan.len());
    }

    #[test]
    fn selection_then_aggregate_folds_the_filter_and_skips_every_arena() {
        // The 2013 aggregation paper's central shape: σ then AGG, no
        // equality conditions.  The selection must fold into the aggregate
        // accumulation — no clone, no selection arena, no final arena.
        let (db, rels) = grocery();
        let cat = db.catalog();
        let item = cat.find_attr("Orders.item").unwrap();
        let base = FdbEngine::new()
            .evaluate_flat(&db, &q1(&db, &rels))
            .unwrap();
        let fq = FactorisedQuery::default().with_const_selection(ConstSelection {
            attr: item,
            op: ComparisonOp::Ge,
            value: Value::new(2),
        });
        let head = fdb_common::AggregateHead::count();
        let agg = FdbEngine::new()
            .evaluate_factorised_aggregate(&base.result, &fq, &head)
            .unwrap();
        // Reference: execute the selection, then count.
        let full = FdbEngine::new()
            .evaluate_factorised(&base.result, &fq)
            .unwrap();
        assert_eq!(
            agg.result,
            fdb_frep::AggregateResult::Scalar(fdb_frep::AggregateValue::Count(
                full.stats.result_tuples
            ))
        );
        assert_eq!(agg.stats.aggregates_on_overlay, 1);
        assert_eq!(
            agg.stats.fused_segments, 1,
            "a single-selection aggregate plan still runs as one overlay program"
        );
        assert_eq!(agg.stats.barriers_fused, 1, "the selection folded in");
        assert!(
            agg.stats.arenas_skipped > 0,
            "zero intermediate arenas were emitted"
        );
    }

    #[test]
    fn factorised_query_with_barriers_fuses_the_whole_plan() {
        let (db, rels) = grocery();
        let cat = db.catalog();
        let base = FdbEngine::new()
            .evaluate_flat(&db, &q1(&db, &rels))
            .unwrap();
        let item = cat.find_attr("Orders.item").unwrap();
        let oid = cat.find_attr("Orders.oid").unwrap();
        let dispatcher = cat.find_attr("Disp.dispatcher").unwrap();
        let fq = FactorisedQuery::equalities(vec![(oid, dispatcher)])
            .with_const_selection(ConstSelection {
                attr: item,
                op: ComparisonOp::Ge,
                value: Value::new(1),
            })
            .with_projection(vec![oid, item]);
        let out = FdbEngine::new()
            .evaluate_factorised(&base.result, &fq)
            .unwrap();
        out.result.validate().unwrap();
        assert_eq!(out.stats.fused_segments, 1, "one whole-plan program");
        assert!(
            out.stats.barriers_fused >= 2,
            "the selection and the projection executed inside the program"
        );
        assert!(out.stats.arenas_skipped >= out.stats.plan.len().saturating_sub(2));
    }

    #[test]
    fn counters_table_pins_the_row_set() {
        let stats = EvalStats {
            fused_segments: 2,
            aggregates_on_overlay: 1,
            barriers_fused: 3,
            arenas_skipped: 4,
            queries_served: 7,
            plan_cache_hits: 5,
            plan_cache_misses: 6,
            plan_cache_evictions: 8,
            chain_heads: 9,
            flat_head_fallbacks: 10,
            ..Default::default()
        };
        let table = stats.counters_table();
        let rows: Vec<&str> = table.lines().collect();
        assert_eq!(rows.len(), 10, "one row per pinned counter:\n{table}");
        for (row, needle) in rows.iter().zip([
            "optimisation time",
            "execution time",
            "plan cost s(f)",
            "result singletons",
            "result tuples",
            "explored states",
            "fused segments / overlay aggregates",
            "barriers fused / arenas skipped",
            "queries served / cache hits / misses / evictions",
            "chain heads / flat fallbacks",
        ]) {
            assert!(row.starts_with(needle), "row {row:?} vs {needle:?}");
        }
        assert!(table.contains("2 / 1"), "fused/overlay values:\n{table}");
        assert!(table.contains("3 / 4"), "barrier/arena values:\n{table}");
        assert!(table.contains("7 / 5 / 6 / 8"), "serving values:\n{table}");
        assert!(table.contains("9 / 10"), "head strategy values:\n{table}");
        // Display renders the same table.
        assert_eq!(format!("{stats}"), table);
    }

    #[test]
    fn factorised_query_with_selection_and_projection() {
        let (db, rels) = grocery();
        let cat = db.catalog();
        let base = FdbEngine::new()
            .evaluate_flat(&db, &q1(&db, &rels))
            .unwrap();
        let item = cat.find_attr("Orders.item").unwrap();
        let dispatcher = cat.find_attr("Disp.dispatcher").unwrap();
        let fq = FactorisedQuery::default()
            .with_const_selection(ConstSelection {
                attr: item,
                op: ComparisonOp::Eq,
                value: Value::new(2),
            })
            .with_projection(vec![dispatcher]);
        let out = FdbEngine::new()
            .evaluate_factorised(&base.result, &fq)
            .unwrap();
        out.result.validate().unwrap();
        assert_eq!(out.result.visible_attrs(), vec![dispatcher]);
        // Reference through the flat engine.
        let reference = q1(&db, &rels)
            .with_const_selection(item, ComparisonOp::Eq, Value::new(2))
            .with_projection(vec![dispatcher]);
        assert_eq!(
            materialize(&out.result).unwrap().tuple_set(),
            rdb_canonical(&db, &reference)
        );
    }
}
