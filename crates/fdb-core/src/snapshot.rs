//! Durable snapshots of representations and whole serving databases.
//!
//! The byte format lives in `fdb-frep`'s [`fdb_frep::snapshot`] module —
//! length-prefixed, per-section checksummed, structurally re-verified on
//! every load.  This module adds the filesystem orchestration:
//!
//! * [`save_rep`]/[`load_rep`] persist one frozen [`FRep`] to a file.
//!   Writes are **atomic**: the bytes go to a `<name>.tmp` sibling, are
//!   synced, and are renamed over the final path, so a crash mid-write
//!   leaves either the old file or no file — never a torn one.  (A torn
//!   write that slips through anyway — e.g. a dying disk — is caught at
//!   load time by the framing and checksum verification.)
//! * [`save_database`]/[`load_database`] persist every representation of a
//!   [`SharedDatabase`] into a directory: one `rep-<index>.fdbs` file per
//!   slot plus a `MANIFEST.fdbs` mapping registration names to files, in
//!   the same checksummed section format (header kind
//!   [`fdb_frep::snapshot::KIND_MANIFEST`]).  Loading rebuilds the database
//!   with identical [`RepId`]s, names and name-index semantics.
//!
//! Failure vocabulary: OS-level failures (missing file, permissions, disk
//! full) report [`FdbError::SnapshotIo`]; bytes that were read but fail
//! verification report [`FdbError::SnapshotCorrupt`] or
//! [`FdbError::SnapshotVersionMismatch`].  Nothing panics, and a failed
//! load leaves the caller's state untouched.

use crate::serving::SharedDatabase;
use fdb_common::{ExecCtx, FdbError, Result};
use fdb_frep::snapshot::{read_sections, write_header, write_section, KIND_MANIFEST};
use fdb_frep::{decode_frep_ctx, encode_frep_ctx, FRep};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File name of the database manifest inside a snapshot directory.
pub const MANIFEST_FILE: &str = "MANIFEST.fdbs";

/// Section tag of the manifest's single section (`"MNFS"`).
const TAG_MANIFEST: u32 = u32::from_le_bytes(*b"MNFS");

/// Maps an OS error into [`FdbError::SnapshotIo`] with the operation and
/// path spelled out.
fn io_err(op: &str, path: &Path, err: std::io::Error) -> FdbError {
    FdbError::SnapshotIo {
        detail: format!("{op} {}: {err}", path.display()),
    }
}

/// Writes `bytes` to `path` atomically: the data lands in a `.tmp` sibling
/// first, is synced to disk, and is renamed over the final path.  Rename is
/// atomic on POSIX filesystems, so a crash at any point leaves either the
/// previous file or no file at `path` — never a prefix.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let result = (|| {
        let mut file = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        file.write_all(bytes)
            .map_err(|e| io_err("write", &tmp, e))?;
        file.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
        drop(file);
        fs::rename(&tmp, path).map_err(|e| io_err("rename into", path, e))
    })();
    if result.is_err() {
        // Best effort: don't leave the partial temporary behind.
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Saves one frozen representation to `path` (atomic write; see the module
/// docs).
pub fn save_rep(rep: &FRep, path: &Path) -> Result<()> {
    save_rep_ctx(rep, path, &ExecCtx::unlimited())
}

/// [`save_rep`] under an execution context: encoding charges the context
/// per arena record and hosts the `snapshot.write` failpoint.
pub fn save_rep_ctx(rep: &FRep, path: &Path, ctx: &ExecCtx) -> Result<()> {
    let bytes = encode_frep_ctx(rep, ctx)?;
    write_atomic(path, &bytes)
}

/// Loads one representation from `path`, re-verifying everything (framing,
/// checksums, structural validation) before returning it.
pub fn load_rep(path: &Path) -> Result<FRep> {
    load_rep_ctx(path, &ExecCtx::unlimited())
}

/// [`load_rep`] under an execution context (the `snapshot.read` failpoint
/// plus decode work charging).
pub fn load_rep_ctx(path: &Path, ctx: &ExecCtx) -> Result<FRep> {
    let bytes = fs::read(path).map_err(|e| io_err("read", path, e))?;
    decode_frep_ctx(&bytes, ctx)
}

/// The file name a slot's representation is stored under inside a database
/// snapshot directory.
fn rep_file_name(index: usize) -> String {
    format!("rep-{index}.fdbs")
}

/// Encodes the manifest: one checksummed section listing, per slot in
/// registration order, the registration name and the representation's file
/// name.
fn encode_manifest(entries: &[(String, String)]) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, file) in entries {
        for text in [name, file] {
            payload.extend_from_slice(&(text.len() as u32).to_le_bytes());
            payload.extend_from_slice(text.as_bytes());
        }
    }
    let mut out = Vec::new();
    write_header(&mut out, KIND_MANIFEST, 1);
    write_section(&mut out, TAG_MANIFEST, &payload);
    out
}

/// Decodes a manifest produced by [`encode_manifest`], bounds-checking
/// every length against the payload it was read from.
fn decode_manifest(bytes: &[u8]) -> Result<Vec<(String, String)>> {
    let corrupt = |detail: String| FdbError::SnapshotCorrupt { detail };
    let sections = read_sections(bytes, KIND_MANIFEST)?;
    let [(tag, payload)] = sections.as_slice() else {
        return Err(corrupt(format!(
            "manifest must have exactly 1 section, found {}",
            sections.len()
        )));
    };
    if *tag != TAG_MANIFEST {
        return Err(corrupt(format!(
            "unexpected manifest section tag {tag:#010x}"
        )));
    }
    let mut at = 0usize;
    let mut take = |n: usize, what: &str| -> Result<&[u8]> {
        let end = at.checked_add(n).filter(|&end| end <= payload.len());
        let Some(end) = end else {
            return Err(corrupt(format!(
                "manifest truncated reading {what} at offset {at}"
            )));
        };
        let slice = &payload[at..end];
        at = end;
        Ok(slice)
    };
    let count = u32::from_le_bytes(take(4, "entry count")?.try_into().unwrap()) as usize;
    // Each entry needs at least its two length prefixes.
    if count > payload.len() / 8 {
        return Err(corrupt(format!(
            "manifest claims {count} entries in a {}-byte payload",
            payload.len()
        )));
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let mut text = |what: &str| -> Result<String> {
            let len = u32::from_le_bytes(take(4, what)?.try_into().unwrap()) as usize;
            String::from_utf8(take(len, what)?.to_vec())
                .map_err(|_| corrupt(format!("manifest entry {i}: {what} is not UTF-8")))
        };
        let name = text("registration name")?;
        let file = text("file name")?;
        entries.push((name, file));
    }
    if at != payload.len() {
        return Err(corrupt(format!(
            "manifest has {} trailing bytes after {count} entries",
            payload.len() - at
        )));
    }
    Ok(entries)
}

/// Saves every representation of a database into `dir` (created if
/// missing): one `rep-<index>.fdbs` per slot plus [`MANIFEST_FILE`].  Every
/// file is written atomically; the manifest goes last, so a crash mid-save
/// never leaves a manifest pointing at missing files when the directory was
/// fresh.
pub fn save_database(db: &SharedDatabase, dir: &Path) -> Result<()> {
    save_database_ctx(db, dir, &ExecCtx::unlimited())
}

/// [`save_database`] under an execution context, threaded through every
/// per-representation encode.
pub fn save_database_ctx(db: &SharedDatabase, dir: &Path, ctx: &ExecCtx) -> Result<()> {
    fs::create_dir_all(dir).map_err(|e| io_err("create directory", dir, e))?;
    let mut entries = Vec::with_capacity(db.len());
    for (index, id) in db.ids().enumerate() {
        let rep = db.get(id).expect("ids() yields only registered slots");
        let name = db.name(id).expect("registered slot has a name");
        let file = rep_file_name(index);
        save_rep_ctx(&rep, &dir.join(&file), ctx)?;
        entries.push((name.to_string(), file));
    }
    write_atomic(&dir.join(MANIFEST_FILE), &encode_manifest(&entries))
}

/// Loads a database saved by [`save_database`]: reads and verifies the
/// manifest, then loads and re-verifies every representation file,
/// registering them in manifest order so every [`crate::RepId`] — and the
/// first-registration-wins name index — comes back identical.
pub fn load_database(dir: &Path) -> Result<SharedDatabase> {
    load_database_ctx(dir, &ExecCtx::unlimited())
}

/// [`load_database`] under an execution context, threaded through every
/// per-representation decode.
pub fn load_database_ctx(dir: &Path, ctx: &ExecCtx) -> Result<SharedDatabase> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let bytes = fs::read(&manifest_path).map_err(|e| io_err("read", &manifest_path, e))?;
    let entries = decode_manifest(&bytes)?;
    let mut db = SharedDatabase::new();
    for (name, file) in entries {
        if file.contains(['/', '\\']) || file == ".." {
            return Err(FdbError::SnapshotCorrupt {
                detail: format!("manifest entry {name:?} escapes the snapshot directory: {file:?}"),
            });
        }
        let rep = load_rep_ctx(&dir.join(&file), ctx)?;
        db.insert(name, rep)
            .map_err(|e| FdbError::SnapshotCorrupt {
                detail: format!("manifest registers the same name twice: {e}"),
            })?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FdbEngine;
    use fdb_common::{Catalog, Query};
    use fdb_relation::Database;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A unique scratch directory per test invocation, cleaned up by the
    /// caller (or the OS's temp reaper on a panicking test).
    fn scratch_dir(label: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let unique = NEXT.fetch_add(1, Ordering::SeqCst);
        let dir =
            std::env::temp_dir().join(format!("fdb-snap-{}-{label}-{unique}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_rep() -> FRep {
        let mut catalog = Catalog::new();
        let (r, _) = catalog.add_relation("R", &["a", "b"]);
        let (s, _) = catalog.add_relation("S", &["b2", "c"]);
        let mut db = Database::new(catalog);
        db.insert_raw_rows(r, &[vec![1, 1], vec![1, 2], vec![2, 2]])
            .unwrap();
        db.insert_raw_rows(s, &[vec![1, 5], vec![2, 6], vec![2, 7]])
            .unwrap();
        let b = db.catalog().find_attr("R.b").unwrap();
        let b2 = db.catalog().find_attr("S.b2").unwrap();
        let query = Query::product(vec![r, s]).with_equality(b, b2);
        FdbEngine::new().evaluate_flat(&db, &query).unwrap().result
    }

    #[test]
    fn file_round_trip_is_store_identical_and_leaves_no_temp_behind() {
        let dir = scratch_dir("file");
        let path = dir.join("rep.fdbs");
        let rep = sample_rep();
        save_rep(&rep, &path).unwrap();
        assert!(
            fs::read_dir(&dir)
                .unwrap()
                .all(|e| e.unwrap().file_name() == "rep.fdbs"),
            "the temporary file was renamed away"
        );
        let loaded = load_rep(&path).unwrap();
        assert!(loaded.store_identical(&rep));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_and_truncated_files_are_structured_errors() {
        let dir = scratch_dir("errors");
        let path = dir.join("rep.fdbs");
        assert!(matches!(load_rep(&path), Err(FdbError::SnapshotIo { .. })));
        let rep = sample_rep();
        save_rep(&rep, &path).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            load_rep(&path),
            Err(FdbError::SnapshotCorrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn database_round_trip_preserves_ids_names_and_content() {
        let dir = scratch_dir("db");
        let rep = sample_rep();
        let mut db = SharedDatabase::new();
        let first = db.insert("base", rep.clone()).unwrap();
        let second = db.insert("other", rep.clone()).unwrap();
        let third = db.insert("third", rep.clone()).unwrap();

        save_database(&db, &dir).unwrap();
        let loaded = load_database(&dir).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded.find("base"), Some(first));
        assert_eq!(loaded.find("other"), Some(second));
        assert_eq!(loaded.name(third), Some("third"));
        for id in loaded.ids() {
            assert!(loaded.get(id).unwrap().store_identical(&rep));
            assert_eq!(loaded.epoch(id), Some(0), "a fresh load starts at epoch 0");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_manifests_are_rejected() {
        let dir = scratch_dir("manifest");
        let mut db = SharedDatabase::new();
        db.insert("base", sample_rep()).unwrap();
        save_database(&db, &dir).unwrap();

        let manifest = dir.join(MANIFEST_FILE);
        let good = fs::read(&manifest).unwrap();

        // A flipped byte anywhere in the manifest fails its checksum (or
        // the header decode) — never a panic, never a partial database.
        for at in 0..good.len() {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            fs::write(&manifest, &bad).unwrap();
            match load_database(&dir) {
                Err(
                    FdbError::SnapshotCorrupt { .. } | FdbError::SnapshotVersionMismatch { .. },
                ) => {}
                other => panic!("flip at {at}: expected structured corruption, got {other:?}"),
            }
        }

        // An entry pointing outside the directory is refused up front.
        fs::write(
            &manifest,
            encode_manifest(&[("evil".into(), "../rep-0.fdbs".into())]),
        )
        .unwrap();
        match load_database(&dir) {
            Err(FdbError::SnapshotCorrupt { detail }) => {
                assert!(detail.contains("escapes"), "unexpected detail: {detail}")
            }
            other => panic!("expected path-escape rejection, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
