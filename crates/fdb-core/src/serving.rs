//! Concurrent query serving on shared arenas.
//!
//! A frozen f-representation is immutable (the sharing contract in the
//! `fdb-frep` crate docs), so serving many queries over one database needs
//! no locking on the data path at all:
//!
//! * [`SharedDatabase`] holds the frozen representations behind `Arc`s and
//!   hands out stable [`RepId`]s — workers read the same arenas in place;
//! * [`FdbServer`] executes batches of [`ServeRequest`]s on a vendored
//!   work-stealing [`ThreadPool`], each request running the existing fused
//!   single-pass pipeline untouched;
//! * [`PlanCache`] memoises the optimiser's output per **query shape** —
//!   the input f-tree plus the operator skeleton with selection constants
//!   abstracted away — so repeated traffic (the common case under a skewed
//!   query mix) skips optimisation entirely.  Hits and misses surface in
//!   [`EvalStats::counters_table`](crate::EvalStats::counters_table).
//!
//! Results are deterministic: execution is a pure function of the frozen
//! input and the query, so a batch served on 8 workers is store-identical
//! to the same batch evaluated sequentially (the randomized suite in
//! `tests/concurrent_equivalence.rs` pins this).
//!
//! # Hot swap
//!
//! Database slots are **versioned**: [`SharedDatabase::replace`] publishes
//! a new representation under an existing [`RepId`] atomically, bumping the
//! slot's epoch, while in-flight queries finish on whichever `Arc` they
//! pinned.  [`FdbServer::replace`] pairs the swap with targeted plan-cache
//! invalidation — exactly the entries keyed on the replaced
//! representation's f-tree are dropped (cache keys embed the full tree
//! structure, so plans for other trees are untouched and stale hits are
//! structurally impossible) — and surfaces the drop count as
//! `plan_cache_invalidations` in [`ServerStats::counters_table`].  The
//! chaos suite (`tests/snapshot_recovery.rs`) swaps under concurrent load
//! at 1–8 workers and panics mid-swap through the `db.swap` failpoint.

use crate::engine::{
    AggregateOutput, EvalOutput, EvalStats, FactorisedQuery, FdbEngine, OrderedOutput,
};
use fdb_common::{failpoint, AggregateHead, AttrId, ExecCtx, FdbError, QueryLimits, Result};
use fdb_frep::FRep;
use fdb_ftree::FTree;
use fdb_plan::OptimizedPlan;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, RwLock};
pub use workpool::{default_threads, ThreadPool};

/// Handle to a frozen representation registered in a [`SharedDatabase`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RepId(usize);

/// An `Arc`-shared database of frozen f-representations.
///
/// Registration (`insert`) is the freeze point: the representation is moved
/// behind an `Arc` and never mutated again, so any number of serving
/// threads may read it concurrently without synchronisation.  Every slot is
/// **versioned**: [`SharedDatabase::replace`] publishes a new representation
/// under the same [`RepId`] atomically, bumping the slot's epoch.  In-flight
/// queries keep reading whichever `Arc` they pinned — the old arena stays
/// valid until its last reader drops it — while every request that resolves
/// the id after the swap reads the new epoch.  Name lookup goes through a
/// hash-map index kept consistent across `insert` and `replace`.
#[derive(Debug, Default)]
pub struct SharedDatabase {
    names: Vec<String>,
    slots: Vec<RepSlot>,
    by_name: HashMap<String, RepId>,
}

/// One registered slot: the current representation and its epoch, swapped
/// together under a short write lock.  Readers clone the `Arc` and get out;
/// the lock is never held across evaluation.
#[derive(Debug)]
struct RepSlot {
    current: RwLock<VersionedRep>,
}

#[derive(Clone, Debug)]
struct VersionedRep {
    rep: Arc<FRep>,
    epoch: u64,
}

impl RepSlot {
    fn new(rep: FRep) -> Self {
        RepSlot {
            current: RwLock::new(VersionedRep {
                rep: Arc::new(rep),
                epoch: 0,
            }),
        }
    }

    /// The slot's current state, with a poisoned lock recovered (the
    /// critical sections only swap whole values, so every intermediate
    /// state is valid).
    fn read(&self) -> VersionedRep {
        self.current
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone()
    }
}

impl Clone for SharedDatabase {
    fn clone(&self) -> Self {
        SharedDatabase {
            names: self.names.clone(),
            slots: self
                .slots
                .iter()
                .map(|slot| RepSlot {
                    current: RwLock::new(slot.read()),
                })
                .collect(),
            by_name: self.by_name.clone(),
        }
    }
}

impl SharedDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        SharedDatabase::default()
    }

    /// Registers a frozen representation under a name and returns its id.
    ///
    /// Names are stable handles for clients ([`SharedDatabase::find`]), so
    /// registering a name twice is refused with
    /// [`FdbError::DuplicateName`] instead of silently minting a second id
    /// the name lookup can never reach.  (The old behaviour registered the
    /// shadowed slot anyway: a client that inserted, resolved by name and
    /// then queried would silently read the *first* registration's data.)
    /// To change the data under an existing name, resolve the id and
    /// [`SharedDatabase::replace`] it — replacement keeps the name → id
    /// binding and bumps the slot's epoch.
    pub fn insert(&mut self, name: impl Into<String>, rep: FRep) -> Result<RepId> {
        let id = RepId(self.slots.len());
        let name = name.into();
        match self.by_name.entry(name.clone()) {
            std::collections::hash_map::Entry::Occupied(_) => {
                return Err(FdbError::DuplicateName { name });
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(id);
            }
        }
        self.names.push(name);
        self.slots.push(RepSlot::new(rep));
        Ok(id)
    }

    /// The current representation registered under `id`.  The returned
    /// `Arc` is pinned: a concurrent [`SharedDatabase::replace`] publishes
    /// a new epoch without affecting it.
    pub fn get(&self, id: RepId) -> Option<Arc<FRep>> {
        self.slots.get(id.0).map(|slot| slot.read().rep)
    }

    /// The current representation and its epoch, read atomically.
    pub fn get_versioned(&self, id: RepId) -> Option<(Arc<FRep>, u64)> {
        self.slots.get(id.0).map(|slot| {
            let current = slot.read();
            (current.rep, current.epoch)
        })
    }

    /// The slot's current epoch: 0 at registration, bumped by every
    /// [`SharedDatabase::replace`].
    pub fn epoch(&self, id: RepId) -> Option<u64> {
        self.slots.get(id.0).map(|slot| slot.read().epoch)
    }

    /// Atomically publishes a new representation under an existing id,
    /// bumping the slot's epoch, and returns the replaced `Arc` (still
    /// valid for every in-flight reader that pinned it).  This does not
    /// touch any plan cache — [`FdbServer::replace`] is the serving-layer
    /// entry point that also invalidates the plans keyed on the replaced
    /// representation's f-tree.
    pub fn replace(&self, id: RepId, rep: FRep) -> Result<Arc<FRep>> {
        let slot = self.slots.get(id.0).ok_or_else(|| FdbError::InvalidInput {
            detail: format!("unknown representation id {id:?}"),
        })?;
        let mut guard = slot
            .current
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        let epoch = guard.epoch + 1;
        let old = std::mem::replace(
            &mut *guard,
            VersionedRep {
                rep: Arc::new(rep),
                epoch,
            },
        );
        Ok(old.rep)
    }

    /// The registration name of a slot.
    pub fn name(&self, id: RepId) -> Option<&str> {
        self.names.get(id.0).map(String::as_str)
    }

    /// Finds a representation by registration name — a hash-map lookup.
    /// Each name maps to exactly one slot ([`SharedDatabase::insert`]
    /// refuses duplicates), and [`SharedDatabase::replace`] keeps the
    /// binding while swapping the data, so the resolved id stays valid
    /// across hot swaps.
    pub fn find(&self, name: &str) -> Option<RepId> {
        self.by_name.get(name).copied()
    }

    /// The id of every registered slot, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = RepId> + '_ {
        (0..self.slots.len()).map(RepId)
    }

    /// Number of registered representations.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no representation is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// The cache key: a fingerprint of the query **shape**.  It pins everything
/// the optimiser's answer depends on — optimiser kind, the input f-tree's
/// exact structure (node ids, parent links, classes, visible attributes,
/// bound constants and edge cardinalities; the cached plan's operators
/// reference node ids, so structural identity is required for validity) and
/// the equality conditions — plus the operator skeleton around the cached
/// plan: constant selections as `(attribute, operator)` pairs with the
/// **constants abstracted away** (they never reach the optimiser; they are
/// re-applied verbatim per request), and the projection list.
///
/// The key also covers the request's **head**: the aggregate head (function,
/// attribute, `DISTINCT`, grouping attributes) and the `ORDER BY` list.
/// The head steers how the engine finishes the plan — grouping and ordering
/// append chain-restructuring swaps, and the strategy choice is part of the
/// shape — so two requests with the same structural body but different
/// heads must not share an entry.  (Omitting the head was a correctness
/// hazard: a cached entry would make a `COUNT` and a
/// `COUNT(DISTINCT…) GROUP BY…` of the same body indistinguishable to any
/// future planner that specialises on the head.)
pub(crate) fn plan_key(
    engine: &FdbEngine,
    tree: &FTree,
    query: &FactorisedQuery,
    aggregate: Option<&AggregateHead>,
    order_by: &[AttrId],
) -> String {
    let mut key = String::new();
    let _ = write!(key, "opt:{:?}|", engine.optimizer);
    key.push_str(&tree_fingerprint(tree));
    key.push('|');
    for (a, b) in &query.equalities {
        let _ = write!(key, "q{}={};", a.0, b.0);
    }
    key.push('|');
    for sel in &query.const_selections {
        // Constants abstracted: the skeleton is (attribute, operator).
        let _ = write!(key, "s{}{:?};", sel.attr.0, sel.op);
    }
    key.push('|');
    if let Some(projection) = &query.projection {
        for attr in projection {
            let _ = write!(key, "r{},", attr.0);
        }
    }
    key.push('|');
    if let Some(head) = aggregate {
        let _ = write!(key, "a{:?}", head.func);
        if let Some(attr) = head.attr {
            let _ = write!(key, ":{}", attr.0);
        }
        if head.distinct {
            key.push('d');
        }
        key.push('g');
        for attr in &head.group_by {
            let _ = write!(key, "{},", attr.0);
        }
    }
    key.push('|');
    for attr in order_by {
        let _ = write!(key, "o{},", attr.0);
    }
    key
}

/// The input-f-tree portion of a [`plan_key`]: the tree's exact structure —
/// node ids, parent links, classes, projected attributes, bound constants —
/// plus the dependency edges with their cardinalities.  Every cache key
/// embeds this fingerprint verbatim right after the optimiser tag, which is
/// what makes targeted invalidation possible: the plans keyed on a replaced
/// representation's tree are exactly the keys carrying its fingerprint.
pub(crate) fn tree_fingerprint(tree: &FTree) -> String {
    let mut key = String::new();
    for edge in tree.edges() {
        let _ = write!(key, "e{}:", edge.cardinality);
        for attr in &edge.attrs {
            let _ = write!(key, "{},", attr.0);
        }
        key.push(';');
    }
    key.push('|');
    for node in tree.node_ids() {
        let _ = write!(key, "n{}", node.index());
        if let Some(parent) = tree.parent(node) {
            let _ = write!(key, "p{}", parent.index());
        }
        key.push('c');
        for attr in tree.class(node) {
            let _ = write!(key, "{},", attr.0);
        }
        key.push('v');
        for attr in tree.projected_attrs(node) {
            let _ = write!(key, "{},", attr.0);
        }
        if let Some(constant) = tree.constant(node) {
            let _ = write!(key, "k{}", constant.0);
        }
        key.push(';');
    }
    key
}

/// Whether a cache key was built over the given input-tree fingerprint:
/// the fingerprint sits between the first `|` (after the optimiser tag)
/// and the `|` that opens the query skeleton, so the trailing delimiter
/// keeps a tree whose fingerprint happens to be a prefix of another's from
/// matching.
fn key_matches_tree(key: &str, fingerprint: &str) -> bool {
    key.split_once('|').is_some_and(|(_, rest)| {
        rest.len() > fingerprint.len()
            && rest.starts_with(fingerprint)
            && rest.as_bytes()[fingerprint.len()] == b'|'
    })
}

/// Default bound on the number of cached plans — generous for any realistic
/// shape mix while keeping an adversarial stream of one-off shapes from
/// growing the cache without limit.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 1024;

/// The map plus its insertion order, updated together under one lock.
#[derive(Debug, Default)]
struct PlanCacheInner {
    plans: HashMap<String, Arc<OptimizedPlan>>,
    /// Keys in insertion order — the FIFO eviction queue.
    order: VecDeque<String>,
}

/// A concurrent, **bounded** cache of optimised f-plans, keyed on query
/// shape.
///
/// The map is guarded by a plain mutex — entries are tiny `Arc`s and the
/// critical section is one hash-map probe, negligible next to the
/// optimisation it saves — while the hit/miss/eviction counters are
/// lock-free.  When the cache is full, publishing a new shape evicts the
/// oldest entry (FIFO; an evicted plan still in use stays alive through its
/// `Arc`).  The lock is poison-proof: a panic inside the critical section
/// (which only performs map and counter updates, so every intermediate
/// state is valid) does not take the cache down with it — later requests
/// recover the guard and keep serving.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// Creates an empty cache bounded at [`DEFAULT_PLAN_CACHE_CAPACITY`].
    pub fn new() -> Self {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// Creates an empty cache bounded at `capacity` plans (clamped to at
    /// least one).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(PlanCacheInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The lock, recovered if a previous holder panicked mid-update (the
    /// critical sections only swap whole values, so the state is valid).
    fn locked(&self) -> MutexGuard<'_, PlanCacheInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.locked().plans.len()
    }

    /// Whether the cache holds no plan.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }

    /// Total lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::SeqCst)
    }

    /// Total entries evicted to make room so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::SeqCst)
    }

    /// Total entries dropped by targeted invalidation (hot swaps) so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::SeqCst)
    }

    /// Looks up a plan, bumping the hit/miss counters.
    pub(crate) fn lookup(&self, key: &str) -> Option<Arc<OptimizedPlan>> {
        let found = self.locked().plans.get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::SeqCst),
            None => self.misses.fetch_add(1, Ordering::SeqCst),
        };
        found
    }

    /// Publishes a plan for a key (last writer wins; racing optimisers of
    /// the same shape produce equal-cost plans, so either result is fine),
    /// evicting the oldest entries if the cache is full.  Returns how many
    /// entries were evicted.
    pub(crate) fn insert(&self, key: String, plan: Arc<OptimizedPlan>) -> u64 {
        let mut evicted = 0;
        let mut inner = self.locked();
        if inner.plans.insert(key.clone(), plan).is_none() {
            inner.order.push_back(key);
            while inner.plans.len() > self.capacity {
                let Some(oldest) = inner.order.pop_front() else {
                    break;
                };
                inner.plans.remove(&oldest);
                evicted += 1;
            }
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::SeqCst);
        }
        evicted
    }

    /// Drops every plan keyed on the given input-tree fingerprint (see
    /// [`tree_fingerprint`]) — the entries that were built over a
    /// representation that has just been replaced.  Keys pin the exact tree
    /// structure, so plans for *other* trees — including the replacement,
    /// if it has a different structure — are untouched.  Returns how many
    /// entries were dropped, and adds them to the invalidation counter.
    ///
    /// Note that staleness is already structurally impossible: a cached
    /// plan can only ever be looked up by a query over the exact tree it
    /// was optimised for, for which it remains correct.  Invalidation is
    /// hygiene (the replaced tree's shapes would otherwise linger until
    /// FIFO eviction) and observability (the counter surfaces swaps in
    /// [`ServerStats`]).
    pub(crate) fn invalidate_tree(&self, fingerprint: &str) -> u64 {
        let mut inner = self.locked();
        let before = inner.plans.len();
        inner
            .plans
            .retain(|key, _| !key_matches_tree(key, fingerprint));
        let dropped = (before - inner.plans.len()) as u64;
        if dropped > 0 {
            let inner = &mut *inner;
            inner.order.retain(|key| inner.plans.contains_key(key));
        }
        drop(inner);
        if dropped > 0 {
            self.invalidations.fetch_add(dropped, Ordering::SeqCst);
        }
        dropped
    }
}

/// One query to serve: which representation to read, the query, and an
/// optional head — an aggregate head (folds on the fused overlay, returns
/// no representation) or an `ORDER BY` list (returns the flat rows in the
/// canonical order).  The two heads are mutually exclusive, mirroring
/// `Query::validate`.
#[derive(Clone, Debug)]
pub struct ServeRequest {
    /// Representation to query.
    pub rep: RepId,
    /// The query.
    pub query: FactorisedQuery,
    /// Evaluate as an aggregate instead of returning a representation.
    pub aggregate: Option<AggregateHead>,
    /// Return the result rows ordered by these attributes (see
    /// `FdbEngine::evaluate_factorised_ordered`).  Empty means unordered;
    /// must be empty when `aggregate` is set.
    pub order_by: Vec<AttrId>,
    /// Per-request resource allowance (deadline, budget, cancellation).
    /// [`QueryLimits::unlimited`] — the `Default` — governs nothing.
    pub limits: QueryLimits,
}

impl ServeRequest {
    /// An ungoverned request (no deadline, budget or cancellation flag).
    pub fn new(rep: RepId, query: FactorisedQuery, aggregate: Option<AggregateHead>) -> Self {
        ServeRequest {
            rep,
            query,
            aggregate,
            order_by: Vec::new(),
            limits: QueryLimits::unlimited(),
        }
    }

    /// The same request with an `ORDER BY` head.
    pub fn with_order_by(mut self, order_by: Vec<AttrId>) -> Self {
        self.order_by = order_by;
        self
    }

    /// The same request under the given limits.
    pub fn with_limits(mut self, limits: QueryLimits) -> Self {
        self.limits = limits;
        self
    }
}

/// The result of one served request.
#[derive(Clone, Debug)]
pub enum ServeOutcome {
    /// A factorised result representation (non-aggregate request).
    Rep(EvalOutput),
    /// An aggregate value (aggregate request).
    Aggregate(AggregateOutput),
    /// Flat rows in the canonical order (`ORDER BY` request).
    Ordered(OrderedOutput),
}

impl ServeOutcome {
    /// The evaluation statistics of any outcome kind.
    pub fn stats(&self) -> &EvalStats {
        match self {
            ServeOutcome::Rep(out) => &out.stats,
            ServeOutcome::Aggregate(out) => &out.stats,
            ServeOutcome::Ordered(out) => &out.stats,
        }
    }
}

/// A snapshot of a server's counters.
#[derive(Clone, Copy, Debug)]
pub struct ServerStats {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Requests completed (successfully or with an error).
    pub queries_served: u64,
    /// Plan-cache hits across all served requests.
    pub plan_cache_hits: u64,
    /// Plan-cache misses across all served requests.
    pub plan_cache_misses: u64,
    /// Distinct query shapes currently cached.
    pub plan_cache_len: usize,
    /// Plan-cache entries evicted to stay within the capacity bound.
    pub plan_cache_evictions: u64,
    /// Plan-cache entries dropped because their representation was hot-
    /// swapped ([`FdbServer::replace`]).
    pub plan_cache_invalidations: u64,
    /// Requests shed at admission (`FdbError::Overloaded`): the in-flight
    /// bound was hit, or the server was draining.
    pub requests_shed: u64,
    /// Requests that panicked mid-evaluation and were reported as
    /// `FdbError::WorkerPanicked` (the worker survived each one).
    pub worker_panics: u64,
}

impl ServerStats {
    /// The server counters as aligned `name value` rows, in the same shape
    /// as `EvalStats::counters_table` — serving reports print this instead
    /// of improvising their own lines.
    pub fn counters_table(&self) -> String {
        let rows: [(&str, String); 6] = [
            ("worker threads", self.threads.to_string()),
            ("queries served", self.queries_served.to_string()),
            (
                "plan cache hits / misses / len",
                format!(
                    "{} / {} / {}",
                    self.plan_cache_hits, self.plan_cache_misses, self.plan_cache_len
                ),
            ),
            (
                "plan cache evictions / invalidations",
                format!(
                    "{} / {}",
                    self.plan_cache_evictions, self.plan_cache_invalidations
                ),
            ),
            ("requests shed", self.requests_shed.to_string()),
            ("worker panics", self.worker_panics.to_string()),
        ];
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in rows {
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        out
    }
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.counters_table())
    }
}

/// How many requests may be in flight per worker thread before admission
/// control sheds new arrivals — enough headroom that a bursty but sane
/// batch never sheds, while a runaway producer is bounded.
pub const DEFAULT_IN_FLIGHT_PER_THREAD: usize = 128;

/// A multi-threaded query server over a [`SharedDatabase`].
///
/// Every request runs the existing fused single-pass pipeline untouched —
/// concurrency comes purely from running independent requests on the
/// work-stealing pool, reading the shared frozen arenas in place.
///
/// # Robustness
///
/// The server is built to survive bad requests and bounded to survive bad
/// clients:
///
/// * every request runs under its own [`QueryLimits`]
///   ([`ServeRequest::limits`]) — deadline, work budget, cancellation flag —
///   enforced cooperatively inside the evaluation hot loops;
/// * a panic during evaluation is caught **per request**
///   ([`FdbError::WorkerPanicked`]): the worker survives, the rest of the
///   batch completes, and the shared state stays usable (no lock is held
///   across evaluation);
/// * admission control bounds the number of in-flight requests
///   ([`FdbServer::with_max_in_flight`]); arrivals beyond the bound are shed
///   immediately with [`FdbError::Overloaded`] instead of queueing without
///   limit;
/// * [`FdbServer::shutdown`] drains gracefully: in-flight requests finish,
///   new arrivals are shed.
pub struct FdbServer {
    engine: FdbEngine,
    db: Arc<SharedDatabase>,
    cache: Arc<PlanCache>,
    pool: ThreadPool,
    served: AtomicU64,
    /// Requests admitted and not yet completed.
    in_flight: Arc<AtomicUsize>,
    /// Admission bound on `in_flight`.
    max_in_flight: usize,
    /// Set by [`FdbServer::shutdown`]: admit nothing more.
    draining: AtomicBool,
    shed: AtomicU64,
    panics: Arc<AtomicU64>,
}

impl FdbServer {
    /// Creates a server with `threads` workers and the default admission
    /// bound ([`DEFAULT_IN_FLIGHT_PER_THREAD`] per worker).
    pub fn new(engine: FdbEngine, db: Arc<SharedDatabase>, threads: usize) -> Self {
        let pool = ThreadPool::new(threads);
        let max_in_flight = pool.threads() * DEFAULT_IN_FLIGHT_PER_THREAD;
        FdbServer {
            engine,
            db,
            cache: Arc::new(PlanCache::new()),
            pool,
            served: AtomicU64::new(0),
            in_flight: Arc::new(AtomicUsize::new(0)),
            max_in_flight,
            draining: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            panics: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Replaces the admission bound (clamped to at least one in-flight
    /// request).
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight.max(1);
        self
    }

    /// Creates a server sized by [`default_threads`] (the `FDB_THREADS`
    /// environment variable, else the machine's available parallelism).
    pub fn with_default_threads(engine: FdbEngine, db: Arc<SharedDatabase>) -> Self {
        FdbServer::new(engine, db, default_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The server's plan cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The shared database of registered representations.
    pub fn db(&self) -> &SharedDatabase {
        &self.db
    }

    /// The worker pool (shared with callers that want to run their own
    /// tasks next to query serving, e.g. parallel enumeration of results).
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Requests completed so far.
    pub fn queries_served(&self) -> u64 {
        self.served.load(Ordering::SeqCst)
    }

    /// Requests admitted and not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Whether [`FdbServer::shutdown`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            threads: self.threads(),
            queries_served: self.queries_served(),
            plan_cache_hits: self.cache.hits(),
            plan_cache_misses: self.cache.misses(),
            plan_cache_len: self.cache.len(),
            plan_cache_evictions: self.cache.evictions(),
            plan_cache_invalidations: self.cache.invalidations(),
            requests_shed: self.shed.load(Ordering::SeqCst),
            worker_panics: self.panics.load(Ordering::SeqCst),
        }
    }

    /// Tries to reserve an in-flight slot; on refusal (draining, or the
    /// bound is hit) records the shed and reports [`FdbError::Overloaded`].
    fn admit(&self) -> Result<()> {
        if !self.is_draining() {
            let mut current = self.in_flight.load(Ordering::SeqCst);
            while current < self.max_in_flight {
                match self.in_flight.compare_exchange(
                    current,
                    current + 1,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => return Ok(()),
                    Err(actual) => current = actual,
                }
            }
        }
        self.shed.fetch_add(1, Ordering::SeqCst);
        Err(FdbError::Overloaded {
            in_flight: self.in_flight(),
            capacity: self.max_in_flight,
        })
    }

    /// Hot-swaps a representation **while serving**: atomically publishes
    /// `rep` as the slot's new epoch, then drops every cached plan keyed on
    /// the *old* representation's f-tree.  In-flight requests that already
    /// resolved the slot finish on the old arena (it stays alive through
    /// their pinned `Arc`s); requests admitted after the swap read the new
    /// one.  Returns the replaced representation.
    ///
    /// Swap first, invalidate second: a request racing the swap either
    /// pinned the old epoch (its old-tree plans are still correct — cache
    /// keys embed the full tree structure, so a plan can only be looked up
    /// by queries over the exact tree it was built for) or pins the new one
    /// (and never matches an old-tree key).  Stale plans are therefore
    /// structurally impossible; the invalidation is hygiene plus the
    /// `plan_cache_invalidations` counter in [`FdbServer::stats`].
    pub fn replace(&self, id: RepId, rep: FRep) -> Result<Arc<FRep>> {
        self.replace_ctx(id, rep, &ExecCtx::unlimited())
    }

    /// [`FdbServer::replace`] under an execution context: the governed
    /// variant checks deadline/cancellation before publishing, and hosts
    /// the `db.swap` failpoint the chaos suite uses to panic a swap
    /// mid-flight.
    pub fn replace_ctx(&self, id: RepId, rep: FRep, ctx: &ExecCtx) -> Result<Arc<FRep>> {
        failpoint!(ctx, "db.swap");
        ctx.check_now()?;
        let old = self.db.replace(id, rep)?;
        self.cache.invalidate_tree(&tree_fingerprint(old.tree()));
        Ok(old)
    }

    /// Stops admitting requests and blocks until every in-flight request
    /// has finished.  Subsequent serve calls shed with
    /// [`FdbError::Overloaded`]; the pool and caches stay alive for
    /// inspection.
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.pool.wait_idle();
    }

    /// Serves one request on the calling thread (still consulting the plan
    /// cache and admission control — the sequential baseline of the
    /// serving benchmark).
    pub fn serve_one(&self, request: &ServeRequest) -> Result<ServeOutcome> {
        self.admit()?;
        let outcome = serve_request_guarded(self.engine, &self.db, &self.cache, request);
        if matches!(outcome, Err(FdbError::WorkerPanicked { .. })) {
            self.panics.fetch_add(1, Ordering::SeqCst);
        }
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.served.fetch_add(1, Ordering::SeqCst);
        outcome
    }

    /// Serves a batch of requests concurrently on the pool, returning the
    /// outcomes **in request order**.  The calling thread blocks until the
    /// whole batch is done.  Requests refused at admission come back as
    /// [`FdbError::Overloaded`]; a request that panics mid-evaluation comes
    /// back as [`FdbError::WorkerPanicked`] while the rest of the batch
    /// completes normally.
    pub fn serve_batch(&self, requests: Vec<ServeRequest>) -> Vec<Result<ServeOutcome>> {
        let n = requests.len();
        let mut slots: Vec<Option<Result<ServeOutcome>>> = (0..n).map(|_| None).collect();
        let (tx, rx) = mpsc::channel::<(usize, Result<ServeOutcome>)>();
        for (index, request) in requests.into_iter().enumerate() {
            if let Err(refused) = self.admit() {
                slots[index] = Some(Err(refused));
                continue;
            }
            let engine = self.engine;
            let db = Arc::clone(&self.db);
            let cache = Arc::clone(&self.cache);
            let in_flight = Arc::clone(&self.in_flight);
            let panics = Arc::clone(&self.panics);
            let tx = tx.clone();
            self.pool.spawn(move || {
                let outcome = serve_request_guarded(engine, &db, &cache, &request);
                if matches!(outcome, Err(FdbError::WorkerPanicked { .. })) {
                    panics.fetch_add(1, Ordering::SeqCst);
                }
                in_flight.fetch_sub(1, Ordering::SeqCst);
                // A closed receiver only means the caller went away.
                let _ = tx.send((index, outcome));
            });
        }
        drop(tx);

        for (index, outcome) in rx {
            slots[index] = Some(outcome);
            self.served.fetch_add(1, Ordering::SeqCst);
        }
        slots
            .into_iter()
            .map(|slot| {
                // Unreachable with the per-request guard in place (every
                // spawned task delivers), kept as the last line of defence.
                slot.unwrap_or_else(|| {
                    Err(FdbError::WorkerPanicked {
                        detail: "worker delivered no result for this request".into(),
                    })
                })
            })
            .collect()
    }
}

/// [`serve_request`] behind a per-request panic boundary: a panicking
/// evaluation is reported as [`FdbError::WorkerPanicked`] instead of
/// unwinding into the worker loop, so one poisoned request cannot take
/// down its worker or its batch.  Safe to unwind across: evaluation
/// mutates nothing shared (results are built fresh; the plan cache is
/// poison-proof and only swaps whole values).
fn serve_request_guarded(
    engine: FdbEngine,
    db: &SharedDatabase,
    cache: &PlanCache,
    request: &ServeRequest,
) -> Result<ServeOutcome> {
    catch_unwind(AssertUnwindSafe(|| {
        serve_request(engine, db, cache, request)
    }))
    .unwrap_or_else(|payload| {
        let detail = if let Some(msg) = payload.downcast_ref::<&str>() {
            (*msg).to_string()
        } else if let Some(msg) = payload.downcast_ref::<String>() {
            msg.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Err(FdbError::WorkerPanicked { detail })
    })
}

/// The per-request pipeline shared by [`FdbServer::serve_one`] and the pool
/// workers: resolve the representation, then run the (plan-cached) fused
/// pipeline under the request's [`QueryLimits`].
fn serve_request(
    engine: FdbEngine,
    db: &SharedDatabase,
    cache: &PlanCache,
    request: &ServeRequest,
) -> Result<ServeOutcome> {
    let ctx = ExecCtx::new(&request.limits);
    failpoint!(ctx, "serve.request");
    let rep = db.get(request.rep).ok_or_else(|| FdbError::InvalidInput {
        detail: format!("unknown representation id {:?}", request.rep),
    })?;
    match &request.aggregate {
        Some(head) if !request.order_by.is_empty() => Err(FdbError::InvalidInput {
            detail: format!(
                "a request cannot carry both an aggregate head ({head:?}) and ORDER BY"
            ),
        }),
        Some(head) => engine
            .evaluate_factorised_aggregate_ctx(&rep, &request.query, head, Some(cache), &ctx)
            .map(ServeOutcome::Aggregate),
        None if !request.order_by.is_empty() => engine
            .evaluate_factorised_ordered_ctx(
                &rep,
                &request.query,
                &request.order_by,
                Some(cache),
                &ctx,
            )
            .map(ServeOutcome::Ordered),
        None => engine
            .evaluate_factorised_ctx(&rep, &request.query, Some(cache), &ctx)
            .map(ServeOutcome::Rep),
    }
}

/// Compile-time pin of the serving layer's own shareability: the server is
/// driven from multiple threads and its state crosses into pool workers.
#[allow(dead_code)]
fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    #[allow(dead_code)]
    fn serving_types_are_shareable() {
        _assert_send_sync::<SharedDatabase>();
        _assert_send_sync::<PlanCache>();
        _assert_send_sync::<FdbServer>();
        _assert_send_sync::<ServeRequest>();
        _assert_send_sync::<ServeOutcome>();
    }
};

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_common::{AggregateHead, AttrId, Catalog, ComparisonOp, ConstSelection, Query, Value};
    use fdb_relation::Database;

    /// A small joined base representation plus two of its attributes.
    fn base_rep() -> (FRep, AttrId, AttrId) {
        let mut catalog = Catalog::new();
        let (r, _) = catalog.add_relation("R", &["a", "b"]);
        let (s, _) = catalog.add_relation("S", &["b2", "c"]);
        let mut db = Database::new(catalog);
        db.insert_raw_rows(r, &[vec![1, 1], vec![1, 2], vec![2, 2], vec![3, 1]])
            .unwrap();
        db.insert_raw_rows(s, &[vec![1, 5], vec![2, 6], vec![2, 7]])
            .unwrap();
        let cat = db.catalog();
        let a = cat.find_attr("R.a").unwrap();
        let b = cat.find_attr("R.b").unwrap();
        let b2 = cat.find_attr("S.b2").unwrap();
        let query = Query::product(vec![r, s]).with_equality(b, b2);
        let out = FdbEngine::new().evaluate_flat(&db, &query).unwrap();
        (out.result, a, b)
    }

    fn select_a(a: AttrId, value: u64) -> FactorisedQuery {
        FactorisedQuery::default().with_const_selection(ConstSelection {
            attr: a,
            op: ComparisonOp::Eq,
            value: Value::new(value),
        })
    }

    #[test]
    fn cache_hits_skip_the_optimiser_and_preserve_results() {
        let (rep, a, b) = base_rep();
        let engine = FdbEngine::new();
        let cache = PlanCache::new();
        let query1 = select_a(a, 1).with_projection(vec![a, b]);
        let query2 = select_a(a, 2).with_projection(vec![a, b]);

        let miss = engine
            .evaluate_factorised_cached(&rep, &query1, &cache)
            .unwrap();
        assert_eq!(
            (miss.stats.plan_cache_hits, miss.stats.plan_cache_misses),
            (0, 1)
        );
        // Same shape, different constant: a hit on one cached plan.
        let hit = engine
            .evaluate_factorised_cached(&rep, &query2, &cache)
            .unwrap();
        assert_eq!(
            (hit.stats.plan_cache_hits, hit.stats.plan_cache_misses),
            (1, 0)
        );
        assert_eq!(cache.len(), 1, "constants are abstracted from the key");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // Cached results are store-identical to the uncached pipeline.
        for query in [&query1, &query2] {
            let cached = engine
                .evaluate_factorised_cached(&rep, query, &cache)
                .unwrap();
            let plain = engine.evaluate_factorised(&rep, query).unwrap();
            assert!(cached.result.store_identical(&plain.result));
            assert_eq!(
                (plain.stats.plan_cache_hits, plain.stats.plan_cache_misses),
                (0, 0)
            );
        }

        // A different shape (different operator) misses.
        let other = FactorisedQuery::default().with_const_selection(ConstSelection {
            attr: a,
            op: ComparisonOp::Ge,
            value: Value::new(1),
        });
        let out = engine
            .evaluate_factorised_cached(&rep, &other, &cache)
            .unwrap();
        assert_eq!(out.stats.plan_cache_misses, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn plan_keys_distinguish_heads_over_the_same_query_body() {
        // Regression: the cache key once covered only the query body, so a
        // plain evaluation, a grouped aggregate and an ordered evaluation of
        // the *same* body all resolved to one entry — and the later heads
        // replayed a plan missing their restructure/ordering tail.  Each
        // head must mint its own entry.
        let (rep, a, b) = base_rep();
        let engine = FdbEngine::new();
        let cache = PlanCache::new();
        let body = select_a(a, 1);

        engine
            .evaluate_factorised_cached(&rep, &body, &cache)
            .unwrap();
        assert_eq!(cache.len(), 1);
        engine
            .evaluate_factorised_aggregate_cached(&rep, &body, &AggregateHead::count(), &cache)
            .unwrap();
        assert_eq!(cache.len(), 2, "an aggregate head is part of the key");
        engine
            .evaluate_factorised_aggregate_cached(
                &rep,
                &body,
                &AggregateHead::count().grouped_by(b),
                &cache,
            )
            .unwrap();
        assert_eq!(
            cache.len(),
            3,
            "the grouping attributes are part of the key"
        );
        engine
            .evaluate_factorised_ordered_cached(&rep, &body, &[b], &cache)
            .unwrap();
        assert_eq!(
            cache.len(),
            4,
            "the ordering attributes are part of the key"
        );

        // Re-serving each head shape hits its own entry instead of missing.
        let out = engine
            .evaluate_factorised_ordered_cached(&rep, &body, &[b], &cache)
            .unwrap();
        assert_eq!(
            (out.stats.plan_cache_hits, out.stats.plan_cache_misses),
            (1, 0)
        );
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn serve_batch_preserves_request_order_and_matches_serial_evaluation() {
        let (rep, a, _) = base_rep();
        let engine = FdbEngine::new();
        let mut shared = SharedDatabase::new();
        let id = shared.insert("base", rep.clone()).unwrap();
        assert_eq!(shared.find("base"), Some(id));
        let server = FdbServer::new(engine, Arc::new(shared), 3);

        let requests: Vec<ServeRequest> = (0..12)
            .map(|i| {
                ServeRequest::new(
                    id,
                    select_a(a, 1 + i % 3),
                    (i % 4 == 0).then(AggregateHead::count),
                )
            })
            .collect();
        let outcomes = server.serve_batch(requests.clone());
        assert_eq!(outcomes.len(), requests.len());
        for (request, outcome) in requests.iter().zip(&outcomes) {
            match (outcome.as_ref().unwrap(), &request.aggregate) {
                (ServeOutcome::Aggregate(out), Some(head)) => {
                    let expected = engine
                        .evaluate_factorised_aggregate(&rep, &request.query, head)
                        .unwrap();
                    assert_eq!(out.result, expected.result);
                }
                (ServeOutcome::Rep(out), None) => {
                    let expected = engine.evaluate_factorised(&rep, &request.query).unwrap();
                    assert!(out.result.store_identical(&expected.result));
                }
                (outcome, _) => panic!("outcome kind mismatch: {outcome:?}"),
            }
        }
        let stats = server.stats();
        assert_eq!(stats.queries_served, 12);
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.plan_cache_hits + stats.plan_cache_misses, 12);
        assert!(stats.plan_cache_hits > 0, "repeated shapes hit the cache");
        assert!(stats.plan_cache_len >= 1);
    }

    #[test]
    fn unknown_representation_ids_are_reported_not_panicked() {
        let (rep, a, _) = base_rep();
        let mut shared = SharedDatabase::new();
        shared.insert("base", rep).unwrap();
        let server = FdbServer::new(FdbEngine::new(), Arc::new(shared), 2);
        let request = ServeRequest::new(RepId(42), select_a(a, 1), None);
        assert!(server.serve_one(&request).is_err());
        let batch = server.serve_batch(vec![request]);
        assert!(batch[0].is_err());
        assert_eq!(server.queries_served(), 2);
    }

    #[test]
    fn duplicate_names_are_structured_errors_not_shadowed_slots() {
        let (rep, _, _) = base_rep();
        let mut shared = SharedDatabase::new();
        let first = shared.insert("base", rep.clone()).unwrap();
        let other = shared.insert("other", rep.clone()).unwrap();
        match shared.insert("base", rep) {
            Err(FdbError::DuplicateName { name }) => assert_eq!(name, "base"),
            other => panic!("expected DuplicateName, got {other:?}"),
        }
        // The failed insert left no half-registered slot behind.
        assert_eq!(shared.len(), 2);
        assert_eq!(shared.find("base"), Some(first));
        assert_eq!(shared.find("other"), Some(other));
        assert_eq!(shared.find("missing"), None);
        assert_eq!(shared.name(first), Some("base"));
    }

    #[test]
    fn insert_after_replace_still_resolves_both_names() {
        // `replace` swaps the arena under an existing name; a later insert
        // under a *new* name must not disturb the replaced slot's binding,
        // and re-inserting the replaced name must still be rejected.
        let (rep, a, _) = base_rep();
        let engine = FdbEngine::new();
        let new_rep = engine
            .evaluate_factorised(&rep, &select_a(a, 1))
            .unwrap()
            .result;

        let mut shared = SharedDatabase::new();
        let id = shared.insert("base", rep.clone()).unwrap();
        shared.replace(id, new_rep.clone()).unwrap();
        let late = shared.insert("late", rep.clone()).unwrap();

        assert_eq!(shared.find("base"), Some(id), "name survives the swap");
        assert_eq!(shared.find("late"), Some(late));
        assert_eq!(shared.epoch(id), Some(1));
        assert_eq!(shared.epoch(late), Some(0));
        assert!(shared.get(id).unwrap().store_identical(&new_rep));
        assert!(matches!(
            shared.insert("base", rep),
            Err(FdbError::DuplicateName { .. })
        ));
    }

    #[test]
    fn replace_publishes_a_new_epoch_while_pinned_readers_keep_the_old_arena() {
        let (rep, a, _) = base_rep();
        let engine = FdbEngine::new();
        let new_rep = engine.evaluate_factorised(&rep, &select_a(a, 1)).unwrap();

        let mut shared = SharedDatabase::new();
        let id = shared.insert("base", rep.clone()).unwrap();
        let (pinned, epoch) = shared.get_versioned(id).unwrap();
        assert_eq!(epoch, 0);

        let old = shared.replace(id, new_rep.result.clone()).unwrap();
        assert!(old.store_identical(&rep), "replace returns the old arena");
        assert!(
            pinned.store_identical(&rep),
            "a reader that pinned the old epoch is unaffected by the swap"
        );
        let (current, epoch) = shared.get_versioned(id).unwrap();
        assert_eq!(epoch, 1, "each swap bumps the slot's epoch");
        assert!(current.store_identical(&new_rep.result));
        assert_eq!(shared.find("base"), Some(id), "the name survives the swap");

        // Replacing an unknown id is a structured error, not a panic.
        assert!(shared.replace(RepId(99), rep).is_err());
    }

    #[test]
    fn server_replace_invalidates_exactly_the_swapped_trees_plans() {
        let (rep, a, b) = base_rep();
        let engine = FdbEngine::new();
        // A second representation with a *different* tree: project down to
        // one attribute.  Its cached plans must survive the swap of `base`.
        let other_rep = engine
            .evaluate_factorised(&rep, &FactorisedQuery::default().with_projection(vec![a]))
            .unwrap()
            .result;
        let new_rep = engine
            .evaluate_factorised(&rep, &select_a(a, 1))
            .unwrap()
            .result;

        let mut shared = SharedDatabase::new();
        let id = shared.insert("base", rep.clone()).unwrap();
        let other = shared.insert("other", other_rep.clone()).unwrap();
        let server = FdbServer::new(engine, Arc::new(shared), 2);

        let query = select_a(a, 1).with_projection(vec![a, b]);
        server
            .serve_one(&ServeRequest::new(id, query.clone(), None))
            .unwrap();
        server
            .serve_one(&ServeRequest::new(
                other,
                FactorisedQuery::default(),
                Some(AggregateHead::count()),
            ))
            .unwrap();
        assert_eq!(server.cache().len(), 2);

        server.replace(id, new_rep.clone()).unwrap();
        assert_eq!(
            server.cache().len(),
            1,
            "only the swapped tree's plan is dropped"
        );
        assert_eq!(server.cache().invalidations(), 1);
        let stats = server.stats();
        assert_eq!(stats.plan_cache_invalidations, 1);

        // Serving the same shape again optimises fresh against the new
        // epoch and matches sequential evaluation on the new arena.
        let outcome = server
            .serve_one(&ServeRequest::new(id, query.clone(), None))
            .unwrap();
        let ServeOutcome::Rep(got) = outcome else {
            panic!("expected a representation outcome");
        };
        let want = server.engine.evaluate_factorised(&new_rep, &query).unwrap();
        assert!(
            got.result.store_identical(&want.result),
            "post-swap requests evaluate on the new epoch"
        );
    }

    #[test]
    fn server_stats_counters_table_pins_the_row_set() {
        let stats = ServerStats {
            threads: 3,
            queries_served: 12,
            plan_cache_hits: 7,
            plan_cache_misses: 5,
            plan_cache_len: 4,
            plan_cache_evictions: 2,
            plan_cache_invalidations: 9,
            requests_shed: 1,
            worker_panics: 6,
        };
        let table = stats.counters_table();
        assert_eq!(table.lines().count(), 6, "one row per counter group");
        assert!(table.contains("worker threads"));
        assert!(table.contains("queries served"));
        assert!(table.contains("plan cache hits / misses / len"));
        assert!(table.contains("7 / 5 / 4"));
        assert!(table.contains("plan cache evictions / invalidations"));
        assert!(table.contains("2 / 9"));
        assert!(table.contains("requests shed"));
        assert!(table.contains("worker panics"));
        assert_eq!(format!("{stats}"), table, "Display prints the table");
    }
}
