//! Schema-level f-tree transformations.
//!
//! Every f-plan operator of the paper has a schema-level effect (a
//! transformation of the f-tree) and a data-level effect (a transformation
//! of the f-representation).  This module implements the schema level:
//!
//! * **push-up** `ψ_B` — move a child above its parent when the parent does
//!   not depend on it (Figure 3(a));
//! * **normalisation** `η` — apply push-ups bottom-up until no node can be
//!   lifted any further (Definition 3);
//! * **swap** `χ_{A,B}` — exchange a node with its parent, splitting the
//!   child's children into those that depend on the old parent (they follow
//!   the old parent down) and those that do not (they stay) (Figure 3(b));
//! * **merge** `µ_{A,B}` — fuse two sibling nodes (Figure 3(c));
//! * **absorb** `α_{A,B}` — fuse a node into one of its ancestors
//!   (Figure 3(d));
//! * **constant selection** marking and **projection** bookkeeping (marking
//!   attributes as projected away, removing exhausted leaves, merging
//!   dependency edges to preserve transitive dependencies).
//!
//! The data-level counterparts (in `fdb-frep`) call these methods on their
//! own copy of the tree and mirror every structural change on the data.

use crate::ftree::{DepEdge, FTree, NodeId};
use fdb_common::{AttrId, FdbError, Result, Value};
use std::collections::BTreeSet;

/// Description of what a swap did to the tree, needed by the data-level
/// operator to rearrange the representation accordingly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwapOutcome {
    /// The node that was the parent before the swap (labelled `A` in the
    /// paper) — now the child.
    pub old_parent: NodeId,
    /// The node that was the child before the swap (labelled `B`) — now the
    /// parent.
    pub new_parent: NodeId,
    /// Children of `B` that depend on `A` (the paper's `T_{AB}`); they have
    /// been re-attached under `A`.
    pub moved_down: Vec<NodeId>,
    /// Children of `B` that do not depend on `A` (the paper's `T_B`); they
    /// stayed attached to `B`.
    pub kept: Vec<NodeId>,
}

impl FTree {
    // ------------------------------------------------------------------
    // Push-up and normalisation
    // ------------------------------------------------------------------

    /// Returns `true` if node `b` can be pushed above its parent without
    /// violating the path constraint: it has a parent, and that parent does
    /// not depend on `b` or any of `b`'s descendants.
    pub fn can_push_up(&self, b: NodeId) -> bool {
        match self.parent(b) {
            Some(a) => !self.depends_on_subtree(a, b),
            None => false,
        }
    }

    /// Push-up operator `ψ_B`: moves `b` (with its whole subtree) one level
    /// up, making it a sibling of its former parent.
    pub fn push_up(&mut self, b: NodeId) -> Result<()> {
        self.check_node(b)?;
        let Some(a) = self.parent(b) else {
            return Err(FdbError::InvalidOperator {
                detail: format!("push-up: {b} is a root"),
            });
        };
        if self.depends_on_subtree(a, b) {
            return Err(FdbError::InvalidOperator {
                detail: format!("push-up: parent {a} depends on the subtree of {b}"),
            });
        }
        let grandparent = self.parent(a);
        self.detach(b);
        self.attach(b, grandparent);
        Ok(())
    }

    /// Returns `true` if no node of the tree can be pushed up (Definition 3).
    pub fn is_normalised(&self) -> bool {
        self.node_ids().into_iter().all(|n| !self.can_push_up(n))
    }

    /// Normalisation operator `η`: repeatedly pushes nodes up (bottom-up)
    /// until the tree is normalised.  Returns the sequence of nodes pushed
    /// up, in order, so a data-level caller can replay the same steps.
    pub fn normalise(&mut self) -> Vec<NodeId> {
        let mut applied = Vec::new();
        loop {
            let mut changed = false;
            for node in self.bottom_up() {
                while self.can_push_up(node) {
                    self.push_up(node).expect("checked by can_push_up");
                    applied.push(node);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        applied
    }

    // ------------------------------------------------------------------
    // Swap
    // ------------------------------------------------------------------

    /// Swap operator `χ_{A,B}` where `b` is a child of `a = parent(b)`:
    /// promotes `b` to `a`'s position and demotes `a` to a child of `b`.
    /// Children of `b` that depend on `a` follow `a` down; the rest stay
    /// under `b`.
    pub fn swap_with_parent(&mut self, b: NodeId) -> Result<SwapOutcome> {
        self.check_node(b)?;
        let Some(a) = self.parent(b) else {
            return Err(FdbError::InvalidOperator {
                detail: format!("swap: {b} is a root"),
            });
        };
        let grandparent = self.parent(a);

        // Partition b's children by dependency on a.
        let b_children: Vec<NodeId> = self.children(b).to_vec();
        let (moved_down, kept): (Vec<NodeId>, Vec<NodeId>) = b_children
            .into_iter()
            .partition(|&c| self.depends_on_subtree(a, c));

        // Detach b from a, re-root it where a was, and hang a under b.
        self.detach(b);
        self.detach(a);
        self.attach(b, grandparent);
        self.attach(a, Some(b));
        // Children of b that depend on a move under a.
        for c in &moved_down {
            self.detach(*c);
            self.attach(*c, Some(a));
        }
        Ok(SwapOutcome {
            old_parent: a,
            new_parent: b,
            moved_down,
            kept,
        })
    }

    // ------------------------------------------------------------------
    // Merge and absorb
    // ------------------------------------------------------------------

    /// Returns `true` if the two nodes are siblings: they share the same
    /// parent, or are both roots of the forest.
    pub fn are_siblings(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.parent(a) == self.parent(b)
    }

    /// Merge operator `µ_{A,B}` on sibling nodes: fuses `b` into `a`.  The
    /// surviving node `a` is labelled by the union of both classes and
    /// inherits `b`'s children (appended after `a`'s own).
    pub fn merge_siblings(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !self.are_siblings(a, b) {
            return Err(FdbError::InvalidOperator {
                detail: format!("merge: {a} and {b} are not siblings"),
            });
        }
        let b_children: Vec<NodeId> = self.children(b).to_vec();
        let b_class = self.class(b).clone();
        let b_projected = self.projected_attrs(b).clone();
        let b_constant = self.constant(b);

        for c in &b_children {
            self.detach(*c);
            self.attach(*c, Some(a));
        }
        let mut new_class = self.class(a).clone();
        new_class.extend(b_class);
        self.set_class(a, new_class);
        self.merge_markers(a, b_projected, b_constant);
        self.remove_childless(b);
        Ok(a)
    }

    /// Absorb operator `α_{A,B}` where `a` is a strict ancestor of `b`:
    /// fuses `b` into `a`.  `b`'s children are re-attached to `b`'s former
    /// parent.  The caller is expected to normalise afterwards (the paper's
    /// absorb finishes with a normalisation step); this method leaves that to
    /// the caller so the data-level operator can replay the exact push-ups.
    pub fn absorb_into_ancestor(&mut self, a: NodeId, b: NodeId) -> Result<()> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !self.is_ancestor(a, b) {
            return Err(FdbError::InvalidOperator {
                detail: format!("absorb: {a} is not an ancestor of {b}"),
            });
        }
        let b_parent = self.parent(b);
        let b_children: Vec<NodeId> = self.children(b).to_vec();
        let b_class = self.class(b).clone();
        let b_projected = self.projected_attrs(b).clone();
        let b_constant = self.constant(b);
        for c in &b_children {
            self.detach(*c);
            self.attach(*c, b_parent);
        }
        let mut new_class = self.class(a).clone();
        new_class.extend(b_class);
        self.set_class(a, new_class);
        self.merge_markers(a, b_projected, b_constant);
        self.remove_childless(b);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Constant selections and projections
    // ------------------------------------------------------------------

    /// Marks a node as bound to a constant by an equality selection
    /// (`σ_{A=c}`); such nodes are ignored when computing `s(T)`.
    pub fn bind_constant(&mut self, node: NodeId, value: Value) -> Result<()> {
        self.check_node(node)?;
        self.set_constant(node, value);
        Ok(())
    }

    /// Marks the given attributes as projected away wherever they occur.
    /// Nodes keep their labels (the projection operator removes nodes only
    /// once they are leaves with no visible attribute left).
    pub fn mark_attrs_projected(&mut self, attrs: &BTreeSet<AttrId>) {
        for node in self.node_ids() {
            self.mark_projected(node, attrs);
        }
    }

    /// Returns the leaves whose attributes have all been projected away;
    /// these can be removed without losing dependency information.
    pub fn removable_projected_leaves(&self) -> Vec<NodeId> {
        self.leaves()
            .into_iter()
            .filter(|&l| self.visible_attrs(l).is_empty())
            .collect()
    }

    /// Removes a leaf node whose attributes have all been projected away.
    ///
    /// To preserve *transitive* dependencies (the paper's `A — B — C`
    /// example in Section 3.4), all dependency edges that had attributes in
    /// the removed class are merged into a single edge before the node is
    /// dropped.
    pub fn remove_projected_leaf(&mut self, leaf: NodeId) -> Result<()> {
        self.check_node(leaf)?;
        if !self.is_leaf(leaf) {
            return Err(FdbError::InvalidOperator {
                detail: format!("projection: {leaf} is not a leaf"),
            });
        }
        if !self.visible_attrs(leaf).is_empty() {
            return Err(FdbError::InvalidOperator {
                detail: format!("projection: {leaf} still has visible attributes"),
            });
        }
        let class = self.class(leaf).clone();
        self.merge_edges_touching(&class);
        self.remove_childless(leaf);
        Ok(())
    }

    /// Merges all dependency edges that have at least one attribute in
    /// `attrs` into a single edge (the union of their attribute sets).  The
    /// merged edge's cardinality is the product of the constituents'
    /// cardinalities — an upper bound on the size of their join.
    fn merge_edges_touching(&mut self, attrs: &BTreeSet<AttrId>) {
        let touching: Vec<usize> = self
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.attrs.iter().any(|a| attrs.contains(a)))
            .map(|(i, _)| i)
            .collect();
        if touching.len() <= 1 {
            return;
        }
        let mut merged_attrs: BTreeSet<AttrId> = BTreeSet::new();
        let mut labels: Vec<String> = Vec::new();
        let mut cardinality: u64 = 1;
        for &i in &touching {
            let e = &self.edges()[i];
            merged_attrs.extend(e.attrs.iter().copied());
            labels.push(e.label.clone());
            cardinality = cardinality.saturating_mul(e.cardinality.max(1));
        }
        let edges = self.edges_mut();
        // Remove from the back so indices stay valid.
        for &i in touching.iter().rev() {
            edges.remove(i);
        }
        edges.push(DepEdge::new(labels.join("⋈"), merged_attrs, cardinality));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// Example 7 of the paper: relations over {A,B}, {B',C}, {C',D}, {D',E}
    /// with attribute ids A=0, B=1, B'=2, C=3, C'=4, D=5, D'=6, E=7.
    /// Initial (non-normalised) tree is the single path
    ///   {B,B'} → A → {D,D'} → {C,C'} → E.
    fn example7() -> (FTree, [NodeId; 5]) {
        let edges = vec![
            DepEdge::new("R1", attrs(&[0, 1]), 1),
            DepEdge::new("R2", attrs(&[2, 3]), 1),
            DepEdge::new("R3", attrs(&[4, 5]), 1),
            DepEdge::new("R4", attrs(&[6, 7]), 1),
        ];
        let mut t = FTree::new(edges);
        let bb = t.add_node(attrs(&[1, 2]), None).unwrap();
        let a = t.add_node(attrs(&[0]), Some(bb)).unwrap();
        let dd = t.add_node(attrs(&[5, 6]), Some(a)).unwrap();
        let cc = t.add_node(attrs(&[3, 4]), Some(dd)).unwrap();
        let e = t.add_node(attrs(&[7]), Some(cc)).unwrap();
        (t, [bb, a, dd, cc, e])
    }

    #[test]
    fn example7_normalisation_matches_the_paper() {
        let (mut t, [bb, a, dd, cc, e]) = example7();
        assert!(!t.is_normalised());
        // E can be pushed above {C,C'} (R4 = {D',E} does not involve C/C').
        assert!(t.can_push_up(e));
        // {C,C'} cannot be pushed above {D,D'} (R3 = {C',D}).
        assert!(!t.can_push_up(cc));
        let applied = t.normalise();
        assert!(t.is_normalised());
        t.check_structure().unwrap();
        t.check_path_constraint().unwrap();
        // Per Example 7: E ends up as a child of {D,D'}, and {D,D'} is pushed
        // up next to A under {B,B'}.
        assert_eq!(t.parent(e), Some(dd));
        assert_eq!(t.parent(dd), Some(bb));
        assert_eq!(t.parent(cc), Some(dd));
        assert_eq!(t.parent(a), Some(bb));
        // Exactly the paper's two push-ups were needed (ψ_E then ψ_{D,D'}).
        assert_eq!(applied, vec![e, dd]);
    }

    #[test]
    fn push_up_rejects_dependent_children_and_roots() {
        let (mut t, [_, _, _, cc, _]) = example7();
        let err = t.push_up(cc).unwrap_err();
        assert!(matches!(err, FdbError::InvalidOperator { .. }));
        let roots = t.roots().to_vec();
        let err = t.push_up(roots[0]).unwrap_err();
        assert!(matches!(err, FdbError::InvalidOperator { .. }));
    }

    /// The grocery T1 tree (see `ftree.rs` tests) used for swap/merge tests:
    /// item{1,3} → oid{0}, location{2,5} → dispatcher{4}.
    fn grocery_t1() -> (FTree, [NodeId; 4]) {
        let edges = vec![
            DepEdge::new("Orders", attrs(&[0, 1]), 5),
            DepEdge::new("Store", attrs(&[2, 3]), 6),
            DepEdge::new("Disp", attrs(&[4, 5]), 4),
        ];
        let mut t = FTree::new(edges);
        let item = t.add_node(attrs(&[1, 3]), None).unwrap();
        let oid = t.add_node(attrs(&[0]), Some(item)).unwrap();
        let location = t.add_node(attrs(&[2, 5]), Some(item)).unwrap();
        let dispatcher = t.add_node(attrs(&[4]), Some(location)).unwrap();
        (t, [item, oid, location, dispatcher])
    }

    #[test]
    fn swap_item_location_produces_t2() {
        // χ_{item,location} turns T1 into T2: location on top, item below it
        // with oid still under item, dispatcher staying under location
        // (dispatcher does not depend on item).
        let (mut t, [item, oid, location, dispatcher]) = grocery_t1();
        let outcome = t.swap_with_parent(location).unwrap();
        t.check_structure().unwrap();
        t.check_path_constraint().unwrap();
        assert_eq!(outcome.new_parent, location);
        assert_eq!(outcome.old_parent, item);
        assert!(outcome.moved_down.is_empty());
        assert_eq!(outcome.kept, vec![dispatcher]);
        assert_eq!(t.roots(), &[location]);
        assert_eq!(t.parent(item), Some(location));
        assert_eq!(t.parent(dispatcher), Some(location));
        assert_eq!(t.parent(oid), Some(item));
        assert!(t.is_normalised());
    }

    #[test]
    fn swap_moves_dependent_children_down() {
        // Tree: A{0} → B{1} → (C{2}, D{3}); relations {0,1}, {0,2}, {1,3}.
        // C depends on A, D does not.  Swapping B above A must move C under
        // A and keep D under B.
        let edges = vec![
            DepEdge::new("R1", attrs(&[0, 1]), 1),
            DepEdge::new("R2", attrs(&[0, 2]), 1),
            DepEdge::new("R3", attrs(&[1, 3]), 1),
        ];
        let mut t = FTree::new(edges);
        let a = t.add_node(attrs(&[0]), None).unwrap();
        let b = t.add_node(attrs(&[1]), Some(a)).unwrap();
        let c = t.add_node(attrs(&[2]), Some(b)).unwrap();
        let d = t.add_node(attrs(&[3]), Some(b)).unwrap();
        let outcome = t.swap_with_parent(b).unwrap();
        t.check_structure().unwrap();
        t.check_path_constraint().unwrap();
        assert_eq!(outcome.moved_down, vec![c]);
        assert_eq!(outcome.kept, vec![d]);
        assert_eq!(t.parent(c), Some(a));
        assert_eq!(t.parent(d), Some(b));
        assert_eq!(t.parent(a), Some(b));
        assert_eq!(t.roots(), &[b]);
    }

    #[test]
    fn swap_is_an_involution_on_the_canonical_key() {
        let (t0, [_item, _oid, location, _dispatcher]) = grocery_t1();
        let key_before = t0.canonical_key();
        let mut t = t0.clone();
        t.swap_with_parent(location).unwrap();
        // Swapping back: item is now the child of location.
        let item = t.node_of_attr(AttrId(1)).unwrap();
        t.swap_with_parent(item).unwrap();
        assert_eq!(t.canonical_key(), key_before);
    }

    #[test]
    fn merge_requires_siblings() {
        let (mut t, [item, _oid, _location, dispatcher]) = grocery_t1();
        assert!(matches!(
            t.merge_siblings(item, dispatcher),
            Err(FdbError::InvalidOperator { .. })
        ));
    }

    #[test]
    fn merge_of_sibling_roots_combines_classes_and_children() {
        // Two separate trees rooted at item-like nodes (as after a Cartesian
        // product of two factorisations), then merged on their roots — this
        // is how the paper's Example 9 builds T5 out of T1 and T4.
        let edges = vec![
            DepEdge::new("R", attrs(&[0, 1]), 1),
            DepEdge::new("S", attrs(&[2, 3]), 1),
        ];
        let mut t = FTree::new(edges);
        let r_item = t.add_node(attrs(&[0]), None).unwrap();
        let r_oid = t.add_node(attrs(&[1]), Some(r_item)).unwrap();
        let s_item = t.add_node(attrs(&[2]), None).unwrap();
        let s_sup = t.add_node(attrs(&[3]), Some(s_item)).unwrap();
        let merged = t.merge_siblings(r_item, s_item).unwrap();
        t.check_structure().unwrap();
        t.check_path_constraint().unwrap();
        assert_eq!(merged, r_item);
        assert_eq!(t.class(merged), &attrs(&[0, 2]));
        assert_eq!(t.children(merged), &[r_oid, s_sup]);
        assert_eq!(t.node_count(), 3);
        assert!(t.roots() == [r_item]);
    }

    #[test]
    fn absorb_example10_matches_the_paper() {
        // Example 10: relations {A,B}, {B',C}, {C',D} with the path
        // A → {B,B'} → {C,C'} → D.  Absorbing {C,C'} into A makes D
        // independent of {B,B'}, so normalisation pushes D up.
        // Attribute ids: A=0, B=1, B'=2, C=3, C'=4, D=5.
        let edges = vec![
            DepEdge::new("R1", attrs(&[0, 1]), 1),
            DepEdge::new("R2", attrs(&[2, 3]), 1),
            DepEdge::new("R3", attrs(&[4, 5]), 1),
        ];
        let mut t = FTree::new(edges);
        let a = t.add_node(attrs(&[0]), None).unwrap();
        let bb = t.add_node(attrs(&[1, 2]), Some(a)).unwrap();
        let cc = t.add_node(attrs(&[3, 4]), Some(bb)).unwrap();
        let d = t.add_node(attrs(&[5]), Some(cc)).unwrap();

        t.absorb_into_ancestor(a, cc).unwrap();
        t.check_structure().unwrap();
        // After absorption (before normalisation) D hangs under {B,B'}.
        assert_eq!(t.parent(d), Some(bb));
        assert_eq!(t.class(a), &attrs(&[0, 3, 4]));
        // Normalisation lifts D next to {B,B'} under the merged root.
        t.normalise();
        t.check_path_constraint().unwrap();
        assert_eq!(t.parent(d), Some(a));
        assert_eq!(t.parent(bb), Some(a));
        assert!(t.is_normalised());
    }

    #[test]
    fn absorb_rejects_non_ancestors() {
        let (mut t, [_item, oid, _location, dispatcher]) = grocery_t1();
        assert!(matches!(
            t.absorb_into_ancestor(oid, dispatcher),
            Err(FdbError::InvalidOperator { .. })
        ));
    }

    #[test]
    fn constant_binding_is_recorded() {
        let (mut t, [item, ..]) = grocery_t1();
        t.bind_constant(item, Value::new(42)).unwrap();
        assert_eq!(t.constant(item), Some(Value::new(42)));
    }

    #[test]
    fn projection_marking_and_leaf_removal() {
        let (mut t, [item, oid, location, dispatcher]) = grocery_t1();
        // Project away the dispatcher (AttrId 4): it is a leaf, so it can be
        // removed straight away.
        t.mark_attrs_projected(&attrs(&[4]));
        assert_eq!(t.removable_projected_leaves(), vec![dispatcher]);
        t.remove_projected_leaf(dispatcher).unwrap();
        t.check_structure().unwrap();
        assert_eq!(t.node_count(), 3);
        assert!(t.is_leaf(location));
        // Removing a non-leaf or a still-visible leaf is rejected.
        assert!(t.remove_projected_leaf(item).is_err());
        assert!(t.remove_projected_leaf(oid).is_err());
    }

    #[test]
    fn removing_a_shared_leaf_merges_dependency_edges() {
        // A{0} — X{1} — C{2} with R1 = {0,1}, R2 = {1,2}.  Projecting X away
        // must leave A and C transitively dependent: after removing the leaf
        // X the two edges are merged, so A and C may not become siblings by
        // normalisation.
        let edges = vec![
            DepEdge::new("R1", attrs(&[0, 1]), 1),
            DepEdge::new("R2", attrs(&[1, 2]), 1),
        ];
        let mut t = FTree::new(edges);
        let a = t.add_node(attrs(&[0]), None).unwrap();
        let c = t.add_node(attrs(&[2]), Some(a)).unwrap();
        let x = t.add_node(attrs(&[1]), Some(c)).unwrap();
        t.mark_attrs_projected(&attrs(&[1]));
        t.remove_projected_leaf(x).unwrap();
        assert_eq!(t.edges().len(), 1);
        assert!(
            t.nodes_dependent(a, c),
            "transitive dependency must be preserved"
        );
        assert!(!t.can_push_up(c));
    }
}
