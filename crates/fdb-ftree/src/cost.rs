//! The size-bound parameter `s(T)` of an f-tree.
//!
//! For a root-to-leaf path `p` of an f-tree `T`, consider the hypergraph
//! whose vertices are the attribute classes of the nodes on `p` and whose
//! edges are the relations (dependency edges) containing attributes of those
//! classes.  The *fractional edge cover number* of `p` is the optimum of the
//! covering LP of Section 2, and
//!
//! ```text
//! s(T) = max over root-to-leaf paths p of the fractional edge cover of p.
//! ```
//!
//! For any database `D`, the f-representation of the query result over `T`
//! has size `O(|D|^{s(T)})`, and this bound is tight.  Nodes that have been
//! bound to a constant by an equality selection are ignored (the only
//! f-representation over such a node is a single singleton).

use crate::ftree::{FTree, NodeId};
use fdb_common::Result;
use fdb_lp::{fractional_edge_cover, CoverInstance};

/// Cost details of one root-to-leaf path.
#[derive(Clone, Debug)]
pub struct PathCost {
    /// The leaf the path ends at.
    pub leaf: NodeId,
    /// The nodes on the path (root first), excluding constant-bound nodes.
    pub nodes: Vec<NodeId>,
    /// Fractional edge cover number of the path.
    pub cost: f64,
}

/// Builds the edge-cover instance of a single root-to-leaf path.
///
/// Vertices are the non-constant nodes of the path; an edge of the instance
/// is added for every dependency edge that has at least one attribute in one
/// of those nodes, covering the vertices whose classes it intersects.
pub fn path_cover_instance(tree: &FTree, path_nodes: &[NodeId]) -> CoverInstance {
    let mut instance = CoverInstance::new(path_nodes.len());
    for edge in tree.edges() {
        let covered: Vec<usize> = path_nodes
            .iter()
            .enumerate()
            .filter(|(_, &n)| edge.attrs.iter().any(|a| tree.class(n).contains(a)))
            .map(|(i, _)| i)
            .collect();
        if !covered.is_empty() {
            instance.add_edge(covered);
        }
    }
    instance
}

/// Computes the cost of every root-to-leaf path of the tree.
pub fn s_cost_details(tree: &FTree) -> Result<Vec<PathCost>> {
    let mut out = Vec::new();
    for leaf in tree.leaves() {
        let mut nodes: Vec<NodeId> = tree.ancestors(leaf);
        nodes.reverse();
        nodes.push(leaf);
        // Constant-bound nodes do not contribute to the size bound: the only
        // f-representation over them is a single singleton.
        let nodes: Vec<NodeId> = nodes
            .into_iter()
            .filter(|&n| tree.constant(n).is_none())
            .collect();
        if nodes.is_empty() {
            out.push(PathCost {
                leaf,
                nodes,
                cost: 0.0,
            });
            continue;
        }
        let instance = path_cover_instance(tree, &nodes);
        let cost = fractional_edge_cover(&instance)?;
        out.push(PathCost { leaf, nodes, cost });
    }
    Ok(out)
}

/// Computes `s(T)`: the maximum fractional edge cover number over all
/// root-to-leaf paths.  An empty forest has cost 0.
pub fn s_cost(tree: &FTree) -> Result<f64> {
    let details = s_cost_details(tree)?;
    Ok(details.into_iter().map(|p| p.cost).fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftree::DepEdge;
    use fdb_common::{AttrId, Value};
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    /// Grocery edges: Orders{oid=0, item=1}, Store{location=2, item=3},
    /// Disp{dispatcher=4, location=5}, Produce{supplier=6, item=7},
    /// Serve{supplier=8, location=9}.
    fn grocery_edges() -> Vec<DepEdge> {
        vec![
            DepEdge::new("Orders", attrs(&[0, 1]), 5),
            DepEdge::new("Store", attrs(&[2, 3]), 6),
            DepEdge::new("Disp", attrs(&[4, 5]), 4),
            DepEdge::new("Produce", attrs(&[6, 7]), 4),
            DepEdge::new("Serve", attrs(&[8, 9]), 5),
        ]
    }

    /// T1 of Figure 2: item → (oid, location → dispatcher), using the
    /// Orders/Store/Disp relations.  `s(T1) = 2` (Example 4).
    fn t1() -> FTree {
        let mut t = FTree::new(grocery_edges());
        let item = t.add_node(attrs(&[1, 3]), None).unwrap();
        t.add_node(attrs(&[0]), Some(item)).unwrap();
        let location = t.add_node(attrs(&[2, 5]), Some(item)).unwrap();
        t.add_node(attrs(&[4]), Some(location)).unwrap();
        t
    }

    /// T3 of Figure 2: supplier → (item, location), using Produce/Serve.
    /// `s(T3) = 1` (Example 4).
    fn t3() -> FTree {
        let mut t = FTree::new(grocery_edges());
        let supplier = t.add_node(attrs(&[6, 8]), None).unwrap();
        t.add_node(attrs(&[7]), Some(supplier)).unwrap();
        t.add_node(attrs(&[9]), Some(supplier)).unwrap();
        t
    }

    /// T4 of Figure 2: item → supplier → location.  `s(T4) = 2`.
    fn t4() -> FTree {
        let mut t = FTree::new(grocery_edges());
        let item = t.add_node(attrs(&[7]), None).unwrap();
        let supplier = t.add_node(attrs(&[6, 8]), Some(item)).unwrap();
        t.add_node(attrs(&[9]), Some(supplier)).unwrap();
        t
    }

    #[test]
    fn example4_costs_match_the_paper() {
        assert!(close(s_cost(&t1()).unwrap(), 2.0));
        assert!(close(s_cost(&t3()).unwrap(), 1.0));
        assert!(close(s_cost(&t4()).unwrap(), 2.0));
    }

    #[test]
    fn empty_tree_costs_zero() {
        let t = FTree::new(vec![]);
        assert!(close(s_cost(&t).unwrap(), 0.0));
    }

    #[test]
    fn single_relation_path_costs_one() {
        // A chain of classes all covered by one relation has cost 1 however
        // long it is.
        let mut t = FTree::new(vec![DepEdge::new("R", attrs(&[0, 1, 2, 3]), 1)]);
        let a = t.add_node(attrs(&[0]), None).unwrap();
        let b = t.add_node(attrs(&[1]), Some(a)).unwrap();
        let c = t.add_node(attrs(&[2]), Some(b)).unwrap();
        t.add_node(attrs(&[3]), Some(c)).unwrap();
        assert!(close(s_cost(&t).unwrap(), 1.0));
    }

    #[test]
    fn triangle_path_costs_three_halves() {
        // R{A,B}, S{B,C}, T{A,C} on one path: fractional cover 1.5.
        let edges = vec![
            DepEdge::new("R", attrs(&[0, 1]), 1),
            DepEdge::new("S", attrs(&[1, 2]), 1),
            DepEdge::new("T", attrs(&[0, 2]), 1),
        ];
        let mut t = FTree::new(edges);
        let a = t.add_node(attrs(&[0]), None).unwrap();
        let b = t.add_node(attrs(&[1]), Some(a)).unwrap();
        t.add_node(attrs(&[2]), Some(b)).unwrap();
        assert!(close(s_cost(&t).unwrap(), 1.5));
    }

    #[test]
    fn constant_nodes_are_ignored() {
        let mut t = t1();
        // Binding the item node to a constant removes it from every path;
        // the remaining paths item-oid and item-location-dispatcher lose the
        // item vertex, so each is coverable by a single relation … except
        // the location/dispatcher path which still needs Store and Disp?
        // No: with item gone the path oid has cover 1 (Orders), and the path
        // location→dispatcher has cover … location is in Store and Disp,
        // dispatcher in Disp, so Disp alone covers both: cost 1.
        let item = t.node_of_attr(AttrId(1)).unwrap();
        t.bind_constant(item, Value::new(7)).unwrap();
        assert!(close(s_cost(&t).unwrap(), 1.0));
    }

    #[test]
    fn per_path_details_identify_the_expensive_path() {
        let t = t1();
        let details = s_cost_details(&t).unwrap();
        assert_eq!(details.len(), 2); // two leaves: oid, dispatcher
        let max = details.iter().map(|d| d.cost).fold(0.0, f64::max);
        assert!(close(max, 2.0));
        // The cheap path is item → oid (covered by Orders + … actually item
        // needs Store or Orders: Orders covers both item and oid → cost 1).
        let min = details.iter().map(|d| d.cost).fold(f64::INFINITY, f64::min);
        assert!(close(min, 1.0));
    }

    #[test]
    fn deeper_nesting_can_increase_cost() {
        // Path of three mutually independent relations: each contributes 1.
        let edges = vec![
            DepEdge::new("R", attrs(&[0]), 1),
            DepEdge::new("S", attrs(&[1]), 1),
            DepEdge::new("T", attrs(&[2]), 1),
        ];
        let mut path = FTree::new(edges.clone());
        let a = path.add_node(attrs(&[0]), None).unwrap();
        let b = path.add_node(attrs(&[1]), Some(a)).unwrap();
        path.add_node(attrs(&[2]), Some(b)).unwrap();
        assert!(close(s_cost(&path).unwrap(), 3.0));

        // The same three relations as a forest of three roots: cost 1.
        let mut forest = FTree::new(edges);
        forest.add_node(attrs(&[0]), None).unwrap();
        forest.add_node(attrs(&[1]), None).unwrap();
        forest.add_node(attrs(&[2]), None).unwrap();
        assert!(close(s_cost(&forest).unwrap(), 1.0));
    }
}
