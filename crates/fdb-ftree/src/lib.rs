//! Factorisation trees (f-trees).
//!
//! An f-tree over a set of attributes is an unordered rooted forest whose
//! nodes are labelled by disjoint, non-empty attribute classes covering the
//! whole set (Definition 2 of the paper).  An f-tree describes the nesting
//! structure of a factorised representation: tuples are grouped by the values
//! of the root class, the common values are factored out, and each child
//! subtree factorises one independent part of the remainder.
//!
//! This crate implements:
//!
//! * the [`FTree`] data structure ([`ftree`]) with its *dependency edges*
//!   (which relation constrains which attributes), the *path constraint*
//!   (all attributes of a relation lie on one root-to-leaf path), and
//!   queries such as ancestorship and node dependency;
//! * the schema-level transformations used by f-plan operators
//!   ([`transform`]): push-up, normalisation, swap, merge, absorb,
//!   constant-selection marking, and leaf removal for projections;
//! * the size-bound cost `s(T)` ([`cost`]): the maximum fractional edge
//!   cover number over root-to-leaf paths, computed with the `fdb-lp`
//!   simplex solver;
//! * constructors of valid f-trees for a query ([`builder`]), including the
//!   single-path fallback and the recursive enumeration of normalised
//!   f-trees used by the optimiser.

#![warn(missing_docs)]

pub mod builder;
pub mod cost;
pub mod ftree;
pub mod transform;

pub use builder::{
    dep_edges_for_query, flat_database_ftree, ftree_from_query_classes, single_path_ftree,
};
pub use cost::{path_cover_instance, s_cost, s_cost_details, PathCost};
#[doc(hidden)]
pub use ftree::NodeSnapshot;
pub use ftree::{DepEdge, FTree, NodeId};
pub use transform::SwapOutcome;
