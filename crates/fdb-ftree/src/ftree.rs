//! The f-tree data structure: labelled rooted forests with dependency edges.
//!
//! Nodes live in a slotted arena (`Vec<Option<Node>>`) so that [`NodeId`]s
//! stay stable while operators remove and re-parent nodes.  Alongside the
//! forest, an f-tree carries its *dependency edges*: one edge per input
//! relation (or per merged group of relations once projections have removed
//! shared join attributes).  Dependency edges are what give meaning to the
//! path constraint, node dependency, normalisation and the `s(T)` cost.

use fdb_common::{AttrId, FdbError, Result, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a node inside one [`FTree`].  Ids are stable across the
/// schema transformations (a removed node's id is simply never reused).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the node arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A dependency edge: a set of attributes that must lie on a single
/// root-to-leaf path (initially the attribute set of one relation).
#[derive(Clone, Debug, PartialEq)]
pub struct DepEdge {
    /// Human-readable label (the relation name, or a `⋈`-joined label after
    /// edges are merged by a projection).
    pub label: String,
    /// Attributes constrained by this edge.
    pub attrs: BTreeSet<AttrId>,
    /// Cardinality of the corresponding relation (used by the cost-estimate
    /// metric; `1` when unknown).
    pub cardinality: u64,
}

impl DepEdge {
    /// Creates a new dependency edge.
    pub fn new(label: impl Into<String>, attrs: BTreeSet<AttrId>, cardinality: u64) -> Self {
        DepEdge {
            label: label.into(),
            attrs,
            cardinality,
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Node {
    pub(crate) class: BTreeSet<AttrId>,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    /// Attributes of the class that have been projected away (kept while the
    /// node is still needed to preserve transitive dependencies).
    pub(crate) projected: BTreeSet<AttrId>,
    /// Set when an equality selection with a constant has bound this node's
    /// value; the node then no longer contributes to `s(T)`.
    pub(crate) constant: Option<Value>,
}

/// A factorisation tree: an unordered rooted forest of nodes labelled by
/// disjoint attribute classes, plus the dependency edges of its relations.
#[derive(Clone, Debug, Default)]
pub struct FTree {
    nodes: Vec<Option<Node>>,
    roots: Vec<NodeId>,
    edges: Vec<DepEdge>,
}

impl FTree {
    /// Creates an empty f-tree with the given dependency edges.
    pub fn new(edges: Vec<DepEdge>) -> Self {
        FTree {
            nodes: Vec::new(),
            roots: Vec::new(),
            edges,
        }
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a node labelled by `class` under `parent` (or as a new root when
    /// `parent` is `None`).  Returns the new node's id.
    pub fn add_node(&mut self, class: BTreeSet<AttrId>, parent: Option<NodeId>) -> Result<NodeId> {
        if class.is_empty() {
            return Err(FdbError::InvalidInput {
                detail: "f-tree node class must be non-empty".into(),
            });
        }
        for attr in &class {
            if self.node_of_attr(*attr).is_some() {
                return Err(FdbError::InvalidInput {
                    detail: format!("attribute {attr} already labels another f-tree node"),
                });
            }
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(Node {
            class,
            parent,
            children: Vec::new(),
            projected: BTreeSet::new(),
            constant: None,
        }));
        match parent {
            Some(p) => {
                self.check_node(p)?;
                self.node_mut(p).children.push(id);
            }
            None => self.roots.push(id),
        }
        Ok(id)
    }

    /// Adds a dependency edge; returns its index.
    pub fn add_edge(&mut self, edge: DepEdge) -> usize {
        self.edges.push(edge);
        self.edges.len() - 1
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub(crate) fn node(&self, id: NodeId) -> &Node {
        self.nodes[id.index()].as_ref().expect("node was removed")
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id.index()].as_mut().expect("node was removed")
    }

    /// Returns an error if `id` does not refer to a live node.
    pub fn check_node(&self, id: NodeId) -> Result<()> {
        match self.nodes.get(id.index()) {
            Some(Some(_)) => Ok(()),
            _ => Err(FdbError::InvalidInput {
                detail: format!("no such f-tree node: {id}"),
            }),
        }
    }

    /// Returns `true` if the node id refers to a live node.
    pub fn contains(&self, id: NodeId) -> bool {
        matches!(self.nodes.get(id.index()), Some(Some(_)))
    }

    /// Root nodes of the forest, in insertion order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Live nodes, in id order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&id| self.contains(id))
            .collect()
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Returns `true` if the forest has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// The attribute class labelling a node.
    pub fn class(&self, id: NodeId) -> &BTreeSet<AttrId> {
        &self.node(id).class
    }

    /// The attributes of a node that have been projected away.
    pub fn projected_attrs(&self, id: NodeId) -> &BTreeSet<AttrId> {
        &self.node(id).projected
    }

    /// The attributes of a node that are still visible (not projected away).
    pub fn visible_attrs(&self, id: NodeId) -> BTreeSet<AttrId> {
        self.node(id)
            .class
            .difference(&self.node(id).projected)
            .copied()
            .collect()
    }

    /// The constant this node has been bound to by an equality selection, if
    /// any.
    pub fn constant(&self, id: NodeId) -> Option<Value> {
        self.node(id).constant
    }

    /// Parent of a node (`None` for roots).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Children of a node, in their current order (the order matters to the
    /// data-level representation, which aligns per-entry child unions with
    /// it).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Returns `true` if a node has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.node(id).children.is_empty()
    }

    /// The dependency edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Mutable access to the dependency edges (used when projections merge
    /// edges).
    pub fn edges_mut(&mut self) -> &mut Vec<DepEdge> {
        &mut self.edges
    }

    /// All attributes labelling nodes of the forest.
    pub fn all_attrs(&self) -> BTreeSet<AttrId> {
        self.node_ids()
            .iter()
            .flat_map(|&id| self.class(id).iter().copied())
            .collect()
    }

    /// The node labelled by the given attribute, if any.
    pub fn node_of_attr(&self, attr: AttrId) -> Option<NodeId> {
        self.node_ids()
            .into_iter()
            .find(|&id| self.node(id).class.contains(&attr))
    }

    /// Ancestors of a node, nearest first (excluding the node itself).
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// Returns `true` if `anc` is a strict ancestor of `desc`.
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        self.ancestors(desc).contains(&anc)
    }

    /// Nodes of the subtree rooted at `id` (including `id`), pre-order.
    pub fn subtree(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = vec![id];
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            for &c in self.children(n) {
                out.push(c);
                stack.push(c);
            }
        }
        out
    }

    /// Leaves of the forest.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.node_ids()
            .into_iter()
            .filter(|&id| self.is_leaf(id))
            .collect()
    }

    /// Depth of a node (roots have depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).len()
    }

    /// Nodes in bottom-up order (every node appears after all of its
    /// descendants).
    pub fn bottom_up(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = self.node_ids();
        order.sort_by_key(|&id| std::cmp::Reverse(self.depth(id)));
        order
    }

    // ------------------------------------------------------------------
    // Dependencies and the path constraint
    // ------------------------------------------------------------------

    /// The dependency edges that have at least one attribute in the node's
    /// class.
    pub fn edges_of_node(&self, id: NodeId) -> Vec<usize> {
        let class = &self.node(id).class;
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.attrs.iter().any(|a| class.contains(a)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Two nodes are *dependent* when some dependency edge has attributes in
    /// both of their classes.
    pub fn nodes_dependent(&self, a: NodeId, b: NodeId) -> bool {
        let ca = &self.node(a).class;
        let cb = &self.node(b).class;
        self.edges.iter().any(|e| {
            e.attrs.iter().any(|x| ca.contains(x)) && e.attrs.iter().any(|x| cb.contains(x))
        })
    }

    /// Returns `true` if node `a` is dependent on node `b` or on any
    /// descendant of `b` — the condition under which `b` may *not* be pushed
    /// above `a`.
    pub fn depends_on_subtree(&self, a: NodeId, b: NodeId) -> bool {
        self.subtree(b)
            .into_iter()
            .any(|n| self.nodes_dependent(a, n))
    }

    /// Checks the path constraint: every dependency edge's attributes label
    /// nodes that all lie on a single root-to-leaf path.
    pub fn check_path_constraint(&self) -> Result<()> {
        for edge in &self.edges {
            let mut nodes: Vec<NodeId> = Vec::new();
            for &attr in &edge.attrs {
                if let Some(n) = self.node_of_attr(attr) {
                    if !nodes.contains(&n) {
                        nodes.push(n);
                    }
                }
            }
            for i in 0..nodes.len() {
                for j in (i + 1)..nodes.len() {
                    let (a, b) = (nodes[i], nodes[j]);
                    if !(self.is_ancestor(a, b) || self.is_ancestor(b, a)) {
                        return Err(FdbError::PathConstraintViolation {
                            detail: format!(
                                "relation {} has attributes in unrelated nodes {a} and {b}",
                                edge.label
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks internal structural invariants (parent/child symmetry, roots
    /// list, class disjointness).  Intended for tests and debug assertions.
    pub fn check_structure(&self) -> Result<()> {
        let mut seen_attrs: BTreeSet<AttrId> = BTreeSet::new();
        for id in self.node_ids() {
            let node = self.node(id);
            for attr in &node.class {
                if !seen_attrs.insert(*attr) {
                    return Err(FdbError::InvalidInput {
                        detail: format!("attribute {attr} labels two nodes"),
                    });
                }
            }
            match node.parent {
                Some(p) => {
                    self.check_node(p)?;
                    if !self.node(p).children.contains(&id) {
                        return Err(FdbError::InvalidInput {
                            detail: format!(
                                "node {id} not listed among children of its parent {p}"
                            ),
                        });
                    }
                    if self.roots.contains(&id) {
                        return Err(FdbError::InvalidInput {
                            detail: format!("node {id} has a parent but is listed as a root"),
                        });
                    }
                }
                None => {
                    if !self.roots.contains(&id) {
                        return Err(FdbError::InvalidInput {
                            detail: format!("parentless node {id} missing from the roots list"),
                        });
                    }
                }
            }
            for &c in &node.children {
                self.check_node(c)?;
                if self.node(c).parent != Some(id) {
                    return Err(FdbError::InvalidInput {
                        detail: format!("child {c} of {id} does not point back to it"),
                    });
                }
            }
        }
        for &r in &self.roots {
            self.check_node(r)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Canonical form
    // ------------------------------------------------------------------

    /// A canonical, order-insensitive encoding of the forest shape and node
    /// labels.  Two f-trees over the same attributes get the same key iff
    /// they are equal up to reordering of children/roots — exactly the
    /// equivalence the optimiser's search space is defined over.
    pub fn canonical_key(&self) -> String {
        let mut root_keys: Vec<String> = self
            .roots
            .iter()
            .map(|&r| self.canonical_subtree_key(r))
            .collect();
        root_keys.sort();
        root_keys.join("+")
    }

    fn canonical_subtree_key(&self, id: NodeId) -> String {
        let node = self.node(id);
        let attrs: Vec<String> = node.class.iter().map(|a| a.0.to_string()).collect();
        let mut child_keys: Vec<String> = node
            .children
            .iter()
            .map(|&c| self.canonical_subtree_key(c))
            .collect();
        child_keys.sort();
        let constant = match node.constant {
            Some(v) => format!("={v}"),
            None => String::new(),
        };
        format!(
            "({}{}[{}])",
            attrs.join(","),
            constant,
            child_keys.join(",")
        )
    }

    /// Renders the forest as indented ASCII, resolving attribute names via
    /// the provided naming function.
    pub fn render<F>(&self, mut name: F) -> String
    where
        F: FnMut(AttrId) -> String,
    {
        let mut out = String::new();
        for &root in &self.roots {
            self.render_node(root, 0, &mut name, &mut out);
        }
        out
    }

    fn render_node<F>(&self, id: NodeId, depth: usize, name: &mut F, out: &mut String)
    where
        F: FnMut(AttrId) -> String,
    {
        let node = self.node(id);
        let label: Vec<String> = node.class.iter().map(|&a| name(a)).collect();
        let constant = match node.constant {
            Some(v) => format!(" = {v}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "{}{}{}\n",
            "  ".repeat(depth),
            label.join(","),
            constant
        ));
        for &c in &node.children {
            self.render_node(c, depth + 1, name, out);
        }
    }

    // ------------------------------------------------------------------
    // Low-level structural edits shared by the transformation module
    // ------------------------------------------------------------------

    /// Detaches `id` from its current parent (or from the roots list).
    pub(crate) fn detach(&mut self, id: NodeId) {
        match self.node(id).parent {
            Some(p) => {
                let children = &mut self.node_mut(p).children;
                children.retain(|&c| c != id);
            }
            None => self.roots.retain(|&r| r != id),
        }
        self.node_mut(id).parent = None;
    }

    /// Attaches a detached node under `parent` (or as a root).
    pub(crate) fn attach(&mut self, id: NodeId, parent: Option<NodeId>) {
        debug_assert!(self.node(id).parent.is_none());
        self.node_mut(id).parent = parent;
        match parent {
            Some(p) => self.node_mut(p).children.push(id),
            None => self.roots.push(id),
        }
    }

    /// Removes a node that has no children, detaching it from its parent.
    pub(crate) fn remove_childless(&mut self, id: NodeId) {
        debug_assert!(self.node(id).children.is_empty());
        self.detach(id);
        self.nodes[id.index()] = None;
    }

    /// Replaces the class of a node (used by merge/absorb), together with its
    /// projected subset and constant marker.
    pub(crate) fn set_class(&mut self, id: NodeId, class: BTreeSet<AttrId>) {
        self.node_mut(id).class = class;
    }

    /// Adds attributes to the projected-away set of a node.
    pub(crate) fn mark_projected(&mut self, id: NodeId, attrs: &BTreeSet<AttrId>) {
        let node = self.node_mut(id);
        for a in attrs {
            if node.class.contains(a) {
                node.projected.insert(*a);
            }
        }
    }

    /// Marks a node as bound to a constant by an equality selection.
    pub(crate) fn set_constant(&mut self, id: NodeId, value: Value) {
        self.node_mut(id).constant = Some(value);
    }

    /// Merges the projected/constant bookkeeping of `src` into `dst` (used by
    /// merge and absorb, which fuse two nodes).
    pub(crate) fn merge_markers(
        &mut self,
        dst: NodeId,
        src_projected: BTreeSet<AttrId>,
        src_constant: Option<Value>,
    ) {
        {
            let node = self.node_mut(dst);
            node.projected.extend(src_projected);
        }
        if let Some(v) = src_constant {
            // If both sides carry constants they must agree; the data-level
            // operator will already have produced an empty representation
            // otherwise, so preferring the existing constant is safe.
            if self.node(dst).constant.is_none() {
                self.node_mut(dst).constant = Some(v);
            }
        }
    }

    /// Imports another forest into this one (used by the Cartesian product
    /// operator): all of `other`'s nodes and dependency edges are copied and
    /// the returned map translates `other`'s node ids into ids of this tree.
    ///
    /// Fails if the two forests share an attribute (the product operator
    /// requires disjoint attribute sets).
    pub fn import_forest(&mut self, other: &FTree) -> Result<BTreeMap<NodeId, NodeId>> {
        let mut map: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        // Insert top-down so parents exist before their children.
        let mut order: Vec<NodeId> = other.node_ids();
        order.sort_by_key(|&id| other.depth(id));
        for old in order {
            let parent = other.parent(old).map(|p| map[&p]);
            let new = self.add_node(other.class(old).clone(), parent)?;
            let projected = other.projected_attrs(old).clone();
            self.mark_projected(new, &projected);
            if let Some(v) = other.constant(old) {
                self.set_constant(new, v);
            }
            map.insert(old, new);
        }
        for edge in other.edges() {
            self.add_edge(edge.clone());
        }
        Ok(map)
    }

    /// Builds an attribute → node map for the current tree.
    pub fn attr_to_node(&self) -> BTreeMap<AttrId, NodeId> {
        let mut map = BTreeMap::new();
        for id in self.node_ids() {
            for &a in self.class(id) {
                map.insert(a, id);
            }
        }
        map
    }

    // ------------------------------------------------------------------
    // Loss-free snapshot codec support
    // ------------------------------------------------------------------

    /// Flat, loss-free description of every node slot — including the `None`
    /// holes left by removed nodes, which must survive a snapshot round trip
    /// because node ids index into the slot vector.  Used by the snapshot
    /// codec in `fdb-frep`; not part of the stable API.
    #[doc(hidden)]
    pub fn snapshot_nodes(&self) -> Vec<Option<NodeSnapshot>> {
        self.nodes
            .iter()
            .map(|slot| {
                slot.as_ref().map(|n| NodeSnapshot {
                    class: n.class.clone(),
                    parent: n.parent,
                    children: n.children.clone(),
                    projected: n.projected.clone(),
                    constant: n.constant,
                })
            })
            .collect()
    }

    /// Rebuilds a forest from the exact slot layout captured by
    /// [`FTree::snapshot_nodes`], re-validating the structural invariants
    /// (parent/child symmetry, roots list, class disjointness) before
    /// returning.  Malformed input yields a structured error, never a panic.
    /// Used by the snapshot codec in `fdb-frep`; not part of the stable API.
    #[doc(hidden)]
    pub fn from_snapshot(
        edges: Vec<DepEdge>,
        nodes: Vec<Option<NodeSnapshot>>,
        roots: Vec<NodeId>,
    ) -> Result<FTree> {
        let tree = FTree {
            nodes: nodes
                .into_iter()
                .map(|slot| {
                    slot.map(|s| Node {
                        class: s.class,
                        parent: s.parent,
                        children: s.children,
                        projected: s.projected,
                        constant: s.constant,
                    })
                })
                .collect(),
            roots,
            edges,
        };
        tree.check_structure()?;
        Ok(tree)
    }
}

/// One node slot of an f-tree in loss-free snapshot form (see
/// [`FTree::snapshot_nodes`]).  All fields mirror the private node record
/// exactly; child order is significant because the data-level representation
/// aligns per-entry child unions with it.
#[doc(hidden)]
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSnapshot {
    /// Attribute class labelling the node.
    pub class: BTreeSet<AttrId>,
    /// Parent node (`None` for roots).
    pub parent: Option<NodeId>,
    /// Children, in their significant order.
    pub children: Vec<NodeId>,
    /// Attributes projected away but retained for transitive dependencies.
    pub projected: BTreeSet<AttrId>,
    /// Constant bound by an equality selection, if any.
    pub constant: Option<Value>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// The paper's T1 f-tree for the grocery example:
    /// item → {oid, location}, location → dispatcher.
    /// Relations: Orders{oid,item}, Store{location,item}, Disp{dispatcher,location}.
    fn t1() -> (FTree, NodeId, NodeId, NodeId, NodeId) {
        let edges = vec![
            DepEdge::new("Orders", attrs(&[0, 1]), 5),
            DepEdge::new("Store", attrs(&[2, 3]), 6),
            DepEdge::new("Disp", attrs(&[4, 5]), 4),
        ];
        // Attribute ids: 0=oid, 1=Orders.item, 2=Store.location, 3=Store.item,
        // 4=dispatcher, 5=Disp.location.
        let mut t = FTree::new(edges);
        let item = t.add_node(attrs(&[1, 3]), None).unwrap();
        let oid = t.add_node(attrs(&[0]), Some(item)).unwrap();
        let location = t.add_node(attrs(&[2, 5]), Some(item)).unwrap();
        let dispatcher = t.add_node(attrs(&[4]), Some(location)).unwrap();
        (t, item, oid, location, dispatcher)
    }

    #[test]
    fn construction_and_accessors() {
        let (t, item, oid, location, dispatcher) = t1();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.roots(), &[item]);
        assert_eq!(t.children(item), &[oid, location]);
        assert_eq!(t.parent(dispatcher), Some(location));
        assert!(t.is_leaf(oid));
        assert!(!t.is_leaf(item));
        assert_eq!(t.depth(dispatcher), 2);
        assert_eq!(t.node_of_attr(AttrId(4)), Some(dispatcher));
        assert_eq!(t.node_of_attr(AttrId(9)), None);
        assert_eq!(t.visible_attrs(item), attrs(&[1, 3]));
        t.check_structure().unwrap();
    }

    #[test]
    fn duplicate_attribute_is_rejected() {
        let (mut t, _, _, _, _) = t1();
        assert!(t.add_node(attrs(&[0]), None).is_err());
        assert!(t.add_node(BTreeSet::new(), None).is_err());
    }

    #[test]
    fn ancestors_and_subtrees() {
        let (t, item, oid, location, dispatcher) = t1();
        assert_eq!(t.ancestors(dispatcher), vec![location, item]);
        assert!(t.is_ancestor(item, dispatcher));
        assert!(!t.is_ancestor(oid, dispatcher));
        let sub: BTreeSet<NodeId> = t.subtree(item).into_iter().collect();
        assert_eq!(sub.len(), 4);
        let leaves: BTreeSet<NodeId> = t.leaves().into_iter().collect();
        assert_eq!(leaves, [oid, dispatcher].into_iter().collect());
    }

    #[test]
    fn dependency_queries_follow_edges() {
        let (t, item, oid, location, dispatcher) = t1();
        // Orders links item and oid; Store links item and location; Disp
        // links location and dispatcher.
        assert!(t.nodes_dependent(item, oid));
        assert!(t.nodes_dependent(item, location));
        assert!(t.nodes_dependent(location, dispatcher));
        assert!(!t.nodes_dependent(oid, dispatcher));
        assert!(!t.nodes_dependent(item, dispatcher));
        // item depends on the subtree of location because of Store.
        assert!(t.depends_on_subtree(item, location));
        // oid's subtree does not constrain dispatcher.
        assert!(!t.depends_on_subtree(dispatcher, oid));
    }

    #[test]
    fn path_constraint_detects_violations() {
        let (t, ..) = t1();
        t.check_path_constraint().unwrap();

        // Putting dispatcher and location in *sibling* subtrees violates the
        // Disp edge.
        let edges = vec![DepEdge::new("Disp", attrs(&[0, 1]), 4)];
        let mut bad = FTree::new(edges);
        let root = bad.add_node(attrs(&[2]), None).unwrap();
        bad.add_node(attrs(&[0]), Some(root)).unwrap();
        bad.add_node(attrs(&[1]), Some(root)).unwrap();
        assert!(matches!(
            bad.check_path_constraint(),
            Err(FdbError::PathConstraintViolation { .. })
        ));
    }

    #[test]
    fn canonical_key_ignores_child_order() {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1, 2]), 1)];
        let mut a = FTree::new(edges.clone());
        let ra = a.add_node(attrs(&[0]), None).unwrap();
        a.add_node(attrs(&[1]), Some(ra)).unwrap();
        a.add_node(attrs(&[2]), Some(ra)).unwrap();

        let mut b = FTree::new(edges);
        let rb = b.add_node(attrs(&[0]), None).unwrap();
        b.add_node(attrs(&[2]), Some(rb)).unwrap();
        b.add_node(attrs(&[1]), Some(rb)).unwrap();

        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn canonical_key_distinguishes_shapes() {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 1)];
        let mut chain = FTree::new(edges.clone());
        let r = chain.add_node(attrs(&[0]), None).unwrap();
        chain.add_node(attrs(&[1]), Some(r)).unwrap();

        let mut flipped = FTree::new(edges);
        let r = flipped.add_node(attrs(&[1]), None).unwrap();
        flipped.add_node(attrs(&[0]), Some(r)).unwrap();

        assert_ne!(chain.canonical_key(), flipped.canonical_key());
    }

    #[test]
    fn render_produces_indented_output() {
        let (t, ..) = t1();
        let names = ["oid", "item", "location", "item", "dispatcher", "location"];
        let rendered = t.render(|a| names[a.index()].to_string());
        assert!(rendered.contains("item,item"));
        assert!(rendered.contains("  oid"));
        assert!(rendered.contains("    dispatcher"));
    }

    #[test]
    fn structural_edits_keep_invariants() {
        let (mut t, item, oid, location, _dispatcher) = t1();
        t.detach(oid);
        t.attach(oid, Some(location));
        t.check_structure().unwrap();
        assert_eq!(t.parent(oid), Some(location));
        assert_eq!(t.children(item), &[location]);
        // Re-root oid.
        t.detach(oid);
        t.attach(oid, None);
        t.check_structure().unwrap();
        assert!(t.roots().contains(&oid));
    }

    #[test]
    fn bottom_up_lists_descendants_first() {
        let (t, item, _, location, dispatcher) = t1();
        let order = t.bottom_up();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(dispatcher) < pos(location));
        assert!(pos(location) < pos(item));
    }
}
