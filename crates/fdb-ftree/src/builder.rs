//! Constructors of valid f-trees for queries and databases.
//!
//! The optimiser searches the space of f-trees; this module provides the
//! pieces every search starts from:
//!
//! * [`dep_edges_for_query`]: the dependency edges of a query (one per
//!   relation, carrying its cardinality for the cost-estimate metric);
//! * [`single_path_ftree`]: the always-valid fallback f-tree that chains all
//!   attribute classes along a single path (every relation's attributes then
//!   trivially lie on one root-to-leaf path);
//! * [`ftree_from_query_classes`]: the fallback f-tree of a query — a single
//!   path over its equivalence classes, normalised;
//! * [`flat_database_ftree`]: the f-tree under which a flat relational
//!   database *is already* a factorised representation — a forest with one
//!   path per relation, one singleton class per attribute.  This is the
//!   starting point when FDB evaluates a query on flat input purely with
//!   f-plan operators.

use crate::ftree::{DepEdge, FTree, NodeId};
use fdb_common::{AttrId, Catalog, Query, RelId, Result};
use std::collections::BTreeSet;

/// Builds the dependency edges of a query: one edge per relation occurrence,
/// labelled with the relation name and carrying the cardinality reported by
/// `cardinality_of` (pass `|_| 1` when sizes are unknown or irrelevant).
pub fn dep_edges_for_query(
    catalog: &Catalog,
    query: &Query,
    cardinality_of: impl Fn(RelId) -> u64,
) -> Vec<DepEdge> {
    query
        .relations
        .iter()
        .map(|&rel| {
            let attrs: BTreeSet<AttrId> = catalog.rel_attrs(rel).iter().copied().collect();
            DepEdge::new(catalog.rel_name(rel), attrs, cardinality_of(rel))
        })
        .collect()
}

/// Builds the f-tree that chains the given classes along a single path, in
/// the given order (the first class becomes the root).  A single path always
/// satisfies the path constraint.
pub fn single_path_ftree(classes: &[BTreeSet<AttrId>], edges: Vec<DepEdge>) -> Result<FTree> {
    let mut tree = FTree::new(edges);
    let mut parent: Option<NodeId> = None;
    for class in classes {
        let node = tree.add_node(class.clone(), parent)?;
        parent = Some(node);
    }
    Ok(tree)
}

/// Builds a valid, normalised f-tree for the query result: the single-path
/// f-tree over the query's attribute equivalence classes, then normalised.
/// This is the fallback the optimiser starts from (and improves upon).
pub fn ftree_from_query_classes(
    catalog: &Catalog,
    query: &Query,
    cardinality_of: impl Fn(RelId) -> u64,
) -> Result<FTree> {
    let classes = query.equivalence_classes(catalog);
    let edges = dep_edges_for_query(catalog, query, cardinality_of);
    let mut tree = single_path_ftree(&classes, edges)?;
    tree.normalise();
    tree.check_path_constraint()?;
    Ok(tree)
}

/// Builds the f-tree under which an (unjoined) flat database is already a
/// factorised representation: a forest with one path per relation, each path
/// listing that relation's attributes as singleton classes in declaration
/// order.
pub fn flat_database_ftree(
    catalog: &Catalog,
    relations: &[RelId],
    cardinality_of: impl Fn(RelId) -> u64,
) -> Result<FTree> {
    let mut edges = Vec::with_capacity(relations.len());
    for &rel in relations {
        let attrs: BTreeSet<AttrId> = catalog.rel_attrs(rel).iter().copied().collect();
        edges.push(DepEdge::new(
            catalog.rel_name(rel),
            attrs,
            cardinality_of(rel),
        ));
    }
    let mut tree = FTree::new(edges);
    for &rel in relations {
        let mut parent: Option<NodeId> = None;
        for &attr in catalog.rel_attrs(rel) {
            let class: BTreeSet<AttrId> = [attr].into_iter().collect();
            let node = tree.add_node(class, parent)?;
            parent = Some(node);
        }
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::s_cost;

    fn grocery() -> (Catalog, Vec<RelId>) {
        let mut catalog = Catalog::new();
        let (o, _) = catalog.add_relation("Orders", &["oid", "item"]);
        let (s, _) = catalog.add_relation("Store", &["location", "item"]);
        let (d, _) = catalog.add_relation("Disp", &["dispatcher", "location"]);
        (catalog, vec![o, s, d])
    }

    fn q1(catalog: &Catalog, rels: &[RelId]) -> Query {
        // Orders ⋈_item Store ⋈_location Disp
        let item_o = catalog.find_attr("Orders.item").unwrap();
        let item_s = catalog.find_attr("Store.item").unwrap();
        let loc_s = catalog.find_attr("Store.location").unwrap();
        let loc_d = catalog.find_attr("Disp.location").unwrap();
        Query::product(rels.to_vec())
            .with_equality(item_o, item_s)
            .with_equality(loc_s, loc_d)
    }

    #[test]
    fn dep_edges_cover_each_relation() {
        let (catalog, rels) = grocery();
        let query = q1(&catalog, &rels);
        let edges = dep_edges_for_query(&catalog, &query, |r| (r.0 + 1) as u64 * 10);
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0].label, "Orders");
        assert_eq!(edges[0].attrs.len(), 2);
        assert_eq!(edges[2].cardinality, 30);
    }

    #[test]
    fn single_path_tree_is_always_valid() {
        let (catalog, rels) = grocery();
        let query = q1(&catalog, &rels);
        let classes = query.equivalence_classes(&catalog);
        let edges = dep_edges_for_query(&catalog, &query, |_| 1);
        let tree = single_path_ftree(&classes, edges).unwrap();
        tree.check_structure().unwrap();
        tree.check_path_constraint().unwrap();
        assert_eq!(tree.node_count(), classes.len());
        assert_eq!(tree.leaves().len(), 1);
    }

    #[test]
    fn query_fallback_tree_is_normalised_and_valid() {
        let (catalog, rels) = grocery();
        let query = q1(&catalog, &rels);
        let tree = ftree_from_query_classes(&catalog, &query, |_| 1).unwrap();
        tree.check_structure().unwrap();
        tree.check_path_constraint().unwrap();
        assert!(tree.is_normalised());
        // Q1's result admits f-trees with cost 2 (Example 5); the fallback
        // cannot do better than s = 2 but must be finite and ≥ 1.
        let s = s_cost(&tree).unwrap();
        assert!(s >= 1.0);
    }

    #[test]
    fn flat_database_tree_has_one_path_per_relation() {
        let (catalog, rels) = grocery();
        let tree = flat_database_ftree(&catalog, &rels, |_| 100).unwrap();
        tree.check_structure().unwrap();
        tree.check_path_constraint().unwrap();
        assert_eq!(tree.roots().len(), 3);
        assert_eq!(tree.node_count(), 6);
        // Every root-to-leaf path is one relation: cost 1.
        assert!((s_cost(&tree).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn flat_database_tree_respects_relation_subset() {
        let (catalog, rels) = grocery();
        let tree = flat_database_ftree(&catalog, &rels[..2], |_| 1).unwrap();
        assert_eq!(tree.roots().len(), 2);
        assert_eq!(tree.node_count(), 4);
    }
}
