//! Random data generation: uniform and Zipf-distributed relation instances.

use fdb_common::{Catalog, RelId};
use fdb_relation::{Database, Relation};
use rand::Rng;
use rand_distr::{Distribution, Zipf};

/// The value distributions used in the paper's experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ValueDistribution {
    /// Values drawn uniformly from `[1, domain]`.
    Uniform,
    /// Values drawn from `[1, domain]` under a Zipf distribution with the
    /// given exponent (the paper does not state the exponent; 1.0 is the
    /// classic choice and is what the harness uses).
    Zipf(f64),
}

impl ValueDistribution {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, domain: u64) -> u64 {
        match self {
            ValueDistribution::Uniform => rng.gen_range(1..=domain),
            ValueDistribution::Zipf(exponent) => {
                let dist = Zipf::new(domain, *exponent).expect("valid Zipf parameters");
                dist.sample(rng) as u64
            }
        }
    }
}

/// Populates every relation of the catalog with `tuples_per_relation` random
/// tuples whose values are drawn from `[1, domain]` under the given
/// distribution.
pub fn populate<R: Rng + ?Sized>(
    rng: &mut R,
    catalog: &Catalog,
    tuples_per_relation: usize,
    domain: u64,
    distribution: ValueDistribution,
) -> Database {
    let mut db = Database::new(catalog.clone());
    for rel in catalog.rels() {
        let instance =
            random_relation(rng, catalog, rel, tuples_per_relation, domain, distribution);
        db.insert_relation(rel, instance)
            .expect("schema matches by construction");
    }
    db
}

/// Generates one random relation instance.
///
/// Relations are *sets* of tuples (as in the paper's relational algebra), so
/// duplicate draws are rejected and re-sampled; if the domain is too small to
/// provide the requested number of distinct tuples the relation saturates at
/// the largest size reachable within a bounded number of attempts.
pub fn random_relation<R: Rng + ?Sized>(
    rng: &mut R,
    catalog: &Catalog,
    rel: RelId,
    tuples: usize,
    domain: u64,
    distribution: ValueDistribution,
) -> Relation {
    let attrs = catalog.rel_attrs(rel).to_vec();
    let arity = attrs.len();
    let mut seen: std::collections::BTreeSet<Vec<u64>> = std::collections::BTreeSet::new();
    let mut rows: Vec<Vec<u64>> = Vec::with_capacity(tuples);
    let max_attempts = tuples.saturating_mul(50).max(1000);
    let mut attempts = 0;
    while rows.len() < tuples && attempts < max_attempts {
        attempts += 1;
        let row: Vec<u64> = (0..arity)
            .map(|_| distribution.sample(rng, domain))
            .collect();
        if seen.insert(row.clone()) {
            rows.push(row);
        }
    }
    Relation::from_raw_rows(attrs, &rows).expect("arity is consistent by construction")
}

/// The "combinatorial" dataset of Experiment 3 (right column of Figure 7):
/// four relations over ten attributes — two binary relations with `8² = 64`
/// tuples and two ternary relations with `8³ = 512` tuples — with values
/// drawn from `[1, 20]` under the given distribution.
///
/// Returns the catalog (named `R0 … R3` with attributes `a0 … a9`) already
/// populated.
pub fn combinatorial_database<R: Rng + ?Sized>(
    rng: &mut R,
    distribution: ValueDistribution,
) -> Database {
    let mut catalog = Catalog::new();
    catalog.add_relation("R0", &["a0", "a1"]);
    catalog.add_relation("R1", &["a2", "a3"]);
    catalog.add_relation("R2", &["a4", "a5", "a6"]);
    catalog.add_relation("R3", &["a7", "a8", "a9"]);
    let mut db = Database::new(catalog.clone());
    for rel in catalog.rels() {
        let tuples = if catalog.rel_arity(rel) == 2 { 64 } else { 512 };
        let instance = random_relation(rng, &catalog, rel, tuples, 20, distribution);
        db.insert_relation(rel, instance).expect("schema matches");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::random_schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn populate_fills_every_relation() {
        let mut rng = StdRng::seed_from_u64(3);
        let catalog = random_schema(&mut rng, 3, 9);
        let db = populate(&mut rng, &catalog, 100, 1_000, ValueDistribution::Uniform);
        for rel in catalog.rels() {
            assert_eq!(db.rel_len(rel), 100);
        }
        assert_eq!(db.total_data_elements(), 9 * 100);
    }

    #[test]
    fn relations_are_sets_even_when_the_domain_is_tiny() {
        let mut rng = StdRng::seed_from_u64(30);
        let catalog = random_schema(&mut rng, 1, 1);
        // Only 5 distinct unary tuples exist; asking for 100 saturates at 5.
        let db = populate(&mut rng, &catalog, 100, 5, ValueDistribution::Uniform);
        let rel = catalog.rels().next().unwrap();
        assert_eq!(db.rel_len(rel), 5);
        let mut instance = db.relation(rel);
        let before = instance.len();
        instance.sort_and_dedup();
        assert_eq!(instance.len(), before, "no duplicate tuples are generated");
    }

    #[test]
    fn uniform_values_stay_in_the_domain() {
        let mut rng = StdRng::seed_from_u64(4);
        let catalog = random_schema(&mut rng, 2, 4);
        let db = populate(&mut rng, &catalog, 500, 10, ValueDistribution::Uniform);
        for rel in catalog.rels() {
            for row in db.relation(rel).rows() {
                for v in row {
                    assert!((1..=10).contains(&v.raw()));
                }
            }
        }
    }

    #[test]
    fn zipf_skews_towards_small_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let catalog = random_schema(&mut rng, 1, 3);
        let db = populate(&mut rng, &catalog, 5_000, 100, ValueDistribution::Zipf(1.0));
        let rel = catalog.rels().next().unwrap();
        let relation = db.relation(rel);
        let ones = relation.rows().filter(|r| r[0].raw() == 1).count();
        let hundreds = relation.rows().filter(|r| r[0].raw() == 100).count();
        assert!(
            ones > hundreds * 5,
            "Zipf must heavily favour the smallest value"
        );
        for row in relation.rows() {
            assert!((1..=100).contains(&row[0].raw()));
        }
    }

    #[test]
    fn combinatorial_database_matches_the_paper_sizes() {
        let mut rng = StdRng::seed_from_u64(6);
        let db = combinatorial_database(&mut rng, ValueDistribution::Uniform);
        let catalog = db.catalog().clone();
        assert_eq!(catalog.rel_count(), 4);
        assert_eq!(catalog.attr_count(), 10);
        let sizes: Vec<usize> = catalog.rels().map(|r| db.rel_len(r)).collect();
        assert_eq!(sizes, vec![64, 64, 512, 512]);
        for rel in catalog.rels() {
            for row in db.relation(rel).rows() {
                for v in row {
                    assert!((1..=20).contains(&v.raw()));
                }
            }
        }
    }
}
