//! Random query generation: equi-joins with `K` non-redundant equalities.

use fdb_common::query::UnionFind;
use fdb_common::{AttrId, Catalog, Query, RelId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Draws `k` non-redundant equality conditions over the attributes of the
/// given relations: every condition merges two previously distinct attribute
/// equivalence classes (so no condition is implied by the others), exactly as
/// in the paper's experimental design.
///
/// Returns fewer than `k` conditions only if fewer are possible (at most
/// `A − 1` non-trivial equalities exist over `A` attributes).
pub fn random_equalities<R: Rng + ?Sized>(
    rng: &mut R,
    catalog: &Catalog,
    relations: &[RelId],
    k: usize,
) -> Vec<(AttrId, AttrId)> {
    let attrs: Vec<AttrId> = relations
        .iter()
        .flat_map(|&r| catalog.rel_attrs(r).iter().copied())
        .collect();
    let mut uf = UnionFind::new(&attrs);
    let mut conditions = Vec::with_capacity(k);
    let max_attempts = 50 * (k + 1) * attrs.len().max(1);
    let mut attempts = 0;
    while conditions.len() < k && attempts < max_attempts {
        attempts += 1;
        let a = *attrs.choose(rng).expect("non-empty attribute list");
        let b = *attrs.choose(rng).expect("non-empty attribute list");
        if a == b {
            continue;
        }
        if uf.union(a, b) {
            conditions.push((a.min(b), a.max(b)));
        }
    }
    conditions
}

/// Builds a random equi-join query over all the given relations with `k`
/// non-redundant equality conditions.
pub fn random_query<R: Rng + ?Sized>(
    rng: &mut R,
    catalog: &Catalog,
    relations: &[RelId],
    k: usize,
) -> Query {
    let mut query = Query::product(relations.to_vec());
    for (a, b) in random_equalities(rng, catalog, relations, k) {
        query = query.with_equality(a, b);
    }
    query
}

/// Draws `l` additional non-redundant equalities *on top of* an existing
/// query: the new conditions are not implied by the query's existing
/// equality conditions (they keep merging distinct equivalence classes).
/// This is how Experiments 2 and 4 pose follow-up queries on the attribute
/// classes of a previous result.
pub fn random_followup_equalities<R: Rng + ?Sized>(
    rng: &mut R,
    catalog: &Catalog,
    base: &Query,
    l: usize,
) -> Vec<(AttrId, AttrId)> {
    let attrs = base.all_attrs(catalog);
    let mut uf = UnionFind::new(&attrs);
    for eq in &base.equalities {
        uf.union(eq.left, eq.right);
    }
    let mut conditions = Vec::with_capacity(l);
    let max_attempts = 50 * (l + 1) * attrs.len().max(1);
    let mut attempts = 0;
    while conditions.len() < l && attempts < max_attempts {
        attempts += 1;
        let a = *attrs.choose(rng).expect("non-empty attribute list");
        let b = *attrs.choose(rng).expect("non-empty attribute list");
        if a == b {
            continue;
        }
        if uf.union(a, b) {
            conditions.push((a.min(b), a.max(b)));
        }
    }
    conditions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::random_schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn equalities_are_non_redundant() {
        let mut rng = StdRng::seed_from_u64(11);
        let catalog = random_schema(&mut rng, 4, 10);
        let rels: Vec<RelId> = catalog.rels().collect();
        for k in 1..=9 {
            let query = random_query(&mut rng, &catalog, &rels, k);
            assert_eq!(query.equalities.len(), k);
            assert_eq!(query.non_redundant_equality_count(&catalog), k);
        }
    }

    #[test]
    fn requesting_too_many_equalities_saturates() {
        let mut rng = StdRng::seed_from_u64(12);
        let catalog = random_schema(&mut rng, 2, 4);
        let rels: Vec<RelId> = catalog.rels().collect();
        // Only 3 non-redundant equalities exist over 4 attributes.
        let eqs = random_equalities(&mut rng, &catalog, &rels, 10);
        assert!(eqs.len() <= 3);
    }

    #[test]
    fn followup_equalities_extend_without_redundancy() {
        let mut rng = StdRng::seed_from_u64(13);
        let catalog = random_schema(&mut rng, 4, 10);
        let rels: Vec<RelId> = catalog.rels().collect();
        let base = random_query(&mut rng, &catalog, &rels, 3);
        let follow = random_followup_equalities(&mut rng, &catalog, &base, 4);
        assert_eq!(follow.len(), 4);
        // Adding all follow-up conditions to the base still counts 3 + 4
        // non-redundant equalities.
        let mut extended = base.clone();
        for (a, b) in &follow {
            extended = extended.with_equality(*a, *b);
        }
        assert_eq!(extended.non_redundant_equality_count(&catalog), 7);
    }

    #[test]
    fn random_queries_validate_against_their_catalog() {
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..20 {
            let relations: usize = rng.gen_range(1..=6);
            let attributes = rng.gen_range(relations.max(2)..=20);
            let catalog = random_schema(&mut rng, relations, attributes);
            let rels: Vec<RelId> = catalog.rels().collect();
            let k = rng.gen_range(0..attributes.min(6));
            let query = random_query(&mut rng, &catalog, &rels, k);
            query.validate(&catalog).unwrap();
        }
    }
}
