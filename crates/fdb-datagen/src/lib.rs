//! Workload and data generators for the FDB experiments.
//!
//! The paper's experimental design (Section 5) generates `R` relations with
//! `A` attributes distributed uniformly over them, fills each relation with a
//! given number of tuples whose values are drawn from `[1, M]` under a
//! uniform or Zipf distribution, and poses equi-join queries whose selections
//! are conjunctions of `K` non-redundant equalities.  This crate provides
//! exactly those generators, plus the two concrete datasets used in the
//! evaluation figures:
//!
//! * [`schema::random_schema`] / [`data::populate`] / [`queries::random_query`]
//!   — the random schema/data/query generators;
//! * [`data::combinatorial_database`] — the "combinatorial" dataset of
//!   Experiment 3's right-hand column (`R = 4`, `A = 10`, two binary
//!   relations of 8² tuples, two ternary relations of 8³ tuples, values in
//!   `[1, 20]`);
//! * [`grocery`] — the grocery-retailer example of Figure 1, used by the
//!   examples and the documentation.

#![warn(missing_docs)]

pub mod data;
pub mod grocery;
pub mod queries;
pub mod schema;

pub use data::{combinatorial_database, populate, random_relation, ValueDistribution};
pub use grocery::{grocery_database, GroceryDb};
pub use queries::{random_equalities, random_followup_equalities, random_query};
pub use schema::random_schema;
