//! The grocery-retailer example database of Figure 1.
//!
//! String values are encoded as small integers so they fit the engine's
//! integer domain; the mapping is exposed so examples can print readable
//! output.

use fdb_common::{AttrId, Catalog, Query, RelId};
use fdb_relation::Database;

/// The grocery database together with handles to its relations, attributes
/// and value names.
#[derive(Clone, Debug)]
pub struct GroceryDb {
    /// The populated database.
    pub db: Database,
    /// Orders(oid, item).
    pub orders: RelId,
    /// Store(location, item).
    pub store: RelId,
    /// Disp(dispatcher, location).
    pub disp: RelId,
    /// Produce(supplier, item).
    pub produce: RelId,
    /// Serve(supplier, location).
    pub serve: RelId,
}

/// Item names, indexed by encoded value (1-based).
pub const ITEMS: [&str; 3] = ["Milk", "Cheese", "Melon"];
/// Location names, indexed by encoded value (1-based).
pub const LOCATIONS: [&str; 3] = ["Istanbul", "Izmir", "Antalya"];
/// Dispatcher names, indexed by encoded value (1-based).
pub const DISPATCHERS: [&str; 3] = ["Adnan", "Yasemin", "Volkan"];
/// Supplier names, indexed by encoded value (1-based).
pub const SUPPLIERS: [&str; 3] = ["Guney", "Dikici", "Byzantium"];

impl GroceryDb {
    /// Looks up an attribute by qualified name, e.g. `"Store.item"`.
    pub fn attr(&self, qualified: &str) -> AttrId {
        self.db
            .catalog()
            .find_attr(qualified)
            .unwrap_or_else(|| panic!("unknown grocery attribute {qualified}"))
    }

    /// The catalog of the database.
    pub fn catalog(&self) -> &Catalog {
        self.db.catalog()
    }

    /// Query Q1 of Example 1: `Orders ⋈_item Store ⋈_location Disp`.
    pub fn q1(&self) -> Query {
        Query::product(vec![self.orders, self.store, self.disp])
            .with_equality(self.attr("Orders.item"), self.attr("Store.item"))
            .with_equality(self.attr("Store.location"), self.attr("Disp.location"))
    }

    /// Query Q2 of Example 1: `Produce ⋈_supplier Serve`.
    pub fn q2(&self) -> Query {
        Query::product(vec![self.produce, self.serve])
            .with_equality(self.attr("Produce.supplier"), self.attr("Serve.supplier"))
    }
}

/// Builds the grocery database of Figure 1.
///
/// Encoding: items Milk=1, Cheese=2, Melon=3; locations Istanbul=1, Izmir=2,
/// Antalya=3; dispatchers Adnan=1, Yasemin=2, Volkan=3; suppliers Guney=1,
/// Dikici=2, Byzantium=3; order ids as printed in the paper.
pub fn grocery_database() -> GroceryDb {
    let mut catalog = Catalog::new();
    let (orders, _) = catalog.add_relation("Orders", &["oid", "item"]);
    let (store, _) = catalog.add_relation("Store", &["location", "item"]);
    let (disp, _) = catalog.add_relation("Disp", &["dispatcher", "location"]);
    let (produce, _) = catalog.add_relation("Produce", &["supplier", "item"]);
    let (serve, _) = catalog.add_relation("Serve", &["supplier", "location"]);
    let mut db = Database::new(catalog);

    // Orders: (01, Milk), (01, Cheese), (02, Melon), (03, Cheese), (03, Melon)
    db.insert_raw_rows(
        orders,
        &[vec![1, 1], vec![1, 2], vec![2, 3], vec![3, 2], vec![3, 3]],
    )
    .expect("schema matches");
    // Store: (Istanbul, Milk), (Istanbul, Cheese), (Istanbul, Melon),
    //        (Izmir, Milk), (Antalya, Milk), (Antalya, Cheese)
    db.insert_raw_rows(
        store,
        &[
            vec![1, 1],
            vec![1, 2],
            vec![1, 3],
            vec![2, 1],
            vec![3, 1],
            vec![3, 2],
        ],
    )
    .expect("schema matches");
    // Disp: (Adnan, Istanbul), (Adnan, Izmir), (Yasemin, Istanbul), (Volkan, Antalya)
    db.insert_raw_rows(disp, &[vec![1, 1], vec![1, 2], vec![2, 1], vec![3, 3]])
        .expect("schema matches");
    // Produce: (Guney, Milk), (Guney, Cheese), (Dikici, Milk), (Byzantium, Melon)
    db.insert_raw_rows(produce, &[vec![1, 1], vec![1, 2], vec![2, 1], vec![3, 3]])
        .expect("schema matches");
    // Serve: (Guney, Antalya), (Dikici, Istanbul), (Dikici, Izmir),
    //        (Dikici, Antalya), (Byzantium, Istanbul)
    db.insert_raw_rows(
        serve,
        &[vec![1, 3], vec![2, 1], vec![2, 2], vec![2, 3], vec![3, 1]],
    )
    .expect("schema matches");

    GroceryDb {
        db,
        orders,
        store,
        disp,
        produce,
        serve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_relation::RdbEngine;

    #[test]
    fn figure1_cardinalities_are_reproduced() {
        let g = grocery_database();
        assert_eq!(g.db.rel_len(g.orders), 5);
        assert_eq!(g.db.rel_len(g.store), 6);
        assert_eq!(g.db.rel_len(g.disp), 4);
        assert_eq!(g.db.rel_len(g.produce), 4);
        assert_eq!(g.db.rel_len(g.serve), 5);
    }

    #[test]
    fn q1_result_starts_with_the_tuples_of_example1() {
        // Example 1 lists (01, Milk, Istanbul, Adnan), (01, Milk, Istanbul,
        // Yasemin), (01, Milk, Izmir, Adnan), (01, Milk, Antalya, Volkan) …
        let g = grocery_database();
        let result = RdbEngine::new().evaluate(&g.db, &g.q1()).unwrap();
        let oid = result.col_index(g.attr("Orders.oid")).unwrap();
        let item = result.col_index(g.attr("Orders.item")).unwrap();
        let loc = result.col_index(g.attr("Store.location")).unwrap();
        let disp = result.col_index(g.attr("Disp.dispatcher")).unwrap();
        let has = |o: u64, i: u64, l: u64, d: u64| {
            result.rows().any(|r| {
                r[oid].raw() == o && r[item].raw() == i && r[loc].raw() == l && r[disp].raw() == d
            })
        };
        assert!(has(1, 1, 1, 1)); // 01, Milk, Istanbul, Adnan
        assert!(has(1, 1, 1, 2)); // 01, Milk, Istanbul, Yasemin
        assert!(has(1, 1, 2, 1)); // 01, Milk, Izmir, Adnan
        assert!(has(1, 1, 3, 3)); // 01, Milk, Antalya, Volkan
    }

    #[test]
    fn q2_result_matches_example1() {
        // Q2 = Produce ⋈_supplier Serve has exactly the 6 tuples factorised
        // in Example 1: Guney×{Milk,Cheese}×{Antalya},
        // Dikici×{Milk}×{Istanbul,Izmir,Antalya}, Byzantium×{Melon}×{Istanbul}.
        let g = grocery_database();
        let result = RdbEngine::new().evaluate(&g.db, &g.q2()).unwrap();
        assert_eq!(result.len(), 2 + 3 + 1);
    }

    #[test]
    fn attribute_lookup_panics_on_unknown_names() {
        let g = grocery_database();
        let result = std::panic::catch_unwind(|| g.attr("Nope.missing"));
        assert!(result.is_err());
    }
}
