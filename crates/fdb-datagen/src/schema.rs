//! Random schema generation: `A` attributes distributed uniformly over `R`
//! relations.

use fdb_common::Catalog;
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates a catalog of `relations` relations sharing `attributes`
/// attributes distributed uniformly at random, with every relation getting
/// at least one attribute (as in the paper's experimental design).
///
/// Relations are named `R0, R1, …` and attributes `a0, a1, …` (globally
/// numbered, so `Ri.aj` names are unique).
pub fn random_schema<R: Rng + ?Sized>(rng: &mut R, relations: usize, attributes: usize) -> Catalog {
    assert!(relations >= 1, "need at least one relation");
    assert!(
        attributes >= relations,
        "need at least one attribute per relation"
    );

    // Assign each attribute to a relation: first give every relation one
    // attribute, then spread the rest uniformly.
    let mut owner: Vec<usize> = Vec::with_capacity(attributes);
    for rel in 0..relations {
        owner.push(rel);
    }
    for _ in relations..attributes {
        owner.push(rng.gen_range(0..relations));
    }
    owner.shuffle(rng);

    let mut catalog = Catalog::new();
    let mut next_attr = 0usize;
    for rel in 0..relations {
        let names: Vec<String> = owner
            .iter()
            .filter(|&&o| o == rel)
            .map(|_| {
                let name = format!("a{next_attr}");
                next_attr += 1;
                name
            })
            .collect();
        catalog.add_relation(&format!("R{rel}"), &names);
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_relation_gets_at_least_one_attribute() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let relations = rng.gen_range(1..=8);
            let attributes = rng.gen_range(relations..=40);
            let catalog = random_schema(&mut rng, relations, attributes);
            assert_eq!(catalog.rel_count(), relations);
            assert_eq!(catalog.attr_count(), attributes);
            for rel in catalog.rels() {
                assert!(catalog.rel_arity(rel) >= 1);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_schema(&mut StdRng::seed_from_u64(7), 4, 10);
        let b = random_schema(&mut StdRng::seed_from_u64(7), 4, 10);
        for rel in a.rels() {
            assert_eq!(a.rel_attrs(rel), b.rel_attrs(rel));
        }
    }

    #[test]
    #[should_panic(expected = "at least one attribute per relation")]
    fn too_few_attributes_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        random_schema(&mut rng, 5, 3);
    }
}
