//! Construction of factorised query results directly from flat databases.
//!
//! Given a select-project-join query `Q`, an input database `D` and an
//! f-tree `T` of `Q`, [`build_frep`] computes the f-representation of the
//! (unprojected) query result over `T` without ever materialising the flat
//! result — the algorithm of the paper's prior work that FDB uses to answer
//! queries on relational input.
//!
//! The construction is a top-down semi-join: at a node labelled by class `C`,
//! the candidate values are the intersection of the `C`-values found in every
//! relation that has an attribute in `C` (restricted to the rows compatible
//! with the values chosen at the ancestors); for every candidate value the
//! children subtrees are built recursively, and the value is kept only if
//! none of its child unions is empty (an empty child would make the product
//! empty).  Because the path constraint puts all attributes of a relation on
//! one root-to-leaf path, sibling subtrees never share a relation, so this
//! local pruning yields exactly the join result.
//!
//! # Direct arena emission
//!
//! The semi-join emits [`crate::store`] arena records directly as it
//! recurses — there is no intermediate builder forest and no final freeze
//! pass.  Each union's header is pushed before its subtrees (so union
//! indices stay topological), the kid unions of every candidate value are
//! built straight into the arena, and if one of them comes up empty the
//! candidate is retracted by **watermark rollback**: the three arena vectors
//! are truncated back to their lengths from before the candidate, which
//! removes every record its half-built subtrees emitted.  Surviving
//! candidates park their value and kid indices in two watermarked scratch
//! vectors; once all candidates of a union are decided, its entry block and
//! kid runs are appended contiguously.  (Entry blocks therefore land
//! *after* the blocks of their descendants — a valid layout the arena views
//! never distinguish, just not the one [`crate::store::Store::freeze`]
//! picks.)  Per-node grouping of the candidate rows is **sort-based**: one
//! flat `(value, row)` sort per relevant relation, after which every value's
//! rows form a contiguous span — replacing the former per-node `BTreeMap`
//! grouping, which dominated construction time with node allocations and
//! pointer-chasing.  The old forest-building path survives as
//! [`build_frep_via_forest`] for the equivalence tests and the `bench-pr2`
//! construction benchmark (it keeps the `BTreeMap` grouping, so the
//! `bench-pr2` build rows measure exactly this change plus direct emission).
//!
//! The running time is `O(|Q| · |D|^{s(T̂)})` up to logarithmic factors — the
//! tight bound of the paper — because the work done per node is proportional
//! to the number of value combinations of its ancestors (and those are
//! bounded by the path cover).

use crate::frep::{Entry, FRep, Union};
use crate::store::{Store, UnionRec};
use fdb_common::{failpoint, AttrId, ExecCtx, FdbError, Query, Result, Value};
use fdb_ftree::{FTree, NodeId};
use fdb_relation::{Database, Relation};
use std::collections::{BTreeMap, BTreeSet};

/// Which relations have which columns in each f-tree node's class.
type NodeCols = BTreeMap<NodeId, Vec<(usize, Vec<usize>)>>;

/// Validates the query against the tree and prepares the base relations
/// (constant selections applied) plus the per-node column map — shared
/// between the arena path and the forest oracle.
fn prepare(db: &Database, query: &Query, tree: &FTree) -> Result<(Vec<Relation>, NodeCols)> {
    query.validate(db.catalog())?;
    tree.check_path_constraint()?;

    let query_attrs: BTreeSet<AttrId> = query.all_attrs(db.catalog()).into_iter().collect();
    let tree_attrs = tree.all_attrs();
    if query_attrs != tree_attrs {
        return Err(FdbError::InvalidInput {
            detail: format!(
                "f-tree attributes {tree_attrs:?} do not match the query attributes {query_attrs:?}"
            ),
        });
    }

    // Base relations with constant selections applied.
    let mut relations: Vec<Relation> = Vec::with_capacity(query.relations.len());
    for &rel_id in &query.relations {
        let rel = db.relation(rel_id);
        let applicable: Vec<_> = query
            .const_selections
            .iter()
            .filter(|sel| rel.has_attr(sel.attr))
            .copied()
            .collect();
        let rel = if applicable.is_empty() {
            rel
        } else {
            let cols: Vec<(usize, _)> = applicable
                .iter()
                .map(|sel| (rel.col_index(sel.attr).expect("attr present"), *sel))
                .collect();
            rel.filter(|row| cols.iter().all(|(c, sel)| sel.op.eval(row[*c], sel.value)))
        };
        relations.push(rel);
    }

    // For every f-tree node, which relations have which columns in its class.
    let mut node_cols: NodeCols = BTreeMap::new();
    for node in tree.node_ids() {
        let class = tree.class(node);
        let mut per_rel: Vec<(usize, Vec<usize>)> = Vec::new();
        for (idx, rel) in relations.iter().enumerate() {
            let cols: Vec<usize> = class.iter().filter_map(|&a| rel.col_index(a)).collect();
            if !cols.is_empty() {
                per_rel.push((idx, cols));
            }
        }
        if per_rel.is_empty() {
            return Err(FdbError::InvalidInput {
                detail: format!("f-tree node {node} has no attribute of any query relation"),
            });
        }
        node_cols.insert(node, per_rel);
    }
    Ok((relations, node_cols))
}

/// The identity row restriction: every row of every relation.
fn full_restriction(relations: &[Relation]) -> Vec<Vec<u32>> {
    relations
        .iter()
        .map(|r| (0..r.len() as u32).collect())
        .collect()
}

/// Builds the f-representation of `query`'s result over `tree` from the flat
/// database `db`.
///
/// The f-tree must label exactly the query's attributes (projections are
/// applied afterwards with the projection operator, as FDB defers them to
/// the end of the f-plan).  Constant selections of the query are pushed onto
/// the base relations before the factorisation is built.
pub fn build_frep(db: &Database, query: &Query, tree: &FTree) -> Result<FRep> {
    build_frep_ctx(db, query, tree, &ExecCtx::unlimited())
}

/// [`build_frep`] under a governance context: the semi-join charges the
/// context per candidate value it decides, so a deadline, budget or
/// cancellation aborts the construction cooperatively.  On abort the
/// half-built arena is simply dropped — the watermark rollback already
/// guarantees no candidate is ever half-recorded.
pub fn build_frep_ctx(db: &Database, query: &Query, tree: &FTree, ctx: &ExecCtx) -> Result<FRep> {
    let (relations, node_cols) = prepare(db, query, tree)?;
    failpoint!(ctx, "build.semi_join");
    let mut builder = Builder {
        tree,
        relations: &relations,
        node_cols: &node_cols,
        ctx,
        store: Store::default(),
        scratch_values: Vec::new(),
        scratch_kids: Vec::new(),
    };
    let mut restriction = full_restriction(&relations);
    let roots: Vec<u32> = tree
        .roots()
        .iter()
        .map(|&root| builder.build_union(root, &mut restriction))
        .collect::<Result<_>>()?;
    let mut store = builder.store;
    store.roots = roots;
    let mut rep = FRep::from_store(tree.clone(), store);
    // A root union that came out empty empties the whole product; prune for
    // a canonical empty representation.
    if rep.represents_empty() {
        rep = FRep::empty(tree.clone());
    }
    rep.validate()?;
    Ok(rep)
}

/// Sort-based grouping of one relation's surviving rows by class value: the
/// `(value, row)` pairs sorted once, the distinct values, and the start
/// offset of each value's contiguous row span.
struct ValueGroups {
    rel_idx: usize,
    pairs: Vec<(Value, u32)>,
    values: Vec<Value>,
    starts: Vec<u32>,
}

impl ValueGroups {
    /// The row ids grouped under `value` (ascending), empty if absent.
    fn rows_of(&self, value: Value) -> Vec<u32> {
        match crate::kernel::find_value(&self.values, value) {
            Some(i) => {
                let (start, end) = (self.starts[i] as usize, self.starts[i + 1] as usize);
                self.pairs[start..end].iter().map(|&(_, row)| row).collect()
            }
            None => Vec::new(),
        }
    }
}

struct Builder<'a> {
    tree: &'a FTree,
    relations: &'a [Relation],
    node_cols: &'a NodeCols,
    /// Governance context: charged once per candidate value decided.
    ctx: &'a ExecCtx,
    /// The output arena, appended to during the top-down semi-join and
    /// truncated back to the per-candidate watermarks on retraction.
    store: Store,
    /// Scratch: surviving candidate values of every union on the recursion
    /// stack (each level works in its own watermarked tail region).
    scratch_values: Vec<Value>,
    /// Scratch: kid union indices of the surviving candidates, `children`
    /// per value.
    scratch_kids: Vec<u32>,
}

impl Builder<'_> {
    /// Builds the union over `node` under the current per-relation row
    /// restriction, emitting its records into the arena, and returns its
    /// union index.  The restriction is temporarily narrowed for the
    /// relations relevant to this node while recursing and restored before
    /// returning.
    fn build_union(&mut self, node: NodeId, restriction: &mut Vec<Vec<u32>>) -> Result<u32> {
        let relevant = &self.node_cols[&node];

        // Group the surviving rows of every relevant relation by their value
        // of this node's class (rows whose class columns disagree are
        // inconsistent with the intra-class equality and are dropped).
        // Sort-based grouping: one flat `(value, row)` sort per relation,
        // after which each value's rows are a contiguous span — no
        // `BTreeMap`, no per-group allocation during grouping.  Restriction
        // vectors are ascending (spans of ascending pairs), so the row order
        // inside every span matches the old insertion-order grouping.
        let mut groups: Vec<ValueGroups> = Vec::with_capacity(relevant.len());
        for (rel_idx, cols) in relevant {
            let rel = &self.relations[*rel_idx];
            let mut pairs: Vec<(Value, u32)> = Vec::with_capacity(restriction[*rel_idx].len());
            for &row_idx in &restriction[*rel_idx] {
                let row = rel.row(row_idx as usize);
                let v = row[cols[0]];
                if cols.iter().all(|&c| row[c] == v) {
                    pairs.push((v, row_idx));
                }
            }
            pairs.sort_unstable();
            let mut values: Vec<Value> = Vec::new();
            let mut starts: Vec<u32> = Vec::new();
            for (idx, p) in pairs.iter().enumerate() {
                if idx == 0 || p.0 != pairs[idx - 1].0 {
                    values.push(p.0);
                    starts.push(idx as u32);
                }
            }
            starts.push(pairs.len() as u32);
            groups.push(ValueGroups {
                rel_idx: *rel_idx,
                pairs,
                values,
                starts,
            });
        }

        // Candidate values: the intersection of the (sorted) value sets,
        // driven by the smallest one.
        let smallest_pos = groups
            .iter()
            .enumerate()
            .min_by_key(|(_, g)| g.values.len())
            .map(|(i, _)| i)
            .expect("node has at least one relevant relation");
        let candidates: Vec<Value> = groups[smallest_pos]
            .values
            .iter()
            .copied()
            .filter(|&v| {
                groups
                    .iter()
                    .all(|g| crate::kernel::find_value(&g.values, v).is_some())
            })
            .collect();

        // Header first: the union's index must precede its subtrees'.
        let uid = self.store.unions.len() as u32;
        self.store.unions.push(UnionRec {
            node,
            entries_start: 0,
            entries_len: 0,
        });

        let tree = self.tree;
        let children: &[NodeId] = tree.children(node);
        let values_mark = self.scratch_values.len();
        let kids_mark = self.scratch_kids.len();
        for value in candidates {
            // One candidate = one unit of semi-join work; an abort here
            // leaves only whole, reachable candidates in the arena (the
            // rollback below retracts partial ones), and the caller drops
            // the arena anyway.
            self.ctx.charge(1)?;
            // Narrow the restriction of the relevant relations to the rows
            // matching `value` (a contiguous span of the sorted pairs),
            // remembering what to restore.
            let mut saved: Vec<(usize, Vec<u32>)> = Vec::with_capacity(groups.len());
            for g in &groups {
                let rows = g.rows_of(value);
                saved.push((
                    g.rel_idx,
                    std::mem::replace(&mut restriction[g.rel_idx], rows),
                ));
            }

            // Watermarks for the rollback: everything the candidate's
            // subtrees emit sits past these lengths.
            let unions_mark = self.store.unions.len();
            let entries_mark = self.store.entry_count();
            let arena_kids_mark = self.store.kids.len();
            let entry_kids_mark = self.scratch_kids.len();
            let mut alive = true;
            for &child in children {
                let kid = self.build_union(child, restriction)?;
                if self.store.unions[kid as usize].entries_len == 0 {
                    alive = false;
                    break;
                }
                self.scratch_kids.push(kid);
            }
            if alive {
                self.scratch_values.push(value);
            } else {
                // Retract the candidate: truncate the arena back to the
                // watermarks, deleting the half-built subtrees.
                self.store.unions.truncate(unions_mark);
                self.store.truncate_entries(entries_mark);
                self.store.kids.truncate(arena_kids_mark);
                self.scratch_kids.truncate(entry_kids_mark);
            }

            for (rel_idx, rows) in saved {
                restriction[rel_idx] = rows;
            }
        }

        // All candidates decided: append the entry block and kid runs
        // contiguously and finish the header.
        let entries_start = self.store.entry_count() as u32;
        let survivors = (self.scratch_values.len() - values_mark) as u32;
        for i in 0..survivors as usize {
            let kids_start = self.store.kids.len() as u32;
            let run_start = kids_mark + i * children.len();
            self.store
                .kids
                .extend_from_slice(&self.scratch_kids[run_start..run_start + children.len()]);
            self.store
                .push_entry(self.scratch_values[values_mark + i], kids_start);
        }
        let rec = &mut self.store.unions[uid as usize];
        rec.entries_start = entries_start;
        rec.entries_len = survivors;
        self.scratch_values.truncate(values_mark);
        self.scratch_kids.truncate(kids_mark);
        Ok(uid)
    }
}

/// The pre-PR-2 construction path: assemble an owned builder forest during
/// the semi-join and freeze it into an arena once at the end.  Kept as the
/// oracle for the equivalence tests and the `bench-pr2` construction
/// benchmark; [`build_frep`] emits arena records directly instead.
#[doc(hidden)]
pub fn build_frep_via_forest(db: &Database, query: &Query, tree: &FTree) -> Result<FRep> {
    let (relations, node_cols) = prepare(db, query, tree)?;
    let builder = ForestBuilder {
        tree,
        relations: &relations,
        node_cols: &node_cols,
    };
    let mut restriction = full_restriction(&relations);
    let roots: Vec<Union> = tree
        .roots()
        .iter()
        .map(|&root| builder.build_union(root, &mut restriction))
        .collect();
    let mut rep = FRep::from_parts_unchecked(tree.clone(), roots);
    if rep.represents_empty() {
        rep = FRep::empty(tree.clone());
    }
    rep.validate()?;
    Ok(rep)
}

struct ForestBuilder<'a> {
    tree: &'a FTree,
    relations: &'a [Relation],
    node_cols: &'a NodeCols,
}

impl ForestBuilder<'_> {
    fn build_union(&self, node: NodeId, restriction: &mut Vec<Vec<u32>>) -> Union {
        let relevant = &self.node_cols[&node];
        let mut groups: Vec<(usize, BTreeMap<Value, Vec<u32>>)> =
            Vec::with_capacity(relevant.len());
        for (rel_idx, cols) in relevant {
            let rel = &self.relations[*rel_idx];
            let mut map: BTreeMap<Value, Vec<u32>> = BTreeMap::new();
            for &row_idx in &restriction[*rel_idx] {
                let row = rel.row(row_idx as usize);
                let v = row[cols[0]];
                if cols.iter().all(|&c| row[c] == v) {
                    map.entry(v).or_default().push(row_idx);
                }
            }
            groups.push((*rel_idx, map));
        }

        let (smallest_pos, _) = groups
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, m))| m.len())
            .expect("node has at least one relevant relation");
        let candidates: Vec<Value> = groups[smallest_pos]
            .1
            .keys()
            .copied()
            .filter(|v| groups.iter().all(|(_, m)| m.contains_key(v)))
            .collect();

        let children: Vec<NodeId> = self.tree.children(node).to_vec();
        let mut entries: Vec<Entry> = Vec::with_capacity(candidates.len());
        for value in candidates {
            let mut saved: Vec<(usize, Vec<u32>)> = Vec::with_capacity(groups.len());
            for (rel_idx, map) in &groups {
                let rows = map.get(&value).cloned().unwrap_or_default();
                saved.push((
                    *rel_idx,
                    std::mem::replace(&mut restriction[*rel_idx], rows),
                ));
            }

            let mut child_unions: Vec<Union> = Vec::with_capacity(children.len());
            let mut alive = true;
            for &child in &children {
                let u = self.build_union(child, restriction);
                if u.is_empty() {
                    alive = false;
                    break;
                }
                child_unions.push(u);
            }
            if alive {
                entries.push(Entry {
                    value,
                    children: child_unions,
                });
            }

            for (rel_idx, rows) in saved {
                restriction[rel_idx] = rows;
            }
        }
        Union::new(node, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize;
    use fdb_common::{Catalog, ComparisonOp, RelId};
    use fdb_ftree::{ftree_from_query_classes, DepEdge};

    /// The grocery database of Figure 1, with string values mapped to small
    /// integers:
    /// items: Milk=1, Cheese=2, Melon=3; locations: Istanbul=1, Izmir=2,
    /// Antalya=3; dispatchers: Adnan=1, Yasemin=2, Volkan=3; oids as given.
    fn grocery() -> (Database, Vec<RelId>) {
        let mut catalog = Catalog::new();
        let (orders, _) = catalog.add_relation("Orders", &["oid", "item"]);
        let (store, _) = catalog.add_relation("Store", &["location", "item"]);
        let (disp, _) = catalog.add_relation("Disp", &["dispatcher", "location"]);
        let mut db = Database::new(catalog);
        db.insert_raw_rows(
            orders,
            &[vec![1, 1], vec![1, 2], vec![2, 3], vec![3, 2], vec![3, 3]],
        )
        .unwrap();
        db.insert_raw_rows(
            store,
            &[
                vec![1, 1],
                vec![1, 2],
                vec![1, 3],
                vec![2, 1],
                vec![3, 1],
                vec![3, 2],
            ],
        )
        .unwrap();
        db.insert_raw_rows(disp, &[vec![1, 1], vec![1, 2], vec![2, 1], vec![3, 3]])
            .unwrap();
        (db, vec![orders, store, disp])
    }

    /// Q1 = Orders ⋈_item Store ⋈_location Disp.
    fn q1(db: &Database, rels: &[RelId]) -> Query {
        let cat = db.catalog();
        Query::product(rels.to_vec())
            .with_equality(
                cat.find_attr("Orders.item").unwrap(),
                cat.find_attr("Store.item").unwrap(),
            )
            .with_equality(
                cat.find_attr("Store.location").unwrap(),
                cat.find_attr("Disp.location").unwrap(),
            )
    }

    /// The T1 f-tree of Figure 2 for Q1:
    /// item → (oid, location → dispatcher).
    fn t1(db: &Database, query: &Query) -> FTree {
        let cat = db.catalog();
        let edges = fdb_ftree::dep_edges_for_query(cat, query, |r| db.rel_len(r) as u64);
        let mut t = FTree::new(edges);
        let item_class: BTreeSet<AttrId> = [
            cat.find_attr("Orders.item").unwrap(),
            cat.find_attr("Store.item").unwrap(),
        ]
        .into_iter()
        .collect();
        let loc_class: BTreeSet<AttrId> = [
            cat.find_attr("Store.location").unwrap(),
            cat.find_attr("Disp.location").unwrap(),
        ]
        .into_iter()
        .collect();
        let item = t.add_node(item_class, None).unwrap();
        t.add_node(
            [cat.find_attr("Orders.oid").unwrap()].into_iter().collect(),
            Some(item),
        )
        .unwrap();
        let location = t.add_node(loc_class, Some(item)).unwrap();
        t.add_node(
            [cat.find_attr("Disp.dispatcher").unwrap()]
                .into_iter()
                .collect(),
            Some(location),
        )
        .unwrap();
        t
    }

    fn rdb_result(db: &Database, query: &Query) -> std::collections::BTreeSet<Vec<Value>> {
        let result = fdb_relation::RdbEngine::new().evaluate(db, query).unwrap();
        let mut sorted_attrs = result.attrs().to_vec();
        sorted_attrs.sort_unstable();
        result.reorder_columns(&sorted_attrs).unwrap().tuple_set()
    }

    #[test]
    fn grocery_q1_over_t1_matches_rdb() {
        let (db, rels) = grocery();
        let query = q1(&db, &rels);
        let tree = t1(&db, &query);
        let rep = build_frep(&db, &query, &tree).unwrap();
        rep.validate().unwrap();
        let flat = materialize(&rep).unwrap();
        assert_eq!(flat.tuple_set(), rdb_result(&db, &query));
        // The factorised result of Example 1 has far fewer singletons than
        // the flat result has data elements.
        assert!(rep.size() < flat.data_element_count());
    }

    #[test]
    fn direct_build_agrees_with_the_forest_oracle() {
        let (db, rels) = grocery();
        let query = q1(&db, &rels);
        let tree = t1(&db, &query);
        let direct = build_frep(&db, &query, &tree).unwrap();
        let forest = build_frep_via_forest(&db, &query, &tree).unwrap();
        // Same logical representation (the arena layouts differ: the direct
        // build places entry blocks after the child subtrees).
        assert_eq!(direct.to_forest(), forest.to_forest());
        assert_eq!(direct.size(), forest.size());
        assert_eq!(direct.tuple_count(), forest.tuple_count());
    }

    #[test]
    fn fallback_ftree_gives_the_same_relation() {
        let (db, rels) = grocery();
        let query = q1(&db, &rels);
        let tree =
            ftree_from_query_classes(db.catalog(), &query, |r| db.rel_len(r) as u64).unwrap();
        let rep = build_frep(&db, &query, &tree).unwrap();
        let flat = materialize(&rep).unwrap();
        assert_eq!(flat.tuple_set(), rdb_result(&db, &query));
    }

    #[test]
    fn constant_selection_restricts_the_factorisation() {
        let (db, rels) = grocery();
        let cat = db.catalog();
        let oid = cat.find_attr("Orders.oid").unwrap();
        let query = q1(&db, &rels).with_const_selection(oid, ComparisonOp::Eq, Value::new(1));
        let tree = t1(&db, &query);
        let rep = build_frep(&db, &query, &tree).unwrap();
        let flat = materialize(&rep).unwrap();
        assert_eq!(flat.tuple_set(), rdb_result(&db, &query));
        let oid_col = flat.col_index(oid).unwrap();
        assert!(flat.rows().all(|row| row[oid_col] == Value::new(1)));
    }

    #[test]
    fn empty_join_yields_the_empty_representation() {
        let (mut db, rels) = grocery();
        // Empty the Store relation: the join is empty.
        db.insert_raw_rows(rels[1], &[]).unwrap();
        let query = q1(&db, &rels);
        let tree = t1(&db, &query);
        let rep = build_frep(&db, &query, &tree).unwrap();
        assert!(rep.represents_empty());
        assert_eq!(rep.tuple_count(), 0);
        assert_eq!(materialize(&rep).unwrap().len(), 0);
    }

    #[test]
    fn dangling_values_are_pruned() {
        // R(A,B), S(B,C): a B-value present in R but not S must not appear.
        let mut catalog = Catalog::new();
        let (r, _) = catalog.add_relation("R", &["A", "B"]);
        let (s, _) = catalog.add_relation("S", &["B", "C"]);
        let mut db = Database::new(catalog);
        db.insert_raw_rows(r, &[vec![1, 10], vec![2, 20]]).unwrap();
        db.insert_raw_rows(s, &[vec![10, 100]]).unwrap();
        let cat = db.catalog();
        let query = Query::product(vec![r, s])
            .with_equality(cat.find_attr("R.B").unwrap(), cat.find_attr("S.B").unwrap());
        // F-tree: A → B → C would hide the pruning; use B → (A, C) instead so
        // the dangling A=2 row is only discovered via the child intersection.
        let edges = fdb_ftree::dep_edges_for_query(cat, &query, |_| 2);
        let mut tree = FTree::new(edges);
        let b_class: BTreeSet<AttrId> =
            [cat.find_attr("R.B").unwrap(), cat.find_attr("S.B").unwrap()]
                .into_iter()
                .collect();
        let b = tree.add_node(b_class, None).unwrap();
        tree.add_node(
            [cat.find_attr("R.A").unwrap()].into_iter().collect(),
            Some(b),
        )
        .unwrap();
        tree.add_node(
            [cat.find_attr("S.C").unwrap()].into_iter().collect(),
            Some(b),
        )
        .unwrap();
        let rep = build_frep(&db, &query, &tree).unwrap();
        assert_eq!(rep.tuple_count(), 1);
        assert_eq!(
            materialize(&rep).unwrap().tuple_set(),
            rdb_result(&db, &query)
        );
        // The watermark rollback retracted the dangling candidates: what
        // remains is what the forest path builds.
        let forest = build_frep_via_forest(&db, &query, &tree).unwrap();
        assert_eq!(rep.to_forest(), forest.to_forest());
    }

    #[test]
    fn tree_attribute_mismatch_is_rejected() {
        let (db, rels) = grocery();
        let query = q1(&db, &rels);
        // A tree missing the dispatcher attribute is rejected.
        let mut tree = FTree::new(vec![DepEdge::new(
            "Orders",
            [AttrId(0), AttrId(1)].into_iter().collect(),
            5,
        )]);
        tree.add_node([AttrId(0)].into_iter().collect(), None)
            .unwrap();
        assert!(build_frep(&db, &query, &tree).is_err());
    }

    #[test]
    fn product_query_multiplies_sizes() {
        // Two independent relations, no join: the factorised size is the sum
        // of the input sizes while the flat result is their product.
        let mut catalog = Catalog::new();
        let (r, _) = catalog.add_relation("R", &["A"]);
        let (s, _) = catalog.add_relation("S", &["B"]);
        let mut db = Database::new(catalog);
        db.insert_raw_rows(r, &(0..20).map(|i| vec![i]).collect::<Vec<_>>())
            .unwrap();
        db.insert_raw_rows(s, &(0..30).map(|i| vec![i]).collect::<Vec<_>>())
            .unwrap();
        let query = Query::product(vec![r, s]);
        let tree =
            fdb_ftree::flat_database_ftree(db.catalog(), &[r, s], |rel| db.rel_len(rel) as u64)
                .unwrap();
        let rep = build_frep(&db, &query, &tree).unwrap();
        assert_eq!(rep.size(), 50);
        assert_eq!(rep.tuple_count(), 600);
    }
}
