//! The owned node-tree *builder* form of an f-representation.
//!
//! [`Union`] and [`Entry`] are the pointer-rich form of the factorised data:
//! every union owns a `Vec` of entries and every entry owns one child union
//! per f-tree child.  Since the arena refactor ([`crate::store`]) this form
//! is no longer how an [`crate::FRep`] *stores* its data, and since the
//! arena-native operator rewrite ([`crate::ops`]) it is no longer on any
//! production rewrite path either: it survives as the form in which
//! representations are hand-**constructed** (tests, examples) and as the
//! substrate of the thaw-path oracle ([`crate::ops::oracle`]) that the
//! equivalence tests and benchmarks compare against.  `FRep::from_parts`
//! freezes a builder forest into the arena; `FRep::to_forest` thaws it
//! back.

use fdb_common::{FdbError, Result, Value};
use fdb_ftree::{FTree, NodeId};
use std::collections::BTreeSet;

/// One `⟨value⟩ × children…` term of a [`Union`].
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// The common value of all attributes labelling the union's node.
    pub value: Value,
    /// One child union per child of the node in the f-tree (in any order;
    /// each child union records which node it ranges over).
    pub children: Vec<Union>,
}

impl Entry {
    /// Creates an entry with no children (for unions over leaf nodes).
    pub fn leaf(value: Value) -> Self {
        Entry {
            value,
            children: Vec::new(),
        }
    }

    /// Returns the child union over the given node, if present.
    pub fn child(&self, node: NodeId) -> Option<&Union> {
        self.children.iter().find(|u| u.node == node)
    }

    /// Removes and returns the child union over the given node.
    pub fn take_child(&mut self, node: NodeId) -> Option<Union> {
        let idx = self.children.iter().position(|u| u.node == node)?;
        Some(self.children.remove(idx))
    }
}

/// A union of singleton-products over one f-tree node (builder form).
#[derive(Clone, Debug, PartialEq)]
pub struct Union {
    /// The f-tree node this union ranges over.
    pub node: NodeId,
    /// The entries, sorted strictly increasing by value.
    pub entries: Vec<Entry>,
}

impl Union {
    /// Creates an empty union over a node (represents the empty relation for
    /// that part of the factorisation).
    pub fn empty(node: NodeId) -> Self {
        Union {
            node,
            entries: Vec::new(),
        }
    }

    /// Creates a union from entries (the caller must supply them sorted by
    /// value).
    pub fn new(node: NodeId, entries: Vec<Entry>) -> Self {
        Union { node, entries }
    }

    /// Returns `true` if the union has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries (distinct values).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Binary-searches for the entry with the given value (the same probe
    /// contract as the arena's `UnionRef::find_value`, via
    /// [`crate::kernel::find_by_key`]).
    pub fn find_value(&self, value: Value) -> Option<&Entry> {
        crate::kernel::find_by_key(&self.entries, |e| e.value, value).map(|i| &self.entries[i])
    }

    /// Binary-searches for the entry with the given value and removes it
    /// (the remaining entries keep their order).
    pub fn take_value(&mut self, value: Value) -> Option<Entry> {
        crate::kernel::find_by_key(&self.entries, |e| e.value, value)
            .map(|i| self.entries.remove(i))
    }
}

/// Checks the structural invariants of a builder forest against its f-tree:
///
/// * there is exactly one root union per f-tree root;
/// * every union's entries are sorted strictly increasing by value;
/// * every entry has exactly one child union per f-tree child of its node.
pub(crate) fn validate_forest(tree: &FTree, roots: &[Union]) -> Result<()> {
    let tree_roots: BTreeSet<NodeId> = tree.roots().iter().copied().collect();
    let rep_roots: BTreeSet<NodeId> = roots.iter().map(|u| u.node).collect();
    if tree_roots != rep_roots || roots.len() != tree.roots().len() {
        return Err(FdbError::MalformedRepresentation {
            detail: format!("root unions {rep_roots:?} do not match f-tree roots {tree_roots:?}"),
        });
    }
    for root in roots {
        validate_union(tree, root)?;
    }
    Ok(())
}

fn validate_union(tree: &FTree, union: &Union) -> Result<()> {
    tree.check_node(union.node)?;
    let expected_children: BTreeSet<NodeId> = tree.children(union.node).iter().copied().collect();
    let mut prev: Option<Value> = None;
    for entry in &union.entries {
        if let Some(p) = prev {
            if entry.value <= p {
                return Err(FdbError::MalformedRepresentation {
                    detail: format!(
                        "union over {} has out-of-order or duplicate value {}",
                        union.node, entry.value
                    ),
                });
            }
        }
        prev = Some(entry.value);
        let child_nodes: BTreeSet<NodeId> = entry.children.iter().map(|u| u.node).collect();
        if child_nodes != expected_children || entry.children.len() != expected_children.len() {
            return Err(FdbError::MalformedRepresentation {
                detail: format!(
                    "entry {} of union over {} has children {child_nodes:?}, expected {expected_children:?}",
                    entry.value, union.node
                ),
            });
        }
        for child in &entry.children {
            validate_union(tree, child)?;
        }
    }
    Ok(())
}

/// Removes entries whose product has become empty (some child union with no
/// entries), propagating upwards.  Root unions are allowed to end up empty.
pub(crate) fn prune_forest(roots: &mut [Union]) {
    for root in roots.iter_mut() {
        prune_union(root);
    }
}

fn prune_union(union: &mut Union) {
    union.entries.retain_mut(|entry| {
        for child in &mut entry.children {
            prune_union(child);
            if child.is_empty() {
                return false;
            }
        }
        true
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_common::AttrId;
    use fdb_ftree::DepEdge;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn take_value_uses_the_sorted_order() {
        let mut u = Union::new(
            NodeId(0),
            vec![
                Entry::leaf(Value::new(2)),
                Entry::leaf(Value::new(5)),
                Entry::leaf(Value::new(9)),
            ],
        );
        assert!(u.take_value(Value::new(3)).is_none());
        let taken = u.take_value(Value::new(5)).unwrap();
        assert_eq!(taken.value, Value::new(5));
        assert_eq!(u.len(), 2);
        assert_eq!(u.find_value(Value::new(9)).unwrap().value, Value::new(9));
    }

    #[test]
    fn forest_validation_rejects_duplicate_values() {
        let edges = vec![DepEdge::new("R", attrs(&[0]), 2)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let u = Union::new(
            a,
            vec![Entry::leaf(Value::new(1)), Entry::leaf(Value::new(1))],
        );
        assert!(validate_forest(&tree, &[u]).is_err());
    }

    #[test]
    fn prune_forest_removes_dead_branches() {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 2)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let mut roots = vec![Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::empty(b)],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![Entry::leaf(Value::new(7))])],
                },
            ],
        )];
        prune_forest(&mut roots);
        assert_eq!(roots[0].len(), 1);
        assert_eq!(roots[0].entries[0].value, Value::new(2));
    }
}
