//! The arena store backing [`crate::FRep`].
//!
//! # Layout (structure of arrays)
//!
//! Instead of a pointer tree of heap-allocated `Vec`s, a representation is
//! flattened into contiguous arenas plus a root list.  Entry records are
//! stored in **SoA form** — the values and the kid-run offsets live in two
//! parallel arrays instead of one array of interleaved records:
//!
//! ```text
//! unions:      [ UnionRec { node, entries_start, entries_len } … ]
//! values:      [ Value … ]        (entry i's value)
//! kids_starts: [ u32 … ]          (entry i's kid-run offset into `kids`)
//! kids:        [ union index … ]
//! roots:       [ union index … ]  (one per f-tree root)
//! ```
//!
//! * The entries of one union are **contiguous** (`entries_start ..
//!   entries_start + entries_len` indexes both entry arrays) and sorted
//!   strictly increasing by value, so [`Store::value_slice`] hands any
//!   consumer a dense `&[Value]` and `find_value` is a cache-friendly
//!   search over it.
//! * Splitting values from kid offsets is what feeds the vectorised scan
//!   kernels ([`crate::kernel`]): predicate masks, probes, sortedness
//!   checks and run boundaries stream over the value array alone — half
//!   the bytes of the old interleaved `(value, kids_start)` records, in
//!   SIMD-lane-ready form.  The two arrays always have the same length;
//!   they are **sealed** (private to this module) and mutated only through
//!   paired operations ([`Store::push_entry`], [`Store::truncate_entries`],
//!   the [`Rewriter`]), so they cannot drift apart.
//! * The child unions of one entry occupy a contiguous run of `kids` whose
//!   length is `tree.children(node).len()` and whose order is **exactly the
//!   f-tree's child order**, so looking up "the child union over node `N`"
//!   is an O(1) index instead of the old linear scan over a `Vec<Union>`.
//! * Union indices are **topological**: every kid index is strictly greater
//!   than the index of the union containing it.  Bottom-up passes (tuple
//!   counting, pruning) are therefore flat reverse loops over `unions`, and
//!   top-down passes are flat forward loops — no recursion, no hashing.
//!
//! The store is immutable in place; every operator rebuilds it with a flat
//! arena-to-arena pass.  Value-level operators use the passes in this module
//! directly ([`Store::retain_and_prune`], [`Store::append_remapped`]); the
//! structural operators (swap, merge, absorb, push-up, projection) emit a
//! fresh arena through a [`Rewriter`], which reproduces the exact layout
//! [`Store::freeze`] would produce for the rewritten representation — so the
//! arena-native operators are bit-for-bit interchangeable with the
//! thaw/rewrite/freeze oracle in [`crate::ops::oracle`] while skipping both
//! linear copies and every per-node allocation.

use crate::kernel;
use crate::node::{Entry, Union};
use fdb_common::{failpoint, ComparisonOp, ExecCtx, FdbError, Result, Value};
use fdb_ftree::{FTree, NodeId};
use std::collections::BTreeMap;

/// Sentinel kid index for a child union missing from a malformed builder
/// forest; [`Store::validate`] reports it, nothing else may encounter it.
const MISSING_KID: u32 = u32::MAX;

/// Header of one union: which node it ranges over and where its entries
/// live in the entry arrays.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct UnionRec {
    pub(crate) node: NodeId,
    pub(crate) entries_start: u32,
    pub(crate) entries_len: u32,
}

/// The flattened representation data (see the module docs for the layout).
///
/// The two entry arrays (`values`, `kids_starts`) are private — the sealed
/// accessor layer below is the only way in or out, which guarantees they
/// stay parallel.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct Store {
    pub(crate) unions: Vec<UnionRec>,
    /// Entry values, contiguous per union, strictly increasing within one.
    values: Vec<Value>,
    /// Entry kid-run offsets into `kids`, parallel to `values`.
    kids_starts: Vec<u32>,
    pub(crate) kids: Vec<u32>,
    pub(crate) roots: Vec<u32>,
}

impl Store {
    // -----------------------------------------------------------------
    // The sealed entry accessors
    // -----------------------------------------------------------------

    /// Total number of entry records in the arena.
    #[inline]
    pub(crate) fn entry_count(&self) -> usize {
        self.values.len()
    }

    /// The values of the given union, as a dense contiguous slice — the
    /// input shape of every [`crate::kernel`] scan.
    #[inline]
    pub(crate) fn value_slice(&self, uid: u32) -> &[Value] {
        let rec = self.unions[uid as usize];
        &self.values[rec.entries_start as usize..(rec.entries_start + rec.entries_len) as usize]
    }

    /// The value of the entry at flat index `e`.
    #[inline]
    pub(crate) fn value_at(&self, e: u32) -> Value {
        self.values[e as usize]
    }

    /// The kid-run offset of the entry at flat index `e`.
    #[inline]
    pub(crate) fn kids_start_at(&self, e: u32) -> u32 {
        self.kids_starts[e as usize]
    }

    /// Appends one entry record (both arrays in lockstep).
    #[inline]
    pub(crate) fn push_entry(&mut self, value: Value, kids_start: u32) {
        self.values.push(value);
        self.kids_starts.push(kids_start);
    }

    /// Truncates both entry arrays to `len` records — the watermark
    /// rollback primitive of [`crate::build`].
    #[inline]
    pub(crate) fn truncate_entries(&mut self, len: usize) {
        self.values.truncate(len);
        self.kids_starts.truncate(len);
    }

    /// Iterates the entry records as `(value, kids_start)` pairs — the
    /// snapshot codec's view (the on-disk format stays interleaved).
    pub(crate) fn entry_pairs(&self) -> impl ExactSizeIterator<Item = (Value, u32)> + '_ {
        self.values
            .iter()
            .zip(&self.kids_starts)
            .map(|(&v, &k)| (v, k))
    }

    /// Reassembles a store from decoded arenas (the snapshot codec's
    /// constructor).  `values` and `kids_starts` must be the same length;
    /// the caller is expected to follow with [`Store::validate`].
    pub(crate) fn from_arena_parts(
        unions: Vec<UnionRec>,
        values: Vec<Value>,
        kids_starts: Vec<u32>,
        kids: Vec<u32>,
        roots: Vec<u32>,
    ) -> Store {
        debug_assert_eq!(values.len(), kids_starts.len());
        Store {
            unions,
            values,
            kids_starts,
            kids,
            roots,
        }
    }

    // -----------------------------------------------------------------
    // Freeze / thaw
    // -----------------------------------------------------------------

    /// Freezes a builder forest into a fresh arena.  Tolerates malformed
    /// forests (missing child unions become [`MISSING_KID`], surplus child
    /// unions are dropped) — [`Store::validate`] or
    /// [`crate::node::validate_forest`] is responsible for rejecting them.
    pub(crate) fn freeze(tree: &FTree, roots: &[Union]) -> Store {
        let mut store = Store::default();
        let root_ids: Vec<u32> = roots.iter().map(|u| store.freeze_union(tree, u)).collect();
        store.roots = root_ids;
        store
    }

    fn freeze_union(&mut self, tree: &FTree, union: &Union) -> u32 {
        let uid = self.unions.len() as u32;
        let entries_start = self.values.len() as u32;
        self.unions.push(UnionRec {
            node: union.node,
            entries_start,
            entries_len: union.entries.len() as u32,
        });
        for entry in &union.entries {
            self.push_entry(entry.value, MISSING_KID);
        }
        let child_order: Vec<NodeId> = tree.children(union.node).to_vec();
        let mut kid_ids: Vec<u32> = Vec::with_capacity(child_order.len());
        for (i, entry) in union.entries.iter().enumerate() {
            kid_ids.clear();
            for &child_node in &child_order {
                kid_ids.push(match entry.child(child_node) {
                    Some(child_union) => self.freeze_union(tree, child_union),
                    None => MISSING_KID,
                });
            }
            let kids_start = self.kids.len() as u32;
            self.kids.extend_from_slice(&kid_ids);
            self.kids_starts[(entries_start + i as u32) as usize] = kids_start;
        }
        uid
    }

    /// Thaws the arena back into the builder form.
    pub(crate) fn thaw(&self, tree: &FTree) -> Vec<Union> {
        self.roots
            .iter()
            .map(|&uid| self.thaw_union(tree, uid))
            .collect()
    }

    fn thaw_union(&self, tree: &FTree, uid: u32) -> Union {
        let rec = self.unions[uid as usize];
        let kid_count = tree.children(rec.node).len();
        let entries = (rec.entries_start..rec.entries_start + rec.entries_len)
            .map(|e| {
                let kids_start = self.kids_starts[e as usize] as usize;
                let children = (0..kid_count)
                    .map(|k| self.thaw_union(tree, self.kids[kids_start + k]))
                    .collect();
                Entry {
                    value: self.values[e as usize],
                    children,
                }
            })
            .collect();
        Union {
            node: rec.node,
            entries,
        }
    }

    /// Number of entries of the given union.
    #[inline]
    pub(crate) fn union_len(&self, uid: u32) -> u32 {
        self.unions[uid as usize].entries_len
    }

    /// The kid union index of entry `entry_index` of union `uid` at kid
    /// position `kid_index` (the f-tree child order position).
    #[inline]
    pub(crate) fn kid(&self, uid: u32, entry_index: u32, kid_index: u32) -> u32 {
        let rec = self.unions[uid as usize];
        let kids_start = self.kids_starts[(rec.entries_start + entry_index) as usize];
        self.kids[(kids_start + kid_index) as usize]
    }

    /// Checks every arena invariant against the tree; used by
    /// [`crate::FRep::validate`].  The per-union sortedness check runs
    /// through the vectorised [`kernel::first_unsorted`] scan.
    pub(crate) fn validate(&self, tree: &FTree) -> Result<()> {
        use std::collections::BTreeSet;
        let malformed = |detail: String| FdbError::MalformedRepresentation { detail };

        if self.values.len() != self.kids_starts.len() {
            return Err(malformed(format!(
                "entry arrays out of lockstep: {} values vs {} kid offsets",
                self.values.len(),
                self.kids_starts.len()
            )));
        }
        let tree_roots: BTreeSet<NodeId> = tree.roots().iter().copied().collect();
        let rep_roots: BTreeSet<NodeId> = self
            .roots
            .iter()
            .map(|&r| {
                self.unions
                    .get(r as usize)
                    .map(|rec| rec.node)
                    .ok_or_else(|| malformed(format!("root union index {r} out of bounds")))
            })
            .collect::<Result<_>>()?;
        if tree_roots != rep_roots || self.roots.len() != tree.roots().len() {
            return Err(malformed(format!(
                "root unions {rep_roots:?} do not match f-tree roots {tree_roots:?}"
            )));
        }

        let mut reachable = vec![false; self.unions.len()];
        for &r in &self.roots {
            reachable[r as usize] = true;
        }
        for uid in 0..self.unions.len() {
            let rec = self.unions[uid];
            tree.check_node(rec.node)?;
            let child_order = tree.children(rec.node);
            let start = rec.entries_start as usize;
            let end = start + rec.entries_len as usize;
            if end > self.values.len() {
                return Err(malformed(format!("union {uid} entry range out of bounds")));
            }
            let values = &self.values[start..end];
            // Sortedness first, as one dense vectorised scan: leaf unions
            // hold the bulk of the arena and need nothing else checked.
            if let Some(i) = kernel::first_unsorted(values) {
                return Err(malformed(format!(
                    "union over {} has out-of-order or duplicate value {}",
                    rec.node,
                    values[i + 1]
                )));
            }
            if child_order.is_empty() {
                continue;
            }
            // Topological index order means every parent of `uid` has
            // already been processed, so its reachability is final here.
            let uid_reachable = reachable[uid];
            for e in start..end {
                let value = self.values[e];
                let kids_start = self.kids_starts[e];
                let kids_end = kids_start as usize + child_order.len();
                if kids_start == MISSING_KID || kids_end > self.kids.len() {
                    return Err(malformed(format!(
                        "entry {} of union over {} is missing child unions",
                        value, rec.node
                    )));
                }
                let kids = &self.kids[kids_start as usize..kids_end];
                for (&kid, &child_node) in kids.iter().zip(child_order) {
                    if kid == MISSING_KID {
                        return Err(malformed(format!(
                            "entry {} of union over {} is missing the child union over {child_node}",
                            value, rec.node
                        )));
                    }
                    let kid_rec = self
                        .unions
                        .get(kid as usize)
                        .ok_or_else(|| malformed(format!("kid index {kid} out of bounds")))?;
                    if kid_rec.node != child_node {
                        return Err(malformed(format!(
                            "entry {} of union over {} has a child over {} where {child_node} was expected",
                            value, rec.node, kid_rec.node
                        )));
                    }
                    if kid as usize <= uid {
                        return Err(malformed(format!(
                            "kid {kid} of union {uid} violates the topological order"
                        )));
                    }
                    if uid_reachable {
                        reachable[kid as usize] = true;
                    }
                }
            }
        }
        if let Some(unreachable) = reachable.iter().position(|&r| !r) {
            return Err(malformed(format!(
                "union {unreachable} is not reachable from any root"
            )));
        }
        Ok(())
    }

    /// The generic flat rebuild primitive: keeps the entries for which
    /// `keep(node, value)` holds, then removes entries whose product became
    /// empty (some kid union without entries), propagating upwards exactly
    /// like the old recursive prune.  Unions that became unreachable are
    /// dropped from the arena; root unions may end up empty.
    ///
    /// Runs in two passes with no per-node allocation: a flat bottom-up
    /// liveness pass, then a depth-first re-emission of the survivors
    /// through a [`Rewriter`] — which puts the output in the exact layout
    /// [`Store::freeze`] would produce, so pruned stores stay bit-for-bit
    /// comparable with the thaw-path oracle.
    pub(crate) fn retain_and_prune<F>(&self, tree: &FTree, keep: F) -> Store
    where
        F: FnMut(NodeId, Value) -> bool,
    {
        self.retain_and_prune_ctx(tree, keep, &ExecCtx::unlimited())
            .expect("an unlimited context never interrupts the rebuild")
    }

    /// [`Store::retain_and_prune`] under a governance context: both passes
    /// charge the context per union record they touch, so a deadline,
    /// budget or cancellation aborts the rebuild cooperatively.  The input
    /// arena is read-only throughout and the output is returned by value,
    /// so an abort leaves no partial state anywhere — the half-emitted
    /// output store is simply dropped.
    pub(crate) fn retain_and_prune_ctx<F>(
        &self,
        tree: &FTree,
        mut keep: F,
        ctx: &ExecCtx,
    ) -> Result<Store>
    where
        F: FnMut(NodeId, Value) -> bool,
    {
        failpoint!(ctx, "store.rewrite");
        let rw = Rewriter::new(self, tree);

        // Pass 1 (bottom-up, reverse index order): decide per entry whether
        // it survives, and per union whether it still has entries.
        let mut entry_alive = vec![false; self.values.len()];
        let mut union_empty = vec![true; self.unions.len()];
        for uid in (0..self.unions.len()).rev() {
            let rec = self.unions[uid];
            ctx.charge(1 + rec.entries_len as u64)?;
            let kid_count = rw.src_kid_count(rec.node);
            let mut any_alive = false;
            for e in rec.entries_start..rec.entries_start + rec.entries_len {
                let mut alive = keep(rec.node, self.values[e as usize]);
                if alive {
                    let kids_start = self.kids_starts[e as usize];
                    for k in 0..kid_count {
                        let kid = self.kids[(kids_start + k) as usize];
                        if union_empty[kid as usize] {
                            alive = false;
                            break;
                        }
                    }
                }
                entry_alive[e as usize] = alive;
                any_alive |= alive;
            }
            union_empty[uid] = !any_alive;
        }

        self.emit_survivors(rw, &entry_alive, ctx)
    }

    /// The comparison-specialised [`Store::retain_and_prune_ctx`]: the
    /// constant-selection predicate `value θ c` on one node's unions.  Same
    /// two passes and the same emission, but pass 1 evaluates the predicate
    /// **per union block** through the batched
    /// [`kernel::fill_keep_mask`] — the whole block's keep mask comes from
    /// one vectorised sweep over the dense value slice instead of a
    /// closure call per entry.  Bit-for-bit identical to the generic path
    /// with the equivalent closure (the randomized identity tests pin it).
    pub(crate) fn retain_and_prune_cmp_ctx(
        &self,
        tree: &FTree,
        node: NodeId,
        op: ComparisonOp,
        value: Value,
        ctx: &ExecCtx,
    ) -> Result<Store> {
        failpoint!(ctx, "store.rewrite");
        let rw = Rewriter::new(self, tree);

        let mut entry_alive = vec![false; self.values.len()];
        let mut union_empty = vec![true; self.unions.len()];
        for uid in (0..self.unions.len()).rev() {
            let rec = self.unions[uid];
            ctx.charge(1 + rec.entries_len as u64)?;
            let start = rec.entries_start as usize;
            let end = start + rec.entries_len as usize;
            // Predicate first, batched over the union's dense value block.
            if rec.node == node {
                kernel::fill_keep_mask(
                    &self.values[start..end],
                    op,
                    value,
                    &mut entry_alive[start..end],
                );
            } else {
                entry_alive[start..end].fill(true);
            }
            // Then the kid-emptiness fold over the surviving mask.
            let kid_count = rw.src_kid_count(rec.node);
            let mut any_alive = false;
            for (e, alive_slot) in entry_alive.iter_mut().enumerate().take(end).skip(start) {
                let mut alive = *alive_slot;
                if alive && kid_count > 0 {
                    let kids_start = self.kids_starts[e];
                    for k in 0..kid_count {
                        if union_empty[self.kids[(kids_start + k) as usize] as usize] {
                            alive = false;
                            break;
                        }
                    }
                    *alive_slot = alive;
                }
                any_alive |= alive;
            }
            union_empty[uid] = !any_alive;
        }

        self.emit_survivors(rw, &entry_alive, ctx)
    }

    /// Pass 2 shared by both retain-and-prune variants (top-down): re-emit
    /// the surviving structure.  Unions hanging off dead entries are never
    /// visited, which drops them.
    fn emit_survivors(
        &self,
        mut rw: Rewriter<'_>,
        entry_alive: &[bool],
        ctx: &ExecCtx,
    ) -> Result<Store> {
        let roots: Vec<u32> = self
            .roots
            .iter()
            .map(|&r| emit_pruned(&mut rw, entry_alive, r, ctx))
            .collect::<Result<_>>()?;
        Ok(rw.finish(roots))
    }

    /// Appends another store (over disjoint f-tree nodes) to this one,
    /// remapping its node identifiers through `node_map` — the data half of
    /// the Cartesian product operator.  Runs in time linear in `other`.
    pub(crate) fn append_remapped(&mut self, other: &Store, node_map: &BTreeMap<NodeId, NodeId>) {
        let union_offset = self.unions.len() as u32;
        let entry_offset = self.values.len() as u32;
        let kid_offset = self.kids.len() as u32;
        self.unions.extend(other.unions.iter().map(|rec| UnionRec {
            node: node_map[&rec.node],
            entries_start: rec.entries_start + entry_offset,
            entries_len: rec.entries_len,
        }));
        self.values.extend_from_slice(&other.values);
        self.kids_starts
            .extend(other.kids_starts.iter().map(|&ks| ks + kid_offset));
        self.kids
            .extend(other.kids.iter().map(|&kid| kid + union_offset));
        self.roots
            .extend(other.roots.iter().map(|&r| r + union_offset));
    }
}

/// Recursive emission phase of [`Store::retain_and_prune`]: copies union
/// `uid` keeping only the entries marked alive.
fn emit_pruned(
    rw: &mut Rewriter<'_>,
    entry_alive: &[bool],
    uid: u32,
    ctx: &ExecCtx,
) -> Result<u32> {
    let src = rw.src;
    let rec = src.unions[uid as usize];
    let start = rec.entries_start as usize;
    let end = start + rec.entries_len as usize;
    let survivors = (start..end).filter(|&e| entry_alive[e]).count() as u32;
    ctx.charge(1 + survivors as u64)?;
    let out = rw.begin_union_raw(rec.node, survivors);
    for (e, &alive) in entry_alive.iter().enumerate().take(end).skip(start) {
        if alive {
            rw.push_value(src.values[e]);
        }
    }
    let kid_count = rw.src_kid_count(rec.node);
    let mut index = 0u32;
    for e in start..end {
        if !entry_alive[e] {
            continue;
        }
        let mark = rw.mark();
        let kids_start = src.kids_starts[e];
        for k in 0..kid_count {
            let kid = src.kids[kids_start as usize + k as usize];
            let copied = emit_pruned(rw, entry_alive, kid, ctx)?;
            rw.push_kid(copied);
        }
        rw.end_entry(out, index, mark);
        index += 1;
    }
    Ok(out)
}

/// Child counts of every node of `tree`, indexed by node index — the flat
/// lookup table both the [`Rewriter`] and the fused-execution overlay
/// ([`crate::ops::fuse`]) walk instead of querying the tree per union.
pub(crate) fn kid_count_table(tree: &FTree) -> Vec<u32> {
    let mut kid_counts = Vec::new();
    for node in tree.node_ids() {
        let idx = node.index();
        if idx >= kid_counts.len() {
            kid_counts.resize(idx + 1, 0);
        }
        kid_counts[idx] = tree.children(node).len() as u32;
    }
    kid_counts
}

/// Emits a new arena from an existing one in the exact layout
/// [`Store::freeze`] produces: union headers in depth-first preorder, the
/// entry records of one union pushed contiguously at the union's visit, and
/// every entry's kid run pushed *after* the kid subtrees it points to.
/// Reproducing the freeze layout makes an arena-native structural operator
/// bit-for-bit identical to its thaw/rewrite/freeze oracle, which the
/// randomized equivalence tests exploit.
///
/// The per-entry kid lists are collected in a single scratch vector shared
/// across recursion levels (each entry works in its own watermarked tail
/// region), so a steady-state rewrite performs no allocation beyond the
/// output arenas themselves.
pub(crate) struct Rewriter<'a> {
    pub(crate) src: &'a Store,
    out: Store,
    /// Kid-id scratch shared across recursion levels (see the type docs).
    scratch: Vec<u32>,
    /// Child counts of the *input* f-tree, indexed by node index.
    kid_counts: Vec<u32>,
}

impl<'a> Rewriter<'a> {
    /// Creates a rewriter reading from `src`, whose nesting structure is
    /// described by `src_tree`.
    ///
    /// The output arenas are pre-reserved from the input arena's sizes: most
    /// rewrites shrink the representation or keep it the same size, so the
    /// input lengths are a good capacity hint (not a hard bound — a swap can
    /// grow the arena) and steady-state emission performs no re-allocation.
    pub(crate) fn new(src: &'a Store, src_tree: &FTree) -> Rewriter<'a> {
        let kid_counts = kid_count_table(src_tree);
        let mut out = Store::default();
        out.unions.reserve(src.unions.len());
        out.values.reserve(src.values.len());
        out.kids_starts.reserve(src.kids_starts.len());
        out.kids.reserve(src.kids.len());
        Rewriter {
            src,
            out,
            scratch: Vec::new(),
            kid_counts,
        }
    }

    /// Child count of `node` in the input f-tree.
    pub(crate) fn src_kid_count(&self, node: NodeId) -> u32 {
        self.kid_counts[node.index()]
    }

    /// Units of output emitted so far (union headers plus entry records) —
    /// governed emission loops charge their [`ExecCtx`] with the delta
    /// across each opaque emission call (e.g. a whole
    /// [`Rewriter::copy_union`] subtree copy).
    pub(crate) fn emitted_units(&self) -> u64 {
        self.out.unions.len() as u64 + self.out.values.len() as u64
    }

    /// Starts a new output union: pushes its header, announcing
    /// `entries_len` entries whose value records follow via
    /// [`Rewriter::push_value`] (kid runs are attached with
    /// [`Rewriter::end_entry`]).  Returns the new union's index.
    pub(crate) fn begin_union_raw(&mut self, node: NodeId, entries_len: u32) -> u32 {
        let uid = self.out.unions.len() as u32;
        self.out.unions.push(UnionRec {
            node,
            entries_start: self.out.values.len() as u32,
            entries_len,
        });
        uid
    }

    /// Pushes one value record of the union opened by
    /// [`Rewriter::begin_union_raw`]; must be called before any kid subtree
    /// of the union is emitted, so the records stay contiguous.
    pub(crate) fn push_value(&mut self, value: Value) {
        self.out.push_entry(value, MISSING_KID);
    }

    /// Starts a new output union: pushes its header and one value record per
    /// entry (kid runs are attached with [`Rewriter::end_entry`]).  Returns
    /// the new union's index.
    pub(crate) fn begin_union(
        &mut self,
        node: NodeId,
        values: impl ExactSizeIterator<Item = Value>,
    ) -> u32 {
        let uid = self.begin_union_raw(node, values.len() as u32);
        for value in values {
            self.push_value(value);
        }
        uid
    }

    /// Emits an empty union over `node`.
    pub(crate) fn empty_union(&mut self, node: NodeId) -> u32 {
        self.begin_union(node, std::iter::empty::<Value>())
    }

    /// Marks the start of one entry's kid collection; pass the mark to
    /// [`Rewriter::end_entry`].
    pub(crate) fn mark(&self) -> usize {
        self.scratch.len()
    }

    /// Records one emitted kid union for the entry currently being
    /// assembled.
    pub(crate) fn push_kid(&mut self, kid: u32) {
        self.scratch.push(kid);
    }

    /// Finalises entry `index` of output union `uid`: its kid run is
    /// everything pushed since `mark`, appended to the kid arena now (after
    /// the kid subtrees, exactly like [`Store::freeze`]).
    pub(crate) fn end_entry(&mut self, uid: u32, index: u32, mark: usize) {
        let kids_start = self.out.kids.len() as u32;
        self.out.kids.extend_from_slice(&self.scratch[mark..]);
        self.scratch.truncate(mark);
        let entries_start = self.out.unions[uid as usize].entries_start;
        self.out.kids_starts[(entries_start + index) as usize] = kids_start;
    }

    /// Copies the subtree rooted at input union `uid` verbatim (the nodes
    /// below it are unaffected by the rewrite in progress).
    pub(crate) fn copy_union(&mut self, uid: u32) -> u32 {
        let src = self.src;
        let rec = src.unions[uid as usize];
        let out_uid = self.begin_union(rec.node, src.value_slice(uid).iter().copied());
        let kid_count = self.src_kid_count(rec.node);
        for i in 0..rec.entries_len {
            let mark = self.mark();
            for k in 0..kid_count {
                let copied = self.copy_union(src.kid(uid, i, k));
                self.push_kid(copied);
            }
            self.end_entry(out_uid, i, mark);
        }
        out_uid
    }

    /// Consumes the rewriter, attaching the given root list.
    pub(crate) fn finish(self, roots: Vec<u32>) -> Store {
        debug_assert!(self.scratch.is_empty(), "unfinished entry kid runs");
        let mut out = self.out;
        out.roots = roots;
        out
    }
}

/// A read-only view of one union in the arena.
#[derive(Clone, Copy)]
pub struct UnionRef<'a> {
    pub(crate) tree: &'a FTree,
    pub(crate) store: &'a Store,
    pub(crate) id: u32,
}

impl<'a> UnionRef<'a> {
    /// The f-tree node this union ranges over.
    pub fn node(&self) -> NodeId {
        self.store.unions[self.id as usize].node
    }

    /// Number of entries (distinct values).
    pub fn len(&self) -> usize {
        self.store.union_len(self.id) as usize
    }

    /// Returns `true` if the union has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th entry (entries are sorted increasing by value).
    pub fn entry(&self, i: usize) -> EntryRef<'a> {
        assert!(i < self.len(), "entry index {i} out of bounds");
        EntryRef {
            tree: self.tree,
            store: self.store,
            union: self.id,
            index: i as u32,
        }
    }

    /// Iterates over the entries in increasing value order.
    pub fn entries(&self) -> impl ExactSizeIterator<Item = EntryRef<'a>> + '_ {
        let (tree, store, union) = (self.tree, self.store, self.id);
        (0..self.store.union_len(self.id)).map(move |index| EntryRef {
            tree,
            store,
            union,
            index,
        })
    }

    /// Probes the sorted value slice for the given value (through the
    /// shared [`kernel::find_value`] probe).
    pub fn find_value(&self, value: Value) -> Option<EntryRef<'a>> {
        kernel::find_value(self.store.value_slice(self.id), value).map(|i| EntryRef {
            tree: self.tree,
            store: self.store,
            union: self.id,
            index: i as u32,
        })
    }

    /// The values of this union, in increasing order.
    pub fn values(&self) -> impl ExactSizeIterator<Item = Value> + 'a {
        self.store.value_slice(self.id).iter().copied()
    }
}

/// A read-only view of one entry in the arena.
#[derive(Clone, Copy)]
pub struct EntryRef<'a> {
    pub(crate) tree: &'a FTree,
    pub(crate) store: &'a Store,
    pub(crate) union: u32,
    pub(crate) index: u32,
}

impl<'a> EntryRef<'a> {
    /// The entry's value.
    pub fn value(&self) -> Value {
        self.store.value_slice(self.union)[self.index as usize]
    }

    /// The node of the union this entry belongs to.
    pub fn node(&self) -> NodeId {
        self.store.unions[self.union as usize].node
    }

    /// Number of child unions (the f-tree child count of the node).
    pub fn child_count(&self) -> usize {
        self.tree.children(self.node()).len()
    }

    /// The child union at kid position `k` (the f-tree child order) — an
    /// O(1) index into the kid arena.
    pub fn child_at(&self, k: usize) -> UnionRef<'a> {
        assert!(k < self.child_count(), "kid index {k} out of bounds");
        let kid = self.store.kid(self.union, self.index, k as u32);
        UnionRef {
            tree: self.tree,
            store: self.store,
            id: kid,
        }
    }

    /// The child union over the given node, if `node` is a child of this
    /// entry's node in the f-tree.
    pub fn child(&self, node: NodeId) -> Option<UnionRef<'a>> {
        let k = self
            .tree
            .children(self.node())
            .iter()
            .position(|&c| c == node)?;
        Some(self.child_at(k))
    }

    /// Iterates over the child unions in f-tree child order.
    pub fn children(&self) -> impl ExactSizeIterator<Item = UnionRef<'a>> + '_ {
        (0..self.child_count()).map(move |k| self.child_at(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_common::AttrId;
    use fdb_ftree::DepEdge;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// A{0} → B{1}: A=1 → B{10,20}, A=2 → B{20}.
    fn sample() -> (FTree, Vec<Union>) {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 3)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let entry = |v: u64, bs: &[u64]| Entry {
            value: Value::new(v),
            children: vec![Union::new(
                b,
                bs.iter().map(|&x| Entry::leaf(Value::new(x))).collect(),
            )],
        };
        let roots = vec![Union::new(a, vec![entry(1, &[10, 20]), entry(2, &[20])])];
        (tree, roots)
    }

    #[test]
    fn freeze_thaw_round_trips() {
        let (tree, roots) = sample();
        let store = Store::freeze(&tree, &roots);
        store.validate(&tree).unwrap();
        assert_eq!(store.thaw(&tree), roots);
        // One union per node instance: the A union and one B union per entry.
        assert_eq!(store.unions.len(), 3);
        assert_eq!(store.entry_count(), 5);
        assert_eq!(store.kids.len(), 2);
        // The sealed entry arrays stay parallel.
        assert_eq!(store.values.len(), store.kids_starts.len());
    }

    #[test]
    fn kid_indices_are_topological() {
        let (tree, roots) = sample();
        let store = Store::freeze(&tree, &roots);
        for (uid, rec) in store.unions.iter().enumerate() {
            for e in rec.entries_start..rec.entries_start + rec.entries_len {
                let kids_start = store.kids_starts[e as usize];
                for k in 0..tree.children(rec.node).len() {
                    assert!(store.kids[kids_start as usize + k] > uid as u32);
                }
            }
        }
    }

    #[test]
    fn validate_rejects_missing_kids() {
        let (tree, mut roots) = sample();
        roots[0].entries[0].children.clear();
        let store = Store::freeze(&tree, &roots);
        assert!(store.validate(&tree).is_err());
    }

    #[test]
    fn retain_and_prune_filters_and_propagates() {
        let (tree, roots) = sample();
        let b = tree.node_of_attr(AttrId(1)).unwrap();
        let store = Store::freeze(&tree, &roots);
        // Keep only B > 15: the A=1 entry keeps B{20}, A=2 keeps B{20}.
        let pruned = store.retain_and_prune(&tree, |n, v| n != b || v > Value::new(15));
        pruned.validate(&tree).unwrap();
        let thawed = pruned.thaw(&tree);
        assert_eq!(thawed[0].len(), 2);
        assert_eq!(thawed[0].entries[0].children[0].len(), 1);
        // Keep only B > 25: nothing survives, the root union becomes empty.
        let emptied = store.retain_and_prune(&tree, |n, v| n != b || v > Value::new(25));
        emptied.validate(&tree).unwrap();
        assert_eq!(emptied.thaw(&tree)[0].len(), 0);
    }

    #[test]
    fn cmp_prune_is_bit_identical_to_the_generic_closure_path() {
        let (tree, roots) = sample();
        let store = Store::freeze(&tree, &roots);
        let ctx = ExecCtx::unlimited();
        let ops = [
            ComparisonOp::Eq,
            ComparisonOp::Ne,
            ComparisonOp::Lt,
            ComparisonOp::Le,
            ComparisonOp::Gt,
            ComparisonOp::Ge,
        ];
        for node in [
            tree.node_of_attr(AttrId(0)).unwrap(),
            tree.node_of_attr(AttrId(1)).unwrap(),
        ] {
            for op in ops {
                for c in [0u64, 1, 2, 10, 15, 20, 25, 99] {
                    let c = Value::new(c);
                    let generic = store
                        .retain_and_prune_ctx(&tree, |n, v| n != node || op.eval(v, c), &ctx)
                        .unwrap();
                    let batched = store
                        .retain_and_prune_cmp_ctx(&tree, node, op, c, &ctx)
                        .unwrap();
                    // Not merely equivalent: the exact same arena records.
                    assert_eq!(batched, generic, "node {node} op {op:?} c {c}");
                }
            }
        }
    }

    /// Randomized store-identity sweep of the batched selection path: a
    /// three-level forest with random fan-outs (odd lengths exercise the
    /// kernels' unaligned tails) must prune bit-for-bit like the closure.
    #[test]
    fn cmp_prune_matches_on_random_forests() {
        let mut rng = StdRng::seed_from_u64(0x50A);
        let ctx = ExecCtx::unlimited();
        for round in 0..40 {
            let edges = vec![DepEdge::new("R", attrs(&[0, 1, 2]), 3)];
            let mut tree = FTree::new(edges);
            let a = tree.add_node(attrs(&[0]), None).unwrap();
            let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
            let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
            let mut next = 0u64;
            let mut distinct = |rng: &mut StdRng| {
                next += rng.gen_range(1..4u64);
                Value::new(next)
            };
            let leaf_union = |rng: &mut StdRng, next: &mut dyn FnMut(&mut StdRng) -> Value| {
                let len = rng.gen_range(1..7usize);
                Union::new(c, (0..len).map(|_| Entry::leaf(next(rng))).collect())
            };
            let b_union = |rng: &mut StdRng, next: &mut dyn FnMut(&mut StdRng) -> Value| {
                let len = rng.gen_range(1..5usize);
                Union::new(
                    b,
                    (0..len)
                        .map(|_| Entry {
                            value: next(rng),
                            children: vec![leaf_union(rng, next)],
                        })
                        .collect(),
                )
            };
            let root_len = rng.gen_range(1..5usize);
            let root = Union::new(
                a,
                (0..root_len)
                    .map(|_| Entry {
                        value: distinct(&mut rng),
                        children: vec![b_union(&mut rng, &mut distinct)],
                    })
                    .collect(),
            );
            let store = Store::freeze(&tree, &[root]);
            store.validate(&tree).unwrap();
            let node = [a, b, c][round % 3];
            let op = [
                ComparisonOp::Eq,
                ComparisonOp::Ne,
                ComparisonOp::Lt,
                ComparisonOp::Le,
                ComparisonOp::Gt,
                ComparisonOp::Ge,
            ][round % 6];
            let cut = Value::new(rng.gen_range(0..next + 2));
            let generic = store
                .retain_and_prune_ctx(&tree, |n, v| n != node || op.eval(v, cut), &ctx)
                .unwrap();
            let batched = store
                .retain_and_prune_cmp_ctx(&tree, node, op, cut, &ctx)
                .unwrap();
            assert_eq!(batched, generic, "round {round}");
            batched.validate(&tree).unwrap();
        }
    }

    #[test]
    fn append_remapped_concatenates_disjoint_stores() {
        let (tree_a, roots_a) = sample();
        let mut store = Store::freeze(&tree_a, &roots_a);
        let edges = vec![DepEdge::new("S", attrs(&[2]), 1)];
        let mut tree_b = FTree::new(edges);
        let c = tree_b.add_node(attrs(&[2]), None).unwrap();
        let other = Store::freeze(&tree_b, &[Union::new(c, vec![Entry::leaf(Value::new(9))])]);

        let mut combined_tree = tree_a.clone();
        let map = combined_tree.import_forest(&tree_b).unwrap();
        store.append_remapped(&other, &map);
        store.validate(&combined_tree).unwrap();
        assert_eq!(store.roots.len(), 2);
        let thawed = store.thaw(&combined_tree);
        assert_eq!(thawed[1].node, map[&c]);
        assert_eq!(thawed[1].entries[0].value, Value::new(9));
    }

    #[test]
    fn rewriter_copy_reproduces_the_freeze_layout() {
        let (tree, roots) = sample();
        let store = Store::freeze(&tree, &roots);
        let mut rw = Rewriter::new(&store, &tree);
        let new_roots: Vec<u32> = store.roots.iter().map(|&r| rw.copy_union(r)).collect();
        let copy = rw.finish(new_roots);
        // Not merely equivalent: the exact same arena records.
        assert_eq!(copy, store);
    }

    #[test]
    fn validate_rejects_out_of_order_arena_values() {
        let (tree, roots) = sample();
        let mut store = Store::freeze(&tree, &roots);
        // Entries 2 and 3 are the first B-union's block {10, 20} (the A
        // block occupies entries 0 and 1): swap them to get 20 before 10.
        assert_eq!(store.values[2], Value::new(10));
        assert_eq!(store.values[3], Value::new(20));
        store.values.swap(2, 3);
        store.kids_starts.swap(2, 3);
        assert!(store.validate(&tree).is_err());
        // A duplicated value is rejected too.
        let (_, roots) = sample();
        let mut store = Store::freeze(&tree, &roots);
        store.values[3] = store.values[2];
        assert!(store.validate(&tree).is_err());
    }

    #[test]
    fn validate_rejects_topological_order_violations() {
        let (tree, roots) = sample();
        let mut store = Store::freeze(&tree, &roots);
        // Point the A=1 entry's kid slot back at the A-union itself.
        let a_uid = store.roots[0];
        let kids_start =
            store.kids_starts[store.unions[a_uid as usize].entries_start as usize] as usize;
        store.kids[kids_start] = a_uid;
        assert!(store.validate(&tree).is_err());
    }

    #[test]
    fn validate_rejects_unreachable_unions() {
        let (tree, roots) = sample();
        let mut store = Store::freeze(&tree, &roots);
        // Redirect the A=2 entry's kid slot at the A=1 entry's B-union: the
        // B-union of A=2 becomes unreachable.
        let a_rec = store.unions[store.roots[0] as usize];
        let ks1 = store.kids_starts[a_rec.entries_start as usize];
        let ks2 = store.kids_starts[a_rec.entries_start as usize + 1];
        let shared = store.kids[ks1 as usize];
        store.kids[ks2 as usize] = shared;
        assert!(store.validate(&tree).is_err());
    }

    #[test]
    fn validate_rejects_wrong_child_node() {
        let (tree, roots) = sample();
        let mut store = Store::freeze(&tree, &roots);
        // Retarget a B-union header at the A node: the kid slot now points at
        // a union over the wrong node.
        let a_uid = store.roots[0] as usize;
        let b_uid = {
            let ks = store.kids_starts[store.unions[a_uid].entries_start as usize];
            store.kids[ks as usize] as usize
        };
        store.unions[b_uid].node = store.unions[a_uid].node;
        assert!(store.validate(&tree).is_err());
    }

    #[test]
    fn validate_rejects_entry_arrays_out_of_lockstep() {
        let (tree, roots) = sample();
        let mut store = Store::freeze(&tree, &roots);
        store.kids_starts.pop();
        assert!(store.validate(&tree).is_err());
    }

    #[test]
    fn refs_expose_o1_child_lookup_and_binary_search() {
        let (tree, roots) = sample();
        let store = Store::freeze(&tree, &roots);
        let a_union = UnionRef {
            tree: &tree,
            store: &store,
            id: store.roots[0],
        };
        assert_eq!(a_union.len(), 2);
        let b = tree.node_of_attr(AttrId(1)).unwrap();
        let a1 = a_union.find_value(Value::new(1)).unwrap();
        assert_eq!(a1.value(), Value::new(1));
        let b_union = a1.child(b).unwrap();
        assert_eq!(
            b_union.values().collect::<Vec<_>>(),
            vec![Value::new(10), Value::new(20)]
        );
        assert!(a_union.find_value(Value::new(3)).is_none());
        assert!(a1.child(a_union.node()).is_none());
    }
}
