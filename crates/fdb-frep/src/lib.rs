//! Factorised representations (f-representations) and the f-plan operators.
//!
//! An f-representation is a relational algebra expression built from
//! singletons `⟨A:a⟩`, unions and products, whose nesting structure follows
//! an f-tree (Definitions 1 and 2 of the paper).  This crate implements:
//!
//! * the [`FRep`] data structure ([`frep`]), stored in the flat arenas of
//!   [`store`]: contiguous union headers, entry records and a child-slot
//!   table in fixed f-tree child order, with size accounting (number of
//!   singletons), structural validation and tuple counting as flat loops;
//! * the owned [`Union`]/[`Entry`] *builder* form ([`node`]) used to
//!   hand-construct representations (and backing the thaw-path test oracle
//!   in [`ops::oracle`]);
//! * construction of the factorised result of a select-project-join query
//!   over a given f-tree directly from a flat database ([`build`]): the
//!   top-down semi-join emits arena records as it recurses, retracting dead
//!   candidates by watermark rollback, without materialising the flat
//!   result or an intermediate builder forest;
//! * enumeration of the represented relation ([`enumerate`]): an iterative,
//!   allocation-free constant-delay cursor ([`TupleCursor`]) and
//!   materialisation into a flat [`fdb_relation::Relation`];
//! * the data-level f-plan operators ([`ops`]): Cartesian product, push-up
//!   and normalisation, swap, merge, absorb, selection with a constant, and
//!   projection — all arena-native, rewriting the flat store in single
//!   passes with no pointer-tree round trip.  Each operator transforms both
//!   the representation and its f-tree, keeping the two consistent, and
//!   runs in (quasi)linear time in the sizes of its input and output;
//! * one-pass aggregation ([`aggregate`]): `COUNT`/`SUM`/`MIN`/`MAX`/`AVG`
//!   (optionally grouped by a root attribute) over the factorised data,
//!   without enumerating a single tuple.
//!
//! # The arena layout contract
//!
//! Every consumer in the crate reads the same flat layout, so it is worth
//! stating once (see [`store`] for the full details): a representation is
//! five arrays in **structure-of-arrays** form — union headers, entry
//! *values* (contiguous per union, strictly increasing), entry *kid-run
//! offsets* (parallel to the values, one per entry), kid slots (one
//! contiguous run per entry, in the f-tree's child order) and a root list.
//! Values and kid offsets are split into parallel arrays rather than
//! interleaved records so that the value-only scans — predicate masks,
//! probes, sortedness checks, run boundaries — read a dense `&[Value]`
//! slice the vectorised kernels in [`kernel`] can stream through (the
//! MonetDB/X100 argument: the hot loops touch half the bytes and take SIMD
//! lanes).  The two entry arrays are sealed behind [`store`]'s accessor
//! layer; nothing outside that module can push to one without the other.
//! Union indices are **topological** (every kid index exceeds its parent
//! union's index), which is what turns whole-representation statistics into
//! flat loops: [`FRep::tuple_count`] and the aggregation pass of
//! [`aggregate`] are single *reverse* loops over the union array (children
//! are finished before their parents are visited), and enumeration/emission
//! are forward walks.  Operators never mutate an arena in place; they emit
//! a fresh one in the exact freeze layout (the layout [`FRep::from_parts`]
//! produces), which keeps every rewrite bit-for-bit comparable with the
//! thaw-path oracle.
//!
//! # The single-pass execution contract
//!
//! The fused executor ([`ops::fuse`]) compiles an entire f-plan — push-ups,
//! normalisations, swaps, merges, absorbs, **and** constant selections and
//! projections — into one overlay program over the input arena, emitting
//! exactly one output arena in freeze layout, bit-for-bit identical to
//! running the operators one at a time.  There are no fusion barriers: a
//! selection is an entry filter folded into the liveness sweep (emptied
//! subtrees retract exactly as the merge/absorb prune retracts them), and a
//! projection replays its leaf removals and data-dependent swap-downs on
//! the overlay.  `fdb-plan` routes every multi-pass plan through this path.
//!
//! # The sharing contract
//!
//! A frozen representation is **immutable**: once [`FRep::from_parts`] (or
//! an operator emission) has produced the arena, nothing in this crate — or
//! anywhere else in the workspace — mutates it.  Operators take their input
//! by shared reference and emit a *fresh* arena; enumeration, aggregation
//! and statistics are read-only walks.  The arenas are plain owned arrays
//! (`Vec`s of `Copy` records, no interior mutability, no `Rc`), so the
//! arena `Store` and [`FRep`] are `Send + Sync` **by construction**, and
//! this crate pins
//! that with compile-time assertions: a future `Rc`/`Cell` regression fails
//! the build, not an integration test.
//!
//! What that licenses: a frozen `FRep` behind an `Arc` may be read by any
//! number of threads concurrently with **no locking whatsoever** — shared
//! scans, concurrent queries over one database (`fdb-core`'s serving
//! layer), and partitioned parallel enumeration
//! ([`enumerate::par_materialize`]) all read the same arena in place.
//! Mutation never happens in place, so there is nothing to synchronise;
//! "updating" a shared database means publishing a new `Arc`.
//!
//! # Where aggregation hooks in
//!
//! [`aggregate::aggregate`] and [`aggregate::aggregate_grouped`] evaluate on
//! a frozen arena in one reverse loop.  For aggregate *queries* the fused
//! executor goes one step further: [`ops::execute_fused_aggregate`] applies
//! the whole plan to the fused overlay and folds the aggregate over the
//! overlay itself, with the plan's trailing selections folded into the
//! accumulation as entry filters — **no arena is emitted at any point**, so
//! a (selection-then-)aggregate query pays zero materialisation.  `fdb-plan`
//! routes every non-empty aggregate plan through that entry point and
//! `fdb-core` reports it as `aggregates_on_overlay` / `arenas_skipped`.
//!
//! # The cancellation and budget contract
//!
//! Every data-dependent loop in this crate has a `_ctx` variant
//! ([`build_frep_ctx`], `Store::retain_and_prune_ctx`,
//! [`ops::execute_fused_ctx`], [`aggregate::evaluate_ctx`],
//! [`enumerate::materialize_ctx`], …) threaded with an
//! [`fdb_common::ExecCtx`]: the loop **charges** the context roughly one
//! unit per arena record it processes or emits, and the context turns
//! those charges into deadline, budget and cancellation checks (budget
//! exactly per charge, clock and flag once per
//! `fdb_common::limits::CHECK_INTERVAL` units).  Two guarantees follow:
//!
//! * **No partial state.** An interrupting `Err` propagates without
//!   installing anything: the semi-join builder retracts to its
//!   watermark, rewriters and the fused executor build *fresh* arenas
//!   that are only swapped in on success, and aggregation/enumeration
//!   never mutate their input.  A representation that was readable before
//!   an aborted operation is bit-for-bit unchanged after it.
//! * **Cheap when armed, free when not.** The ungoverned public APIs
//!   delegate to their `_ctx` twin with [`fdb_common::ExecCtx::unlimited`],
//!   a single-branch short-circuit; armed-but-never-tripping limits cost
//!   a few percent at worst (`bench-pr7` pins a ≤ 3% geometric mean).
//!
//! Checks are **cooperative**: a loop that never charges cannot be
//! interrupted, so any new loop whose trip count depends on data size
//! must charge at least once per record batch.  With the
//! `fault-injection` cargo feature the same contexts also drive the
//! deterministic `failpoint!` sites (`build.semi_join`, `store.rewrite`,
//! `fuse.execute`, `aggregate.fold`, `enumerate.cursor`, `snapshot.write`,
//! `snapshot.read`) used by the chaos suite in the workspace root.
//!
//! # Durability
//!
//! The [`snapshot`] module serialises a frozen representation — its f-tree
//! and all four arena arrays — into a length-prefixed, per-section
//! checksummed byte format, and loading re-verifies everything: checksums
//! first, then the full structural validator as a mandatory release-mode
//! check.  Corrupt or version-skewed input yields structured errors, never
//! a panic and never a silently-wrong arena.

#![warn(missing_docs)]

pub mod aggregate;
pub mod build;
pub mod enumerate;
pub mod frep;
pub mod kernel;
pub mod node;
pub mod ops;
pub mod snapshot;
pub mod store;

pub use aggregate::{AggregateKind, AggregateResult, AggregateValue, AvgValue};
pub use build::{build_frep, build_frep_ctx};
pub use enumerate::{
    count_by_enumeration, for_each_tuple, materialize, materialize_ctx, materialize_ordered,
    materialize_ordered_ctx, materialize_then_sort, order_chain, par_materialize,
    par_materialize_ordered, CursorConfig, OrderStrategy, TupleCursor,
};
pub use frep::FRep;
pub use node::{Entry, Union};
pub use snapshot::{decode_frep, decode_frep_ctx, encode_frep, encode_frep_ctx, SNAPSHOT_VERSION};
pub use store::{EntryRef, UnionRef};

/// Compile-time pin of the sharing contract (see the crate docs): the
/// frozen representation types must stay `Send + Sync` so arenas can be
/// `Arc`-shared across serving threads.  Adding an `Rc`, `Cell` or raw
/// pointer to any of them turns this into a build error.
#[allow(dead_code)]
fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    #[allow(dead_code)]
    fn frozen_types_are_shareable() {
        _assert_send_sync::<store::Store>();
        _assert_send_sync::<FRep>();
        _assert_send_sync::<CursorConfig>();
        _assert_send_sync::<TupleCursor<'static>>();
        _assert_send_sync::<AggregateResult>();
    }
};
