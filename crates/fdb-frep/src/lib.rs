//! Factorised representations (f-representations) and the f-plan operators.
//!
//! An f-representation is a relational algebra expression built from
//! singletons `⟨A:a⟩`, unions and products, whose nesting structure follows
//! an f-tree (Definitions 1 and 2 of the paper).  This crate implements:
//!
//! * the [`FRep`] data structure ([`frep`]), stored in the flat arenas of
//!   [`store`]: contiguous union headers, entry records and a child-slot
//!   table in fixed f-tree child order, with size accounting (number of
//!   singletons), structural validation and tuple counting as flat loops;
//! * the owned [`Union`]/[`Entry`] *builder* form ([`node`]) used to
//!   hand-construct representations (and backing the thaw-path test oracle
//!   in [`ops::oracle`]);
//! * construction of the factorised result of a select-project-join query
//!   over a given f-tree directly from a flat database ([`build`]): the
//!   top-down semi-join emits arena records as it recurses, retracting dead
//!   candidates by watermark rollback, without materialising the flat
//!   result or an intermediate builder forest;
//! * enumeration of the represented relation ([`enumerate`]): an iterative,
//!   allocation-free constant-delay cursor ([`TupleCursor`]) and
//!   materialisation into a flat [`fdb_relation::Relation`];
//! * the data-level f-plan operators ([`ops`]): Cartesian product, push-up
//!   and normalisation, swap, merge, absorb, selection with a constant, and
//!   projection — all arena-native, rewriting the flat store in single
//!   passes with no pointer-tree round trip.  Each operator transforms both
//!   the representation and its f-tree, keeping the two consistent, and
//!   runs in (quasi)linear time in the sizes of its input and output.

#![warn(missing_docs)]

pub mod build;
pub mod enumerate;
pub mod frep;
pub mod node;
pub mod ops;
pub mod store;

pub use build::build_frep;
pub use enumerate::{count_by_enumeration, for_each_tuple, materialize, TupleCursor};
pub use frep::FRep;
pub use node::{Entry, Union};
pub use store::{EntryRef, UnionRef};
