//! Durable, self-verifying snapshots of frozen f-representations.
//!
//! # Format
//!
//! A snapshot is a little-endian byte stream: a fixed 16-byte header
//! followed by length-prefixed, individually checksummed sections.
//!
//! ```text
//! header:   magic u32 | version u32 | kind u32 | section_count u32
//! section:  tag u32 | payload_len u64 | payload … | checksum u64
//! ```
//!
//! The checksum is FNV-1a (64-bit) over the section's tag, length prefix
//! *and* payload, so a bit flip anywhere inside a section — including its
//! framing — is detected.  An f-representation snapshot has exactly seven
//! sections, one per constituent array:
//!
//! | tag    | contents                                              |
//! |--------|-------------------------------------------------------|
//! | `EDGE` | f-tree dependency edges (label, attrs, cardinality)   |
//! | `NODE` | f-tree node slots, including removed-node holes       |
//! | `TRTS` | f-tree root list, in order                            |
//! | `UNIO` | arena union headers (`node, entries_start, len`)      |
//! | `ENTR` | arena entry records (`value, kids_start`)             |
//! | `KIDS` | arena kid-slot table                                  |
//! | `SRTS` | arena root union indices                              |
//!
//! # Verification
//!
//! Loading **re-verifies everything**: the header (magic, version, kind,
//! section count), every section's framing and checksum, the bounds of every
//! decoded count and index, and finally — mandatorily, in release builds too
//! — the full structural validator ([`crate::FRep::validate`], i.e. the
//! f-tree invariants, the path constraint and every arena invariant of
//! `Store::validate`).  Truncated, bit-flipped or version-skewed input
//! yields a structured [`FdbError::SnapshotCorrupt`] /
//! [`FdbError::SnapshotVersionMismatch`], never a panic and never a
//! silently-wrong arena.  [`decode_frep_unverified`] skips only the final
//! structural pass (checksums always run) and exists so the benchmark can
//! price the verification overhead.

use crate::frep::FRep;
use crate::store::{Store, UnionRec};
use fdb_common::{failpoint, AttrId, ExecCtx, FdbError, Result, Value};
use fdb_ftree::{DepEdge, FTree, NodeId, NodeSnapshot};
use std::collections::BTreeSet;

/// Magic number identifying a snapshot file (`"FDBS"` little-endian).
pub const SNAPSHOT_MAGIC: u32 = u32::from_le_bytes(*b"FDBS");

/// The snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Header `kind` of an f-representation snapshot.
pub const KIND_FREP: u32 = 1;

/// Header `kind` of a database manifest (see `fdb-core`'s orchestration).
pub const KIND_MANIFEST: u32 = 2;

const TAG_EDGE: u32 = u32::from_le_bytes(*b"EDGE");
const TAG_NODE: u32 = u32::from_le_bytes(*b"NODE");
const TAG_TRTS: u32 = u32::from_le_bytes(*b"TRTS");
const TAG_UNIO: u32 = u32::from_le_bytes(*b"UNIO");
const TAG_ENTR: u32 = u32::from_le_bytes(*b"ENTR");
const TAG_KIDS: u32 = u32::from_le_bytes(*b"KIDS");
const TAG_SRTS: u32 = u32::from_le_bytes(*b"SRTS");

/// The seven f-representation section tags, in their fixed file order.
const FREP_TAGS: [u32; 7] = [
    TAG_EDGE, TAG_NODE, TAG_TRTS, TAG_UNIO, TAG_ENTR, TAG_KIDS, TAG_SRTS,
];

fn corrupt(detail: impl Into<String>) -> FdbError {
    FdbError::SnapshotCorrupt {
        detail: detail.into(),
    }
}

/// FNV-1a, 64-bit: the offset basis and prime of the reference algorithm.
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &byte in *chunk {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

// ---------------------------------------------------------------------
// Section framing (shared with the fdb-core manifest)
// ---------------------------------------------------------------------

/// Appends the fixed header for a stream of `section_count` sections.
#[doc(hidden)]
pub fn write_header(out: &mut Vec<u8>, kind: u32, section_count: u32) {
    out.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&section_count.to_le_bytes());
}

/// Appends one framed section: tag, length prefix, payload, checksum.
#[doc(hidden)]
pub fn write_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    let tag_bytes = tag.to_le_bytes();
    let len_bytes = (payload.len() as u64).to_le_bytes();
    let checksum = fnv1a(&[&tag_bytes, &len_bytes, payload]);
    out.extend_from_slice(&tag_bytes);
    out.extend_from_slice(&len_bytes);
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum.to_le_bytes());
}

/// Verifies the header and returns `(kind, section_count, header_len)`.
fn read_header(bytes: &[u8]) -> Result<(u32, u32, usize)> {
    if bytes.len() < 16 {
        return Err(corrupt(format!(
            "file too short for a snapshot header: {} bytes",
            bytes.len()
        )));
    }
    let word = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
    if word(0) != SNAPSHOT_MAGIC {
        return Err(corrupt(format!(
            "bad magic number {:#010x}: not a snapshot file",
            word(0)
        )));
    }
    let version = word(4);
    if version != SNAPSHOT_VERSION {
        return Err(FdbError::SnapshotVersionMismatch {
            found: version,
            expected: SNAPSHOT_VERSION,
        });
    }
    Ok((word(8), word(12), 16))
}

/// Splits a verified snapshot stream into its sections, checking the
/// header's `kind`, every section's framing and checksum, and that no
/// trailing bytes follow the last section.  Returns `(tag, payload)` pairs.
#[doc(hidden)]
pub fn read_sections(bytes: &[u8], expected_kind: u32) -> Result<Vec<(u32, &[u8])>> {
    let (kind, section_count, header_len) = read_header(bytes)?;
    if kind != expected_kind {
        return Err(corrupt(format!(
            "wrong snapshot kind {kind} (expected {expected_kind})"
        )));
    }
    let mut sections = Vec::with_capacity(section_count.min(64) as usize);
    let mut pos = header_len;
    for i in 0..section_count {
        if bytes.len() - pos < 12 {
            return Err(corrupt(format!("section {i} framing truncated")));
        }
        let tag_bytes: [u8; 4] = bytes[pos..pos + 4].try_into().unwrap();
        let len_bytes: [u8; 8] = bytes[pos + 4..pos + 12].try_into().unwrap();
        let payload_len = u64::from_le_bytes(len_bytes);
        let payload_start = pos + 12;
        let payload_end = (payload_start as u64)
            .checked_add(payload_len)
            .map(|e| e as usize);
        let checksum_end = payload_end.and_then(|e| e.checked_add(8));
        let (payload_end, checksum_end) = match (payload_end, checksum_end) {
            (Some(p), Some(c)) if c <= bytes.len() => (p, c),
            _ => {
                return Err(corrupt(format!(
                    "section {i} runs past the end of the file (torn write?)"
                )))
            }
        };
        let payload = &bytes[payload_start..payload_end];
        let stored = u64::from_le_bytes(bytes[payload_end..checksum_end].try_into().unwrap());
        let computed = fnv1a(&[&tag_bytes, &len_bytes, payload]);
        if stored != computed {
            return Err(corrupt(format!(
                "section {i} ({}) checksum mismatch: stored {stored:#018x}, computed {computed:#018x}",
                tag_name(u32::from_le_bytes(tag_bytes))
            )));
        }
        sections.push((u32::from_le_bytes(tag_bytes), payload));
        pos = checksum_end;
    }
    if pos != bytes.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after the last section",
            bytes.len() - pos
        )));
    }
    Ok(sections)
}

/// The byte offsets of every section boundary of a well-framed snapshot:
/// the end of the header and the end of each section.  Exposed so the
/// recovery tests can truncate at exactly these boundaries.
#[doc(hidden)]
pub fn section_boundaries(bytes: &[u8]) -> Result<Vec<usize>> {
    let (_, section_count, header_len) = read_header(bytes)?;
    let mut boundaries = vec![header_len];
    let mut pos = header_len;
    for i in 0..section_count {
        if bytes.len() - pos < 12 {
            return Err(corrupt(format!("section {i} framing truncated")));
        }
        let payload_len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        pos = pos + 12 + payload_len + 8;
        if pos > bytes.len() {
            return Err(corrupt(format!(
                "section {i} runs past the end of the file"
            )));
        }
        boundaries.push(pos);
    }
    Ok(boundaries)
}

fn tag_name(tag: u32) -> String {
    let b = tag.to_le_bytes();
    if b.iter().all(|c| c.is_ascii_uppercase()) {
        String::from_utf8_lossy(&b).into_owned()
    } else {
        format!("{tag:#010x}")
    }
}

// ---------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_attr_set(out: &mut Vec<u8>, attrs: &BTreeSet<AttrId>) {
    put_u32(out, attrs.len() as u32);
    for a in attrs {
        put_u32(out, a.0);
    }
}

/// Sentinel for "no parent" in the node section (node slot counts are far
/// below `u32::MAX` in any realistic tree, and the structural validator
/// re-checks every id on load anyway).
const NO_PARENT: u32 = u32::MAX;

/// A bounds-checked little-endian reader over one section payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], section: &'static str) -> Self {
        Cursor {
            bytes,
            pos: 0,
            section,
        }
    }

    fn truncated(&self) -> FdbError {
        corrupt(format!("section {} payload truncated", self.section))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(self.truncated());
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn take_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn take_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a count prefix and guards it against the bytes actually
    /// remaining (`per` bytes per element), so a bogus count cannot trigger
    /// a huge allocation.
    fn take_count(&mut self, per: usize) -> Result<usize> {
        let count = self.take_u32()? as usize;
        if count.saturating_mul(per) > self.bytes.len() - self.pos {
            return Err(corrupt(format!(
                "section {} count {count} exceeds the payload",
                self.section
            )));
        }
        Ok(count)
    }

    fn take_attr_set(&mut self) -> Result<BTreeSet<AttrId>> {
        let count = self.take_count(4)?;
        let mut set = BTreeSet::new();
        for _ in 0..count {
            set.insert(AttrId(self.take_u32()?));
        }
        Ok(set)
    }

    fn finish(&self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(corrupt(format!(
                "section {} has {} trailing payload bytes",
                self.section,
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Section encoders/decoders
// ---------------------------------------------------------------------

fn encode_edges(edges: &[DepEdge]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, edges.len() as u32);
    for edge in edges {
        put_u32(&mut out, edge.label.len() as u32);
        out.extend_from_slice(edge.label.as_bytes());
        put_attr_set(&mut out, &edge.attrs);
        put_u64(&mut out, edge.cardinality);
    }
    out
}

fn decode_edges(payload: &[u8]) -> Result<Vec<DepEdge>> {
    let mut cur = Cursor::new(payload, "EDGE");
    let count = cur.take_count(4)?;
    let mut edges = Vec::with_capacity(count);
    for _ in 0..count {
        let label_len = cur.take_count(1)?;
        let label = String::from_utf8(cur.take(label_len)?.to_vec())
            .map_err(|_| corrupt("edge label is not valid UTF-8"))?;
        let attrs = cur.take_attr_set()?;
        let cardinality = cur.take_u64()?;
        edges.push(DepEdge::new(label, attrs, cardinality));
    }
    cur.finish()?;
    Ok(edges)
}

fn encode_nodes(slots: &[Option<NodeSnapshot>]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, slots.len() as u32);
    for slot in slots {
        match slot {
            None => out.push(0),
            Some(node) => {
                out.push(1);
                put_attr_set(&mut out, &node.class);
                put_u32(&mut out, node.parent.map_or(NO_PARENT, |p| p.0));
                put_u32(&mut out, node.children.len() as u32);
                for c in &node.children {
                    put_u32(&mut out, c.0);
                }
                put_attr_set(&mut out, &node.projected);
                match node.constant {
                    None => out.push(0),
                    Some(v) => {
                        out.push(1);
                        put_u64(&mut out, v.raw());
                    }
                }
            }
        }
    }
    out
}

fn decode_nodes(payload: &[u8]) -> Result<Vec<Option<NodeSnapshot>>> {
    let mut cur = Cursor::new(payload, "NODE");
    let count = cur.take_count(1)?;
    let mut slots = Vec::with_capacity(count);
    for _ in 0..count {
        match cur.take_u8()? {
            0 => slots.push(None),
            1 => {
                let class = cur.take_attr_set()?;
                let parent = match cur.take_u32()? {
                    NO_PARENT => None,
                    p => Some(NodeId(p)),
                };
                let child_count = cur.take_count(4)?;
                let mut children = Vec::with_capacity(child_count);
                for _ in 0..child_count {
                    children.push(NodeId(cur.take_u32()?));
                }
                let projected = cur.take_attr_set()?;
                let constant = match cur.take_u8()? {
                    0 => None,
                    1 => Some(Value::new(cur.take_u64()?)),
                    b => return Err(corrupt(format!("bad constant marker byte {b}"))),
                };
                slots.push(Some(NodeSnapshot {
                    class,
                    parent,
                    children,
                    projected,
                    constant,
                }));
            }
            b => return Err(corrupt(format!("bad node slot marker byte {b}"))),
        }
    }
    cur.finish()?;
    Ok(slots)
}

fn encode_u32_list(list: impl ExactSizeIterator<Item = u32>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + list.len() * 4);
    put_u32(&mut out, list.len() as u32);
    for v in list {
        put_u32(&mut out, v);
    }
    out
}

fn decode_u32_list(payload: &[u8], section: &'static str) -> Result<Vec<u32>> {
    let mut cur = Cursor::new(payload, section);
    let count = cur.take_count(4)?;
    let mut list = Vec::with_capacity(count);
    for _ in 0..count {
        list.push(cur.take_u32()?);
    }
    cur.finish()?;
    Ok(list)
}

fn encode_unions(unions: &[UnionRec]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + unions.len() * 12);
    put_u32(&mut out, unions.len() as u32);
    for rec in unions {
        put_u32(&mut out, rec.node.0);
        put_u32(&mut out, rec.entries_start);
        put_u32(&mut out, rec.entries_len);
    }
    out
}

fn decode_unions(payload: &[u8]) -> Result<Vec<UnionRec>> {
    let mut cur = Cursor::new(payload, "UNIO");
    let count = cur.take_count(12)?;
    let mut unions = Vec::with_capacity(count);
    for _ in 0..count {
        unions.push(UnionRec {
            node: NodeId(cur.take_u32()?),
            entries_start: cur.take_u32()?,
            entries_len: cur.take_u32()?,
        });
    }
    cur.finish()?;
    Ok(unions)
}

/// Encodes the entry records in the interleaved on-disk layout (one u64
/// value + u32 kid offset per record).  The in-memory arena keeps values and
/// kid offsets in parallel SoA arrays; zipping them here keeps the byte
/// format identical to what the old interleaved arena wrote, so snapshots
/// stay readable across the layout change in either direction.
fn encode_entries(store: &Store) -> Vec<u8> {
    let count = store.entry_count();
    let mut out = Vec::with_capacity(4 + count * 12);
    put_u32(&mut out, count as u32);
    for (value, kids_start) in store.entry_pairs() {
        put_u64(&mut out, value.raw());
        put_u32(&mut out, kids_start);
    }
    out
}

/// Decodes the interleaved ENTR section back into the SoA arrays.
fn decode_entries(payload: &[u8]) -> Result<(Vec<Value>, Vec<u32>)> {
    let mut cur = Cursor::new(payload, "ENTR");
    let count = cur.take_count(12)?;
    let mut values = Vec::with_capacity(count);
    let mut kids_starts = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(Value::new(cur.take_u64()?));
        kids_starts.push(cur.take_u32()?);
    }
    cur.finish()?;
    Ok((values, kids_starts))
}

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

/// Serialises a frozen f-representation into the snapshot byte format.
pub fn encode_frep(rep: &FRep) -> Vec<u8> {
    encode_frep_ctx(rep, &ExecCtx::unlimited()).expect("unlimited encode cannot fail")
}

/// [`encode_frep`] under a governance context: charges roughly one unit per
/// arena record and honours the `snapshot.write` failpoint.
pub fn encode_frep_ctx(rep: &FRep, ctx: &ExecCtx) -> Result<Vec<u8>> {
    failpoint!(ctx, "snapshot.write");
    let tree = rep.tree();
    let store = rep.store();
    ctx.charge((store.unions.len() + store.entry_count() + store.kids.len()) as u64)?;
    let mut out = Vec::new();
    write_header(&mut out, KIND_FREP, FREP_TAGS.len() as u32);
    write_section(&mut out, TAG_EDGE, &encode_edges(tree.edges()));
    write_section(&mut out, TAG_NODE, &encode_nodes(&tree.snapshot_nodes()));
    write_section(
        &mut out,
        TAG_TRTS,
        &encode_u32_list(tree.roots().iter().map(|r| r.0)),
    );
    write_section(&mut out, TAG_UNIO, &encode_unions(&store.unions));
    write_section(&mut out, TAG_ENTR, &encode_entries(store));
    write_section(
        &mut out,
        TAG_KIDS,
        &encode_u32_list(store.kids.iter().copied()),
    );
    write_section(
        &mut out,
        TAG_SRTS,
        &encode_u32_list(store.roots.iter().copied()),
    );
    Ok(out)
}

fn decode_frep_inner(bytes: &[u8], ctx: &ExecCtx, verify: bool) -> Result<FRep> {
    let sections = read_sections(bytes, KIND_FREP)?;
    if sections.len() != FREP_TAGS.len()
        || sections
            .iter()
            .map(|&(t, _)| t)
            .ne(FREP_TAGS.iter().copied())
    {
        let tags: Vec<String> = sections.iter().map(|&(t, _)| tag_name(t)).collect();
        return Err(corrupt(format!(
            "unexpected section layout [{}]",
            tags.join(", ")
        )));
    }
    let edges = decode_edges(sections[0].1)?;
    let nodes = decode_nodes(sections[1].1)?;
    let tree_roots: Vec<NodeId> = decode_u32_list(sections[2].1, "TRTS")?
        .into_iter()
        .map(NodeId)
        .collect();
    let (values, kids_starts) = decode_entries(sections[4].1)?;
    let store = Store::from_arena_parts(
        decode_unions(sections[3].1)?,
        values,
        kids_starts,
        decode_u32_list(sections[5].1, "KIDS")?,
        decode_u32_list(sections[6].1, "SRTS")?,
    );
    ctx.charge((store.unions.len() + store.entry_count() + store.kids.len()) as u64)?;
    let tree = FTree::from_snapshot(edges, nodes, tree_roots)
        .map_err(|e| corrupt(format!("f-tree validation failed on load: {e}")))?;
    let rep = FRep::from_store(tree, store);
    if verify {
        // The full structural validator is a mandatory load check — in
        // release builds too.  A snapshot that decodes but fails it was
        // written by (or corrupted into) something this engine must not
        // serve from.
        rep.validate()
            .map_err(|e| corrupt(format!("structural validation failed on load: {e}")))?;
    }
    Ok(rep)
}

/// Deserialises and **fully verifies** a snapshot: header, per-section
/// checksums, bounds of every decoded index, and the complete structural
/// validator.  Any failure is a structured error; nothing is loaded.
pub fn decode_frep(bytes: &[u8]) -> Result<FRep> {
    decode_frep_ctx(bytes, &ExecCtx::unlimited())
}

/// [`decode_frep`] under a governance context: charges roughly one unit per
/// arena record and honours the `snapshot.read` failpoint.
pub fn decode_frep_ctx(bytes: &[u8], ctx: &ExecCtx) -> Result<FRep> {
    failpoint!(ctx, "snapshot.read");
    decode_frep_inner(bytes, ctx, true)
}

/// Deserialises a snapshot with framing and checksum verification but
/// **without** the final structural validation pass.  Exists solely so the
/// benchmark can price load-with-verify against unverified load; production
/// paths must use [`decode_frep`].
#[doc(hidden)]
pub fn decode_frep_unverified(bytes: &[u8]) -> Result<FRep> {
    decode_frep_inner(bytes, &ExecCtx::unlimited(), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Entry, Union};
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// Example 3 of the paper, same fixture as the frep tests.
    fn example3() -> FRep {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 3)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        b,
                        vec![Entry::leaf(Value::new(1)), Entry::leaf(Value::new(2))],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![Entry::leaf(Value::new(2))])],
                },
            ],
        );
        FRep::from_parts(tree, vec![union]).unwrap()
    }

    #[test]
    fn round_trip_is_store_identical() {
        let rep = example3();
        let bytes = encode_frep(&rep);
        let loaded = decode_frep(&bytes).unwrap();
        assert!(loaded.store_identical(&rep));
        assert_eq!(loaded.tree().canonical_key(), rep.tree().canonical_key());
        assert_eq!(loaded.tree().edges(), rep.tree().edges());
        // Re-encoding the loaded representation is byte-identical.
        assert_eq!(encode_frep(&loaded), bytes);
    }

    #[test]
    fn round_trip_preserves_projections_constants_and_holes() {
        let mut rep = example3();
        // Selecting a constant marks a node; projecting away attribute 1
        // exercises the projected-attribute bookkeeping (and, if the leaf is
        // removed, a hole in the node slot vector).
        crate::ops::select_const(
            &mut rep,
            AttrId(0),
            fdb_common::ComparisonOp::Eq,
            Value::new(1),
        )
        .unwrap();
        let keep: BTreeSet<AttrId> = attrs(&[0]);
        crate::ops::project(&mut rep, &keep).unwrap();
        rep.validate().unwrap();
        let loaded = decode_frep(&encode_frep(&rep)).unwrap();
        assert!(loaded.store_identical(&rep));
        for id in rep.tree().node_ids() {
            assert_eq!(
                loaded.tree().projected_attrs(id),
                rep.tree().projected_attrs(id)
            );
            assert_eq!(loaded.tree().constant(id), rep.tree().constant(id));
            assert_eq!(loaded.tree().children(id), rep.tree().children(id));
        }
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let rep = example3();
        let bytes = encode_frep(&rep);
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            match decode_frep(&corrupted) {
                Ok(loaded) => panic!(
                    "flipping byte {i} went undetected (loaded {} unions)",
                    loaded.root_count()
                ),
                Err(FdbError::SnapshotCorrupt { .. })
                | Err(FdbError::SnapshotVersionMismatch { .. }) => {}
                Err(other) => panic!("flipping byte {i}: unstructured error {other:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let rep = example3();
        let bytes = encode_frep(&rep);
        for len in 0..bytes.len() {
            match decode_frep(&bytes[..len]) {
                Ok(_) => panic!("truncation to {len} bytes went undetected"),
                Err(FdbError::SnapshotCorrupt { .. })
                | Err(FdbError::SnapshotVersionMismatch { .. }) => {}
                Err(other) => panic!("truncation to {len}: unstructured error {other:?}"),
            }
        }
    }

    #[test]
    fn version_skew_is_a_structured_mismatch() {
        let rep = example3();
        let mut bytes = encode_frep(&rep);
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        match decode_frep(&bytes) {
            Err(FdbError::SnapshotVersionMismatch { found, expected }) => {
                assert_eq!(found, 99);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected a version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn section_boundaries_cover_the_whole_file() {
        let rep = example3();
        let bytes = encode_frep(&rep);
        let boundaries = section_boundaries(&bytes).unwrap();
        assert_eq!(boundaries.len(), 8); // header + 7 sections
        assert_eq!(*boundaries.last().unwrap(), bytes.len());
    }
}
