//! One-pass aggregation over factorised representations.
//!
//! Aggregates over a factorised representation cost one bottom-up pass over
//! the f-rep instead of a pass over the (possibly exponentially larger) flat
//! relation: `COUNT`, `SUM`, `MIN` and `MAX` compose along union and product
//! nodes (Bakibayev, Kočiský, Olteanu & Závodný, *Aggregation and Ordering
//! in Factorised Databases*, 2013).  This module evaluates
//!
//! * [`AggregateKind::Count`] — number of tuples of the represented relation,
//! * [`AggregateKind::Sum`]`(A)` — sum of attribute `A` over all tuples,
//! * [`AggregateKind::Min`]`(A)` / [`AggregateKind::Max`]`(A)`,
//! * [`AggregateKind::Avg`]`(A)` — exact `(sum, count)` pair,
//! * [`AggregateKind::CountDistinct`]`(A)` / [`AggregateKind::SumDistinct`]`(A)`
//!   / [`AggregateKind::AvgDistinct`]`(A)` — over the *set* of `A` values,
//!
//! each as a **single bottom-up pass** over the arena's topological index
//! order — the same shape as [`FRep::tuple_count`], with no recursion and no
//! per-node allocation beyond one accumulator per union.  Group-by
//! ([`aggregate_grouped`]) accepts any chain of attributes whose nodes form
//! a prefix of a root-to-leaf path of the f-tree: the pass descends the
//! chain, so groups are the value combinations along the path, emitted in
//! lexicographic (nested ascending) key order.  Grouping on attributes that
//! do *not* form such a chain is rejected here; the engine restructures the
//! tree first (or falls back to the flat oracle) — see `fdb-core`.
//!
//! The composition rules are those of a commutative semiring product:
//! a union adds its entries' accumulators (the entries represent disjoint
//! sub-relations) and an entry multiplies its value's contribution with its
//! child unions' accumulators (the children represent independent factors).
//! For independent factors `X × Y`:
//!
//! ```text
//! count(X × Y) = count(X) · count(Y)
//! sum_A(X × Y)  = sum_A(X) · count(Y) + sum_A(Y) · count(X)
//! min_A(X × Y)  = min_A(X) ∪ min_A(Y)      (A labels exactly one factor)
//! dist_A(X × Y) = dist_A(X) ∪ dist_A(Y)    (ditto; ∅ if either side is empty)
//! ```
//!
//! `DISTINCT` aggregates replace the count-weighted semiring with a sorted
//! value-set accumulator ([`DistinctAcc`]): unions take the sorted-merge
//! union of their entries' sets, products take the union of their factors'
//! sets (the target attribute labels exactly one factor) with empty-factor
//! annihilation.  Multiplicities never enter, so no wrapping arithmetic is
//! involved and `SUM(DISTINCT A)` is exact: at most `2^64` distinct 64-bit
//! values sum to less than `2^128`.
//!
//! # Numeric semantics
//!
//! The chosen semantics, relied upon by the oracle-backed equivalence suite:
//!
//! * **`COUNT` and `SUM` are computed in 128-bit wrapping (modular)
//!   arithmetic.**  A factorised representation can describe far more tuples
//!   than any machine integer holds (a product of `k` unions of `n` entries
//!   has `n^k` tuples), so both are defined modulo `2^128`: exact whenever
//!   the true value fits in a `u128` — in particular for every `tuple_count`
//!   that merely exceeds `u64` — and wrapping deterministically beyond.
//!   Because addition and multiplication modulo `2^128` form a commutative
//!   ring, the factorised evaluation, the overlay evaluation and a flat
//!   oracle that sums tuple-by-tuple with `wrapping_add` agree **bit for
//!   bit** even when they associate the operations differently.
//! * **`AVG` refuses to divide wrapped operands.**  A sticky overflow bit
//!   rides along the accumulator; `COUNT`/`SUM` keep their documented
//!   mod-`2^128` results, but an `AVG` whose sum or count wrapped would be
//!   silently wrong, so [`Acc::finish`] reports
//!   [`FdbError::AggregateOverflow`] instead of a plausible-looking mean.
//!   Dead branches (empty products) contribute zero and never taint the
//!   flag.
//! * **`AVG` of an empty group is `None`** ([`AggregateValue::Avg`] holds
//!   `Option<AvgValue>`); a non-empty group carries the exact wrapping
//!   `(sum, count)` pair so callers choose their own division
//!   ([`AvgValue::as_f64`] is the convenience form).
//! * **`MIN`/`MAX` of the empty relation are `None`**; over a union with a
//!   single entry both equal that entry's value.  Entries whose product is
//!   empty (some child union with no entries) contribute no tuples and are
//!   skipped, exactly as enumeration skips them.
//! * A liveness bit is tracked separately from the wrapping count, so
//!   `MIN`/`MAX`/`AVG`-emptiness stay exact even if a (pathological) true
//!   count is divisible by `2^128`.
//!
//! # Where this hooks into execution
//!
//! [`aggregate`] and [`aggregate_grouped`] read a frozen arena.  The fused
//! executor offers a second entry point,
//! [`crate::ops::execute_fused_aggregate`], that evaluates the same
//! aggregates directly on the fused overlay — an aggregate is one more
//! consumer of the overlay that never needs the final arena at all, so an
//! aggregate query pays zero final-arena emission.  `fdb-plan` routes a
//! plan's trailing structural segment through that entry point.

use crate::frep::FRep;
use crate::store::Store;
use fdb_common::limits::CHECK_INTERVAL;
use fdb_common::{failpoint, AttrId, ComparisonOp, ExecCtx, FdbError, Result, Value};
use fdb_ftree::{FTree, NodeId};

/// Which aggregate to evaluate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateKind {
    /// `COUNT(*)`: number of tuples (modulo `2^128`, see the module docs).
    Count,
    /// `SUM(A)`: sum of the attribute over all tuples (modulo `2^128`).
    Sum(AttrId),
    /// `MIN(A)`: smallest value of the attribute, `None` on empty input.
    Min(AttrId),
    /// `MAX(A)`: largest value of the attribute, `None` on empty input.
    Max(AttrId),
    /// `AVG(A)`: exact `(sum, count)` pair, `None` on empty input.
    Avg(AttrId),
    /// `COUNT(DISTINCT A)`: number of distinct values of the attribute.
    CountDistinct(AttrId),
    /// `SUM(DISTINCT A)`: exact sum of the distinct values of the attribute.
    SumDistinct(AttrId),
    /// `AVG(DISTINCT A)`: exact `(sum, count)` over the distinct values,
    /// `None` on empty input.
    AvgDistinct(AttrId),
}

impl AggregateKind {
    /// The attribute the aggregate ranges over (`None` for `COUNT`).
    pub fn attr(self) -> Option<AttrId> {
        match self {
            AggregateKind::Count => None,
            AggregateKind::Sum(a)
            | AggregateKind::Min(a)
            | AggregateKind::Max(a)
            | AggregateKind::Avg(a)
            | AggregateKind::CountDistinct(a)
            | AggregateKind::SumDistinct(a)
            | AggregateKind::AvgDistinct(a) => Some(a),
        }
    }

    /// Whether this aggregate ranges over the distinct value *set* (and is
    /// therefore evaluated with [`DistinctAcc`] instead of [`Acc`]).
    pub fn is_distinct(self) -> bool {
        matches!(
            self,
            AggregateKind::CountDistinct(_)
                | AggregateKind::SumDistinct(_)
                | AggregateKind::AvgDistinct(_)
        )
    }
}

impl std::fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregateKind::Count => write!(f, "COUNT(*)"),
            AggregateKind::Sum(a) => write!(f, "SUM({a})"),
            AggregateKind::Min(a) => write!(f, "MIN({a})"),
            AggregateKind::Max(a) => write!(f, "MAX({a})"),
            AggregateKind::Avg(a) => write!(f, "AVG({a})"),
            AggregateKind::CountDistinct(a) => write!(f, "COUNT(DISTINCT {a})"),
            AggregateKind::SumDistinct(a) => write!(f, "SUM(DISTINCT {a})"),
            AggregateKind::AvgDistinct(a) => write!(f, "AVG(DISTINCT {a})"),
        }
    }
}

/// The exact average: wrapping sum and count of a non-empty group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AvgValue {
    /// Sum of the attribute (modulo `2^128`).
    pub sum: u128,
    /// Number of tuples (modulo `2^128`).
    pub count: u128,
}

impl AvgValue {
    /// The average as a floating-point number (lossy for huge sums).
    pub fn as_f64(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }
}

/// The value of one evaluated aggregate (see the module docs for the
/// numeric semantics).  `DISTINCT` kinds reuse the plain variants:
/// `COUNT(DISTINCT A)` reports [`AggregateValue::Count`], and so on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateValue {
    /// Number of tuples, modulo `2^128`.
    Count(u128),
    /// Sum of the attribute, modulo `2^128` (0 on empty input).
    Sum(u128),
    /// Smallest attribute value, `None` on empty input.
    Min(Option<Value>),
    /// Largest attribute value, `None` on empty input.
    Max(Option<Value>),
    /// Exact `(sum, count)`, `None` on empty input.
    Avg(Option<AvgValue>),
}

/// An aggregate evaluation result: a scalar, or one row per group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AggregateResult {
    /// Ungrouped aggregate.
    Scalar(AggregateValue),
    /// Grouped aggregate: `(group key, aggregate)` rows, one key value per
    /// group-by attribute in the requested attribute order, sorted
    /// lexicographically ascending by key; groups without tuples are
    /// omitted (as a flat `GROUP BY` over the enumerated tuples would omit
    /// them).
    Groups(Vec<(Vec<Value>, AggregateValue)>),
}

impl AggregateResult {
    /// The scalar value, if this is an ungrouped result.
    pub fn as_scalar(&self) -> Option<AggregateValue> {
        match self {
            AggregateResult::Scalar(v) => Some(*v),
            AggregateResult::Groups(_) => None,
        }
    }
}

/// The algebra an aggregation pass folds with.  Two implementations: the
/// count-weighted semiring [`Acc`] (COUNT/SUM/MIN/MAX/AVG) and the sorted
/// value-set algebra [`DistinctAcc`] (the `DISTINCT` kinds).  Every walk in
/// this module and in the fused overlay is generic over this trait, so the
/// two algebras cannot drift structurally.
pub(crate) trait Accumulator: Clone {
    /// The accumulator of a union with no entries (identity of `add`).
    fn none() -> Self;
    /// The accumulator of the nullary relation `{⟨⟩}` (identity of
    /// `product`).
    fn one() -> Self;
    /// The accumulator of a single singleton `⟨A:v⟩`; `carries_attr` says
    /// whether the singleton's node carries the target attribute.
    fn singleton(value: Value, carries_attr: bool) -> Self;
    /// Combines the accumulators of two *independent* factors (a product).
    fn product(self, other: Self) -> Self;
    /// Combines the accumulators of two *disjoint* sub-relations (entries
    /// of one union).
    fn add(self, other: Self) -> Self;
    /// Whether the accumulated sub-relation has no tuples (exact, not the
    /// wrapping count).
    fn is_empty(&self) -> bool;
    /// Projects the requested aggregate out of the accumulator.  Fallible:
    /// the `AVG` path refuses wrapped operands (see the module docs).
    fn finish(self, kind: AggregateKind) -> Result<AggregateValue>;
}

/// The per-union accumulator of the count-weighted semiring: every
/// non-`DISTINCT` aggregate kind is computed from the same components, so
/// one pass serves them all (and the overlay walk in `ops::fuse` reuses it
/// unchanged).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Acc {
    /// Number of tuples, modulo `2^128`.
    pub(crate) count: u128,
    /// Sum of the target attribute over the tuples, modulo `2^128`.
    pub(crate) sum: u128,
    /// Smallest target-attribute value among the tuples.
    pub(crate) min: Option<Value>,
    /// Largest target-attribute value among the tuples.
    pub(crate) max: Option<Value>,
    /// Exact emptiness, independent of the wrapping count.
    pub(crate) empty: bool,
    /// Sticky wrap indicator: some `count`/`sum` operation on a *live*
    /// branch overflowed 128 bits.  Invariant: `empty ⟹ !overflow` (a dead
    /// branch contributes exact zeros, so its history is irrelevant).
    pub(crate) overflow: bool,
}

impl Accumulator for Acc {
    fn none() -> Acc {
        Acc {
            count: 0,
            sum: 0,
            min: None,
            max: None,
            empty: true,
            overflow: false,
        }
    }

    fn one() -> Acc {
        Acc {
            count: 1,
            sum: 0,
            min: None,
            max: None,
            empty: false,
            overflow: false,
        }
    }

    fn singleton(value: Value, carries_attr: bool) -> Acc {
        Acc {
            count: 1,
            sum: if carries_attr { value.raw() as u128 } else { 0 },
            min: carries_attr.then_some(value),
            max: carries_attr.then_some(value),
            empty: false,
            overflow: false,
        }
    }

    /// The target attribute labels at most one of the two factors, so at
    /// most one `min`/`max` side is `Some`.
    fn product(self, other: Acc) -> Acc {
        let empty = self.empty || other.empty;
        let (count, oc) = self.count.overflowing_mul(other.count);
        let (lhs, ol) = self.sum.overflowing_mul(other.count);
        let (rhs, or_) = other.sum.overflowing_mul(self.count);
        let (sum, os) = lhs.overflowing_add(rhs);
        Acc {
            count,
            sum,
            // At most one side ranges over the target attribute; an empty
            // factor annihilates the whole product.
            min: if empty { None } else { self.min.or(other.min) },
            max: if empty { None } else { self.max.or(other.max) },
            empty,
            // An empty factor has count = sum = 0, so none of the four
            // operations above can wrap on a dead product: clearing the
            // flag keeps the `empty ⟹ !overflow` invariant without losing
            // a live wrap.
            overflow: !empty && (self.overflow || other.overflow || oc || ol || or_ || os),
        }
    }

    fn add(self, other: Acc) -> Acc {
        fn fold(a: Option<Value>, b: Option<Value>, min: bool) -> Option<Value> {
            match (a, b) {
                (Some(x), Some(y)) => Some(if min { x.min(y) } else { x.max(y) }),
                (x, y) => x.or(y),
            }
        }
        let (count, oc) = self.count.overflowing_add(other.count);
        let (sum, os) = self.sum.overflowing_add(other.sum);
        Acc {
            count,
            sum,
            min: fold(self.min, other.min, true),
            max: fold(self.max, other.max, false),
            empty: self.empty && other.empty,
            overflow: self.overflow || other.overflow || oc || os,
        }
    }

    fn is_empty(&self) -> bool {
        self.empty
    }

    fn finish(self, kind: AggregateKind) -> Result<AggregateValue> {
        match kind {
            AggregateKind::Count => Ok(AggregateValue::Count(if self.empty {
                0
            } else {
                self.count
            })),
            AggregateKind::Sum(_) => Ok(AggregateValue::Sum(if self.empty { 0 } else { self.sum })),
            AggregateKind::Min(_) => Ok(AggregateValue::Min(self.min)),
            AggregateKind::Max(_) => Ok(AggregateValue::Max(self.max)),
            AggregateKind::Avg(_) => {
                if self.overflow && !self.empty {
                    return Err(FdbError::AggregateOverflow {
                        detail: format!("{kind}: 128-bit sum or count wrapped"),
                    });
                }
                Ok(AggregateValue::Avg((!self.empty).then_some(AvgValue {
                    sum: self.sum,
                    count: self.count,
                })))
            }
            AggregateKind::CountDistinct(_)
            | AggregateKind::SumDistinct(_)
            | AggregateKind::AvgDistinct(_) => {
                unreachable!("DISTINCT kinds are dispatched to DistinctAcc")
            }
        }
    }
}

/// The sorted value-set accumulator behind the `DISTINCT` aggregate kinds:
/// tracks the set of target-attribute values among the represented tuples
/// (and the exact emptiness of the sub-relation), ignoring multiplicities
/// entirely.  Unions and products both merge the sorted sets; an empty
/// factor annihilates a product's set exactly as it zeroes a count.
#[derive(Clone, Debug)]
pub(crate) struct DistinctAcc {
    /// Distinct target-attribute values, sorted ascending, no duplicates.
    /// Invariant: `empty ⟹ values.is_empty()`.
    values: Vec<Value>,
    /// Exact emptiness of the accumulated sub-relation.
    empty: bool,
}

/// Sorted-merge union of two sorted deduplicated value runs.
fn merge_distinct(a: &[Value], b: &[Value]) -> Vec<Value> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl Accumulator for DistinctAcc {
    fn none() -> DistinctAcc {
        DistinctAcc {
            values: Vec::new(),
            empty: true,
        }
    }

    fn one() -> DistinctAcc {
        DistinctAcc {
            values: Vec::new(),
            empty: false,
        }
    }

    fn singleton(value: Value, carries_attr: bool) -> DistinctAcc {
        DistinctAcc {
            values: if carries_attr {
                vec![value]
            } else {
                Vec::new()
            },
            empty: false,
        }
    }

    fn product(self, other: DistinctAcc) -> DistinctAcc {
        let empty = self.empty || other.empty;
        DistinctAcc {
            // The target attribute labels exactly one factor, but the
            // general sorted merge is correct (and cheap) either way; an
            // empty factor annihilates: no tuples, hence no values.
            values: if empty {
                Vec::new()
            } else {
                merge_distinct(&self.values, &other.values)
            },
            empty,
        }
    }

    fn add(self, other: DistinctAcc) -> DistinctAcc {
        DistinctAcc {
            values: merge_distinct(&self.values, &other.values),
            empty: self.empty && other.empty,
        }
    }

    fn is_empty(&self) -> bool {
        self.empty
    }

    fn finish(self, kind: AggregateKind) -> Result<AggregateValue> {
        // At most 2^64 distinct 64-bit values, each below 2^64: the exact
        // sum stays below 2^128, so no wrapping is possible here.
        let sum = || self.values.iter().fold(0u128, |s, v| s + v.raw() as u128);
        match kind {
            AggregateKind::CountDistinct(_) => Ok(AggregateValue::Count(self.values.len() as u128)),
            AggregateKind::SumDistinct(_) => Ok(AggregateValue::Sum(sum())),
            AggregateKind::AvgDistinct(_) => {
                Ok(AggregateValue::Avg((!self.values.is_empty()).then(|| {
                    AvgValue {
                        sum: sum(),
                        count: self.values.len() as u128,
                    }
                })))
            }
            _ => unreachable!("non-DISTINCT kinds are dispatched to Acc"),
        }
    }
}

/// Resolved target of an aggregate on a concrete f-tree: the node whose
/// entry values feed the aggregate (`None` for `COUNT`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct AggTarget {
    pub(crate) node: Option<NodeId>,
}

impl AggTarget {
    /// Resolves and validates the aggregate's attribute against the tree:
    /// the attribute must exist in the tree and be visible (not projected
    /// away).
    pub(crate) fn resolve(tree: &FTree, kind: AggregateKind) -> Result<AggTarget> {
        let Some(attr) = kind.attr() else {
            return Ok(AggTarget { node: None });
        };
        let Some(node) = tree.node_of_attr(attr) else {
            return Err(FdbError::AttributeNotInQuery {
                attr: format!("{attr}"),
            });
        };
        if !tree.visible_attrs(node).contains(&attr) {
            return Err(FdbError::InvalidOperator {
                detail: format!("aggregate over projected-away attribute {attr}"),
            });
        }
        Ok(AggTarget { node: Some(node) })
    }

    /// Whether entry values of a union over `node` feed the aggregate.
    #[inline]
    pub(crate) fn carried_by(self, node: NodeId) -> bool {
        self.node == Some(node)
    }
}

/// A group-by attribute chain resolved against a concrete f-tree: the nodes
/// of the attributes form a prefix of a root-to-leaf path.
#[derive(Clone, Debug)]
pub(crate) struct GroupPath {
    /// The distinct nodes along the chain, outermost (a root) first; each
    /// subsequent node is a child of its predecessor.
    pub(crate) path: Vec<NodeId>,
    /// For each requested group-by attribute (in request order), the index
    /// into `path` of the node that carries it — attributes of one class
    /// share a slot.
    pub(crate) key_slots: Vec<usize>,
}

/// Resolves a group-by attribute chain: every attribute must be visible,
/// the first attribute's node must be a **root** of the f-tree, and each
/// subsequent attribute's node must be the same node as (class sibling) or
/// a child of the previous one.  Chains that do not satisfy this are
/// rejected with [`FdbError::InvalidOperator`]; the engine reacts by
/// restructuring the f-tree so they do (or falling back to enumeration).
pub(crate) fn resolve_group_path(tree: &FTree, group_by: &[AttrId]) -> Result<GroupPath> {
    let mut path: Vec<NodeId> = Vec::new();
    let mut key_slots = Vec::with_capacity(group_by.len());
    for &attr in group_by {
        let Some(node) = tree.node_of_attr(attr) else {
            return Err(FdbError::AttributeNotInQuery {
                attr: format!("{attr}"),
            });
        };
        if !tree.visible_attrs(node).contains(&attr) {
            return Err(FdbError::InvalidOperator {
                detail: format!("group-by over projected-away attribute {attr}"),
            });
        }
        match path.last() {
            None => {
                if tree.parent(node).is_some() {
                    return Err(FdbError::InvalidOperator {
                        detail: format!(
                            "group-by attribute {attr} labels non-root node {node}; \
                             the group-by chain must start at a root"
                        ),
                    });
                }
                path.push(node);
            }
            Some(&prev) if prev == node => {}
            Some(&prev) => {
                if tree.parent(node) != Some(prev) {
                    return Err(FdbError::InvalidOperator {
                        detail: format!(
                            "group-by attribute {attr} (node {node}) does not extend the \
                             root path chain ending at node {prev}"
                        ),
                    });
                }
                path.push(node);
            }
        }
        key_slots.push(path.len() - 1);
    }
    Ok(GroupPath { path, key_slots })
}

/// A conjunction of constant-selection predicates folded into an aggregate
/// fold instead of executed as selection passes: an entry of a union over
/// `node` participates iff every predicate on `node` accepts its value.
/// Filtering is exact with respect to select-then-prune semantics — a
/// filtered-out entry, like an entry whose product is empty, contributes
/// the additive identity to its union's accumulator, so `COUNT`/`SUM` skip
/// it and `MIN`/`MAX`/`AVG` emptiness stays exact.
#[derive(Clone, Debug, Default)]
pub(crate) struct AggFilter {
    preds: Vec<(NodeId, ComparisonOp, Value)>,
}

impl AggFilter {
    /// Adds the predicate `node θ value`.
    pub(crate) fn push(&mut self, node: NodeId, op: ComparisonOp, value: Value) {
        self.preds.push((node, op, value));
    }

    /// Whether an entry with the given value of a union over `node` passes
    /// every predicate.
    #[inline]
    pub(crate) fn passes(&self, node: NodeId, value: Value) -> bool {
        self.preds
            .iter()
            .all(|&(n, op, c)| n != node || op.eval(value, c))
    }
}

/// Accessor surface the shared aggregation scaffold walks — implemented by
/// the frozen arena ([`ArenaSource`]) and by the fused overlay (in
/// [`crate::ops::fuse`]).  `acc_of` yields the accumulator of a whole
/// (virtual) union; how it is produced — a precomputed flat pass or a
/// memoized recursive walk — is the implementor's business.  A source with
/// a non-trivial [`AggFilter`] must skip filtered-out entries in `acc_of`
/// itself; the scaffold applies the filter only to the group-path unions,
/// whose entries it folds directly.
pub(crate) trait AggSource<A: Accumulator> {
    /// A (virtual) union reference.
    type Id: Copy + PartialEq;
    /// The root unions, in root-list order.
    fn roots(&self) -> Vec<Self::Id>;
    /// The f-tree node a union ranges over.
    fn node_of(&self, v: Self::Id) -> NodeId;
    /// Number of entries.
    fn len(&self, v: Self::Id) -> u32;
    /// The `i`-th value (entries are sorted increasing).
    fn value(&self, v: Self::Id, i: u32) -> Value;
    /// Number of kid slots per entry.
    fn kid_count(&self, v: Self::Id) -> u32;
    /// The child reference of entry `i` at kid position `k`.
    fn kid(&self, v: Self::Id, i: u32, k: u32) -> Self::Id;
    /// The accumulator of the whole union.  Fallible so a source that folds
    /// lazily (the overlay walk) can observe the governance context and
    /// abort mid-fold; the precomputed arena source never errs.
    fn acc_of(&mut self, v: Self::Id, target: AggTarget) -> Result<A>;
}

/// The recursive group-path descent behind grouped evaluation: walks the
/// union over `path[depth]`, extending the group key with each live entry's
/// value.  `prefix` carries the product of everything independent of the
/// remaining path suffix: the ancestor singletons, their off-path children,
/// and the other root unions.  Because each union's entries are sorted
/// ascending and the recursion nests in path order, rows come out in
/// lexicographic ascending key order — the same order a `BTreeMap` keyed by
/// the key vector produces.
#[allow(clippy::too_many_arguments)]
fn grouped_descend<A: Accumulator, S: AggSource<A>>(
    src: &mut S,
    gp: &GroupPath,
    depth: usize,
    u: S::Id,
    prefix: &A,
    target: AggTarget,
    kind: AggregateKind,
    filter: &AggFilter,
    key: &mut Vec<Value>,
    rows: &mut Vec<(Vec<Value>, AggregateValue)>,
    ctx: &ExecCtx,
) -> Result<()> {
    let node = gp.path[depth];
    let len = src.len(u);
    ctx.charge(1 + len as u64)?;
    if len == 0 {
        return Ok(());
    }
    let kid_count = src.kid_count(u);
    // Which kid slot continues the chain (fixed per union: every entry's
    // kid at a slot ranges over the same child node).
    let next_slot = if depth + 1 < gp.path.len() {
        let want = gp.path[depth + 1];
        let slot = (0..kid_count).find(|&k| src.node_of(src.kid(u, 0, k)) == want);
        match slot {
            Some(k) => Some(k),
            None => {
                return Err(FdbError::MalformedRepresentation {
                    detail: format!("no child union over node {want} under node {node}"),
                })
            }
        }
    } else {
        None
    };
    for i in 0..len {
        let value = src.value(u, i);
        // The scaffold folds the group-path entries itself, so the folded
        // trailing selections apply here too: a filtered-out group is
        // omitted exactly like a group whose product is empty.
        if !filter.passes(node, value) {
            continue;
        }
        let mut acc = prefix
            .clone()
            .product(A::singleton(value, target.carried_by(node)));
        for k in 0..kid_count {
            if Some(k) == next_slot {
                continue;
            }
            acc = acc.product(src.acc_of(src.kid(u, i, k), target)?);
        }
        if acc.is_empty() {
            // A dead off-path factor annihilates every tuple below this
            // entry: no group under it can surface.
            continue;
        }
        key[depth] = value;
        match next_slot {
            None => rows.push((
                gp.key_slots.iter().map(|&s| key[s]).collect(),
                acc.finish(kind)?,
            )),
            Some(k) => grouped_descend(
                src,
                gp,
                depth + 1,
                src.kid(u, i, k),
                &acc,
                target,
                kind,
                filter,
                key,
                rows,
                ctx,
            )?,
        }
    }
    Ok(())
}

/// The shared evaluation scaffold over any [`AggSource`] — the one place
/// that implements the aggregate semantics on top of the accumulators, so
/// the arena pass and the overlay pass cannot drift apart:
///
/// * scalar: the product of the root accumulators;
/// * grouped: one row per live combination of group-path values (see
///   [`grouped_descend`]), each multiplied with the product of the *other*
///   roots and the off-path factors, rows whose product is empty omitted.
pub(crate) fn evaluate_source<A: Accumulator, S: AggSource<A>>(
    src: &mut S,
    tree: &FTree,
    kind: AggregateKind,
    group_by: &[AttrId],
    filter: &AggFilter,
    ctx: &ExecCtx,
) -> Result<AggregateResult> {
    let target = AggTarget::resolve(tree, kind)?;
    let roots = src.roots();
    if group_by.is_empty() {
        let mut total = A::one();
        for &r in &roots {
            total = total.product(src.acc_of(r, target)?);
        }
        return Ok(AggregateResult::Scalar(total.finish(kind)?));
    }
    let gp = resolve_group_path(tree, group_by)?;
    let group_root = roots
        .iter()
        .copied()
        .find(|&r| src.node_of(r) == gp.path[0])
        .expect("validated representation: one root union per root node");
    // The independent context: the product of every other root union.
    let mut context = A::one();
    for &r in &roots {
        if r != group_root {
            context = context.product(src.acc_of(r, target)?);
        }
    }
    let mut key = vec![Value::new(0); gp.path.len()];
    let mut rows = Vec::new();
    grouped_descend(
        src, &gp, 0, group_root, &context, target, kind, filter, &mut key, &mut rows, ctx,
    )?;
    Ok(AggregateResult::Groups(rows))
}

/// The frozen arena as an aggregation source: accumulators come from one
/// flat reverse loop over the union arena ([`union_accs`]), everything else
/// is a plain arena read.
struct ArenaSource<'a, A> {
    store: &'a Store,
    kid_counts: Vec<u32>,
    accs: Vec<A>,
}

impl<A: Accumulator> AggSource<A> for ArenaSource<'_, A> {
    type Id = u32;

    fn roots(&self) -> Vec<u32> {
        self.store.roots.clone()
    }

    fn node_of(&self, v: u32) -> NodeId {
        self.store.unions[v as usize].node
    }

    fn len(&self, v: u32) -> u32 {
        self.store.union_len(v)
    }

    fn value(&self, v: u32, i: u32) -> Value {
        self.store.value_slice(v)[i as usize]
    }

    fn kid_count(&self, v: u32) -> u32 {
        self.kid_counts[self.store.unions[v as usize].node.index()]
    }

    fn kid(&self, v: u32, i: u32, k: u32) -> u32 {
        self.store.kid(v, i, k)
    }

    fn acc_of(&mut self, v: u32, _target: AggTarget) -> Result<A> {
        Ok(self.accs[v as usize].clone())
    }
}

/// The single flat reverse loop: one accumulator per union, children before
/// parents thanks to the arena's topological index order — the exact shape
/// of [`FRep::tuple_count`].
fn union_accs<A: Accumulator>(
    store: &Store,
    kid_counts: &[u32],
    target: AggTarget,
    ctx: &ExecCtx,
) -> Result<Vec<A>> {
    let mut accs = vec![A::none(); store.unions.len()];
    // Batch the per-union charges up to the context's own check interval:
    // the fold body is a handful of adds per record, so charging record by
    // record would dominate it, while one flush per interval keeps the
    // same cooperative granularity at negligible cost.
    let mut pending = 0u64;
    for uid in (0..store.unions.len()).rev() {
        let rec = store.unions[uid];
        pending += 1 + rec.entries_len as u64;
        if pending >= CHECK_INTERVAL {
            ctx.charge(pending)?;
            pending = 0;
        }
        let carries = target.carried_by(rec.node);
        let kid_count = kid_counts[rec.node.index()] as usize;
        let mut total = A::none();
        for e in rec.entries_start..rec.entries_start + rec.entries_len {
            let mut acc = A::singleton(store.value_at(e), carries);
            let kids_start = store.kids_start_at(e) as usize;
            for k in 0..kid_count {
                acc = acc.product(accs[store.kids[kids_start + k] as usize].clone());
            }
            total = total.add(acc);
        }
        accs[uid] = total;
    }
    ctx.charge(pending)?;
    Ok(accs)
}

/// [`evaluate_ctx`] monomorphised over one accumulator algebra.
fn evaluate_typed<A: Accumulator>(
    rep: &FRep,
    kind: AggregateKind,
    group_by: &[AttrId],
    ctx: &ExecCtx,
) -> Result<AggregateResult> {
    let target = AggTarget::resolve(rep.tree(), kind)?;
    let kid_counts = crate::store::kid_count_table(rep.tree());
    let accs = union_accs::<A>(rep.store(), &kid_counts, target, ctx)?;
    let mut src = ArenaSource {
        store: rep.store(),
        kid_counts,
        accs,
    };
    evaluate_source(
        &mut src,
        rep.tree(),
        kind,
        group_by,
        &AggFilter::default(),
        ctx,
    )
}

/// Evaluates an aggregate (optionally grouped by a root-path attribute
/// chain) over the representation in one flat bottom-up pass over the
/// arena.  See the module docs for the numeric semantics.
pub fn evaluate(rep: &FRep, kind: AggregateKind, group_by: &[AttrId]) -> Result<AggregateResult> {
    evaluate_ctx(rep, kind, group_by, &ExecCtx::unlimited())
}

/// [`evaluate`] under a governance context: the flat bottom-up pass charges
/// one unit per union record, so a deadline, budget or cancellation flag
/// interrupts the fold between unions with no partial state (the aggregate
/// never mutates the representation).
pub fn evaluate_ctx(
    rep: &FRep,
    kind: AggregateKind,
    group_by: &[AttrId],
    ctx: &ExecCtx,
) -> Result<AggregateResult> {
    failpoint!(ctx, "aggregate.fold");
    if kind.is_distinct() {
        evaluate_typed::<DistinctAcc>(rep, kind, group_by, ctx)
    } else {
        evaluate_typed::<Acc>(rep, kind, group_by, ctx)
    }
}

/// Evaluates an ungrouped aggregate — [`evaluate`] with no group-by.
pub fn aggregate(rep: &FRep, kind: AggregateKind) -> Result<AggregateValue> {
    match evaluate(rep, kind, &[])? {
        AggregateResult::Scalar(v) => Ok(v),
        AggregateResult::Groups(_) => unreachable!("ungrouped evaluation returns a scalar"),
    }
}

/// Evaluates an aggregate grouped by a root-path attribute chain: one
/// output row per live combination of the chain's values (lexicographic
/// ascending key order), each aggregated over the matching tuples.  Groups
/// without tuples are omitted.  [`evaluate`] with a non-empty group-by.
pub fn aggregate_grouped(
    rep: &FRep,
    kind: AggregateKind,
    group_by: &[AttrId],
) -> Result<Vec<(Vec<Value>, AggregateValue)>> {
    match evaluate(rep, kind, group_by)? {
        AggregateResult::Groups(rows) => Ok(rows),
        AggregateResult::Scalar(_) => unreachable!("grouped evaluation returns rows"),
    }
}

/// The materialise-then-aggregate reference evaluator: enumerates the
/// represented relation tuple by tuple with the constant-delay cursor and
/// folds the aggregate with plain collections — the plan a flat engine
/// would run.  Same wrapping 128-bit arithmetic as the one-pass evaluators
/// (and a `BTreeSet` per group for the `DISTINCT` kinds), so the results
/// agree bit for bit; the equivalence tests use it as the flat oracle and
/// the benchmarks as the timed baseline.  Unlike [`evaluate`], grouping
/// works on *any* visible attribute set in any order (the oracle pays the
/// flat enumeration anyway), and groups come out sorted ascending by key
/// vector with empty groups absent, matching [`aggregate_grouped`] whenever
/// the requested chain is evaluable there.
pub fn by_enumeration(
    rep: &FRep,
    kind: AggregateKind,
    group_by: &[AttrId],
) -> Result<AggregateResult> {
    use std::collections::{BTreeMap, BTreeSet};
    let visible = rep.visible_attrs();
    let col_of = |attr: AttrId| {
        visible
            .binary_search(&attr)
            .map_err(|_| FdbError::AttributeNotInQuery {
                attr: format!("{attr}"),
            })
    };
    let col = match kind.attr() {
        Some(attr) => Some(col_of(attr)?),
        None => None,
    };
    let gcols = group_by
        .iter()
        .map(|&g| col_of(g))
        .collect::<Result<Vec<_>>>()?;
    if kind.is_distinct() {
        // The hash-set oracle: one value set per group plus an exact
        // liveness bit (an empty relation has no groups anyway, but the
        // scalar case needs to distinguish "no tuples" for AVG).
        let dcol = col.expect("DISTINCT kinds always carry an attribute");
        let mut groups: BTreeMap<Vec<Value>, BTreeSet<Value>> = BTreeMap::new();
        crate::enumerate::for_each_tuple(rep, |t| {
            groups
                .entry(gcols.iter().map(|&c| t[c]).collect())
                .or_default()
                .insert(t[dcol]);
        });
        let finish = |set: BTreeSet<Value>| {
            DistinctAcc {
                values: set.into_iter().collect(),
                empty: false,
            }
            .finish(kind)
        };
        if group_by.is_empty() {
            let set = groups.into_values().next().unwrap_or_default();
            return Ok(AggregateResult::Scalar(finish(set)?));
        }
        return Ok(AggregateResult::Groups(
            groups
                .into_iter()
                .map(|(k, set)| Ok((k, finish(set)?)))
                .collect::<Result<Vec<_>>>()?,
        ));
    }
    let fold = |acc: &mut Acc, t: &[Value]| {
        let singleton = match col {
            Some(c) => Acc::singleton(t[c], true),
            None => Acc::one(),
        };
        *acc = acc.add(singleton);
    };
    if group_by.is_empty() {
        let mut acc = Acc::none();
        crate::enumerate::for_each_tuple(rep, |t| fold(&mut acc, t));
        return Ok(AggregateResult::Scalar(acc.finish(kind)?));
    }
    let mut groups: BTreeMap<Vec<Value>, Acc> = BTreeMap::new();
    crate::enumerate::for_each_tuple(rep, |t| {
        fold(
            groups
                .entry(gcols.iter().map(|&c| t[c]).collect())
                .or_insert_with(Acc::none),
            t,
        );
    });
    Ok(AggregateResult::Groups(
        groups
            .into_iter()
            .map(|(g, acc)| Ok((g, acc.finish(kind)?)))
            .collect::<Result<Vec<_>>>()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Entry, Union};
    use fdb_ftree::DepEdge;
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    fn key(vs: &[u64]) -> Vec<Value> {
        vs.iter().map(|&v| Value::new(v)).collect()
    }

    /// Example 3 of the paper: ⟨A:1⟩×(⟨B:1⟩ ∪ ⟨B:2⟩) ∪ ⟨A:2⟩×⟨B:2⟩,
    /// tuples {(1,1), (1,2), (2,2)}.
    fn example3() -> FRep {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 3)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        b,
                        vec![Entry::leaf(Value::new(1)), Entry::leaf(Value::new(2))],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![Entry::leaf(Value::new(2))])],
                },
            ],
        );
        FRep::from_parts(tree, vec![union]).unwrap()
    }

    #[test]
    fn example3_aggregates() {
        let rep = example3();
        assert_eq!(
            aggregate(&rep, AggregateKind::Count).unwrap(),
            AggregateValue::Count(3)
        );
        // A over {1, 1, 2}; B over {1, 2, 2}.
        assert_eq!(
            aggregate(&rep, AggregateKind::Sum(AttrId(0))).unwrap(),
            AggregateValue::Sum(4)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Sum(AttrId(1))).unwrap(),
            AggregateValue::Sum(5)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Min(AttrId(1))).unwrap(),
            AggregateValue::Min(Some(Value::new(1)))
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Max(AttrId(0))).unwrap(),
            AggregateValue::Max(Some(Value::new(2)))
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Avg(AttrId(1))).unwrap(),
            AggregateValue::Avg(Some(AvgValue { sum: 5, count: 3 }))
        );
    }

    #[test]
    fn example3_distinct_aggregates() {
        let rep = example3();
        // Distinct A values {1, 2}; distinct B values {1, 2}.
        assert_eq!(
            aggregate(&rep, AggregateKind::CountDistinct(AttrId(1))).unwrap(),
            AggregateValue::Count(2)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::SumDistinct(AttrId(1))).unwrap(),
            AggregateValue::Sum(3)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::AvgDistinct(AttrId(0))).unwrap(),
            AggregateValue::Avg(Some(AvgValue { sum: 3, count: 2 }))
        );
        // The flat hash-set oracle agrees bit for bit.
        for kind in [
            AggregateKind::CountDistinct(AttrId(0)),
            AggregateKind::SumDistinct(AttrId(1)),
            AggregateKind::AvgDistinct(AttrId(1)),
        ] {
            assert_eq!(
                evaluate(&rep, kind, &[]).unwrap(),
                by_enumeration(&rep, kind, &[]).unwrap()
            );
        }
    }

    #[test]
    fn example3_grouped_by_root() {
        let rep = example3();
        let rows = aggregate_grouped(&rep, AggregateKind::Count, &[AttrId(0)]).unwrap();
        assert_eq!(
            rows,
            vec![
                (key(&[1]), AggregateValue::Count(2)),
                (key(&[2]), AggregateValue::Count(1)),
            ]
        );
        let rows = aggregate_grouped(&rep, AggregateKind::Sum(AttrId(1)), &[AttrId(0)]).unwrap();
        assert_eq!(
            rows,
            vec![
                (key(&[1]), AggregateValue::Sum(3)),
                (key(&[2]), AggregateValue::Sum(2)),
            ]
        );
        // Grouping by a non-root attribute alone is rejected: the chain
        // must start at a root (the engine restructures first).
        assert!(aggregate_grouped(&rep, AggregateKind::Count, &[AttrId(1)]).is_err());
        // So is a chain in child-before-parent order.
        assert!(aggregate_grouped(&rep, AggregateKind::Count, &[AttrId(1), AttrId(0)]).is_err());
    }

    #[test]
    fn example3_grouped_by_path() {
        let rep = example3();
        // Grouping by the full root-to-leaf path enumerates the tuples.
        let rows = aggregate_grouped(&rep, AggregateKind::Count, &[AttrId(0), AttrId(1)]).unwrap();
        assert_eq!(
            rows,
            vec![
                (key(&[1, 1]), AggregateValue::Count(1)),
                (key(&[1, 2]), AggregateValue::Count(1)),
                (key(&[2, 2]), AggregateValue::Count(1)),
            ]
        );
        // Distinct grouped by the root: A=1 sees B∈{1,2}, A=2 sees {2}.
        let rows =
            aggregate_grouped(&rep, AggregateKind::CountDistinct(AttrId(1)), &[AttrId(0)]).unwrap();
        assert_eq!(
            rows,
            vec![
                (key(&[1]), AggregateValue::Count(2)),
                (key(&[2]), AggregateValue::Count(1)),
            ]
        );
        // Path grouping agrees with the flat oracle for every kind.
        for kind in [
            AggregateKind::Count,
            AggregateKind::Sum(AttrId(1)),
            AggregateKind::Avg(AttrId(0)),
            AggregateKind::CountDistinct(AttrId(1)),
            AggregateKind::SumDistinct(AttrId(0)),
        ] {
            assert_eq!(
                evaluate(&rep, kind, &[AttrId(0), AttrId(1)]).unwrap(),
                by_enumeration(&rep, kind, &[AttrId(0), AttrId(1)]).unwrap(),
                "kind {kind}"
            );
        }
    }

    #[test]
    fn empty_representation_aggregates() {
        let edges = vec![DepEdge::new("R", attrs(&[0]), 0)];
        let mut tree = FTree::new(edges);
        tree.add_node(attrs(&[0]), None).unwrap();
        let rep = FRep::empty(tree);
        assert_eq!(
            aggregate(&rep, AggregateKind::Count).unwrap(),
            AggregateValue::Count(0)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Sum(AttrId(0))).unwrap(),
            AggregateValue::Sum(0)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Min(AttrId(0))).unwrap(),
            AggregateValue::Min(None)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Avg(AttrId(0))).unwrap(),
            AggregateValue::Avg(None)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::CountDistinct(AttrId(0))).unwrap(),
            AggregateValue::Count(0)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::AvgDistinct(AttrId(0))).unwrap(),
            AggregateValue::Avg(None)
        );
        assert!(aggregate_grouped(&rep, AggregateKind::Count, &[AttrId(0)])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn nullary_forest_counts_one_tuple() {
        let rep = FRep::empty(FTree::new(vec![]));
        assert_eq!(
            aggregate(&rep, AggregateKind::Count).unwrap(),
            AggregateValue::Count(1)
        );
        // No attribute exists to aggregate over.
        assert!(aggregate(&rep, AggregateKind::Sum(AttrId(0))).is_err());
    }

    #[test]
    fn unknown_and_projected_attributes_are_rejected() {
        let rep = example3();
        assert!(matches!(
            aggregate(&rep, AggregateKind::Sum(AttrId(9))),
            Err(FdbError::AttributeNotInQuery { .. })
        ));
        assert!(matches!(
            aggregate(&rep, AggregateKind::CountDistinct(AttrId(9))),
            Err(FdbError::AttributeNotInQuery { .. })
        ));
        // Projecting B away removes its exhausted leaf from the tree: the
        // attribute no longer occurs at all.
        let mut projected = rep.clone();
        crate::ops::project(&mut projected, &attrs(&[0])).unwrap();
        assert!(matches!(
            aggregate(&projected, AggregateKind::Min(AttrId(1))),
            Err(FdbError::AttributeNotInQuery { .. })
        ));
    }

    #[test]
    fn entries_with_empty_children_contribute_nothing() {
        // A=1 has an empty B-union (unpruned): only A=2's tuple counts.
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 2)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::empty(b)],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![Entry::leaf(Value::new(7))])],
                },
            ],
        );
        let rep = FRep::from_parts(tree, vec![union]).unwrap();
        assert_eq!(
            aggregate(&rep, AggregateKind::Count).unwrap(),
            AggregateValue::Count(1)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Min(AttrId(0))).unwrap(),
            AggregateValue::Min(Some(Value::new(2)))
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Max(AttrId(1))).unwrap(),
            AggregateValue::Max(Some(Value::new(7)))
        );
        // The dead branch contributes no distinct values either.
        assert_eq!(
            aggregate(&rep, AggregateKind::CountDistinct(AttrId(0))).unwrap(),
            AggregateValue::Count(1)
        );
        // The dead group is omitted entirely — from both group shapes.
        let rows = aggregate_grouped(&rep, AggregateKind::Count, &[AttrId(0)]).unwrap();
        assert_eq!(rows, vec![(key(&[2]), AggregateValue::Count(1))]);
        let rows = aggregate_grouped(&rep, AggregateKind::Count, &[AttrId(0), AttrId(1)]).unwrap();
        assert_eq!(rows, vec![(key(&[2, 7]), AggregateValue::Count(1))]);
    }

    #[test]
    fn class_attribute_feeds_from_its_node_values() {
        // A node labelled {A, B}: both attributes aggregate over the same
        // entry values.
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 2)];
        let mut tree = FTree::new(edges);
        let ab = tree.add_node(attrs(&[0, 1]), None).unwrap();
        let u = Union::new(
            ab,
            vec![Entry::leaf(Value::new(3)), Entry::leaf(Value::new(9))],
        );
        let rep = FRep::from_parts(tree, vec![u]).unwrap();
        for attr in [AttrId(0), AttrId(1)] {
            assert_eq!(
                aggregate(&rep, AggregateKind::Sum(attr)).unwrap(),
                AggregateValue::Sum(12)
            );
        }
        // Both class attributes share one key slot: the key repeats the
        // node value, once per requested attribute.
        let rows = aggregate_grouped(&rep, AggregateKind::Count, &[AttrId(0), AttrId(1)]).unwrap();
        assert_eq!(
            rows,
            vec![
                (key(&[3, 3]), AggregateValue::Count(1)),
                (key(&[9, 9]), AggregateValue::Count(1)),
            ]
        );
    }

    #[test]
    fn product_of_roots_multiplies_counts_and_scales_sums() {
        // (⟨A:1⟩ ∪ ⟨A:2⟩) × (⟨B:5⟩ ∪ ⟨B:6⟩ ∪ ⟨B:7⟩): 6 tuples.
        let edges = vec![
            DepEdge::new("R", attrs(&[0]), 2),
            DepEdge::new("S", attrs(&[1]), 3),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), None).unwrap();
        let ua = Union::new(
            a,
            vec![Entry::leaf(Value::new(1)), Entry::leaf(Value::new(2))],
        );
        let ub = Union::new(
            b,
            vec![
                Entry::leaf(Value::new(5)),
                Entry::leaf(Value::new(6)),
                Entry::leaf(Value::new(7)),
            ],
        );
        let rep = FRep::from_parts(tree, vec![ua, ub]).unwrap();
        assert_eq!(
            aggregate(&rep, AggregateKind::Count).unwrap(),
            AggregateValue::Count(6)
        );
        // Each A value occurs 3 times: sum_A = (1+2)·3 = 9.
        assert_eq!(
            aggregate(&rep, AggregateKind::Sum(AttrId(0))).unwrap(),
            AggregateValue::Sum(9)
        );
        // Each B value occurs twice: sum_B = (5+6+7)·2 = 36.
        assert_eq!(
            aggregate(&rep, AggregateKind::Sum(AttrId(1))).unwrap(),
            AggregateValue::Sum(36)
        );
        // Multiplicities never enter the DISTINCT kinds: B∈{5,6,7} even
        // though every value occurs twice.
        assert_eq!(
            aggregate(&rep, AggregateKind::CountDistinct(AttrId(1))).unwrap(),
            AggregateValue::Count(3)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::SumDistinct(AttrId(1))).unwrap(),
            AggregateValue::Sum(18)
        );
        // Group by B (a root attribute): every group has 2 tuples.
        let rows = aggregate_grouped(&rep, AggregateKind::Avg(AttrId(0)), &[AttrId(1)]).unwrap();
        assert_eq!(rows.len(), 3);
        for (_, v) in rows {
            assert_eq!(v, AggregateValue::Avg(Some(AvgValue { sum: 3, count: 2 })));
        }
    }

    #[test]
    fn avg_overflow_is_reported_count_keeps_wrapping() {
        // 128 independent roots of 2 entries each: the true count is
        // 2^128, which wraps to exactly 0.  COUNT keeps its documented
        // modular result; AVG refuses to divide wrapped operands.
        let mut edges = Vec::new();
        for i in 0..128u32 {
            edges.push(DepEdge::new(format!("R{i}"), attrs(&[i]), 2));
        }
        let mut tree = FTree::new(edges);
        let mut unions = Vec::new();
        for i in 0..128u32 {
            let n = tree.add_node(attrs(&[i]), None).unwrap();
            unions.push(Union::new(
                n,
                vec![Entry::leaf(Value::new(1)), Entry::leaf(Value::new(2))],
            ));
        }
        let rep = FRep::from_parts(tree, unions).unwrap();
        assert_eq!(
            aggregate(&rep, AggregateKind::Count).unwrap(),
            AggregateValue::Count(0)
        );
        assert!(matches!(
            aggregate(&rep, AggregateKind::Avg(AttrId(0))),
            Err(FdbError::AggregateOverflow { .. })
        ));
        // The DISTINCT average never multiplies counts: still exact.
        assert_eq!(
            aggregate(&rep, AggregateKind::AvgDistinct(AttrId(0))).unwrap(),
            AggregateValue::Avg(Some(AvgValue { sum: 3, count: 2 }))
        );
    }

    #[test]
    fn dead_branch_overflow_never_taints_avg() {
        // Root A with two entries and 129 child nodes.  Under A=1 the first
        // 128 children have two entries each — their product counts 2^128
        // tuples, which wraps the 128-bit count to 0 with the overflow bit
        // set — and the 129th child is an empty union that annihilates the
        // whole branch.  Under A=2 every child is a single entry: one live
        // tuple.  AVG must succeed even though the dead branch wrapped its
        // count before being annihilated.
        let mut edges = vec![DepEdge::new("R", attrs(&[0]), 2)];
        for i in 1..=129u32 {
            edges.push(DepEdge::new(format!("S{i}"), attrs(&[0, i]), 2));
        }
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let mut kids = Vec::new();
        for i in 1..=129u32 {
            kids.push(tree.add_node(attrs(&[i]), Some(a)).unwrap());
        }
        let dead_children: Vec<Union> = kids
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                if i + 1 == kids.len() {
                    Union::empty(k)
                } else {
                    Union::new(
                        k,
                        vec![
                            Entry {
                                value: Value::new(1),
                                children: vec![],
                            },
                            Entry {
                                value: Value::new(2),
                                children: vec![],
                            },
                        ],
                    )
                }
            })
            .collect();
        let live_children: Vec<Union> = kids
            .iter()
            .map(|&k| {
                Union::new(
                    k,
                    vec![Entry {
                        value: Value::new(5),
                        children: vec![],
                    }],
                )
            })
            .collect();
        let union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: dead_children,
                },
                Entry {
                    value: Value::new(2),
                    children: live_children,
                },
            ],
        );
        let rep = FRep::from_parts(tree, vec![union]).unwrap();
        assert_eq!(
            aggregate(&rep, AggregateKind::Count).unwrap(),
            AggregateValue::Count(1)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Avg(AttrId(0))).unwrap(),
            AggregateValue::Avg(Some(AvgValue { sum: 2, count: 1 }))
        );
    }
}
