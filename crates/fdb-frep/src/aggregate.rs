//! One-pass aggregation over factorised representations.
//!
//! Aggregates over a factorised representation cost one bottom-up pass over
//! the f-rep instead of a pass over the (possibly exponentially larger) flat
//! relation: `COUNT`, `SUM`, `MIN` and `MAX` compose along union and product
//! nodes (Bakibayev, Kočiský, Olteanu & Závodný, *Aggregation and Ordering
//! in Factorised Databases*, 2013).  This module evaluates
//!
//! * [`AggregateKind::Count`] — number of tuples of the represented relation,
//! * [`AggregateKind::Sum`]`(A)` — sum of attribute `A` over all tuples,
//! * [`AggregateKind::Min`]`(A)` / [`AggregateKind::Max`]`(A)`,
//! * [`AggregateKind::Avg`]`(A)` — exact `(sum, count)` pair,
//!
//! each as a **single flat reverse loop** over the arena's topological index
//! order — the same shape as [`FRep::tuple_count`], with no recursion and no
//! per-node allocation beyond one accumulator per union.  Group-by on a root
//! attribute ([`aggregate_grouped`]) reuses the same pass: the root union's
//! entries are the groups, already in ascending value order.
//!
//! The composition rules are those of a commutative semiring product:
//! a union adds its entries' accumulators (the entries represent disjoint
//! sub-relations) and an entry multiplies its value's contribution with its
//! child unions' accumulators (the children represent independent factors).
//! For independent factors `X × Y`:
//!
//! ```text
//! count(X × Y) = count(X) · count(Y)
//! sum_A(X × Y)  = sum_A(X) · count(Y) + sum_A(Y) · count(X)
//! min_A(X × Y)  = min_A(X) ∪ min_A(Y)      (A labels exactly one factor)
//! ```
//!
//! # Numeric semantics
//!
//! The chosen semantics, relied upon by the oracle-backed equivalence suite:
//!
//! * **`COUNT` and `SUM` are computed in 128-bit wrapping (modular)
//!   arithmetic.**  A factorised representation can describe far more tuples
//!   than any machine integer holds (a product of `k` unions of `n` entries
//!   has `n^k` tuples), so both are defined modulo `2^128`: exact whenever
//!   the true value fits in a `u128` — in particular for every `tuple_count`
//!   that merely exceeds `u64` — and wrapping deterministically beyond.
//!   Because addition and multiplication modulo `2^128` form a commutative
//!   ring, the factorised evaluation, the overlay evaluation and a flat
//!   oracle that sums tuple-by-tuple with `wrapping_add` agree **bit for
//!   bit** even when they associate the operations differently.
//! * **`AVG` of an empty group is `None`** ([`AggregateValue::Avg`] holds
//!   `Option<AvgValue>`); a non-empty group carries the exact wrapping
//!   `(sum, count)` pair so callers choose their own division
//!   ([`AvgValue::as_f64`] is the convenience form).
//! * **`MIN`/`MAX` of the empty relation are `None`**; over a union with a
//!   single entry both equal that entry's value.  Entries whose product is
//!   empty (some child union with no entries) contribute no tuples and are
//!   skipped, exactly as enumeration skips them.
//! * A liveness bit is tracked separately from the wrapping count, so
//!   `MIN`/`MAX`/`AVG`-emptiness stay exact even if a (pathological) true
//!   count is divisible by `2^128`.
//!
//! # Where this hooks into execution
//!
//! [`aggregate`] and [`aggregate_grouped`] read a frozen arena.  The fused
//! executor offers a second entry point,
//! [`crate::ops::execute_fused_aggregate`], that evaluates the same
//! aggregates directly on the fused overlay — an aggregate is one more
//! consumer of the overlay that never needs the final arena at all, so an
//! aggregate query pays zero final-arena emission.  `fdb-plan` routes a
//! plan's trailing structural segment through that entry point.

use crate::frep::FRep;
use crate::store::Store;
use fdb_common::limits::CHECK_INTERVAL;
use fdb_common::{failpoint, AttrId, ComparisonOp, ExecCtx, FdbError, Result, Value};
use fdb_ftree::{FTree, NodeId};

/// Which aggregate to evaluate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateKind {
    /// `COUNT(*)`: number of tuples (modulo `2^128`, see the module docs).
    Count,
    /// `SUM(A)`: sum of the attribute over all tuples (modulo `2^128`).
    Sum(AttrId),
    /// `MIN(A)`: smallest value of the attribute, `None` on empty input.
    Min(AttrId),
    /// `MAX(A)`: largest value of the attribute, `None` on empty input.
    Max(AttrId),
    /// `AVG(A)`: exact `(sum, count)` pair, `None` on empty input.
    Avg(AttrId),
}

impl AggregateKind {
    /// The attribute the aggregate ranges over (`None` for `COUNT`).
    pub fn attr(self) -> Option<AttrId> {
        match self {
            AggregateKind::Count => None,
            AggregateKind::Sum(a)
            | AggregateKind::Min(a)
            | AggregateKind::Max(a)
            | AggregateKind::Avg(a) => Some(a),
        }
    }
}

impl std::fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregateKind::Count => write!(f, "COUNT(*)"),
            AggregateKind::Sum(a) => write!(f, "SUM({a})"),
            AggregateKind::Min(a) => write!(f, "MIN({a})"),
            AggregateKind::Max(a) => write!(f, "MAX({a})"),
            AggregateKind::Avg(a) => write!(f, "AVG({a})"),
        }
    }
}

/// The exact average: wrapping sum and count of a non-empty group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AvgValue {
    /// Sum of the attribute (modulo `2^128`).
    pub sum: u128,
    /// Number of tuples (modulo `2^128`).
    pub count: u128,
}

impl AvgValue {
    /// The average as a floating-point number (lossy for huge sums).
    pub fn as_f64(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }
}

/// The value of one evaluated aggregate (see the module docs for the
/// numeric semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateValue {
    /// Number of tuples, modulo `2^128`.
    Count(u128),
    /// Sum of the attribute, modulo `2^128` (0 on empty input).
    Sum(u128),
    /// Smallest attribute value, `None` on empty input.
    Min(Option<Value>),
    /// Largest attribute value, `None` on empty input.
    Max(Option<Value>),
    /// Exact `(sum, count)`, `None` on empty input.
    Avg(Option<AvgValue>),
}

/// An aggregate evaluation result: a scalar, or one row per group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AggregateResult {
    /// Ungrouped aggregate.
    Scalar(AggregateValue),
    /// Grouped aggregate: `(group value, aggregate)` rows in ascending group
    /// value order; groups without tuples are omitted (as a flat `GROUP BY`
    /// over the enumerated tuples would omit them).
    Groups(Vec<(Value, AggregateValue)>),
}

impl AggregateResult {
    /// The scalar value, if this is an ungrouped result.
    pub fn as_scalar(&self) -> Option<AggregateValue> {
        match self {
            AggregateResult::Scalar(v) => Some(*v),
            AggregateResult::Groups(_) => None,
        }
    }
}

/// The per-union accumulator: every aggregate kind is computed from the same
/// four components, so one pass serves them all (and the overlay walk in
/// `ops::fuse` reuses it unchanged).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Acc {
    /// Number of tuples, modulo `2^128`.
    pub(crate) count: u128,
    /// Sum of the target attribute over the tuples, modulo `2^128`.
    pub(crate) sum: u128,
    /// Smallest target-attribute value among the tuples.
    pub(crate) min: Option<Value>,
    /// Largest target-attribute value among the tuples.
    pub(crate) max: Option<Value>,
    /// Exact emptiness, independent of the wrapping count.
    pub(crate) empty: bool,
}

impl Acc {
    /// The accumulator of a union with no entries (identity of [`Acc::add`]).
    pub(crate) fn none() -> Acc {
        Acc {
            count: 0,
            sum: 0,
            min: None,
            max: None,
            empty: true,
        }
    }

    /// The accumulator of the nullary relation `{⟨⟩}` (identity of
    /// [`Acc::product`]).
    pub(crate) fn one() -> Acc {
        Acc {
            count: 1,
            sum: 0,
            min: None,
            max: None,
            empty: false,
        }
    }

    /// The accumulator of a single singleton `⟨A:v⟩`: counts one tuple, and
    /// contributes the value iff the singleton's node carries the target
    /// attribute.
    pub(crate) fn singleton(value: Value, carries_attr: bool) -> Acc {
        Acc {
            count: 1,
            sum: if carries_attr { value.raw() as u128 } else { 0 },
            min: carries_attr.then_some(value),
            max: carries_attr.then_some(value),
            empty: false,
        }
    }

    /// Combines the accumulators of two *independent* factors (a product).
    /// The target attribute labels at most one of the two, so at most one
    /// `min`/`max` side is `Some`.
    pub(crate) fn product(self, other: Acc) -> Acc {
        let empty = self.empty || other.empty;
        Acc {
            count: self.count.wrapping_mul(other.count),
            sum: self
                .sum
                .wrapping_mul(other.count)
                .wrapping_add(other.sum.wrapping_mul(self.count)),
            // At most one side ranges over the target attribute; an empty
            // factor annihilates the whole product.
            min: if empty { None } else { self.min.or(other.min) },
            max: if empty { None } else { self.max.or(other.max) },
            empty,
        }
    }

    /// Combines the accumulators of two *disjoint* sub-relations (entries of
    /// one union).
    pub(crate) fn add(self, other: Acc) -> Acc {
        fn fold(a: Option<Value>, b: Option<Value>, min: bool) -> Option<Value> {
            match (a, b) {
                (Some(x), Some(y)) => Some(if min { x.min(y) } else { x.max(y) }),
                (x, y) => x.or(y),
            }
        }
        Acc {
            count: self.count.wrapping_add(other.count),
            sum: self.sum.wrapping_add(other.sum),
            min: fold(self.min, other.min, true),
            max: fold(self.max, other.max, false),
            empty: self.empty && other.empty,
        }
    }

    /// Projects the requested aggregate out of the accumulator.
    pub(crate) fn finish(self, kind: AggregateKind) -> AggregateValue {
        match kind {
            AggregateKind::Count => AggregateValue::Count(if self.empty { 0 } else { self.count }),
            AggregateKind::Sum(_) => AggregateValue::Sum(if self.empty { 0 } else { self.sum }),
            AggregateKind::Min(_) => AggregateValue::Min(self.min),
            AggregateKind::Max(_) => AggregateValue::Max(self.max),
            AggregateKind::Avg(_) => AggregateValue::Avg((!self.empty).then_some(AvgValue {
                sum: self.sum,
                count: self.count,
            })),
        }
    }
}

/// Resolved target of an aggregate on a concrete f-tree: the node whose
/// entry values feed the aggregate (`None` for `COUNT`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct AggTarget {
    pub(crate) node: Option<NodeId>,
}

impl AggTarget {
    /// Resolves and validates the aggregate's attribute against the tree:
    /// the attribute must exist in the tree and be visible (not projected
    /// away).
    pub(crate) fn resolve(tree: &FTree, kind: AggregateKind) -> Result<AggTarget> {
        let Some(attr) = kind.attr() else {
            return Ok(AggTarget { node: None });
        };
        let Some(node) = tree.node_of_attr(attr) else {
            return Err(FdbError::AttributeNotInQuery {
                attr: format!("{attr}"),
            });
        };
        if !tree.visible_attrs(node).contains(&attr) {
            return Err(FdbError::InvalidOperator {
                detail: format!("aggregate over projected-away attribute {attr}"),
            });
        }
        Ok(AggTarget { node: Some(node) })
    }

    /// Whether entry values of a union over `node` feed the aggregate.
    #[inline]
    pub(crate) fn carried_by(self, node: NodeId) -> bool {
        self.node == Some(node)
    }
}

/// Resolves a group-by attribute: it must be visible and label a **root**
/// node of the f-tree (the root union's entries are the groups).  Returns
/// the root node.
pub(crate) fn resolve_group_root(tree: &FTree, group_by: AttrId) -> Result<NodeId> {
    let Some(node) = tree.node_of_attr(group_by) else {
        return Err(FdbError::AttributeNotInQuery {
            attr: format!("{group_by}"),
        });
    };
    if !tree.visible_attrs(node).contains(&group_by) {
        return Err(FdbError::InvalidOperator {
            detail: format!("group-by over projected-away attribute {group_by}"),
        });
    }
    if tree.parent(node).is_some() {
        return Err(FdbError::InvalidOperator {
            detail: format!(
                "group-by attribute {group_by} labels non-root node {node}; \
                 only root-attribute grouping is supported"
            ),
        });
    }
    Ok(node)
}

/// A conjunction of constant-selection predicates folded into an aggregate
/// fold instead of executed as selection passes: an entry of a union over
/// `node` participates iff every predicate on `node` accepts its value.
/// Filtering is exact with respect to select-then-prune semantics — a
/// filtered-out entry, like an entry whose product is empty, contributes
/// the additive identity to its union's accumulator, so `COUNT`/`SUM` skip
/// it and `MIN`/`MAX`/`AVG` emptiness stays exact.
#[derive(Clone, Debug, Default)]
pub(crate) struct AggFilter {
    preds: Vec<(NodeId, ComparisonOp, Value)>,
}

impl AggFilter {
    /// Adds the predicate `node θ value`.
    pub(crate) fn push(&mut self, node: NodeId, op: ComparisonOp, value: Value) {
        self.preds.push((node, op, value));
    }

    /// Whether an entry with the given value of a union over `node` passes
    /// every predicate.
    #[inline]
    pub(crate) fn passes(&self, node: NodeId, value: Value) -> bool {
        self.preds
            .iter()
            .all(|&(n, op, c)| n != node || op.eval(value, c))
    }
}

/// Accessor surface the shared aggregation scaffold walks — implemented by
/// the frozen arena ([`ArenaSource`]) and by the fused overlay (in
/// [`crate::ops::fuse`]).  `acc_of` yields the accumulator of a whole
/// (virtual) union; how it is produced — a precomputed flat pass or a
/// memoized recursive walk — is the implementor's business.  A source with
/// a non-trivial [`AggFilter`] must skip filtered-out entries in `acc_of`
/// itself; the scaffold applies the filter only to the group root's entries,
/// which it folds directly.
pub(crate) trait AggSource {
    /// A (virtual) union reference.
    type Id: Copy + PartialEq;
    /// The root unions, in root-list order.
    fn roots(&self) -> Vec<Self::Id>;
    /// The f-tree node a union ranges over.
    fn node_of(&self, v: Self::Id) -> NodeId;
    /// Number of entries.
    fn len(&self, v: Self::Id) -> u32;
    /// The `i`-th value (entries are sorted increasing).
    fn value(&self, v: Self::Id, i: u32) -> Value;
    /// Number of kid slots per entry.
    fn kid_count(&self, v: Self::Id) -> u32;
    /// The child reference of entry `i` at kid position `k`.
    fn kid(&self, v: Self::Id, i: u32, k: u32) -> Self::Id;
    /// The accumulator of the whole union.  Fallible so a source that folds
    /// lazily (the overlay walk) can observe the governance context and
    /// abort mid-fold; the precomputed arena source never errs.
    fn acc_of(&mut self, v: Self::Id, target: AggTarget) -> Result<Acc>;
}

/// The shared evaluation scaffold over any [`AggSource`] — the one place
/// that implements the aggregate semantics on top of the accumulators, so
/// the arena pass and the overlay pass cannot drift apart:
///
/// * scalar: the product of the root accumulators;
/// * grouped: one row per entry of the group root's union (ascending value
///   order), each multiplied with the product of the *other* roots, rows
///   whose product is empty omitted.
pub(crate) fn evaluate_source<S: AggSource>(
    src: &mut S,
    tree: &FTree,
    kind: AggregateKind,
    group_by: Option<AttrId>,
    filter: &AggFilter,
    ctx: &ExecCtx,
) -> Result<AggregateResult> {
    let target = AggTarget::resolve(tree, kind)?;
    let roots = src.roots();
    let Some(group) = group_by else {
        let mut total = Acc::one();
        for &r in &roots {
            total = total.product(src.acc_of(r, target)?);
        }
        return Ok(AggregateResult::Scalar(total.finish(kind)));
    };
    let group_node = resolve_group_root(tree, group)?;
    let group_root = roots
        .iter()
        .copied()
        .find(|&r| src.node_of(r) == group_node)
        .expect("validated representation: one root union per root node");
    // The independent context: the product of every other root union.
    let mut context = Acc::one();
    for &r in &roots {
        if r != group_root {
            context = context.product(src.acc_of(r, target)?);
        }
    }
    let carries = target.carried_by(group_node);
    let kid_count = src.kid_count(group_root);
    let len = src.len(group_root);
    ctx.charge(1 + len as u64)?;
    let mut rows = Vec::with_capacity(len as usize);
    for i in 0..len {
        let value = src.value(group_root, i);
        // The scaffold folds the group root's entries itself, so the folded
        // trailing selections apply here too: a filtered-out group is
        // omitted exactly like a group whose product is empty.
        if !filter.passes(group_node, value) {
            continue;
        }
        let mut acc = Acc::singleton(value, carries);
        for k in 0..kid_count {
            acc = acc.product(src.acc_of(src.kid(group_root, i, k), target)?);
        }
        acc = acc.product(context);
        if acc.empty {
            continue;
        }
        rows.push((value, acc.finish(kind)));
    }
    Ok(AggregateResult::Groups(rows))
}

/// The frozen arena as an aggregation source: accumulators come from one
/// flat reverse loop over the union arena ([`union_accs`]), everything else
/// is a plain arena read.
struct ArenaSource<'a> {
    store: &'a Store,
    kid_counts: Vec<u32>,
    accs: Vec<Acc>,
}

impl AggSource for ArenaSource<'_> {
    type Id = u32;

    fn roots(&self) -> Vec<u32> {
        self.store.roots.clone()
    }

    fn node_of(&self, v: u32) -> NodeId {
        self.store.unions[v as usize].node
    }

    fn len(&self, v: u32) -> u32 {
        self.store.union_len(v)
    }

    fn value(&self, v: u32, i: u32) -> Value {
        self.store.entry_slice(v)[i as usize].value
    }

    fn kid_count(&self, v: u32) -> u32 {
        self.kid_counts[self.store.unions[v as usize].node.index()]
    }

    fn kid(&self, v: u32, i: u32, k: u32) -> u32 {
        self.store.kid(v, i, k)
    }

    fn acc_of(&mut self, v: u32, _target: AggTarget) -> Result<Acc> {
        Ok(self.accs[v as usize])
    }
}

/// The single flat reverse loop: one accumulator per union, children before
/// parents thanks to the arena's topological index order — the exact shape
/// of [`FRep::tuple_count`].
fn union_accs(
    store: &Store,
    kid_counts: &[u32],
    target: AggTarget,
    ctx: &ExecCtx,
) -> Result<Vec<Acc>> {
    let mut accs = vec![Acc::none(); store.unions.len()];
    // Batch the per-union charges up to the context's own check interval:
    // the fold body is a handful of adds per record, so charging record by
    // record would dominate it, while one flush per interval keeps the
    // same cooperative granularity at negligible cost.
    let mut pending = 0u64;
    for uid in (0..store.unions.len()).rev() {
        let rec = store.unions[uid];
        pending += 1 + rec.entries_len as u64;
        if pending >= CHECK_INTERVAL {
            ctx.charge(pending)?;
            pending = 0;
        }
        let carries = target.carried_by(rec.node);
        let kid_count = kid_counts[rec.node.index()] as usize;
        let mut total = Acc::none();
        for e in rec.entries_start..rec.entries_start + rec.entries_len {
            let entry = store.entries[e as usize];
            let mut acc = Acc::singleton(entry.value, carries);
            for k in 0..kid_count {
                acc = acc.product(accs[store.kids[entry.kids_start as usize + k] as usize]);
            }
            total = total.add(acc);
        }
        accs[uid] = total;
    }
    ctx.charge(pending)?;
    Ok(accs)
}

/// Evaluates an aggregate (optionally grouped by a root attribute) over the
/// representation in one flat bottom-up pass over the arena.  See the
/// module docs for the numeric semantics.
pub fn evaluate(
    rep: &FRep,
    kind: AggregateKind,
    group_by: Option<AttrId>,
) -> Result<AggregateResult> {
    evaluate_ctx(rep, kind, group_by, &ExecCtx::unlimited())
}

/// [`evaluate`] under a governance context: the flat bottom-up pass charges
/// one unit per union record, so a deadline, budget or cancellation flag
/// interrupts the fold between unions with no partial state (the aggregate
/// never mutates the representation).
pub fn evaluate_ctx(
    rep: &FRep,
    kind: AggregateKind,
    group_by: Option<AttrId>,
    ctx: &ExecCtx,
) -> Result<AggregateResult> {
    failpoint!(ctx, "aggregate.fold");
    let target = AggTarget::resolve(rep.tree(), kind)?;
    let kid_counts = crate::store::kid_count_table(rep.tree());
    let accs = union_accs(rep.store(), &kid_counts, target, ctx)?;
    let mut src = ArenaSource {
        store: rep.store(),
        kid_counts,
        accs,
    };
    evaluate_source(
        &mut src,
        rep.tree(),
        kind,
        group_by,
        &AggFilter::default(),
        ctx,
    )
}

/// Evaluates an ungrouped aggregate — [`evaluate`] with `group_by: None`.
pub fn aggregate(rep: &FRep, kind: AggregateKind) -> Result<AggregateValue> {
    match evaluate(rep, kind, None)? {
        AggregateResult::Scalar(v) => Ok(v),
        AggregateResult::Groups(_) => unreachable!("ungrouped evaluation returns a scalar"),
    }
}

/// Evaluates an aggregate grouped by a root attribute: one output row per
/// entry of the root union over that attribute (ascending value order),
/// each aggregated over the entry's subtree times the *other* root unions.
/// Groups without tuples are omitted.  [`evaluate`] with `group_by: Some`.
pub fn aggregate_grouped(
    rep: &FRep,
    kind: AggregateKind,
    group_by: AttrId,
) -> Result<Vec<(Value, AggregateValue)>> {
    match evaluate(rep, kind, Some(group_by))? {
        AggregateResult::Groups(rows) => Ok(rows),
        AggregateResult::Scalar(_) => unreachable!("grouped evaluation returns rows"),
    }
}

/// The materialise-then-aggregate reference evaluator: enumerates the
/// represented relation tuple by tuple with the constant-delay cursor and
/// folds the aggregate with plain iterators — the plan a flat engine would
/// run.  Same wrapping 128-bit arithmetic as the one-pass evaluators, so
/// the results agree bit for bit; the equivalence tests use it as the flat
/// oracle and the benchmarks as the timed baseline.  Unlike [`evaluate`],
/// grouping works on *any* visible attribute (the oracle pays the flat
/// enumeration anyway), and groups come out in ascending value order with
/// empty groups absent, matching [`aggregate_grouped`].
pub fn by_enumeration(
    rep: &FRep,
    kind: AggregateKind,
    group_by: Option<AttrId>,
) -> Result<AggregateResult> {
    let visible = rep.visible_attrs();
    let col_of = |attr: AttrId| {
        visible
            .binary_search(&attr)
            .map_err(|_| FdbError::AttributeNotInQuery {
                attr: format!("{attr}"),
            })
    };
    let col = match kind.attr() {
        Some(attr) => Some(col_of(attr)?),
        None => None,
    };
    let finish = |acc: Acc| acc.finish(kind);
    let fold = |acc: &mut Acc, t: &[Value]| {
        let singleton = match col {
            Some(c) => Acc::singleton(t[c], true),
            None => Acc::one(),
        };
        *acc = acc.add(singleton);
    };
    match group_by {
        None => {
            let mut acc = Acc::none();
            crate::enumerate::for_each_tuple(rep, |t| fold(&mut acc, t));
            Ok(AggregateResult::Scalar(finish(acc)))
        }
        Some(group) => {
            let gcol = col_of(group)?;
            let mut groups: std::collections::BTreeMap<Value, Acc> =
                std::collections::BTreeMap::new();
            crate::enumerate::for_each_tuple(rep, |t| {
                fold(groups.entry(t[gcol]).or_insert_with(Acc::none), t);
            });
            Ok(AggregateResult::Groups(
                groups
                    .into_iter()
                    .map(|(g, acc)| (g, finish(acc)))
                    .collect(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Entry, Union};
    use fdb_ftree::DepEdge;
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// Example 3 of the paper: ⟨A:1⟩×(⟨B:1⟩ ∪ ⟨B:2⟩) ∪ ⟨A:2⟩×⟨B:2⟩,
    /// tuples {(1,1), (1,2), (2,2)}.
    fn example3() -> FRep {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 3)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        b,
                        vec![Entry::leaf(Value::new(1)), Entry::leaf(Value::new(2))],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![Entry::leaf(Value::new(2))])],
                },
            ],
        );
        FRep::from_parts(tree, vec![union]).unwrap()
    }

    #[test]
    fn example3_aggregates() {
        let rep = example3();
        assert_eq!(
            aggregate(&rep, AggregateKind::Count).unwrap(),
            AggregateValue::Count(3)
        );
        // A over {1, 1, 2}; B over {1, 2, 2}.
        assert_eq!(
            aggregate(&rep, AggregateKind::Sum(AttrId(0))).unwrap(),
            AggregateValue::Sum(4)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Sum(AttrId(1))).unwrap(),
            AggregateValue::Sum(5)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Min(AttrId(1))).unwrap(),
            AggregateValue::Min(Some(Value::new(1)))
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Max(AttrId(0))).unwrap(),
            AggregateValue::Max(Some(Value::new(2)))
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Avg(AttrId(1))).unwrap(),
            AggregateValue::Avg(Some(AvgValue { sum: 5, count: 3 }))
        );
    }

    #[test]
    fn example3_grouped_by_root() {
        let rep = example3();
        let rows = aggregate_grouped(&rep, AggregateKind::Count, AttrId(0)).unwrap();
        assert_eq!(
            rows,
            vec![
                (Value::new(1), AggregateValue::Count(2)),
                (Value::new(2), AggregateValue::Count(1)),
            ]
        );
        let rows = aggregate_grouped(&rep, AggregateKind::Sum(AttrId(1)), AttrId(0)).unwrap();
        assert_eq!(
            rows,
            vec![
                (Value::new(1), AggregateValue::Sum(3)),
                (Value::new(2), AggregateValue::Sum(2)),
            ]
        );
        // Grouping by a non-root attribute is rejected.
        assert!(aggregate_grouped(&rep, AggregateKind::Count, AttrId(1)).is_err());
    }

    #[test]
    fn empty_representation_aggregates() {
        let edges = vec![DepEdge::new("R", attrs(&[0]), 0)];
        let mut tree = FTree::new(edges);
        tree.add_node(attrs(&[0]), None).unwrap();
        let rep = FRep::empty(tree);
        assert_eq!(
            aggregate(&rep, AggregateKind::Count).unwrap(),
            AggregateValue::Count(0)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Sum(AttrId(0))).unwrap(),
            AggregateValue::Sum(0)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Min(AttrId(0))).unwrap(),
            AggregateValue::Min(None)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Avg(AttrId(0))).unwrap(),
            AggregateValue::Avg(None)
        );
        assert!(aggregate_grouped(&rep, AggregateKind::Count, AttrId(0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn nullary_forest_counts_one_tuple() {
        let rep = FRep::empty(FTree::new(vec![]));
        assert_eq!(
            aggregate(&rep, AggregateKind::Count).unwrap(),
            AggregateValue::Count(1)
        );
        // No attribute exists to aggregate over.
        assert!(aggregate(&rep, AggregateKind::Sum(AttrId(0))).is_err());
    }

    #[test]
    fn unknown_and_projected_attributes_are_rejected() {
        let rep = example3();
        assert!(matches!(
            aggregate(&rep, AggregateKind::Sum(AttrId(9))),
            Err(FdbError::AttributeNotInQuery { .. })
        ));
        // Projecting B away removes its exhausted leaf from the tree: the
        // attribute no longer occurs at all.
        let mut projected = rep.clone();
        crate::ops::project(&mut projected, &attrs(&[0])).unwrap();
        assert!(matches!(
            aggregate(&projected, AggregateKind::Min(AttrId(1))),
            Err(FdbError::AttributeNotInQuery { .. })
        ));
    }

    #[test]
    fn entries_with_empty_children_contribute_nothing() {
        // A=1 has an empty B-union (unpruned): only A=2's tuple counts.
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 2)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::empty(b)],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![Entry::leaf(Value::new(7))])],
                },
            ],
        );
        let rep = FRep::from_parts(tree, vec![union]).unwrap();
        assert_eq!(
            aggregate(&rep, AggregateKind::Count).unwrap(),
            AggregateValue::Count(1)
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Min(AttrId(0))).unwrap(),
            AggregateValue::Min(Some(Value::new(2)))
        );
        assert_eq!(
            aggregate(&rep, AggregateKind::Max(AttrId(1))).unwrap(),
            AggregateValue::Max(Some(Value::new(7)))
        );
        // The dead group is omitted entirely.
        let rows = aggregate_grouped(&rep, AggregateKind::Count, AttrId(0)).unwrap();
        assert_eq!(rows, vec![(Value::new(2), AggregateValue::Count(1))]);
    }

    #[test]
    fn class_attribute_feeds_from_its_node_values() {
        // A node labelled {A, B}: both attributes aggregate over the same
        // entry values.
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 2)];
        let mut tree = FTree::new(edges);
        let ab = tree.add_node(attrs(&[0, 1]), None).unwrap();
        let u = Union::new(
            ab,
            vec![Entry::leaf(Value::new(3)), Entry::leaf(Value::new(9))],
        );
        let rep = FRep::from_parts(tree, vec![u]).unwrap();
        for attr in [AttrId(0), AttrId(1)] {
            assert_eq!(
                aggregate(&rep, AggregateKind::Sum(attr)).unwrap(),
                AggregateValue::Sum(12)
            );
        }
    }

    #[test]
    fn product_of_roots_multiplies_counts_and_scales_sums() {
        // (⟨A:1⟩ ∪ ⟨A:2⟩) × (⟨B:5⟩ ∪ ⟨B:6⟩ ∪ ⟨B:7⟩): 6 tuples.
        let edges = vec![
            DepEdge::new("R", attrs(&[0]), 2),
            DepEdge::new("S", attrs(&[1]), 3),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), None).unwrap();
        let ua = Union::new(
            a,
            vec![Entry::leaf(Value::new(1)), Entry::leaf(Value::new(2))],
        );
        let ub = Union::new(
            b,
            vec![
                Entry::leaf(Value::new(5)),
                Entry::leaf(Value::new(6)),
                Entry::leaf(Value::new(7)),
            ],
        );
        let rep = FRep::from_parts(tree, vec![ua, ub]).unwrap();
        assert_eq!(
            aggregate(&rep, AggregateKind::Count).unwrap(),
            AggregateValue::Count(6)
        );
        // Each A value occurs 3 times: sum_A = (1+2)·3 = 9.
        assert_eq!(
            aggregate(&rep, AggregateKind::Sum(AttrId(0))).unwrap(),
            AggregateValue::Sum(9)
        );
        // Each B value occurs twice: sum_B = (5+6+7)·2 = 36.
        assert_eq!(
            aggregate(&rep, AggregateKind::Sum(AttrId(1))).unwrap(),
            AggregateValue::Sum(36)
        );
        // Group by B (a root attribute): every group has 2 tuples.
        let rows = aggregate_grouped(&rep, AggregateKind::Avg(AttrId(0)), AttrId(1)).unwrap();
        assert_eq!(rows.len(), 3);
        for (_, v) in rows {
            assert_eq!(v, AggregateValue::Avg(Some(AvgValue { sum: 3, count: 2 })));
        }
    }
}
