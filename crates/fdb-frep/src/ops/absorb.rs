//! The absorb selection operator `α_{A,B}`.
//!
//! Absorb enforces an equality `A = B` when the node `B` is a *descendant*
//! of the node `A`.  Inside the subtree of every `A`-value `a`, each union
//! over `B` is restricted to the single entry with value `a` (or emptied if
//! no such entry exists), the `B` level is spliced out (its children move up
//! to `B`'s former parent), and `B`'s attributes join `A`'s class
//! (Figure 3(d)).  As in the paper, the operator finishes with a
//! normalisation step: removing `B` can make nodes below it independent of
//! the nodes in between, so they may be pushed up.
//!
//! The operator is **arena-native**: one [`Rewriter`] pass walks the arena
//! carrying the current `A`-value as context, binary-searches each `B`-union
//! for it, and splices the matching entry's kid subtrees into `B`'s former
//! parent; entries whose `B`-union misses the context value are dropped on
//! the spot.  The subsequent [`Store::retain_and_prune`] pass cascades those
//! removals upwards, exactly as the paper prescribes.  No thaw, no builder
//! tree; the old implementation survives as [`crate::ops::oracle`].

use crate::frep::FRep;
use crate::kernel;
use crate::ops::restructure::normalise;
use crate::ops::{child_pos, debug_validate};
use crate::store::{Rewriter, Store};
use fdb_common::{FdbError, Result, Value};
use fdb_ftree::{FTree, NodeId};
use std::collections::BTreeSet;

/// Absorb operator `α_{A,B}` where `a` is an ancestor of `b`: enforces
/// `A = B`, fuses `b` into `a` and normalises.  Returns the nodes pushed up
/// by the final normalisation step.
pub fn absorb(rep: &mut FRep, a: NodeId, b: NodeId) -> Result<Vec<NodeId>> {
    rep.tree().check_node(a)?;
    rep.tree().check_node(b)?;
    if !rep.tree().is_ancestor(a, b) {
        return Err(FdbError::InvalidOperator {
            detail: format!("absorb: {a} is not an ancestor of {b}"),
        });
    }
    let b_parent = rep
        .tree()
        .parent(b)
        .expect("b has an ancestor, so a parent");
    let mut new_tree = rep.tree().clone();
    new_tree.absorb_into_ancestor(a, b)?;
    let restricted = absorb_rewrite(rep.store(), rep.tree(), &new_tree, a, b, b_parent);
    // Entries whose B-union had no matching value (or whose product emptied
    // transitively) disappear here.
    let pruned = restricted.retain_and_prune(&new_tree, |_, _| true);
    rep.replace_parts(new_tree, pruned);
    debug_validate(rep, "absorb");
    normalise(rep)
}

/// Emits the restricted-and-spliced (not yet pruned) arena.
fn absorb_rewrite(
    src: &Store,
    old_tree: &FTree,
    new_tree: &FTree,
    a: NodeId,
    b: NodeId,
    b_parent: NodeId,
) -> Store {
    let old_b_children = old_tree.children(b);
    let mut ab = AbsorbRewrite {
        rw: Rewriter::new(src, old_tree),
        a,
        b_parent,
        on_path: old_tree.ancestors(b).into_iter().collect(),
        pos_b: child_pos(old_tree.children(b_parent), b),
        spliced_slots: new_tree
            .children(b_parent)
            .iter()
            .map(|&c| {
                if old_b_children.contains(&c) {
                    (true, child_pos(old_b_children, c))
                } else {
                    (false, child_pos(old_tree.children(b_parent), c))
                }
            })
            .collect(),
        matches: Vec::new(),
    };
    let roots: Vec<u32> = src.roots.iter().map(|&r| ab.emit(r, None)).collect();
    ab.rw.finish(roots)
}

struct AbsorbRewrite<'a> {
    rw: Rewriter<'a>,
    a: NodeId,
    b_parent: NodeId,
    /// Ancestors of `b` in the old tree: the root-to-`B` path whose unions
    /// must be re-emitted (everything else is copied verbatim).
    on_path: BTreeSet<NodeId>,
    /// Kid position of `b` in its parent's old child list.
    pos_b: u32,
    /// For each kid slot of the rewritten `B`-parent union: `(spliced from
    /// the matched B-entry, old kid position)`.
    spliced_slots: Vec<(bool, u32)>,
    /// Scratch: `(entry index, B-union id, matched B-entry index)` of the
    /// surviving entries of the `B`-parent union being rewritten.
    matches: Vec<(u32, u32, u32)>,
}

impl AbsorbRewrite<'_> {
    /// Emits union `uid`; `ctx` is the `A`-value of the enclosing `A`-entry,
    /// if the walk has passed one.
    fn emit(&mut self, uid: u32, ctx: Option<Value>) -> u32 {
        let src = self.rw.src;
        let rec = src.unions[uid as usize];
        if rec.node == self.b_parent {
            return self.emit_spliced(uid, ctx);
        }
        if rec.node != self.a && !self.on_path.contains(&rec.node) {
            return self.rw.copy_union(uid);
        }
        // On the root-to-B path (possibly the A-union itself, which sets the
        // context value for its subtree).
        let sets_ctx = rec.node == self.a;
        let out = self
            .rw
            .begin_union(rec.node, src.value_slice(uid).iter().copied());
        let kid_count = self.rw.src_kid_count(rec.node);
        for i in 0..rec.entries_len {
            let entry_ctx = if sets_ctx {
                Some(src.value_slice(uid)[i as usize])
            } else {
                ctx
            };
            let mark = self.rw.mark();
            for k in 0..kid_count {
                let kid = self.emit(src.kid(uid, i, k), entry_ctx);
                self.rw.push_kid(kid);
            }
            self.rw.end_entry(out, i, mark);
        }
        out
    }

    /// The `B`-parent union: each entry's `B` slot is replaced by the kid
    /// subtrees of the `B`-entry matching the context value (binary search
    /// over the sorted entry slice); entries whose `B`-union misses the
    /// value are dropped — the prune pass cascades the removals upwards.
    fn emit_spliced(&mut self, uid: u32, ctx: Option<Value>) -> u32 {
        let src = self.rw.src;
        let rec = src.unions[uid as usize];
        let sets_ctx = rec.node == self.a;
        let values = src.value_slice(uid);
        self.matches.clear();
        for i in 0..rec.entries_len {
            let value = if sets_ctx {
                values[i as usize]
            } else {
                ctx.expect("the B-parent lies inside an A-entry subtree")
            };
            let b_uid = src.kid(uid, i, self.pos_b);
            if let Some(j) = kernel::find_value(src.value_slice(b_uid), value) {
                self.matches.push((i, b_uid, j as u32));
            }
        }
        let out = self.rw.begin_union_raw(rec.node, self.matches.len() as u32);
        for m in 0..self.matches.len() {
            self.rw.push_value(values[self.matches[m].0 as usize]);
        }
        for m in 0..self.matches.len() {
            let (i, b_uid, j) = self.matches[m];
            let mark = self.rw.mark();
            for s in 0..self.spliced_slots.len() {
                let (from_b, pos) = self.spliced_slots[s];
                let kid = if from_b {
                    self.rw.copy_union(src.kid(b_uid, j, pos))
                } else {
                    self.rw.copy_union(src.kid(uid, i, pos))
                };
                self.rw.push_kid(kid);
            }
            self.rw.end_entry(out, m as u32, mark);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize;
    use crate::frep::{Entry, Union};
    use crate::ops::oracle;
    use fdb_common::AttrId;
    use fdb_ftree::DepEdge;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// Tree A{0} → B{1} → C{2} with relations {0,1} and {1,2}; the data is a
    /// two-step chain.  Absorbing C into A keeps only the chains whose two
    /// endpoints are equal.
    fn chain_rep() -> FRep {
        let edges = vec![
            DepEdge::new("RAB", attrs(&[0, 1]), 4),
            DepEdge::new("RBC", attrs(&[1, 2]), 4),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
        let b_entry = |bv: u64, cs: &[u64]| Entry {
            value: Value::new(bv),
            children: vec![Union::new(
                c,
                cs.iter().map(|&v| Entry::leaf(Value::new(v))).collect(),
            )],
        };
        // A=1: B∈{10 → C {1,3}, 11 → C {2}};  A=2: B∈{10 → C {1,3}}.
        let a_union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(b, vec![b_entry(10, &[1, 3]), b_entry(11, &[2])])],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![b_entry(10, &[1, 3])])],
                },
            ],
        );
        FRep::from_parts(tree, vec![a_union]).unwrap()
    }

    #[test]
    fn absorb_keeps_only_matching_values() {
        let mut rep = chain_rep();
        let reference = rep.clone();
        let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let c = rep.tree().node_of_attr(AttrId(2)).unwrap();
        // Reference: flat tuples with A = C.
        let expected: BTreeSet<Vec<Value>> = materialize(&rep)
            .unwrap()
            .rows()
            .filter(|r| r[0] == r[2])
            .map(|r| r.to_vec())
            .collect();
        absorb(&mut rep, a, c).unwrap();
        rep.validate().unwrap();
        assert_eq!(materialize(&rep).unwrap().tuple_set(), expected);
        // A and C are now one node labelled by both attributes.
        let merged = rep.tree().node_of_attr(AttrId(0)).unwrap();
        assert_eq!(merged, rep.tree().node_of_attr(AttrId(2)).unwrap());
        assert!(rep.tree().is_normalised());
        // Only the A=1 branch had C=1 below B=10; A=2 had C∈{1,3} ∌ 2.
        assert_eq!(rep.tuple_count(), 1);
        // Bit-for-bit what the thaw path would have built.
        let mut via_oracle = reference;
        oracle::absorb(&mut via_oracle, a, c).unwrap();
        assert!(
            rep.store_identical(&via_oracle),
            "arena:\n{}\noracle:\n{}",
            rep.dump_store(),
            via_oracle.dump_store()
        );
    }

    #[test]
    fn absorb_example10_pushes_independent_subtrees_up() {
        // Example 10: A{0} → {B,B'}{1,2} → {C,C'}{3,4} → D{5} with relations
        // {A,B}, {B',C}, {C',D}.  After absorbing {C,C'} into A, D no longer
        // depends on {B,B'}, so normalisation pushes D up under the merged
        // root.
        let edges = vec![
            DepEdge::new("R1", attrs(&[0, 1]), 2),
            DepEdge::new("R2", attrs(&[2, 3]), 2),
            DepEdge::new("R3", attrs(&[4, 5]), 2),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let bb = tree.add_node(attrs(&[1, 2]), Some(a)).unwrap();
        let cc = tree.add_node(attrs(&[3, 4]), Some(bb)).unwrap();
        let d = tree.add_node(attrs(&[5]), Some(cc)).unwrap();
        let cc_entry = |v: u64, ds: &[u64]| Entry {
            value: Value::new(v),
            children: vec![Union::new(
                d,
                ds.iter().map(|&x| Entry::leaf(Value::new(x))).collect(),
            )],
        };
        let bb_entry = |v: u64, ccs: Vec<Entry>| Entry {
            value: Value::new(v),
            children: vec![Union::new(cc, ccs)],
        };
        // The D-values are a function of the C-value alone (D is tied to C'
        // by R3), as in any factorisation of σ(R1 × R2 × R3): C=1 pairs with
        // D ∈ {100, 101} and C=2 pairs with D ∈ {200} wherever they occur.
        let a_union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        bb,
                        vec![
                            bb_entry(10, vec![cc_entry(1, &[100, 101]), cc_entry(2, &[200])]),
                            bb_entry(11, vec![cc_entry(1, &[100, 101])]),
                        ],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(bb, vec![bb_entry(1, vec![cc_entry(2, &[200])])])],
                },
            ],
        );
        let mut rep = FRep::from_parts(tree, vec![a_union]).unwrap();
        let reference = rep.clone();
        let expected: BTreeSet<Vec<Value>> = materialize(&rep)
            .unwrap()
            .rows()
            .filter(|r| r[0] == r[3]) // A = C (attr 0 = attr 3)
            .map(|r| r.to_vec())
            .collect();
        let pushed = absorb(&mut rep, a, cc).unwrap();
        rep.validate().unwrap();
        assert_eq!(materialize(&rep).unwrap().tuple_set(), expected);
        // D was pushed up next to {B,B'}: the merged root has two children.
        let root = rep.tree().roots()[0];
        assert_eq!(rep.tree().children(root).len(), 2);
        assert!(pushed.contains(&d));
        assert!(rep.tree().is_normalised());
        // Same push-up sequence and bit-for-bit the same store as the thaw
        // path.
        let mut via_oracle = reference;
        let oracle_pushed = oracle::absorb(&mut via_oracle, a, cc).unwrap();
        assert_eq!(pushed, oracle_pushed);
        assert!(
            rep.store_identical(&via_oracle),
            "arena:\n{}\noracle:\n{}",
            rep.dump_store(),
            via_oracle.dump_store()
        );
    }

    #[test]
    fn absorb_requires_an_ancestor_descendant_pair() {
        let mut rep = chain_rep();
        let b = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
        assert!(absorb(&mut rep, b, a).is_err());
    }

    #[test]
    fn absorb_that_matches_nothing_gives_the_empty_representation() {
        // Shift the C values so that no A value ever equals a C value.
        let mut rep = chain_rep();
        let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let c = rep.tree().node_of_attr(AttrId(2)).unwrap();
        // Select only C values ≥ 3 (so A ∈ {1,2} can only match C = 3 … but
        // then restrict A to 2 which never pairs with 3).
        crate::ops::select::select_const(
            &mut rep,
            AttrId(0),
            fdb_common::ComparisonOp::Eq,
            Value::new(2),
        )
        .unwrap();
        crate::ops::select::select_const(
            &mut rep,
            AttrId(2),
            fdb_common::ComparisonOp::Ge,
            Value::new(3),
        )
        .unwrap();
        absorb(&mut rep, a, c).unwrap();
        rep.validate().unwrap();
        assert!(rep.represents_empty());
    }
}
