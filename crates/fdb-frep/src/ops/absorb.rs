//! The absorb selection operator `α_{A,B}`.
//!
//! Absorb enforces an equality `A = B` when the node `B` is a *descendant*
//! of the node `A`.  Inside the subtree of every `A`-value `a`, each union
//! over `B` is restricted to the single entry with value `a` (or emptied if
//! no such entry exists), the `B` level is spliced out (its children move up
//! to `B`'s former parent), and `B`'s attributes join `A`'s class
//! (Figure 3(d)).  As in the paper, the operator finishes with a
//! normalisation step: removing `B` can make nodes below it independent of
//! the nodes in between, so they may be pushed up.

use crate::frep::FRep;
use crate::node::Union;
use crate::ops::restructure::normalise_impl;
use crate::ops::{visit_unions_of_node_mut, MutRep};
use fdb_common::{FdbError, Result, Value};
use fdb_ftree::NodeId;

/// Absorb operator `α_{A,B}` where `a` is an ancestor of `b`: enforces
/// `A = B`, fuses `b` into `a` and normalises.  Returns the nodes pushed up
/// by the final normalisation step.
pub fn absorb(rep: &mut FRep, a: NodeId, b: NodeId) -> Result<Vec<NodeId>> {
    rep.tree().check_node(a)?;
    rep.tree().check_node(b)?;
    if !rep.tree().is_ancestor(a, b) {
        return Err(FdbError::InvalidOperator {
            detail: format!("absorb: {a} is not an ancestor of {b}"),
        });
    }

    let mut m = MutRep::thaw(rep);
    visit_unions_of_node_mut(&mut m.roots, a, &mut |a_union: &mut Union| {
        a_union
            .entries
            .retain_mut(|entry| restrict_children(&mut entry.children, b, entry.value));
    });

    m.tree.absorb_into_ancestor(a, b)?;
    m.prune_empty();
    let pushed = normalise_impl(&mut m)?;
    *rep = m.freeze();
    Ok(pushed)
}

/// Restricts every union over `b` among `children` (recursively) to the
/// single entry with the given value and splices the `b` level out.  Returns
/// `false` if the product represented by `children` became empty.
fn restrict_children(children: &mut Vec<Union>, b: NodeId, value: Value) -> bool {
    let mut spliced: Vec<Union> = Vec::new();
    let mut idx = 0;
    while idx < children.len() {
        if children[idx].node == b {
            let mut b_union = children.remove(idx);
            // Binary search on the sorted entries (unions keep their values
            // strictly increasing), not a linear scan.
            match b_union.take_value(value) {
                Some(matched) => spliced.extend(matched.children),
                None => return false,
            }
        } else {
            let union = &mut children[idx];
            union
                .entries
                .retain_mut(|entry| restrict_children(&mut entry.children, b, value));
            if union.is_empty() {
                // Every value of this union became inconsistent with `A = B`:
                // the enclosing product is empty.
                return false;
            }
            idx += 1;
        }
    }
    children.extend(spliced);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize;
    use crate::frep::Entry;
    use fdb_common::AttrId;
    use fdb_ftree::{DepEdge, FTree};
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// Tree A{0} → B{1} → C{2} with relations {0,1} and {1,2}; the data is a
    /// two-step chain.  Absorbing C into A keeps only the chains whose two
    /// endpoints are equal.
    fn chain_rep() -> FRep {
        let edges = vec![
            DepEdge::new("RAB", attrs(&[0, 1]), 4),
            DepEdge::new("RBC", attrs(&[1, 2]), 4),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
        let b_entry = |bv: u64, cs: &[u64]| Entry {
            value: Value::new(bv),
            children: vec![Union::new(
                c,
                cs.iter().map(|&v| Entry::leaf(Value::new(v))).collect(),
            )],
        };
        // A=1: B∈{10 → C {1,3}, 11 → C {2}};  A=2: B∈{10 → C {1,3}}.
        let a_union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(b, vec![b_entry(10, &[1, 3]), b_entry(11, &[2])])],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![b_entry(10, &[1, 3])])],
                },
            ],
        );
        FRep::from_parts(tree, vec![a_union]).unwrap()
    }

    #[test]
    fn absorb_keeps_only_matching_values() {
        let mut rep = chain_rep();
        let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let c = rep.tree().node_of_attr(AttrId(2)).unwrap();
        // Reference: flat tuples with A = C.
        let expected: BTreeSet<Vec<Value>> = materialize(&rep)
            .unwrap()
            .rows()
            .filter(|r| r[0] == r[2])
            .map(|r| r.to_vec())
            .collect();
        absorb(&mut rep, a, c).unwrap();
        rep.validate().unwrap();
        assert_eq!(materialize(&rep).unwrap().tuple_set(), expected);
        // A and C are now one node labelled by both attributes.
        let merged = rep.tree().node_of_attr(AttrId(0)).unwrap();
        assert_eq!(merged, rep.tree().node_of_attr(AttrId(2)).unwrap());
        assert!(rep.tree().is_normalised());
        // Only the A=1 branch had C=1 below B=10; A=2 had C∈{1,3} ∌ 2.
        assert_eq!(rep.tuple_count(), 1);
    }

    #[test]
    fn absorb_example10_pushes_independent_subtrees_up() {
        // Example 10: A{0} → {B,B'}{1,2} → {C,C'}{3,4} → D{5} with relations
        // {A,B}, {B',C}, {C',D}.  After absorbing {C,C'} into A, D no longer
        // depends on {B,B'}, so normalisation pushes D up under the merged
        // root.
        let edges = vec![
            DepEdge::new("R1", attrs(&[0, 1]), 2),
            DepEdge::new("R2", attrs(&[2, 3]), 2),
            DepEdge::new("R3", attrs(&[4, 5]), 2),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let bb = tree.add_node(attrs(&[1, 2]), Some(a)).unwrap();
        let cc = tree.add_node(attrs(&[3, 4]), Some(bb)).unwrap();
        let d = tree.add_node(attrs(&[5]), Some(cc)).unwrap();
        let cc_entry = |v: u64, ds: &[u64]| Entry {
            value: Value::new(v),
            children: vec![Union::new(
                d,
                ds.iter().map(|&x| Entry::leaf(Value::new(x))).collect(),
            )],
        };
        let bb_entry = |v: u64, ccs: Vec<Entry>| Entry {
            value: Value::new(v),
            children: vec![Union::new(cc, ccs)],
        };
        // The D-values are a function of the C-value alone (D is tied to C'
        // by R3), as in any factorisation of σ(R1 × R2 × R3): C=1 pairs with
        // D ∈ {100, 101} and C=2 pairs with D ∈ {200} wherever they occur.
        let a_union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        bb,
                        vec![
                            bb_entry(10, vec![cc_entry(1, &[100, 101]), cc_entry(2, &[200])]),
                            bb_entry(11, vec![cc_entry(1, &[100, 101])]),
                        ],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(bb, vec![bb_entry(1, vec![cc_entry(2, &[200])])])],
                },
            ],
        );
        let mut rep = FRep::from_parts(tree, vec![a_union]).unwrap();
        let expected: BTreeSet<Vec<Value>> = materialize(&rep)
            .unwrap()
            .rows()
            .filter(|r| r[0] == r[3]) // A = C (attr 0 = attr 3)
            .map(|r| r.to_vec())
            .collect();
        let pushed = absorb(&mut rep, a, cc).unwrap();
        rep.validate().unwrap();
        assert_eq!(materialize(&rep).unwrap().tuple_set(), expected);
        // D was pushed up next to {B,B'}: the merged root has two children.
        let root = rep.tree().roots()[0];
        assert_eq!(rep.tree().children(root).len(), 2);
        assert!(pushed.contains(&d));
        assert!(rep.tree().is_normalised());
    }

    #[test]
    fn absorb_requires_an_ancestor_descendant_pair() {
        let mut rep = chain_rep();
        let b = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
        assert!(absorb(&mut rep, b, a).is_err());
    }

    #[test]
    fn absorb_that_matches_nothing_gives_the_empty_representation() {
        // Shift the C values so that no A value ever equals a C value.
        let mut rep = chain_rep();
        let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let c = rep.tree().node_of_attr(AttrId(2)).unwrap();
        // Select only C values ≥ 3 (so A ∈ {1,2} can only match C = 3 … but
        // then restrict A to 2 which never pairs with 3).
        crate::ops::select::select_const(
            &mut rep,
            AttrId(0),
            fdb_common::ComparisonOp::Eq,
            Value::new(2),
        )
        .unwrap();
        crate::ops::select::select_const(
            &mut rep,
            AttrId(2),
            fdb_common::ComparisonOp::Ge,
            Value::new(3),
        )
        .unwrap();
        absorb(&mut rep, a, c).unwrap();
        rep.validate().unwrap();
        assert!(rep.represents_empty());
    }
}
