//! The projection operator `π_Ā`.
//!
//! Projection replaces the singletons of every attribute outside the
//! projection list with the nullary singleton `⟨⟩`.  On the structure this
//! means:
//!
//! 1. the projected-away attributes are *marked* on their nodes (nodes are
//!    not removed immediately — an inner node whose attributes are all
//!    projected away still carries the correlation between its ancestors and
//!    descendants, exactly the paper's `A — B — C` example);
//! 2. leaves whose attributes are all marked are removed (their union of
//!    singletons collapses to `⟨⟩`), merging the dependency edges that used
//!    to meet in them so transitive dependencies survive;
//! 3. remaining marked inner nodes are swapped downwards until they become
//!    leaves, then removed as well.
//!
//! Every step is **arena-native**: the marking touches only the f-tree, each
//! leaf removal is one [`Rewriter`] pass that drops the leaf's unions and
//! kid slots, and the swap-down steps reuse the arena-native
//! [`crate::ops::swap`].  The old thaw-once/freeze-once implementation
//! survives as [`crate::ops::oracle`].
//!
//! The represented relation afterwards is the projection (with set
//! semantics — a factorised representation never stores duplicate tuples).

use crate::frep::FRep;
use crate::ops::swap::swap;
use crate::ops::{child_pos, debug_validate};
use crate::store::{Rewriter, Store};
use fdb_common::{AttrId, Result};
use fdb_ftree::{FTree, NodeId};
use std::collections::BTreeSet;

/// Projection operator `π_keep`: projects the representation onto the given
/// attributes.  Attributes in `keep` that do not occur in the representation
/// are ignored.
pub fn project(rep: &mut FRep, keep: &BTreeSet<AttrId>) -> Result<()> {
    let all = rep.tree().all_attrs();
    let marked: BTreeSet<AttrId> = all.difference(keep).copied().collect();
    if marked.is_empty() {
        return Ok(());
    }

    // Marking is a schema-level change only; the data is untouched until a
    // node actually disappears.
    rep.tree_mut().mark_attrs_projected(&marked);

    loop {
        // Remove every leaf whose attributes have all been projected away.
        let removable = rep.tree().removable_projected_leaves();
        if !removable.is_empty() {
            for leaf in removable {
                remove_leaf(rep, leaf)?;
            }
            continue;
        }
        // Otherwise pick a fully-projected inner node and swap it one level
        // down (each swap strictly shrinks its subtree, so this terminates).
        let marked_inner = rep
            .tree()
            .node_ids()
            .into_iter()
            .find(|&n| rep.tree().visible_attrs(n).is_empty() && !rep.tree().is_leaf(n));
        match marked_inner {
            Some(node) => {
                let child = rep.tree().children(node)[0];
                swap(rep, child)?;
            }
            None => break,
        }
    }
    debug_validate(rep, "project");
    Ok(())
}

/// Removes one fully-projected leaf from both the tree and the arena: its
/// unions vanish, its kid slot disappears from the parent's entries, and the
/// dependency edges that met in it are merged.
fn remove_leaf(rep: &mut FRep, leaf: NodeId) -> Result<()> {
    let parent = rep.tree().parent(leaf);
    let mut new_tree = rep.tree().clone();
    new_tree.remove_projected_leaf(leaf)?;
    let store = remove_leaf_rewrite(rep.store(), rep.tree(), leaf, parent);
    rep.replace_parts(new_tree, store);
    debug_validate(rep, "project: leaf removal");
    Ok(())
}

/// Emits the arena without the leaf's unions.
fn remove_leaf_rewrite(
    src: &Store,
    old_tree: &FTree,
    leaf: NodeId,
    parent: Option<NodeId>,
) -> Store {
    let mut rl = RemoveLeaf {
        rw: Rewriter::new(src, old_tree),
        parent,
        on_path: old_tree.ancestors(leaf).into_iter().collect(),
        kept_slots: parent
            .map(|p| {
                let pos_leaf = child_pos(old_tree.children(p), leaf);
                (0..old_tree.children(p).len() as u32)
                    .filter(|&k| k != pos_leaf)
                    .collect()
            })
            .unwrap_or_default(),
    };
    let roots: Vec<u32> = match parent {
        Some(_) => src.roots.iter().map(|&r| rl.emit(r)).collect(),
        // A root leaf: its union simply drops out of the root product.
        None => src
            .roots
            .iter()
            .filter(|&&r| src.unions[r as usize].node != leaf)
            .map(|&r| rl.rw.copy_union(r))
            .collect(),
    };
    rl.rw.finish(roots)
}

struct RemoveLeaf<'a> {
    rw: Rewriter<'a>,
    parent: Option<NodeId>,
    /// Ancestors of the leaf in the old tree (so including the parent).
    on_path: BTreeSet<NodeId>,
    /// The parent's kid positions that survive (everything but the leaf's).
    kept_slots: Vec<u32>,
}

impl RemoveLeaf<'_> {
    fn emit(&mut self, uid: u32) -> u32 {
        let src = self.rw.src;
        let rec = src.unions[uid as usize];
        if Some(rec.node) == self.parent {
            // Drop the leaf's kid slot; everything below the others is
            // unchanged.
            let out = self
                .rw
                .begin_union(rec.node, src.value_slice(uid).iter().copied());
            for i in 0..rec.entries_len {
                let mark = self.rw.mark();
                for s in 0..self.kept_slots.len() {
                    let pos = self.kept_slots[s];
                    let kid = self.rw.copy_union(src.kid(uid, i, pos));
                    self.rw.push_kid(kid);
                }
                self.rw.end_entry(out, i, mark);
            }
            return out;
        }
        if !self.on_path.contains(&rec.node) {
            return self.rw.copy_union(uid);
        }
        // A strict ancestor above the parent.
        let out = self
            .rw
            .begin_union(rec.node, src.value_slice(uid).iter().copied());
        let kid_count = self.rw.src_kid_count(rec.node);
        for i in 0..rec.entries_len {
            let mark = self.rw.mark();
            for k in 0..kid_count {
                let kid = self.emit(src.kid(uid, i, k));
                self.rw.push_kid(kid);
            }
            self.rw.end_entry(out, i, mark);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize;
    use crate::frep::{Entry, Union};
    use crate::ops::oracle;
    use fdb_common::Value;
    use fdb_ftree::DepEdge;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// A{0} → B{1} → C{2} over relations {0,1} and {1,2}; projections of a
    /// two-step chain.
    fn chain() -> FRep {
        let edges = vec![
            DepEdge::new("RAB", attrs(&[0, 1]), 3),
            DepEdge::new("RBC", attrs(&[1, 2]), 3),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
        let b_entry = |v: u64, cs: &[u64]| Entry {
            value: Value::new(v),
            children: vec![Union::new(
                c,
                cs.iter().map(|&x| Entry::leaf(Value::new(x))).collect(),
            )],
        };
        let u = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        b,
                        vec![b_entry(10, &[100, 200]), b_entry(11, &[100])],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![b_entry(10, &[300])])],
                },
            ],
        );
        FRep::from_parts(tree, vec![u]).unwrap()
    }

    fn project_reference(rep: &FRep, keep: &[u32]) -> BTreeSet<Vec<Value>> {
        let keep_attrs: Vec<AttrId> = keep.iter().map(|&i| AttrId(i)).collect();
        materialize(rep)
            .unwrap()
            .project_distinct(&keep_attrs)
            .unwrap()
            .tuple_set()
    }

    /// The arena-native projection must match the thaw-path oracle store for
    /// store, tree shape and represented relation.
    fn check_against_oracle(rep: &FRep, keep: &BTreeSet<AttrId>) {
        let mut arena = rep.clone();
        let mut reference = rep.clone();
        project(&mut arena, keep).unwrap();
        oracle::project(&mut reference, keep).unwrap();
        assert!(
            arena.store_identical(&reference),
            "keep {keep:?}: arena:\n{}\noracle:\n{}",
            arena.dump_store(),
            reference.dump_store()
        );
    }

    #[test]
    fn projecting_away_a_leaf_removes_it() {
        let mut rep = chain();
        let expected = project_reference(&rep, &[0, 1]);
        check_against_oracle(&rep, &attrs(&[0, 1]));
        project(&mut rep, &attrs(&[0, 1])).unwrap();
        rep.validate().unwrap();
        assert_eq!(rep.tree().node_count(), 2);
        assert_eq!(rep.visible_attrs(), vec![AttrId(0), AttrId(1)]);
        assert_eq!(materialize(&rep).unwrap().tuple_set(), expected);
    }

    #[test]
    fn projecting_away_an_inner_node_preserves_the_correlation() {
        // Project away B: A and C stay transitively dependent — the result
        // must be exactly π_{A,C} of the chain, not the cross product.
        let mut rep = chain();
        let expected = project_reference(&rep, &[0, 2]);
        check_against_oracle(&rep, &attrs(&[0, 2]));
        project(&mut rep, &attrs(&[0, 2])).unwrap();
        rep.validate().unwrap();
        assert_eq!(rep.visible_attrs(), vec![AttrId(0), AttrId(2)]);
        assert_eq!(materialize(&rep).unwrap().tuple_set(), expected);
        // (1, 100), (1, 200), (2, 300): the pair (2, 100) must NOT appear.
        assert_eq!(rep.tuple_count(), 3);
    }

    #[test]
    fn projecting_everything_away_leaves_the_nullary_relation() {
        let mut rep = chain();
        check_against_oracle(&rep, &BTreeSet::new());
        project(&mut rep, &BTreeSet::new()).unwrap();
        rep.validate().unwrap();
        assert!(rep.tree().is_empty());
        assert_eq!(rep.tuple_count(), 1); // the nullary tuple ⟨⟩
        assert_eq!(rep.size(), 0);
    }

    #[test]
    fn identity_projection_is_a_no_op() {
        let mut rep = chain();
        let before = materialize(&rep).unwrap().tuple_set();
        let size = rep.size();
        project(&mut rep, &attrs(&[0, 1, 2])).unwrap();
        assert_eq!(rep.size(), size);
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
    }

    #[test]
    fn projection_onto_the_middle_attribute_only() {
        let mut rep = chain();
        let expected = project_reference(&rep, &[1]);
        check_against_oracle(&rep, &attrs(&[1]));
        project(&mut rep, &attrs(&[1])).unwrap();
        rep.validate().unwrap();
        assert_eq!(materialize(&rep).unwrap().tuple_set(), expected);
        assert_eq!(rep.tuple_count(), 2); // values 10 and 11
    }
}
