//! The projection operator `π_Ā`.
//!
//! Projection replaces the singletons of every attribute outside the
//! projection list with the nullary singleton `⟨⟩`.  On the structure this
//! means:
//!
//! 1. the projected-away attributes are *marked* on their nodes (nodes are
//!    not removed immediately — an inner node whose attributes are all
//!    projected away still carries the correlation between its ancestors and
//!    descendants, exactly the paper's `A — B — C` example);
//! 2. leaves whose attributes are all marked are removed (their union of
//!    singletons collapses to `⟨⟩`), merging the dependency edges that used
//!    to meet in them so transitive dependencies survive;
//! 3. remaining marked inner nodes are swapped downwards until they become
//!    leaves, then removed as well.
//!
//! The represented relation afterwards is the projection (with set
//! semantics — a factorised representation never stores duplicate tuples).

use crate::frep::FRep;
use crate::ops::swap::swap_impl;
use crate::ops::{visit_contexts_of_node_mut, MutRep};
use fdb_common::{AttrId, Result};
use std::collections::BTreeSet;

/// Projection operator `π_keep`: projects the representation onto the given
/// attributes.  Attributes in `keep` that do not occur in the representation
/// are ignored.
pub fn project(rep: &mut FRep, keep: &BTreeSet<AttrId>) -> Result<()> {
    let all = rep.tree().all_attrs();
    let marked: BTreeSet<AttrId> = all.difference(keep).copied().collect();
    if marked.is_empty() {
        return Ok(());
    }

    // The whole leaf-removal / swap-down loop runs on the thawed builder
    // form; the arena is frozen exactly once at the end.
    let mut m = MutRep::thaw(rep);
    m.tree.mark_attrs_projected(&marked);

    loop {
        // Remove every leaf whose attributes have all been projected away.
        let removable = m.tree.removable_projected_leaves();
        if !removable.is_empty() {
            for leaf in removable {
                let parent = m.tree.parent(leaf);
                visit_contexts_of_node_mut(&mut m, parent, &mut |context| {
                    context.retain(|u| u.node != leaf);
                });
                m.tree.remove_projected_leaf(leaf)?;
            }
            continue;
        }
        // Otherwise pick a fully-projected inner node and swap it one level
        // down (each swap strictly shrinks its subtree, so this terminates).
        let marked_inner = m
            .tree
            .node_ids()
            .into_iter()
            .find(|&n| m.tree.visible_attrs(n).is_empty() && !m.tree.is_leaf(n));
        match marked_inner {
            Some(node) => {
                let child = m.tree.children(node)[0];
                swap_impl(&mut m, child)?;
            }
            None => break,
        }
    }
    *rep = m.freeze();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize;
    use crate::frep::{Entry, Union};
    use fdb_common::Value;
    use fdb_ftree::{DepEdge, FTree};

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// A{0} → B{1} → C{2} over relations {0,1} and {1,2}; projections of a
    /// two-step chain.
    fn chain() -> FRep {
        let edges = vec![
            DepEdge::new("RAB", attrs(&[0, 1]), 3),
            DepEdge::new("RBC", attrs(&[1, 2]), 3),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
        let b_entry = |v: u64, cs: &[u64]| Entry {
            value: Value::new(v),
            children: vec![Union::new(
                c,
                cs.iter().map(|&x| Entry::leaf(Value::new(x))).collect(),
            )],
        };
        let u = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        b,
                        vec![b_entry(10, &[100, 200]), b_entry(11, &[100])],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![b_entry(10, &[300])])],
                },
            ],
        );
        FRep::from_parts(tree, vec![u]).unwrap()
    }

    fn project_reference(rep: &FRep, keep: &[u32]) -> BTreeSet<Vec<Value>> {
        let keep_attrs: Vec<AttrId> = keep.iter().map(|&i| AttrId(i)).collect();
        materialize(rep)
            .unwrap()
            .project_distinct(&keep_attrs)
            .unwrap()
            .tuple_set()
    }

    #[test]
    fn projecting_away_a_leaf_removes_it() {
        let mut rep = chain();
        let expected = project_reference(&rep, &[0, 1]);
        project(&mut rep, &attrs(&[0, 1])).unwrap();
        rep.validate().unwrap();
        assert_eq!(rep.tree().node_count(), 2);
        assert_eq!(rep.visible_attrs(), vec![AttrId(0), AttrId(1)]);
        assert_eq!(materialize(&rep).unwrap().tuple_set(), expected);
    }

    #[test]
    fn projecting_away_an_inner_node_preserves_the_correlation() {
        // Project away B: A and C stay transitively dependent — the result
        // must be exactly π_{A,C} of the chain, not the cross product.
        let mut rep = chain();
        let expected = project_reference(&rep, &[0, 2]);
        project(&mut rep, &attrs(&[0, 2])).unwrap();
        rep.validate().unwrap();
        assert_eq!(rep.visible_attrs(), vec![AttrId(0), AttrId(2)]);
        assert_eq!(materialize(&rep).unwrap().tuple_set(), expected);
        // (1, 100), (1, 200), (2, 300): the pair (2, 100) must NOT appear.
        assert_eq!(rep.tuple_count(), 3);
    }

    #[test]
    fn projecting_everything_away_leaves_the_nullary_relation() {
        let mut rep = chain();
        project(&mut rep, &BTreeSet::new()).unwrap();
        rep.validate().unwrap();
        assert!(rep.tree().is_empty());
        assert_eq!(rep.tuple_count(), 1); // the nullary tuple ⟨⟩
        assert_eq!(rep.size(), 0);
    }

    #[test]
    fn identity_projection_is_a_no_op() {
        let mut rep = chain();
        let before = materialize(&rep).unwrap().tuple_set();
        let size = rep.size();
        project(&mut rep, &attrs(&[0, 1, 2])).unwrap();
        assert_eq!(rep.size(), size);
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
    }

    #[test]
    fn projection_onto_the_middle_attribute_only() {
        let mut rep = chain();
        let expected = project_reference(&rep, &[1]);
        project(&mut rep, &attrs(&[1])).unwrap();
        rep.validate().unwrap();
        assert_eq!(materialize(&rep).unwrap().tuple_set(), expected);
        assert_eq!(rep.tuple_count(), 2); // values 10 and 11
    }
}
