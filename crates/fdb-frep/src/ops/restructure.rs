//! The push-up operator `ψ_B` and the normalisation operator `η`.
//!
//! Push-up factors a common subexpression out of a union: when a node `B` is
//! a child of `A` but `A` does not depend on `B` or its descendants, every
//! copy of the `B`-union under the different `A`-values is identical, so one
//! copy can be lifted out of the `A`-union and multiplied with it
//! (Figure 3(a)):
//!
//! ```text
//! ⋃_a ⟨A:a⟩ × (⋃_b ⟨B:b⟩ × F_b) × E_a   ⇒   (⋃_b ⟨B:b⟩ × F_b) × ⋃_a ⟨A:a⟩ × E_a
//! ```
//!
//! Normalisation applies push-ups bottom-up until no node can be lifted any
//! further; the result is the unique normalised f-tree reachable this way,
//! and the representation only ever shrinks.
//!
//! Both operators are **arena-native**: the output arena is emitted in one
//! pass through a [`Rewriter`] — `A`-unions are re-emitted without their `B`
//! slot, the lifted `B`-union is copied once from the first `A`-entry (all
//! copies are equal by independence) into the surrounding product context,
//! and everything else is copied record-by-record.  No thaw, no builder
//! tree; the old implementation survives as [`crate::ops::oracle`].

use crate::frep::FRep;
use crate::ops::{child_pos, debug_validate};
use crate::store::{Rewriter, Store};
use fdb_common::{FdbError, Result};
use fdb_ftree::{FTree, NodeId};
use std::collections::BTreeSet;

/// Push-up operator `ψ_B`: lifts node `b` (with its subtree) one level up in
/// both the f-tree and the representation.
pub fn push_up(rep: &mut FRep, b: NodeId) -> Result<()> {
    check_push_up(rep.tree(), b)?;
    let a = rep.tree().parent(b).expect("checked: b has a parent");
    let mut new_tree = rep.tree().clone();
    new_tree.push_up(b)?;
    let store = push_up_rewrite(rep.store(), rep.tree(), &new_tree, a, b);
    rep.replace_parts(new_tree, store);
    debug_validate(rep, "push-up");
    Ok(())
}

/// Validates push-up applicability without touching data.
fn check_push_up(tree: &FTree, b: NodeId) -> Result<()> {
    tree.check_node(b)?;
    let Some(a) = tree.parent(b) else {
        return Err(FdbError::InvalidOperator {
            detail: format!("push-up: {b} is a root"),
        });
    };
    if tree.depends_on_subtree(a, b) {
        return Err(FdbError::InvalidOperator {
            detail: format!("push-up: parent {a} depends on the subtree of {b}"),
        });
    }
    Ok(())
}

/// Emits the lifted arena.
fn push_up_rewrite(src: &Store, old_tree: &FTree, new_tree: &FTree, a: NodeId, b: NodeId) -> Store {
    let grandparent = old_tree.parent(a);
    let mut pu = PushUpRewrite {
        rw: Rewriter::new(src, old_tree),
        a,
        b,
        grandparent,
        on_path: old_tree.ancestors(a).into_iter().collect(),
        pos_a_in_g: grandparent.map(|g| child_pos(old_tree.children(g), a)),
        pos_b_in_a: child_pos(old_tree.children(a), b),
        a_slots: new_tree
            .children(a)
            .iter()
            .map(|&c| child_pos(old_tree.children(a), c))
            .collect(),
    };
    let mut roots: Vec<u32> = src.roots.iter().map(|&r| pu.emit(r)).collect();
    if grandparent.is_none() {
        // `B` became a root of the forest: lift its union out of the
        // `A`-root union, appended after the existing roots exactly where
        // the tree-level push-up attached the node.
        let a_root = src
            .roots
            .iter()
            .copied()
            .find(|&r| src.unions[r as usize].node == a)
            .expect("validated representation: one root union per root node");
        let lifted = pu.emit_lifted(a_root);
        roots.push(lifted);
    }
    pu.rw.finish(roots)
}

struct PushUpRewrite<'a> {
    rw: Rewriter<'a>,
    a: NodeId,
    b: NodeId,
    grandparent: Option<NodeId>,
    /// Ancestors of `A` in the old tree (so including the grandparent).
    on_path: BTreeSet<NodeId>,
    /// Kid position of `A` in the grandparent's old child list.
    pos_a_in_g: Option<u32>,
    /// Kid position of `B` in `A`'s old child list.
    pos_b_in_a: u32,
    /// Old kid positions of `A`'s remaining children, in new child order.
    a_slots: Vec<u32>,
}

impl PushUpRewrite<'_> {
    fn emit(&mut self, uid: u32) -> u32 {
        let src = self.rw.src;
        let rec = src.unions[uid as usize];
        if rec.node == self.a {
            return self.emit_a(uid);
        }
        if Some(rec.node) == self.grandparent {
            return self.emit_grandparent(uid);
        }
        if !self.on_path.contains(&rec.node) {
            return self.rw.copy_union(uid);
        }
        // A strict ancestor above the grandparent: child slots unchanged,
        // but the transform happens somewhere below.
        let out = self
            .rw
            .begin_union(rec.node, src.value_slice(uid).iter().copied());
        let kid_count = self.rw.src_kid_count(rec.node);
        for i in 0..rec.entries_len {
            let mark = self.rw.mark();
            for k in 0..kid_count {
                let kid = self.emit(src.kid(uid, i, k));
                self.rw.push_kid(kid);
            }
            self.rw.end_entry(out, i, mark);
        }
        out
    }

    /// The grandparent union: each entry gains the lifted `B`-union as a new
    /// last kid slot (the tree-level push-up appends `b` to its children).
    fn emit_grandparent(&mut self, uid: u32) -> u32 {
        let src = self.rw.src;
        let rec = src.unions[uid as usize];
        let out = self
            .rw
            .begin_union(rec.node, src.value_slice(uid).iter().copied());
        let kid_count = self.rw.src_kid_count(rec.node);
        let pos_a = self.pos_a_in_g.expect("grandparent knows a's slot");
        for i in 0..rec.entries_len {
            let mark = self.rw.mark();
            for k in 0..kid_count {
                let kid = self.emit(src.kid(uid, i, k));
                self.rw.push_kid(kid);
            }
            let lifted = self.emit_lifted(src.kid(uid, i, pos_a));
            self.rw.push_kid(lifted);
            self.rw.end_entry(out, i, mark);
        }
        out
    }

    /// The `A`-union without its `B` slot.
    fn emit_a(&mut self, uid: u32) -> u32 {
        let src = self.rw.src;
        let rec = src.unions[uid as usize];
        let out = self
            .rw
            .begin_union(self.a, src.value_slice(uid).iter().copied());
        for i in 0..rec.entries_len {
            let mark = self.rw.mark();
            for s in 0..self.a_slots.len() {
                let pos = self.a_slots[s];
                let kid = self.rw.copy_union(src.kid(uid, i, pos));
                self.rw.push_kid(kid);
            }
            self.rw.end_entry(out, i, mark);
        }
        out
    }

    /// The lifted `B`-union of one `A`-union: the copy under the first
    /// `A`-entry (all copies are equal because neither `B` nor its
    /// descendants depend on `A`), or an empty `B`-union if the `A`-union
    /// has no entries.
    fn emit_lifted(&mut self, a_uid: u32) -> u32 {
        let src = self.rw.src;
        if src.union_len(a_uid) == 0 {
            return self.rw.empty_union(self.b);
        }
        let b_uid = src.kid(a_uid, 0, self.pos_b_in_a);
        self.rw.copy_union(b_uid)
    }
}

/// Normalisation operator `η`: applies push-ups bottom-up until the f-tree is
/// normalised.  Returns the nodes pushed up, in order.
pub fn normalise(rep: &mut FRep) -> Result<Vec<NodeId>> {
    let mut applied = Vec::new();
    loop {
        let mut changed = false;
        for node in rep.tree().bottom_up() {
            while rep.tree().can_push_up(node) {
                push_up(rep, node)?;
                applied.push(node);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize;
    use crate::frep::{Entry, Union};
    use crate::ops::oracle;
    use fdb_common::{AttrId, Value};
    use fdb_ftree::DepEdge;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// A representation over the tree A{0} → B{1} where B does *not* depend
    /// on A (two separate unary relations):
    /// ⟨A:1⟩×(⟨B:5⟩∪⟨B:6⟩) ∪ ⟨A:2⟩×(⟨B:5⟩∪⟨B:6⟩).
    fn independent_pair() -> FRep {
        let edges = vec![
            DepEdge::new("R", attrs(&[0]), 2),
            DepEdge::new("S", attrs(&[1]), 2),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let b_union = || {
            Union::new(
                b,
                vec![Entry::leaf(Value::new(5)), Entry::leaf(Value::new(6))],
            )
        };
        let a_union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![b_union()],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![b_union()],
                },
            ],
        );
        FRep::from_parts(tree, vec![a_union]).unwrap()
    }

    #[test]
    fn push_up_factors_out_the_common_subexpression() {
        let mut rep = independent_pair();
        let before = materialize(&rep).unwrap().tuple_set();
        let size_before = rep.size(); // 2 A-singletons + 4 B-singletons = 6
        assert_eq!(size_before, 6);
        let b = rep.tree().node_of_attr(AttrId(1)).unwrap();
        push_up(&mut rep, b).unwrap();
        rep.validate().unwrap();
        // Now (⋃A) × (⋃B): 2 + 2 = 4 singletons, same represented relation.
        assert_eq!(rep.size(), 4);
        assert_eq!(rep.tree().roots().len(), 2);
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
    }

    #[test]
    fn push_up_is_store_identical_to_the_oracle() {
        let rep = independent_pair();
        let b = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let mut arena = rep.clone();
        let mut reference = rep;
        push_up(&mut arena, b).unwrap();
        oracle::push_up(&mut reference, b).unwrap();
        assert!(
            arena.store_identical(&reference),
            "arena:\n{}\noracle:\n{}",
            arena.dump_store(),
            reference.dump_store()
        );
    }

    #[test]
    fn push_up_is_rejected_when_dependent() {
        // A and B in the same relation: the B-unions under different A values
        // are genuinely different, so push-up must refuse.
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 3)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let a_union = Union::new(
            a,
            vec![Entry {
                value: Value::new(1),
                children: vec![Union::new(b, vec![Entry::leaf(Value::new(5))])],
            }],
        );
        let mut rep = FRep::from_parts(tree, vec![a_union]).unwrap();
        assert!(push_up(&mut rep, b).is_err());
        assert!(push_up(&mut rep, a).is_err()); // roots cannot be pushed up
    }

    #[test]
    fn normalise_reaches_a_normalised_tree_and_preserves_the_relation() {
        let mut rep = independent_pair();
        let before = materialize(&rep).unwrap().tuple_set();
        let applied = normalise(&mut rep).unwrap();
        assert_eq!(applied.len(), 1);
        assert!(rep.tree().is_normalised());
        rep.validate().unwrap();
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
        // Normalising again is a no-op.
        assert!(normalise(&mut rep).unwrap().is_empty());
    }

    #[test]
    fn push_up_deeper_in_the_tree_keeps_context() {
        // Tree: C{2} → A{0} → B{1}; relations: {2,0} and {1} and {2}.
        // B is independent of A, so it can be pushed up to be a child of C;
        // the B-union must stay inside each C-entry.
        let edges = vec![
            DepEdge::new("RCA", attrs(&[2, 0]), 2),
            DepEdge::new("SB", attrs(&[1]), 1),
        ];
        let mut tree = FTree::new(edges);
        let c = tree.add_node(attrs(&[2]), None).unwrap();
        let a = tree.add_node(attrs(&[0]), Some(c)).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let make_b = || Union::new(b, vec![Entry::leaf(Value::new(9))]);
        let make_a = |vals: &[u64]| {
            Union::new(
                a,
                vals.iter()
                    .map(|&v| Entry {
                        value: Value::new(v),
                        children: vec![make_b()],
                    })
                    .collect(),
            )
        };
        let c_union = Union::new(
            c,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![make_a(&[10, 11])],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![make_a(&[12])],
                },
            ],
        );
        let mut rep = FRep::from_parts(tree, vec![c_union]).unwrap();
        let reference = rep.clone();
        let before = materialize(&rep).unwrap().tuple_set();
        assert_eq!(rep.size(), 8);
        push_up(&mut rep, b).unwrap();
        rep.validate().unwrap();
        assert_eq!(rep.tree().parent(b), Some(c));
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
        // Size shrinks: the two B singletons under C=1 collapse into one.
        assert_eq!(rep.size(), 7);
        // Bit-for-bit what the thaw path would have built.
        let mut via_oracle = reference;
        oracle::push_up(&mut via_oracle, b).unwrap();
        assert!(rep.store_identical(&via_oracle));
    }
}
