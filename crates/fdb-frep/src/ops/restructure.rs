//! The push-up operator `ψ_B` and the normalisation operator `η`.
//!
//! Push-up factors a common subexpression out of a union: when a node `B` is
//! a child of `A` but `A` does not depend on `B` or its descendants, every
//! copy of the `B`-union under the different `A`-values is identical, so one
//! copy can be lifted out of the `A`-union and multiplied with it
//! (Figure 3(a)):
//!
//! ```text
//! ⋃_a ⟨A:a⟩ × (⋃_b ⟨B:b⟩ × F_b) × E_a   ⇒   (⋃_b ⟨B:b⟩ × F_b) × ⋃_a ⟨A:a⟩ × E_a
//! ```
//!
//! Normalisation applies push-ups bottom-up until no node can be lifted any
//! further; the result is the unique normalised f-tree reachable this way,
//! and the representation only ever shrinks.

use crate::frep::FRep;
use crate::node::Union;
use crate::ops::{visit_contexts_of_node_mut, MutRep};
use fdb_common::{FdbError, Result};
use fdb_ftree::NodeId;

/// Push-up operator `ψ_B`: lifts node `b` (with its subtree) one level up in
/// both the f-tree and the representation.
pub fn push_up(rep: &mut FRep, b: NodeId) -> Result<()> {
    check_push_up(rep.tree(), b)?;
    let mut m = MutRep::thaw(rep);
    push_up_impl(&mut m, b)?;
    *rep = m.freeze();
    Ok(())
}

/// Validates push-up applicability without touching data.
fn check_push_up(tree: &fdb_ftree::FTree, b: NodeId) -> Result<()> {
    tree.check_node(b)?;
    let Some(a) = tree.parent(b) else {
        return Err(FdbError::InvalidOperator {
            detail: format!("push-up: {b} is a root"),
        });
    };
    if tree.depends_on_subtree(a, b) {
        return Err(FdbError::InvalidOperator {
            detail: format!("push-up: parent {a} depends on the subtree of {b}"),
        });
    }
    Ok(())
}

/// The builder-form push-up, shared with normalisation and the operators
/// that normalise as a final step (so a chain of push-ups thaws only once).
pub(crate) fn push_up_impl(rep: &mut MutRep, b: NodeId) -> Result<()> {
    check_push_up(&rep.tree, b)?;
    let a = rep.tree.parent(b).expect("checked: b has a parent");
    let grandparent = rep.tree.parent(a);

    // In every product context that holds the A-union, extract the (shared)
    // B-union from its entries and add it to the context as a new factor.
    visit_contexts_of_node_mut(rep, grandparent, &mut |context: &mut Vec<Union>| {
        let mut lifted: Vec<Union> = Vec::new();
        for union in context.iter_mut() {
            if union.node != a {
                continue;
            }
            let mut extracted: Option<Union> = None;
            for entry in union.entries.iter_mut() {
                let b_union = entry
                    .take_child(b)
                    .expect("validated representation: every A-entry has a B child union");
                // All copies are equal because neither B nor its descendants
                // depend on A; keep the first, drop the rest.
                if extracted.is_none() {
                    extracted = Some(b_union);
                }
            }
            lifted.push(extracted.unwrap_or_else(|| Union::empty(b)));
        }
        context.extend(lifted);
    });

    rep.tree.push_up(b)?;
    Ok(())
}

/// Normalisation operator `η`: applies push-ups bottom-up until the f-tree is
/// normalised.  Returns the nodes pushed up, in order.
pub fn normalise(rep: &mut FRep) -> Result<Vec<NodeId>> {
    let mut m = MutRep::thaw(rep);
    let applied = normalise_impl(&mut m)?;
    *rep = m.freeze();
    Ok(applied)
}

/// The builder-form normalisation loop.
pub(crate) fn normalise_impl(rep: &mut MutRep) -> Result<Vec<NodeId>> {
    let mut applied = Vec::new();
    loop {
        let mut changed = false;
        for node in rep.tree.bottom_up() {
            while rep.tree.can_push_up(node) {
                push_up_impl(rep, node)?;
                applied.push(node);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize;
    use crate::frep::Entry;
    use fdb_common::{AttrId, Value};
    use fdb_ftree::{DepEdge, FTree};
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// A representation over the tree A{0} → B{1} where B does *not* depend
    /// on A (two separate unary relations):
    /// ⟨A:1⟩×(⟨B:5⟩∪⟨B:6⟩) ∪ ⟨A:2⟩×(⟨B:5⟩∪⟨B:6⟩).
    fn independent_pair() -> FRep {
        let edges = vec![
            DepEdge::new("R", attrs(&[0]), 2),
            DepEdge::new("S", attrs(&[1]), 2),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let b_union = || {
            Union::new(
                b,
                vec![Entry::leaf(Value::new(5)), Entry::leaf(Value::new(6))],
            )
        };
        let a_union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![b_union()],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![b_union()],
                },
            ],
        );
        FRep::from_parts(tree, vec![a_union]).unwrap()
    }

    #[test]
    fn push_up_factors_out_the_common_subexpression() {
        let mut rep = independent_pair();
        let before = materialize(&rep).unwrap().tuple_set();
        let size_before = rep.size(); // 2 A-singletons + 4 B-singletons = 6
        assert_eq!(size_before, 6);
        let b = rep.tree().node_of_attr(AttrId(1)).unwrap();
        push_up(&mut rep, b).unwrap();
        rep.validate().unwrap();
        // Now (⋃A) × (⋃B): 2 + 2 = 4 singletons, same represented relation.
        assert_eq!(rep.size(), 4);
        assert_eq!(rep.tree().roots().len(), 2);
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
    }

    #[test]
    fn push_up_is_rejected_when_dependent() {
        // A and B in the same relation: the B-unions under different A values
        // are genuinely different, so push-up must refuse.
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 3)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let a_union = Union::new(
            a,
            vec![Entry {
                value: Value::new(1),
                children: vec![Union::new(b, vec![Entry::leaf(Value::new(5))])],
            }],
        );
        let mut rep = FRep::from_parts(tree, vec![a_union]).unwrap();
        assert!(push_up(&mut rep, b).is_err());
        assert!(push_up(&mut rep, a).is_err()); // roots cannot be pushed up
    }

    #[test]
    fn normalise_reaches_a_normalised_tree_and_preserves_the_relation() {
        let mut rep = independent_pair();
        let before = materialize(&rep).unwrap().tuple_set();
        let applied = normalise(&mut rep).unwrap();
        assert_eq!(applied.len(), 1);
        assert!(rep.tree().is_normalised());
        rep.validate().unwrap();
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
        // Normalising again is a no-op.
        assert!(normalise(&mut rep).unwrap().is_empty());
    }

    #[test]
    fn push_up_deeper_in_the_tree_keeps_context() {
        // Tree: C{2} → A{0} → B{1}; relations: {2,0} and {1} and {2}.
        // B is independent of A, so it can be pushed up to be a child of C;
        // the B-union must stay inside each C-entry.
        let edges = vec![
            DepEdge::new("RCA", attrs(&[2, 0]), 2),
            DepEdge::new("SB", attrs(&[1]), 1),
        ];
        let mut tree = FTree::new(edges);
        let c = tree.add_node(attrs(&[2]), None).unwrap();
        let a = tree.add_node(attrs(&[0]), Some(c)).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let make_b = || Union::new(b, vec![Entry::leaf(Value::new(9))]);
        let make_a = |vals: &[u64]| {
            Union::new(
                a,
                vals.iter()
                    .map(|&v| Entry {
                        value: Value::new(v),
                        children: vec![make_b()],
                    })
                    .collect(),
            )
        };
        let c_union = Union::new(
            c,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![make_a(&[10, 11])],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![make_a(&[12])],
                },
            ],
        );
        let mut rep = FRep::from_parts(tree, vec![c_union]).unwrap();
        let before = materialize(&rep).unwrap().tuple_set();
        assert_eq!(rep.size(), 8);
        push_up(&mut rep, b).unwrap();
        rep.validate().unwrap();
        assert_eq!(rep.tree().parent(b), Some(c));
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
        // Size shrinks: the two B singletons under C=1 collapse into one.
        assert_eq!(rep.size(), 7);
    }
}
