//! Selection with a constant, `σ_{A θ c}`.
//!
//! The operator keeps only the entries of the `A`-node's unions whose value
//! satisfies the comparison.  It is **arena-native**: one filtered rebuild
//! of the flat store ([`crate::store`]) applies the predicate and the
//! subsequent pruning (entries whose product became empty disappear, empty
//! unions propagate upwards) in three flat passes, with no pointer tree and
//! no per-node allocation.  For an equality comparison the node is
//! additionally marked as bound to the constant: every remaining `A`-value
//! equals `c`, so the node no longer contributes to the size bound `s(T)`.

use crate::frep::FRep;
use fdb_common::{AttrId, ComparisonOp, ExecCtx, FdbError, Result, Value};

/// Selection with constant `σ_{attr θ value}` on the representation.
pub fn select_const(rep: &mut FRep, attr: AttrId, op: ComparisonOp, value: Value) -> Result<()> {
    select_const_ctx(rep, attr, op, value, &ExecCtx::unlimited())
}

/// [`select_const`] under a governance context: the filtered rebuild
/// charges per record, and on abort the representation is left exactly as
/// it was (the rebuilt store is only installed on success).
pub fn select_const_ctx(
    rep: &mut FRep,
    attr: AttrId,
    op: ComparisonOp,
    value: Value,
    ctx: &ExecCtx,
) -> Result<()> {
    let Some(node) = rep.tree().node_of_attr(attr) else {
        return Err(FdbError::AttributeNotInQuery {
            attr: format!("{attr}"),
        });
    };
    // The comparison-specialised rebuild: the predicate runs as one batched
    // keep-mask sweep per union block (see `Store::retain_and_prune_cmp_ctx`)
    // instead of a closure call per entry.
    let filtered = rep
        .store()
        .retain_and_prune_cmp_ctx(rep.tree(), node, op, value, ctx)?;
    rep.set_store(filtered);
    if op == ComparisonOp::Eq {
        rep.tree_mut().bind_constant(node, value)?;
    }
    crate::ops::debug_validate(rep, "select");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize;
    use crate::node::{Entry, Union};
    use fdb_ftree::{DepEdge, FTree, NodeId};
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// A{0} → B{1}: A=1 → B{10,20}, A=2 → B{20}, A=3 → B{30,40}.
    fn sample() -> (FRep, NodeId, NodeId) {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 5)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let entry = |v: u64, bs: &[u64]| Entry {
            value: Value::new(v),
            children: vec![Union::new(
                b,
                bs.iter().map(|&x| Entry::leaf(Value::new(x))).collect(),
            )],
        };
        let u = Union::new(
            a,
            vec![entry(1, &[10, 20]), entry(2, &[20]), entry(3, &[30, 40])],
        );
        (FRep::from_parts(tree, vec![u]).unwrap(), a, b)
    }

    #[test]
    fn equality_selection_binds_the_node() {
        let (mut rep, a, _) = sample();
        select_const(&mut rep, AttrId(0), ComparisonOp::Eq, Value::new(2)).unwrap();
        rep.validate().unwrap();
        assert_eq!(rep.tuple_count(), 1);
        assert_eq!(rep.tree().constant(a), Some(Value::new(2)));
        let flat = materialize(&rep).unwrap();
        assert_eq!(flat.row(0), &[Value::new(2), Value::new(20)]);
        // Binding the constant removes the node from the size bound.
        assert!((fdb_ftree::s_cost(rep.tree()).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn range_selection_keeps_matching_entries() {
        let (mut rep, a, _) = sample();
        select_const(&mut rep, AttrId(0), ComparisonOp::Ge, Value::new(2)).unwrap();
        rep.validate().unwrap();
        assert_eq!(rep.tuple_count(), 3);
        assert_eq!(rep.tree().constant(a), None);
    }

    #[test]
    fn selection_on_an_inner_child_prunes_empty_parents() {
        let (mut rep, _, _) = sample();
        // Only B > 25 survives: the A=1 and A=2 entries must disappear.
        select_const(&mut rep, AttrId(1), ComparisonOp::Gt, Value::new(25)).unwrap();
        rep.validate().unwrap();
        assert_eq!(rep.root(0).len(), 1);
        assert_eq!(rep.root(0).entry(0).value(), Value::new(3));
        assert_eq!(rep.tuple_count(), 2);
    }

    #[test]
    fn selection_that_matches_nothing_empties_the_representation() {
        let (mut rep, _, _) = sample();
        select_const(&mut rep, AttrId(0), ComparisonOp::Eq, Value::new(99)).unwrap();
        rep.validate().unwrap();
        assert!(rep.represents_empty());
        assert_eq!(rep.size(), 0);
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let (mut rep, _, _) = sample();
        assert!(select_const(&mut rep, AttrId(9), ComparisonOp::Eq, Value::new(1)).is_err());
    }

    #[test]
    fn ne_selection_removes_a_single_value() {
        let (mut rep, _, _) = sample();
        let before = materialize(&rep).unwrap();
        select_const(&mut rep, AttrId(1), ComparisonOp::Ne, Value::new(20)).unwrap();
        rep.validate().unwrap();
        let after = materialize(&rep).unwrap();
        let col = before.col_index(AttrId(1)).unwrap();
        let expected: BTreeSet<Vec<Value>> = before
            .rows()
            .filter(|r| r[col] != Value::new(20))
            .map(|r| r.to_vec())
            .collect();
        assert_eq!(after.tuple_set(), expected);
    }
}
