//! The merge selection operator `µ_{A,B}`.
//!
//! Merge enforces an equality `A = B` between two *sibling* nodes of the
//! f-tree: wherever the two sibling unions occur in a product, they are
//! replaced by a single union over the merged node that keeps only the
//! values present in both, combining their children (Figure 3(c)):
//!
//! ```text
//! (⋃_a ⟨A:a⟩ × E_a) × (⋃_b ⟨B:b⟩ × F_b)  ⇒  ⋃_{a=b} ⟨A:a⟩⟨B:b⟩ × E_a × F_b
//! ```
//!
//! The implementation is a sort-merge join over the two (sorted) value lists,
//! so it runs in time linear in the input sizes.

use crate::frep::FRep;
use crate::node::{Entry, Union};
use crate::ops::{visit_contexts_of_node_mut, MutRep};
use fdb_common::{FdbError, Result};
use fdb_ftree::NodeId;

/// Merge operator `µ_{A,B}` on sibling nodes: enforces `A = B`, fusing the
/// two nodes (the surviving node is `a`).  Returns the surviving node id.
pub fn merge(rep: &mut FRep, a: NodeId, b: NodeId) -> Result<NodeId> {
    rep.tree().check_node(a)?;
    rep.tree().check_node(b)?;
    if !rep.tree().are_siblings(a, b) {
        return Err(FdbError::InvalidOperator {
            detail: format!("merge: {a} and {b} are not siblings"),
        });
    }
    let parent = rep.tree().parent(a);

    let mut m = MutRep::thaw(rep);
    visit_contexts_of_node_mut(&mut m, parent, &mut |context: &mut Vec<Union>| {
        let Some(pos_a) = context.iter().position(|u| u.node == a) else {
            return;
        };
        let Some(pos_b) = context.iter().position(|u| u.node == b) else {
            return;
        };
        // Remove the higher index first so the lower one stays valid.
        let (first, second) = if pos_a > pos_b {
            (pos_a, pos_b)
        } else {
            (pos_b, pos_a)
        };
        let u1 = context.remove(first);
        let u2 = context.remove(second);
        let (a_union, b_union) = if u1.node == a { (u1, u2) } else { (u2, u1) };
        context.push(merge_unions(a, a_union, b_union));
    });

    m.tree.merge_siblings(a, b)?;
    // Values present on one side only have disappeared; entries whose product
    // became empty elsewhere must be pruned away.
    m.prune_empty();
    *rep = m.freeze();
    Ok(a)
}

/// Sort-merge join of two sibling unions into one union over `node`.
fn merge_unions(node: NodeId, a_union: Union, b_union: Union) -> Union {
    let mut entries = Vec::with_capacity(a_union.entries.len().min(b_union.entries.len()));
    let mut b_iter = b_union.entries.into_iter().peekable();
    for a_entry in a_union.entries {
        // Advance the B side to the first value ≥ the A value.
        while b_iter.peek().is_some_and(|be| be.value < a_entry.value) {
            b_iter.next();
        }
        if b_iter.peek().is_some_and(|be| be.value == a_entry.value) {
            let b_entry = b_iter.next().expect("peeked");
            let mut children = a_entry.children;
            children.extend(b_entry.children);
            entries.push(Entry {
                value: a_entry.value,
                children,
            });
        }
    }
    Union::new(node, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize;
    use crate::ops::product::product;
    use fdb_common::{AttrId, Value};
    use fdb_ftree::{DepEdge, FTree};
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// A small factorisation item{attr 0} → partner{attr 1}.
    fn rep_over(attr_root: u32, attr_child: u32, name: &str, data: &[(u64, &[u64])]) -> FRep {
        let edges = vec![DepEdge::new(
            name,
            attrs(&[attr_root, attr_child]),
            data.len() as u64,
        )];
        let mut tree = FTree::new(edges);
        let root = tree.add_node(attrs(&[attr_root]), None).unwrap();
        let child = tree.add_node(attrs(&[attr_child]), Some(root)).unwrap();
        let entries = data
            .iter()
            .map(|&(v, children)| Entry {
                value: Value::new(v),
                children: vec![Union::new(
                    child,
                    children
                        .iter()
                        .map(|&c| Entry::leaf(Value::new(c)))
                        .collect(),
                )],
            })
            .collect();
        FRep::from_parts(tree, vec![Union::new(root, entries)]).unwrap()
    }

    #[test]
    fn merging_sibling_roots_joins_on_the_shared_values() {
        // Example 9 in miniature: two factorisations with items at the top
        // are joined on item by merging the two root nodes.
        let left = rep_over(0, 1, "Orders", &[(1, &[10]), (2, &[20, 21]), (3, &[30])]);
        let right = rep_over(2, 3, "Produce", &[(2, &[77]), (3, &[88, 99]), (4, &[11])]);
        let mut rep = product(left, right).unwrap();
        let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let b = rep.tree().node_of_attr(AttrId(2)).unwrap();
        let survivor = merge(&mut rep, a, b).unwrap();
        rep.validate().unwrap();
        assert_eq!(survivor, a);
        // Only items 2 and 3 survive.
        let root = rep.root(0);
        assert_eq!(root.len(), 2);
        assert_eq!(rep.tree().class(a), &attrs(&[0, 2]));
        // The flat view must equal the join: item 2 → {20,21}×{77},
        // item 3 → {30}×{88,99}.
        let flat = materialize(&rep).unwrap();
        assert_eq!(flat.len(), 2 + 2);
        // Both item attributes carry the same value in every tuple.
        let c0 = flat.col_index(AttrId(0)).unwrap();
        let c2 = flat.col_index(AttrId(2)).unwrap();
        assert!(flat.rows().all(|r| r[c0] == r[c2]));
    }

    #[test]
    fn merge_of_disjoint_value_sets_gives_the_empty_representation() {
        let left = rep_over(0, 1, "R", &[(1, &[10])]);
        let right = rep_over(2, 3, "S", &[(2, &[20])]);
        let mut rep = product(left, right).unwrap();
        let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let b = rep.tree().node_of_attr(AttrId(2)).unwrap();
        merge(&mut rep, a, b).unwrap();
        rep.validate().unwrap();
        assert!(rep.represents_empty());
        assert_eq!(rep.tuple_count(), 0);
    }

    #[test]
    fn merge_requires_siblings() {
        let left = rep_over(0, 1, "R", &[(1, &[10])]);
        let mut rep = left;
        let root = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let child = rep.tree().node_of_attr(AttrId(1)).unwrap();
        assert!(merge(&mut rep, root, child).is_err());
    }

    #[test]
    fn merge_deeper_in_the_tree_joins_within_each_context() {
        // A forest of one tree: root{0} → (x{1}, y{2}); relations make x and
        // y independent of each other but both dependent on the root.
        let edges = vec![
            DepEdge::new("RX", attrs(&[0, 1]), 2),
            DepEdge::new("RY", attrs(&[0, 2]), 2),
        ];
        let mut tree = FTree::new(edges);
        let root = tree.add_node(attrs(&[0]), None).unwrap();
        let x = tree.add_node(attrs(&[1]), Some(root)).unwrap();
        let y = tree.add_node(attrs(&[2]), Some(root)).unwrap();
        let entry = |v: u64, xs: &[u64], ys: &[u64]| Entry {
            value: Value::new(v),
            children: vec![
                Union::new(x, xs.iter().map(|&a| Entry::leaf(Value::new(a))).collect()),
                Union::new(y, ys.iter().map(|&a| Entry::leaf(Value::new(a))).collect()),
            ],
        };
        // Under root=1 the x/y values overlap in {5}; under root=2 they do
        // not overlap at all, so that whole entry must disappear.
        let u = Union::new(root, vec![entry(1, &[4, 5], &[5, 6]), entry(2, &[7], &[8])]);
        let mut rep = FRep::from_parts(tree, vec![u]).unwrap();
        merge(&mut rep, x, y).unwrap();
        rep.validate().unwrap();
        let flat = materialize(&rep).unwrap();
        assert_eq!(flat.len(), 1);
        let row = flat.row(0);
        assert_eq!(row, &[Value::new(1), Value::new(5), Value::new(5)]);
    }
}
