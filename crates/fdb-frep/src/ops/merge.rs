//! The merge selection operator `µ_{A,B}`.
//!
//! Merge enforces an equality `A = B` between two *sibling* nodes of the
//! f-tree: wherever the two sibling unions occur in a product, they are
//! replaced by a single union over the merged node that keeps only the
//! values present in both, combining their children (Figure 3(c)):
//!
//! ```text
//! (⋃_a ⟨A:a⟩ × E_a) × (⋃_b ⟨B:b⟩ × F_b)  ⇒  ⋃_{a=b} ⟨A:a⟩⟨B:b⟩ × E_a × F_b
//! ```
//!
//! The operator is **arena-native**: the output arena is emitted in one pass
//! through a [`Rewriter`].  In every product context holding the two sibling
//! unions their sorted value lists are sort-merge joined on the fly (time
//! linear in the inputs, as in the paper) and the common entries emitted
//! with both sides' kid subtrees copied record-by-record; a final
//! [`Store::retain_and_prune`] pass removes the entries whose product became
//! empty because some merged union lost all its values.  No thaw, no
//! builder tree; the old implementation survives as [`crate::ops::oracle`].

use crate::frep::FRep;
use crate::ops::{child_pos, debug_validate};
use crate::store::{Rewriter, Store};
use fdb_common::{FdbError, Result};
use fdb_ftree::{FTree, NodeId};
use std::collections::BTreeSet;

/// Merge operator `µ_{A,B}` on sibling nodes: enforces `A = B`, fusing the
/// two nodes (the surviving node is `a`).  Returns the surviving node id.
pub fn merge(rep: &mut FRep, a: NodeId, b: NodeId) -> Result<NodeId> {
    rep.tree().check_node(a)?;
    rep.tree().check_node(b)?;
    if !rep.tree().are_siblings(a, b) {
        return Err(FdbError::InvalidOperator {
            detail: format!("merge: {a} and {b} are not siblings"),
        });
    }
    let parent = rep.tree().parent(a);
    let mut new_tree = rep.tree().clone();
    new_tree.merge_siblings(a, b)?;
    let merged = merge_rewrite(rep.store(), rep.tree(), &new_tree, a, b, parent);
    // Values present on one side only have disappeared; entries whose product
    // became empty elsewhere must be pruned away.
    let pruned = merged.retain_and_prune(&new_tree, |_, _| true);
    rep.replace_parts(new_tree, pruned);
    debug_validate(rep, "merge");
    Ok(a)
}

/// Emits the merged (not yet pruned) arena.
fn merge_rewrite(
    src: &Store,
    old_tree: &FTree,
    new_tree: &FTree,
    a: NodeId,
    b: NodeId,
    parent: Option<NodeId>,
) -> Store {
    let mut mg = MergeRewrite {
        rw: Rewriter::new(src, old_tree),
        a,
        parent,
        on_path: old_tree.ancestors(a).into_iter().collect(),
        pos_a_in_p: parent.map(|p| child_pos(old_tree.children(p), a)),
        pos_b_in_p: parent.map(|p| child_pos(old_tree.children(p), b)),
        parent_slots: parent
            .map(|p| {
                new_tree
                    .children(p)
                    .iter()
                    .map(|&c| child_pos(old_tree.children(p), c))
                    .collect()
            })
            .unwrap_or_default(),
        merged_slots: new_tree
            .children(a)
            .iter()
            .map(|&c| {
                if old_tree.children(b).contains(&c) {
                    (true, child_pos(old_tree.children(b), c))
                } else {
                    (false, child_pos(old_tree.children(a), c))
                }
            })
            .collect(),
        pairs: Vec::new(),
    };
    let roots: Vec<u32> = match parent {
        Some(_) => src.roots.iter().map(|&r| mg.emit(r)).collect(),
        None => {
            // Both unions sit in the root product: the merged union replaces
            // them at the end of the root list, exactly where the thaw-path
            // oracle re-pushes it.
            let root_of = |node: NodeId| {
                src.roots
                    .iter()
                    .copied()
                    .find(|&r| src.unions[r as usize].node == node)
                    .expect("validated representation: one root union per root node")
            };
            let (a_root, b_root) = (root_of(a), root_of(b));
            let mut roots: Vec<u32> = src
                .roots
                .iter()
                .filter(|&&r| r != a_root && r != b_root)
                .map(|&r| mg.rw.copy_union(r))
                .collect();
            roots.push(mg.merge_unions(a_root, b_root));
            roots
        }
    };
    mg.rw.finish(roots)
}

struct MergeRewrite<'a> {
    rw: Rewriter<'a>,
    a: NodeId,
    parent: Option<NodeId>,
    /// Ancestors of `a` in the old tree (so including the parent).
    on_path: BTreeSet<NodeId>,
    /// Kid positions of the two siblings in the parent's old child list.
    pos_a_in_p: Option<u32>,
    pos_b_in_p: Option<u32>,
    /// Old kid positions of the parent's remaining children, in new child
    /// order (the merged union keeps `a`'s slot).
    parent_slots: Vec<u32>,
    /// For each kid slot of the merged union: `(comes_from_b, old kid
    /// position)` — the merged node inherits `b`'s children after `a`'s.
    merged_slots: Vec<(bool, u32)>,
    /// Scratch for the sort-merge join: `(a entry index, b entry index)`.
    pairs: Vec<(u32, u32)>,
}

impl MergeRewrite<'_> {
    fn emit(&mut self, uid: u32) -> u32 {
        let src = self.rw.src;
        let rec = src.unions[uid as usize];
        if Some(rec.node) == self.parent {
            return self.emit_parent(uid);
        }
        if !self.on_path.contains(&rec.node) {
            return self.rw.copy_union(uid);
        }
        // A strict ancestor above the parent: child slots unchanged, the
        // transform happens below.
        let out = self
            .rw
            .begin_union(rec.node, src.value_slice(uid).iter().copied());
        let kid_count = self.rw.src_kid_count(rec.node);
        for i in 0..rec.entries_len {
            let mark = self.rw.mark();
            for k in 0..kid_count {
                let kid = self.emit(src.kid(uid, i, k));
                self.rw.push_kid(kid);
            }
            self.rw.end_entry(out, i, mark);
        }
        out
    }

    /// The parent union: each entry's `A` and `B` kid slots fuse into one.
    fn emit_parent(&mut self, uid: u32) -> u32 {
        let src = self.rw.src;
        let rec = src.unions[uid as usize];
        let out = self
            .rw
            .begin_union(rec.node, src.value_slice(uid).iter().copied());
        let pos_a = self.pos_a_in_p.expect("parent knows a's slot");
        let pos_b = self.pos_b_in_p.expect("parent knows b's slot");
        for i in 0..rec.entries_len {
            let mark = self.rw.mark();
            for s in 0..self.parent_slots.len() {
                let pos = self.parent_slots[s];
                let kid = if pos == pos_a {
                    self.merge_unions(src.kid(uid, i, pos_a), src.kid(uid, i, pos_b))
                } else {
                    self.rw.copy_union(src.kid(uid, i, pos))
                };
                self.rw.push_kid(kid);
            }
            self.rw.end_entry(out, i, mark);
        }
        out
    }

    /// Sort-merge join of two sibling unions into one union over `a` (which
    /// may come out empty; pruning handles the fallout).
    fn merge_unions(&mut self, a_uid: u32, b_uid: u32) -> u32 {
        let src = self.rw.src;
        let a_values = src.value_slice(a_uid);
        let b_values = src.value_slice(b_uid);
        self.pairs.clear();
        let (mut i, mut j) = (0usize, 0usize);
        while i < a_values.len() && j < b_values.len() {
            match a_values[i].cmp(&b_values[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    self.pairs.push((i as u32, j as u32));
                    i += 1;
                    j += 1;
                }
            }
        }
        let out = {
            let pairs = std::mem::take(&mut self.pairs);
            let uid = self
                .rw
                .begin_union(self.a, pairs.iter().map(|&(ai, _)| a_values[ai as usize]));
            self.pairs = pairs;
            uid
        };
        for p in 0..self.pairs.len() {
            let (ai, bi) = self.pairs[p];
            let mark = self.rw.mark();
            for s in 0..self.merged_slots.len() {
                let (from_b, pos) = self.merged_slots[s];
                let kid = if from_b {
                    src.kid(b_uid, bi, pos)
                } else {
                    src.kid(a_uid, ai, pos)
                };
                let copied = self.rw.copy_union(kid);
                self.rw.push_kid(copied);
            }
            self.rw.end_entry(out, p as u32, mark);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize;
    use crate::node::{Entry, Union};
    use crate::ops::oracle;
    use crate::ops::product::product;
    use fdb_common::{AttrId, Value};
    use fdb_ftree::DepEdge;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// A small factorisation item{attr 0} → partner{attr 1}.
    fn rep_over(attr_root: u32, attr_child: u32, name: &str, data: &[(u64, &[u64])]) -> FRep {
        let edges = vec![DepEdge::new(
            name,
            attrs(&[attr_root, attr_child]),
            data.len() as u64,
        )];
        let mut tree = FTree::new(edges);
        let root = tree.add_node(attrs(&[attr_root]), None).unwrap();
        let child = tree.add_node(attrs(&[attr_child]), Some(root)).unwrap();
        let entries = data
            .iter()
            .map(|&(v, children)| Entry {
                value: Value::new(v),
                children: vec![Union::new(
                    child,
                    children
                        .iter()
                        .map(|&c| Entry::leaf(Value::new(c)))
                        .collect(),
                )],
            })
            .collect();
        FRep::from_parts(tree, vec![Union::new(root, entries)]).unwrap()
    }

    #[test]
    fn merging_sibling_roots_joins_on_the_shared_values() {
        // Example 9 in miniature: two factorisations with items at the top
        // are joined on item by merging the two root nodes.
        let left = rep_over(0, 1, "Orders", &[(1, &[10]), (2, &[20, 21]), (3, &[30])]);
        let right = rep_over(2, 3, "Produce", &[(2, &[77]), (3, &[88, 99]), (4, &[11])]);
        let mut rep = product(left, right).unwrap();
        let reference = rep.clone();
        let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let b = rep.tree().node_of_attr(AttrId(2)).unwrap();
        let survivor = merge(&mut rep, a, b).unwrap();
        rep.validate().unwrap();
        assert_eq!(survivor, a);
        // Only items 2 and 3 survive.
        let root = rep.root(0);
        assert_eq!(root.len(), 2);
        assert_eq!(rep.tree().class(a), &attrs(&[0, 2]));
        // The flat view must equal the join: item 2 → {20,21}×{77},
        // item 3 → {30}×{88,99}.
        let flat = materialize(&rep).unwrap();
        assert_eq!(flat.len(), 2 + 2);
        // Both item attributes carry the same value in every tuple.
        let c0 = flat.col_index(AttrId(0)).unwrap();
        let c2 = flat.col_index(AttrId(2)).unwrap();
        assert!(flat.rows().all(|r| r[c0] == r[c2]));
        // Bit-for-bit what the thaw path would have built.
        let mut via_oracle = reference;
        oracle::merge(&mut via_oracle, a, b).unwrap();
        assert!(
            rep.store_identical(&via_oracle),
            "arena:\n{}\noracle:\n{}",
            rep.dump_store(),
            via_oracle.dump_store()
        );
    }

    #[test]
    fn merge_of_disjoint_value_sets_gives_the_empty_representation() {
        let left = rep_over(0, 1, "R", &[(1, &[10])]);
        let right = rep_over(2, 3, "S", &[(2, &[20])]);
        let mut rep = product(left, right).unwrap();
        let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let b = rep.tree().node_of_attr(AttrId(2)).unwrap();
        merge(&mut rep, a, b).unwrap();
        rep.validate().unwrap();
        assert!(rep.represents_empty());
        assert_eq!(rep.tuple_count(), 0);
    }

    #[test]
    fn merge_requires_siblings() {
        let left = rep_over(0, 1, "R", &[(1, &[10])]);
        let mut rep = left;
        let root = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let child = rep.tree().node_of_attr(AttrId(1)).unwrap();
        assert!(merge(&mut rep, root, child).is_err());
    }

    #[test]
    fn merge_deeper_in_the_tree_joins_within_each_context() {
        // A forest of one tree: root{0} → (x{1}, y{2}); relations make x and
        // y independent of each other but both dependent on the root.
        let edges = vec![
            DepEdge::new("RX", attrs(&[0, 1]), 2),
            DepEdge::new("RY", attrs(&[0, 2]), 2),
        ];
        let mut tree = FTree::new(edges);
        let root = tree.add_node(attrs(&[0]), None).unwrap();
        let x = tree.add_node(attrs(&[1]), Some(root)).unwrap();
        let y = tree.add_node(attrs(&[2]), Some(root)).unwrap();
        let entry = |v: u64, xs: &[u64], ys: &[u64]| Entry {
            value: Value::new(v),
            children: vec![
                Union::new(x, xs.iter().map(|&a| Entry::leaf(Value::new(a))).collect()),
                Union::new(y, ys.iter().map(|&a| Entry::leaf(Value::new(a))).collect()),
            ],
        };
        // Under root=1 the x/y values overlap in {5}; under root=2 they do
        // not overlap at all, so that whole entry must disappear.
        let u = Union::new(root, vec![entry(1, &[4, 5], &[5, 6]), entry(2, &[7], &[8])]);
        let mut rep = FRep::from_parts(tree, vec![u]).unwrap();
        let reference = rep.clone();
        merge(&mut rep, x, y).unwrap();
        rep.validate().unwrap();
        let flat = materialize(&rep).unwrap();
        assert_eq!(flat.len(), 1);
        let row = flat.row(0);
        assert_eq!(row, &[Value::new(1), Value::new(5), Value::new(5)]);
        // The pruning of the root=2 entry happened exactly as on the thaw
        // path.
        let mut via_oracle = reference;
        oracle::merge(&mut via_oracle, x, y).unwrap();
        assert!(
            rep.store_identical(&via_oracle),
            "arena:\n{}\noracle:\n{}",
            rep.dump_store(),
            via_oracle.dump_store()
        );
    }
}
