//! The Cartesian product operator `×`.
//!
//! Given two f-representations over disjoint attribute sets, their product is
//! the f-representation over the forest obtained by putting the two forests
//! side by side.  The operator is **arena-native**: the right store is
//! appended to the left one with its arena indices offset and its node
//! identifiers remapped through the f-tree import — time linear in the right
//! input, no tree walk at all.

use crate::frep::FRep;
use fdb_common::Result;

/// Computes the Cartesian product of two f-representations.
///
/// The attribute sets must be disjoint (a shared attribute is reported as an
/// error by the underlying f-tree import).
pub fn product(left: FRep, right: FRep) -> Result<FRep> {
    let mut rep = left;
    let id_map = rep.tree_mut().import_forest(right.tree())?;
    rep.store_mut().append_remapped(right.store(), &id_map);
    debug_assert!(
        rep.validate().is_ok(),
        "product must preserve the invariants"
    );
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Entry, Union};
    use fdb_common::{AttrId, Value};
    use fdb_ftree::{DepEdge, FTree};
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    fn leaf_rep(attr: u32, name: &str, values: &[u64]) -> FRep {
        let edges = vec![DepEdge::new(name, attrs(&[attr]), values.len() as u64)];
        let mut tree = FTree::new(edges);
        let n = tree.add_node(attrs(&[attr]), None).unwrap();
        let union = Union::new(
            n,
            values.iter().map(|&v| Entry::leaf(Value::new(v))).collect(),
        );
        FRep::from_parts(tree, vec![union]).unwrap()
    }

    #[test]
    fn product_concatenates_forests() {
        let a = leaf_rep(0, "R", &[1, 2, 3]);
        let b = leaf_rep(1, "S", &[7, 8]);
        let p = product(a, b).unwrap();
        p.validate().unwrap();
        assert_eq!(p.tree().roots().len(), 2);
        assert_eq!(p.size(), 5);
        assert_eq!(p.tuple_count(), 6);
        assert_eq!(p.visible_attrs(), vec![AttrId(0), AttrId(1)]);
        assert_eq!(p.tree().edges().len(), 2);
    }

    #[test]
    fn product_with_empty_is_empty() {
        let a = leaf_rep(0, "R", &[1, 2]);
        let b = leaf_rep(1, "S", &[]);
        let p = product(a, b).unwrap();
        assert!(p.represents_empty());
        assert_eq!(p.tuple_count(), 0);
    }

    #[test]
    fn overlapping_attributes_are_rejected() {
        let a = leaf_rep(0, "R", &[1]);
        let b = leaf_rep(0, "S", &[2]);
        assert!(product(a, b).is_err());
    }

    #[test]
    fn product_is_associative_in_size_and_count() {
        let a = leaf_rep(0, "R", &[1, 2]);
        let b = leaf_rep(1, "S", &[3, 4, 5]);
        let c = leaf_rep(2, "T", &[6]);
        let left = product(product(a.clone(), b.clone()).unwrap(), c.clone()).unwrap();
        let right = product(a, product(b, c).unwrap()).unwrap();
        assert_eq!(left.size(), right.size());
        assert_eq!(left.tuple_count(), right.tuple_count());
        assert_eq!(left.tuple_count(), 6);
    }
}
