//! The thaw-path **oracle** implementations of the structural operators.
//!
//! Until PR 2 these builder-form rewrites *were* the structural operators:
//! each one thawed the arena into the owned [`crate::node`] form, restructured
//! the pointer tree, and froze the result back.  The production operators in
//! the sibling modules now rewrite arena-to-arena and never thaw; this module
//! keeps the original implementations verbatim so that
//!
//! * the randomized equivalence tests can assert the arena-native operators
//!   produce bit-for-bit identical stores, and
//! * the `bench-pr2` microbenchmarks can measure the arena-native operators
//!   against the exact code they replaced.
//!
//! Nothing here is API; the module is `#[doc(hidden)]` and must not be called
//! from production paths.

use crate::frep::FRep;
use crate::node::{self, Entry, Union};
use fdb_common::{AttrId, FdbError, Result, Value};
use fdb_ftree::{FTree, NodeId, SwapOutcome};
use std::collections::{BTreeMap, BTreeSet};

/// A representation thawed into the owned builder form, as the oracle
/// operators rewrite it.  Constructed from an [`FRep`] with [`MutRep::thaw`]
/// and turned back with [`MutRep::freeze`]; the intermediate states may
/// violate the arena invariants (that is the point), the final freeze
/// re-establishes them.
pub(crate) struct MutRep {
    pub(crate) tree: FTree,
    pub(crate) roots: Vec<Union>,
}

impl MutRep {
    /// Thaws a representation (one linear pass over the arena).
    pub(crate) fn thaw(rep: &FRep) -> MutRep {
        MutRep {
            tree: rep.tree().clone(),
            roots: rep.to_forest(),
        }
    }

    /// Freezes the rewritten forest back into an arena-backed [`FRep`].
    pub(crate) fn freeze(self) -> FRep {
        FRep::from_parts_unchecked(self.tree, self.roots)
    }

    /// Removes entries whose product became empty, propagating upwards.
    pub(crate) fn prune_empty(&mut self) {
        node::prune_forest(&mut self.roots);
    }
}

/// Applies `f` to every union over `target` in the given builder forest.
/// Unions of a node are never nested inside one another, so recursion stops
/// once the target is found.
fn visit_unions_of_node_mut<F: FnMut(&mut Union)>(unions: &mut [Union], target: NodeId, f: &mut F) {
    for u in unions.iter_mut() {
        if u.node == target {
            f(u);
        } else {
            for entry in u.entries.iter_mut() {
                visit_unions_of_node_mut(&mut entry.children, target, f);
            }
        }
    }
}

/// Applies `f` to every *product context* (a mutable list of sibling unions)
/// that directly contains a union over a child of `parent`: the top-level
/// root list when `parent` is `None`, otherwise the children list of every
/// entry of every union over `parent`.
fn visit_contexts_of_node_mut<F: FnMut(&mut Vec<Union>)>(
    rep: &mut MutRep,
    parent: Option<NodeId>,
    f: &mut F,
) {
    match parent {
        None => f(&mut rep.roots),
        Some(p) => {
            visit_unions_of_node_mut(&mut rep.roots, p, &mut |parent_union: &mut Union| {
                for entry in parent_union.entries.iter_mut() {
                    f(&mut entry.children);
                }
            });
        }
    }
}

// ----------------------------------------------------------------------
// Swap
// ----------------------------------------------------------------------

/// Thaw-path swap operator `χ_{A,B}`.
pub fn swap(rep: &mut FRep, b: NodeId) -> Result<SwapOutcome> {
    let mut m = MutRep::thaw(rep);
    let outcome = swap_impl(&mut m, b)?;
    *rep = m.freeze();
    Ok(outcome)
}

/// The builder-form swap, shared with the oracle projection operator (which
/// swaps repeatedly and freezes only once).
fn swap_impl(rep: &mut MutRep, b: NodeId) -> Result<SwapOutcome> {
    rep.tree.check_node(b)?;
    let Some(a) = rep.tree.parent(b) else {
        return Err(FdbError::InvalidOperator {
            detail: format!("swap: {b} is a root"),
        });
    };
    let grandparent = rep.tree.parent(a);
    // Which children of B depend on A (G_ab, they follow A down) and which do
    // not (F_b, they stay with B) — must match what the tree-level swap does.
    let moved_down: BTreeSet<NodeId> = rep
        .tree
        .children(b)
        .iter()
        .copied()
        .filter(|&c| rep.tree.depends_on_subtree(a, c))
        .collect();

    visit_contexts_of_node_mut(rep, grandparent, &mut |context: &mut Vec<Union>| {
        for union in context.iter_mut() {
            if union.node == a {
                let old = std::mem::replace(union, Union::empty(a));
                *union = regroup(old, a, b, &moved_down);
            }
        }
    });

    let outcome = rep.tree.swap_with_parent(b)?;
    debug_assert_eq!(
        outcome.moved_down.iter().copied().collect::<BTreeSet<_>>(),
        moved_down,
        "tree-level and data-level dependency splits must agree"
    );
    Ok(outcome)
}

/// Regroups one `A`-union into the corresponding `B`-union.
fn regroup(a_union: Union, a: NodeId, b: NodeId, moved_down: &BTreeSet<NodeId>) -> Union {
    struct PerB {
        /// The F_b factors (children of B independent of A), captured from
        /// the first (a, b) pair — all copies are equal by independence.
        f_b: Option<Vec<Union>>,
        /// The inner union over A being assembled for this B value.
        a_entries: Vec<Entry>,
    }
    let mut by_b: BTreeMap<Value, PerB> = BTreeMap::new();

    for a_entry in a_union.entries {
        let a_value = a_entry.value;
        let mut children = a_entry.children;
        let b_pos = children
            .iter()
            .position(|u| u.node == b)
            .expect("validated representation: every A-entry has a B child union");
        let b_union = children.remove(b_pos);
        let e_a = children; // the T_A subtrees

        for b_entry in b_union.entries {
            let (g_ab, f_b): (Vec<Union>, Vec<Union>) = b_entry
                .children
                .into_iter()
                .partition(|u| moved_down.contains(&u.node));
            let slot = by_b.entry(b_entry.value).or_insert(PerB {
                f_b: None,
                a_entries: Vec::new(),
            });
            if slot.f_b.is_none() {
                slot.f_b = Some(f_b);
            }
            let mut new_children = e_a.clone();
            new_children.extend(g_ab);
            slot.a_entries.push(Entry {
                value: a_value,
                children: new_children,
            });
        }
    }

    let entries: Vec<Entry> = by_b
        .into_iter()
        .map(|(b_value, slot)| {
            let mut children = slot.f_b.unwrap_or_default();
            children.push(Union::new(a, slot.a_entries));
            Entry {
                value: b_value,
                children,
            }
        })
        .collect();
    Union::new(b, entries)
}

// ----------------------------------------------------------------------
// Merge
// ----------------------------------------------------------------------

/// Thaw-path merge operator `µ_{A,B}` on sibling nodes.
pub fn merge(rep: &mut FRep, a: NodeId, b: NodeId) -> Result<NodeId> {
    rep.tree().check_node(a)?;
    rep.tree().check_node(b)?;
    if !rep.tree().are_siblings(a, b) {
        return Err(FdbError::InvalidOperator {
            detail: format!("merge: {a} and {b} are not siblings"),
        });
    }
    let parent = rep.tree().parent(a);

    let mut m = MutRep::thaw(rep);
    visit_contexts_of_node_mut(&mut m, parent, &mut |context: &mut Vec<Union>| {
        let Some(pos_a) = context.iter().position(|u| u.node == a) else {
            return;
        };
        let Some(pos_b) = context.iter().position(|u| u.node == b) else {
            return;
        };
        // Remove the higher index first so the lower one stays valid.
        let (first, second) = if pos_a > pos_b {
            (pos_a, pos_b)
        } else {
            (pos_b, pos_a)
        };
        let u1 = context.remove(first);
        let u2 = context.remove(second);
        let (a_union, b_union) = if u1.node == a { (u1, u2) } else { (u2, u1) };
        context.push(merge_unions(a, a_union, b_union));
    });

    m.tree.merge_siblings(a, b)?;
    // Values present on one side only have disappeared; entries whose product
    // became empty elsewhere must be pruned away.
    m.prune_empty();
    *rep = m.freeze();
    Ok(a)
}

/// Sort-merge join of two sibling unions into one union over `node`.
fn merge_unions(node: NodeId, a_union: Union, b_union: Union) -> Union {
    let mut entries = Vec::with_capacity(a_union.entries.len().min(b_union.entries.len()));
    let mut b_iter = b_union.entries.into_iter().peekable();
    for a_entry in a_union.entries {
        // Advance the B side to the first value ≥ the A value.
        while b_iter.peek().is_some_and(|be| be.value < a_entry.value) {
            b_iter.next();
        }
        if b_iter.peek().is_some_and(|be| be.value == a_entry.value) {
            let b_entry = b_iter.next().expect("peeked");
            let mut children = a_entry.children;
            children.extend(b_entry.children);
            entries.push(Entry {
                value: a_entry.value,
                children,
            });
        }
    }
    Union::new(node, entries)
}

// ----------------------------------------------------------------------
// Absorb
// ----------------------------------------------------------------------

/// Thaw-path absorb operator `α_{A,B}`.
pub fn absorb(rep: &mut FRep, a: NodeId, b: NodeId) -> Result<Vec<NodeId>> {
    rep.tree().check_node(a)?;
    rep.tree().check_node(b)?;
    if !rep.tree().is_ancestor(a, b) {
        return Err(FdbError::InvalidOperator {
            detail: format!("absorb: {a} is not an ancestor of {b}"),
        });
    }

    let mut m = MutRep::thaw(rep);
    visit_unions_of_node_mut(&mut m.roots, a, &mut |a_union: &mut Union| {
        a_union
            .entries
            .retain_mut(|entry| restrict_children(&mut entry.children, b, entry.value));
    });

    m.tree.absorb_into_ancestor(a, b)?;
    m.prune_empty();
    let pushed = normalise_impl(&mut m)?;
    *rep = m.freeze();
    Ok(pushed)
}

/// Restricts every union over `b` among `children` (recursively) to the
/// single entry with the given value and splices the `b` level out.  Returns
/// `false` if the product represented by `children` became empty.
fn restrict_children(children: &mut Vec<Union>, b: NodeId, value: Value) -> bool {
    let mut spliced: Vec<Union> = Vec::new();
    let mut idx = 0;
    while idx < children.len() {
        if children[idx].node == b {
            let mut b_union = children.remove(idx);
            // Binary search on the sorted entries (unions keep their values
            // strictly increasing), not a linear scan.
            match b_union.take_value(value) {
                Some(matched) => spliced.extend(matched.children),
                None => return false,
            }
        } else {
            let union = &mut children[idx];
            union
                .entries
                .retain_mut(|entry| restrict_children(&mut entry.children, b, value));
            if union.is_empty() {
                // Every value of this union became inconsistent with `A = B`:
                // the enclosing product is empty.
                return false;
            }
            idx += 1;
        }
    }
    children.extend(spliced);
    true
}

// ----------------------------------------------------------------------
// Push-up and normalisation
// ----------------------------------------------------------------------

/// Thaw-path push-up operator `ψ_B`.
pub fn push_up(rep: &mut FRep, b: NodeId) -> Result<()> {
    check_push_up(rep.tree(), b)?;
    let mut m = MutRep::thaw(rep);
    push_up_impl(&mut m, b)?;
    *rep = m.freeze();
    Ok(())
}

/// Validates push-up applicability without touching data.
fn check_push_up(tree: &FTree, b: NodeId) -> Result<()> {
    tree.check_node(b)?;
    let Some(a) = tree.parent(b) else {
        return Err(FdbError::InvalidOperator {
            detail: format!("push-up: {b} is a root"),
        });
    };
    if tree.depends_on_subtree(a, b) {
        return Err(FdbError::InvalidOperator {
            detail: format!("push-up: parent {a} depends on the subtree of {b}"),
        });
    }
    Ok(())
}

/// The builder-form push-up, shared with the oracle normalisation (so a
/// chain of push-ups thaws only once).
fn push_up_impl(rep: &mut MutRep, b: NodeId) -> Result<()> {
    check_push_up(&rep.tree, b)?;
    let a = rep.tree.parent(b).expect("checked: b has a parent");
    let grandparent = rep.tree.parent(a);

    // In every product context that holds the A-union, extract the (shared)
    // B-union from its entries and add it to the context as a new factor.
    visit_contexts_of_node_mut(rep, grandparent, &mut |context: &mut Vec<Union>| {
        let mut lifted: Vec<Union> = Vec::new();
        for union in context.iter_mut() {
            if union.node != a {
                continue;
            }
            let mut extracted: Option<Union> = None;
            for entry in union.entries.iter_mut() {
                let b_union = entry
                    .take_child(b)
                    .expect("validated representation: every A-entry has a B child union");
                // All copies are equal because neither B nor its descendants
                // depend on A; keep the first, drop the rest.
                if extracted.is_none() {
                    extracted = Some(b_union);
                }
            }
            lifted.push(extracted.unwrap_or_else(|| Union::empty(b)));
        }
        context.extend(lifted);
    });

    rep.tree.push_up(b)?;
    Ok(())
}

/// Thaw-path normalisation operator `η`.
pub fn normalise(rep: &mut FRep) -> Result<Vec<NodeId>> {
    let mut m = MutRep::thaw(rep);
    let applied = normalise_impl(&mut m)?;
    *rep = m.freeze();
    Ok(applied)
}

/// The builder-form normalisation loop.
fn normalise_impl(rep: &mut MutRep) -> Result<Vec<NodeId>> {
    let mut applied = Vec::new();
    loop {
        let mut changed = false;
        for node in rep.tree.bottom_up() {
            while rep.tree.can_push_up(node) {
                push_up_impl(rep, node)?;
                applied.push(node);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(applied)
}

// ----------------------------------------------------------------------
// Projection
// ----------------------------------------------------------------------

/// Thaw-path projection operator `π_keep`.
pub fn project(rep: &mut FRep, keep: &BTreeSet<AttrId>) -> Result<()> {
    let all = rep.tree().all_attrs();
    let marked: BTreeSet<AttrId> = all.difference(keep).copied().collect();
    if marked.is_empty() {
        return Ok(());
    }

    // The whole leaf-removal / swap-down loop runs on the thawed builder
    // form; the arena is frozen exactly once at the end.
    let mut m = MutRep::thaw(rep);
    m.tree.mark_attrs_projected(&marked);

    loop {
        // Remove every leaf whose attributes have all been projected away.
        let removable = m.tree.removable_projected_leaves();
        if !removable.is_empty() {
            for leaf in removable {
                let parent = m.tree.parent(leaf);
                visit_contexts_of_node_mut(&mut m, parent, &mut |context| {
                    context.retain(|u| u.node != leaf);
                });
                m.tree.remove_projected_leaf(leaf)?;
            }
            continue;
        }
        // Otherwise pick a fully-projected inner node and swap it one level
        // down (each swap strictly shrinks its subtree, so this terminates).
        let marked_inner = m
            .tree
            .node_ids()
            .into_iter()
            .find(|&n| m.tree.visible_attrs(n).is_empty() && !m.tree.is_leaf(n));
        match marked_inner {
            Some(node) => {
                let child = m.tree.children(node)[0];
                swap_impl(&mut m, child)?;
            }
            None => break,
        }
    }
    *rep = m.freeze();
    Ok(())
}
