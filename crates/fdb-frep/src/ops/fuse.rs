//! Fused f-plan execution: a run of structural operators in one arena pass.
//!
//! # Why
//!
//! Since PR 2 every structural operator (swap, merge, absorb, push-up,
//! projection) is a single arena-to-arena pass, but a k-step f-plan still
//! materialises k−1 intermediate arenas that exist only to be consumed by
//! the next step.  On optimiser-produced plans — which routinely chain
//! swap → merge → normalise — most of the remaining wall-clock is spent
//! copying untouched regions of the arena over and over, not performing the
//! rewrites themselves.
//!
//! # The whole-plan model (no barriers)
//!
//! Through PR 4, `fdb-plan` segmented an op list at *fusion barriers* —
//! selections with constants and projections, whose data-level effect is
//! value-dependent — and only the structural runs between barriers fused.
//! Since PR 5 both barrier classes are overlay transforms too:
//!
//! * a **constant selection** is a per-union entry filter composed with the
//!   cached liveness machinery ([`Fusion::filter`]): one fresh bottom-up
//!   sweep with the comparison folded into the per-entry predicate decides
//!   liveness, emptied subtrees retract exactly as the merge/absorb prune
//!   retracts them, and untouched (clean) subtrees stay `Src` references;
//! * a **projection** replays the projection operator's loop on the overlay
//!   ([`project_steps`]): fully-projected leaves drop via [`RemoveLeafPass`]
//!   (the parent unions lose one kid slot — pure header remaps), and
//!   fully-projected inner nodes swap downwards through the same
//!   [`SwapPass`] that serves explicit swap steps, until they become
//!   removable leaves.
//!
//! An entire f-plan — selections and projections included — therefore
//! compiles into **one** [`FusedOp`] program and executes through
//! [`execute_fused`] as one pass:
//!
//! 1. The f-tree transforms are simulated up front, step by step, on clones
//!    of the tree — exactly the schema-level transforms the individual
//!    operators would apply.  This also performs all operator validation
//!    before any data is touched, so a failing segment leaves the
//!    representation unmodified.
//! 2. Each step is applied to an **overlay**: a forest of virtual unions
//!    where a [`VId`] either points at an untouched union of the *input*
//!    arena (a `Src` reference — O(1) to create, nothing is copied) or at a
//!    [`Mix`] node materialising just the regrouped/spliced/merged region.
//!    The overlay passes mirror the PR 2 rewriters decision for decision
//!    (same pair sort for swap, same sort-merge join for merge, same
//!    binary-search restriction for absorb, same first-entry lift for
//!    push-up), but where a rewriter would `copy_union` an unaffected
//!    subtree the overlay stores a reference.
//! 3. The merge/absorb prune is folded in as a *liveness sweep over the
//!    overlay*: one flat bottom-up pass over the input arena (computed once
//!    per program, cached) decides per-entry liveness of untouched regions,
//!    and a cheap walk over the Mix nodes propagates emptiness — no
//!    intermediate `retain_and_prune` re-emission.  Selections run the same
//!    sweep with their comparison folded into the predicate.
//! 4. Normalisation (and absorb's trailing normalisation) is replayed as
//!    overlay push-ups: the push-up sequence is computable from the tree
//!    alone, so the whole sequence collapses into pure header remaps on the
//!    overlay — one emission applies all of them at once.
//! 5. A single final [`Rewriter`] emission walks the overlay: `Mix` nodes
//!    emit their own records, `Src` references emit through
//!    [`Rewriter::copy_union`].  The output is the exact
//!    [`crate::store::Store::freeze`] layout, so a fused program is
//!    **bit-for-bit identical** to the PR 2 step-wise execution of the same
//!    steps — the randomized equivalence suite asserts store identity.
//!
//! Total data movement for a k-step program: the touched regions (which the
//! step-wise path also rebuilds) plus **one** full copy, instead of k.
//! Aggregate consumers skip even that one copy:
//! [`execute_fused_aggregate`] folds the aggregate (and the program's
//! trailing selections, as entry filters) directly over the overlay.

use crate::aggregate::{
    self, Acc, Accumulator, AggFilter, AggTarget, AggregateKind, AggregateResult, DistinctAcc,
};
use crate::frep::FRep;
use crate::kernel;
use crate::ops::{child_pos, debug_validate};
use crate::store::{kid_count_table, Rewriter, Store};
use fdb_common::{failpoint, AttrId, ComparisonOp, ExecCtx, FdbError, Result, Value};
use fdb_ftree::{FTree, NodeId, SwapOutcome};
use std::collections::BTreeSet;

/// One fusable f-plan step.  Since PR 5 this covers **every** f-plan
/// operator — constant selections become per-union entry filters composed
/// with the liveness sweep, and projections replay as leaf removals plus the
/// data-dependent swap-downs — so a whole plan compiles into one overlay
/// program (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FusedOp {
    /// Push-up `ψ_B`: lift `node` above its parent.
    PushUp(NodeId),
    /// Normalisation `η`: push up nodes until the tree is normalised.
    Normalise,
    /// Swap `χ`: exchange `node` with its parent.
    Swap(NodeId),
    /// Merge `µ`: fuse the two sibling nodes (the first survives).
    Merge(NodeId, NodeId),
    /// Absorb `α`: fuse the descendant (second) node into the ancestor
    /// (first) node, then normalise.
    Absorb(NodeId, NodeId),
    /// Selection with a constant `σ_{A θ c}`: keeps the entries of the
    /// attribute's unions whose value satisfies the comparison, pruning
    /// entries whose product became empty — on the overlay, a per-union
    /// entry filter folded into the liveness sweep.
    SelectConst {
        /// Attribute compared against the constant.
        attr: AttrId,
        /// Comparison operator.
        op: ComparisonOp,
        /// The constant.
        value: Value,
    },
    /// Projection `π` onto the given attributes: overlay leaf removals plus
    /// swap-downs of fully-projected inner nodes through [`SwapPass`].
    Project(BTreeSet<AttrId>),
}

/// Executes a program of fused steps — structural operators, constant
/// selections and projections alike — as one arena pass.
///
/// Semantically identical — bit-for-bit on the output arena — to applying
/// the corresponding [`crate::ops`] operators one at a time; on error the
/// representation is left unmodified (the step-wise path would stop at the
/// failing operator instead).
pub fn execute_fused(rep: &mut FRep, ops: &[FusedOp]) -> Result<()> {
    execute_fused_ctx(rep, ops, &ExecCtx::unlimited())
}

/// [`execute_fused`] under a governance context: the liveness sweeps, the
/// overlay prunes and the final emission all charge the context per record,
/// so a deadline, budget or cancellation aborts the program cooperatively.
/// On abort the representation is left **unmodified** — the overlay only
/// references the immutable input arena, and the output store is swapped in
/// only after the whole emission succeeded.
pub fn execute_fused_ctx(rep: &mut FRep, ops: &[FusedOp], ctx: &ExecCtx) -> Result<()> {
    if ops.is_empty() {
        return Ok(());
    }
    failpoint!(ctx, "fuse.execute");
    let (tree, store) = {
        let mut fusion = Fusion::new(rep.store(), rep.tree(), ctx);
        let mut cur = rep.tree().clone();
        for op in ops {
            ctx.check_now()?;
            apply_op(&mut fusion, &mut cur, op)?;
        }
        let store = fusion.into_store(rep.tree())?;
        (cur, store)
    };
    rep.replace_parts(tree, store);
    debug_validate(rep, "fused plan segment");
    Ok(())
}

/// Executes a run of fusable steps on the overlay and evaluates an aggregate
/// directly over the overlay — **no arena is ever emitted**, neither an
/// intermediate one nor the final one.  The input representation is left
/// untouched (an aggregate consumer has no use for the transformed arena),
/// so an aggregate query pays zero materialisation.
///
/// The *trailing* selections of the program — the maximal suffix of
/// [`FusedOp::SelectConst`] steps — are not applied as overlay passes at
/// all: their predicates fold into the [`Acc`] accumulation as a per-node
/// entry filter ([`AggFilter`]), so a selection-then-aggregate plan is one
/// filtered fold over the (possibly untouched) overlay.  Filtering instead
/// of pruning is exact: an entry that fails its predicate, like an entry
/// whose product is empty, contributes the additive identity to its union's
/// accumulator.
///
/// Returns exactly what [`crate::aggregate::evaluate`] would return on the
/// arena [`execute_fused`] would have produced: the aggregate is resolved
/// against the *final* simulated f-tree, every overlay union reachable at
/// the end matches that tree's node set and child order (the passes rebuild
/// every region whose shape changes), and `COUNT`/`SUM` use the same
/// wrapping 128-bit arithmetic — so the two paths agree bit for bit.
pub fn execute_fused_aggregate(
    rep: &FRep,
    ops: &[FusedOp],
    kind: AggregateKind,
    group_by: &[AttrId],
) -> Result<AggregateResult> {
    execute_fused_aggregate_ctx(rep, ops, kind, group_by, &ExecCtx::unlimited())
}

/// [`execute_fused_aggregate`] under a governance context: the overlay
/// transforms and the aggregate fold charge per record.  The input is
/// borrowed and never modified, so an abort leaves nothing to clean up.
pub fn execute_fused_aggregate_ctx(
    rep: &FRep,
    ops: &[FusedOp],
    kind: AggregateKind,
    group_by: &[AttrId],
    ctx: &ExecCtx,
) -> Result<AggregateResult> {
    failpoint!(ctx, "fuse.execute");
    let mut fusion = Fusion::new(rep.store(), rep.tree(), ctx);
    let mut cur = rep.tree().clone();
    // Split off the maximal suffix of constant selections: everything before
    // it transforms the overlay, the suffix becomes the fold's filter.
    let split = ops
        .iter()
        .rposition(|op| !matches!(op, FusedOp::SelectConst { .. }))
        .map_or(0, |i| i + 1);
    for op in &ops[..split] {
        apply_op(&mut fusion, &mut cur, op)?;
    }
    let mut filter = AggFilter::default();
    for op in &ops[split..] {
        let FusedOp::SelectConst {
            attr,
            op: cmp,
            value,
        } = op
        else {
            unreachable!("the suffix holds only constant selections");
        };
        let node = select_node(&cur, *attr)?;
        filter.push(node, *cmp, *value);
        if *cmp == ComparisonOp::Eq {
            cur.bind_constant(node, *value)?;
        }
    }
    fusion.aggregate(&cur, kind, group_by, &filter)
}

/// Resolves a selection attribute against the current simulated tree,
/// mirroring the step-wise operator's error.
fn select_node(cur: &FTree, attr: AttrId) -> Result<NodeId> {
    cur.node_of_attr(attr)
        .ok_or_else(|| FdbError::AttributeNotInQuery {
            attr: format!("{attr}"),
        })
}

/// Applies one fused step: advances the simulated tree and transforms the
/// overlay accordingly.
fn apply_op(fusion: &mut Fusion<'_>, cur: &mut FTree, op: &FusedOp) -> Result<()> {
    match op {
        FusedOp::PushUp(b) => push_up_step(fusion, cur, *b),
        FusedOp::Normalise => normalise_steps(fusion, cur),
        FusedOp::Swap(b) => swap_step(fusion, cur, *b),
        FusedOp::Merge(a, b) => {
            let (a, b) = (*a, *b);
            let parent = cur.parent(a);
            let mut next = cur.clone();
            next.merge_siblings(a, b)?;
            MergePass::new(fusion, cur, &next, a, b, parent).apply(b);
            fusion.prune()?;
            *cur = next;
            Ok(())
        }
        FusedOp::Absorb(a, b) => {
            let (a, b) = (*a, *b);
            cur.check_node(a)?;
            cur.check_node(b)?;
            let mut next = cur.clone();
            next.absorb_into_ancestor(a, b)?;
            let b_parent = cur.parent(b).expect("b has an ancestor, so a parent");
            AbsorbPass::new(fusion, cur, &next, a, b, b_parent).apply();
            fusion.prune()?;
            *cur = next;
            // The paper's absorb finishes with a normalisation step.
            normalise_steps(fusion, cur)
        }
        FusedOp::SelectConst { attr, op, value } => {
            let node = select_node(cur, *attr)?;
            fusion.filter(node, *op, *value)?;
            if *op == ComparisonOp::Eq {
                cur.bind_constant(node, *value)?;
            }
            Ok(())
        }
        FusedOp::Project(keep) => project_steps(fusion, cur, keep),
    }
}

/// One swap, tree and overlay together.
fn swap_step(fusion: &mut Fusion<'_>, cur: &mut FTree, b: NodeId) -> Result<()> {
    let mut next = cur.clone();
    let outcome = next.swap_with_parent(b)?;
    SwapPass::new(fusion, cur, &next, &outcome).apply();
    *cur = next;
    Ok(())
}

/// Replays the projection operator on the overlay, decision for decision the
/// loop of [`crate::ops::project`]: mark the dropped attributes on the
/// simulated tree, remove every fully-projected leaf (a [`RemoveLeafPass`]
/// per leaf — pure header remaps, nothing is copied), and swap each
/// fully-projected inner node downwards (the data-dependent swap-downs drive
/// the same [`SwapPass`] as an explicit swap step) until it becomes a
/// removable leaf.
fn project_steps(fusion: &mut Fusion<'_>, cur: &mut FTree, keep: &BTreeSet<AttrId>) -> Result<()> {
    let all = cur.all_attrs();
    let marked: BTreeSet<AttrId> = all.difference(keep).copied().collect();
    if marked.is_empty() {
        return Ok(());
    }
    cur.mark_attrs_projected(&marked);
    loop {
        let removable = cur.removable_projected_leaves();
        if !removable.is_empty() {
            for leaf in removable {
                let parent = cur.parent(leaf);
                let mut next = cur.clone();
                next.remove_projected_leaf(leaf)?;
                RemoveLeafPass::new(fusion, cur, leaf, parent).apply();
                *cur = next;
            }
            continue;
        }
        // Otherwise pick a fully-projected inner node and swap it one level
        // down (each swap strictly shrinks its subtree, so this terminates).
        let marked_inner = cur
            .node_ids()
            .into_iter()
            .find(|&n| cur.visible_attrs(n).is_empty() && !cur.is_leaf(n));
        match marked_inner {
            Some(node) => {
                let child = cur.children(node)[0];
                swap_step(fusion, cur, child)?;
            }
            None => break,
        }
    }
    Ok(())
}

/// One push-up, tree and overlay together.
fn push_up_step(fusion: &mut Fusion<'_>, cur: &mut FTree, b: NodeId) -> Result<()> {
    let mut next = cur.clone();
    next.push_up(b)?;
    let a = cur.parent(b).expect("push_up validated: b has a parent");
    PushUpPass::new(fusion, cur, &next, a, b).apply();
    *cur = next;
    Ok(())
}

/// Replays normalisation as overlay push-ups, in exactly the order the
/// step-wise [`crate::ops::normalise`] applies them.
fn normalise_steps(fusion: &mut Fusion<'_>, cur: &mut FTree) -> Result<()> {
    loop {
        let mut changed = false;
        for node in cur.bottom_up() {
            while cur.can_push_up(node) {
                push_up_step(fusion, cur, node)?;
                changed = true;
            }
        }
        if !changed {
            return Ok(());
        }
    }
}

// ---------------------------------------------------------------------
// The overlay
// ---------------------------------------------------------------------

/// Tag bit marking a [`VId`] as a reference into the input arena.
const SRC_BIT: u32 = 1 << 31;

/// A virtual union: either an untouched union of the input arena (`Src`) or
/// an overlay [`Mix`] node built by one of the passes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct VId(u32);

impl VId {
    fn src(uid: u32) -> VId {
        debug_assert_eq!(uid & SRC_BIT, 0, "arena index overflows the tag bit");
        VId(uid | SRC_BIT)
    }

    fn mix(index: usize) -> VId {
        VId(index as u32)
    }

    fn as_src(self) -> Option<u32> {
        (self.0 & SRC_BIT != 0).then_some(self.0 & !SRC_BIT)
    }

    fn mix_index(self) -> usize {
        debug_assert_eq!(self.0 & SRC_BIT, 0);
        self.0 as usize
    }
}

/// An overlay union materialising a transformed region: its values in
/// increasing order and, per entry, `kid_count` child references in the
/// (then-current) f-tree child order.
struct Mix {
    node: NodeId,
    kid_count: u32,
    values: Vec<Value>,
    kids: Vec<VId>,
}

/// Liveness of the input arena under a retain-and-prune with some entry
/// predicate — which entries survive and which subtrees contain any dead
/// entry at all (so clean subtrees stay `Src` references through a prune or
/// a selection; a clean union is empty after pruning iff it was empty
/// before).  The cached instance is computed for the keep-everything
/// predicate (the merge/absorb prune); selections compute their own with
/// the comparison folded in.
struct Liveness {
    entry_alive: Vec<bool>,
    subtree_dirty: Vec<bool>,
}

/// The fused-segment state: the immutable input arena plus the overlay
/// forest the passes transform.
struct Fusion<'a> {
    src: &'a Store,
    /// Child counts of the *input* f-tree, indexed by node index (valid for
    /// every `Src` reference: untouched regions keep their tree shape).
    src_kid_counts: Vec<u32>,
    mixes: Vec<Mix>,
    roots: Vec<VId>,
    /// Lazily computed, cached for the segment (the input arena is
    /// immutable while the segment runs).
    liveness: Option<Liveness>,
    /// Governance context: the sweeps, prunes and the final emission charge
    /// it per record touched.
    ctx: &'a ExecCtx,
}

impl<'a> Fusion<'a> {
    fn new(src: &'a Store, tree: &FTree, ctx: &'a ExecCtx) -> Fusion<'a> {
        Fusion {
            src,
            src_kid_counts: kid_count_table(tree),
            mixes: Vec::new(),
            roots: src.roots.iter().map(|&r| VId::src(r)).collect(),
            liveness: None,
            ctx,
        }
    }

    fn push_mix(&mut self, mix: Mix) -> VId {
        let id = VId::mix(self.mixes.len());
        self.mixes.push(mix);
        id
    }

    /// The f-tree node a virtual union ranges over.
    fn node_of(&self, v: VId) -> NodeId {
        match v.as_src() {
            Some(uid) => self.src.unions[uid as usize].node,
            None => self.mixes[v.mix_index()].node,
        }
    }

    /// Number of entries.
    fn len(&self, v: VId) -> u32 {
        match v.as_src() {
            Some(uid) => self.src.union_len(uid),
            None => self.mixes[v.mix_index()].values.len() as u32,
        }
    }

    /// The `i`-th value (entries are sorted increasing).
    fn value(&self, v: VId, i: u32) -> Value {
        match v.as_src() {
            Some(uid) => self.src.value_slice(uid)[i as usize],
            None => self.mixes[v.mix_index()].values[i as usize],
        }
    }

    /// The child reference of entry `i` at kid position `k`.
    fn kid(&self, v: VId, i: u32, k: u32) -> VId {
        match v.as_src() {
            Some(uid) => VId::src(self.src.kid(uid, i, k)),
            None => {
                let mix = &self.mixes[v.mix_index()];
                mix.kids[(i * mix.kid_count + k) as usize]
            }
        }
    }

    /// Number of kid slots per entry.
    fn kid_count_of(&self, v: VId) -> u32 {
        match v.as_src() {
            Some(uid) => self.src_kid_counts[self.src.unions[uid as usize].node.index()],
            None => self.mixes[v.mix_index()].kid_count,
        }
    }

    /// Probes the sorted entry values for `value` — both arms go through
    /// the shared [`kernel::find_value`] probe over a dense value slice.
    fn find_value(&self, v: VId, value: Value) -> Option<u32> {
        let values = match v.as_src() {
            Some(uid) => self.src.value_slice(uid),
            None => &self.mixes[v.mix_index()].values,
        };
        kernel::find_value(values, value).map(|i| i as u32)
    }

    // -----------------------------------------------------------------
    // The folded prune (merge/absorb liveness sweep) and the folded
    // selection (the same sweep with the comparison as entry predicate)
    // -----------------------------------------------------------------

    /// One flat bottom-up pass over the input arena: per-entry liveness
    /// under a retain-and-prune with predicate `keep`, per-union emptiness,
    /// and a per-union "subtree contains a dead entry" flag.
    fn compute_liveness<F: Fn(NodeId, Value) -> bool>(&self, keep: &F) -> Result<Liveness> {
        let s = self.src;
        let mut entry_alive = vec![true; s.entry_count()];
        let mut union_empty = vec![false; s.unions.len()];
        let mut subtree_dirty = vec![false; s.unions.len()];
        for uid in (0..s.unions.len()).rev() {
            let rec = s.unions[uid];
            self.ctx.charge(1 + rec.entries_len as u64)?;
            let kid_count = self.src_kid_counts[rec.node.index()];
            let mut any_alive = false;
            let mut dirty = false;
            for e in rec.entries_start..rec.entries_start + rec.entries_len {
                let mut alive = keep(rec.node, s.value_at(e));
                let kids_start = s.kids_start_at(e);
                for k in 0..kid_count {
                    let kid = s.kids[(kids_start + k) as usize] as usize;
                    if union_empty[kid] {
                        alive = false;
                    }
                    dirty |= subtree_dirty[kid];
                }
                entry_alive[e as usize] = alive;
                any_alive |= alive;
                dirty |= !alive;
            }
            union_empty[uid] = !any_alive;
            subtree_dirty[uid] = dirty;
        }
        Ok(Liveness {
            entry_alive,
            subtree_dirty,
        })
    }

    /// The comparison-specialised liveness sweep backing [`Fusion::filter`]:
    /// the same pass as [`Fusion::compute_liveness`], but the per-entry
    /// predicate on the selected node's unions is evaluated **per block**
    /// through the batched [`kernel::fill_keep_mask`] over the union's dense
    /// value slice, instead of a closure call per entry.  Bit-for-bit
    /// identical to the generic sweep with the equivalent closure.
    fn compute_liveness_cmp(
        &self,
        node: NodeId,
        cmp: ComparisonOp,
        value: Value,
    ) -> Result<Liveness> {
        let s = self.src;
        let mut entry_alive = vec![true; s.entry_count()];
        let mut union_empty = vec![false; s.unions.len()];
        let mut subtree_dirty = vec![false; s.unions.len()];
        for uid in (0..s.unions.len()).rev() {
            let rec = s.unions[uid];
            self.ctx.charge(1 + rec.entries_len as u64)?;
            let start = rec.entries_start as usize;
            let end = start + rec.entries_len as usize;
            if rec.node == node {
                kernel::fill_keep_mask(
                    s.value_slice(uid as u32),
                    cmp,
                    value,
                    &mut entry_alive[start..end],
                );
            }
            let kid_count = self.src_kid_counts[rec.node.index()];
            let mut any_alive = false;
            let mut dirty = false;
            for (e, alive_slot) in entry_alive.iter_mut().enumerate().take(end).skip(start) {
                let mut alive = *alive_slot;
                let kids_start = s.kids_start_at(e as u32);
                for k in 0..kid_count {
                    let kid = s.kids[kids_start as usize + k as usize] as usize;
                    if union_empty[kid] {
                        alive = false;
                    }
                    dirty |= subtree_dirty[kid];
                }
                *alive_slot = alive;
                any_alive |= alive;
                dirty |= !alive;
            }
            union_empty[uid] = !any_alive;
            subtree_dirty[uid] = dirty;
        }
        Ok(Liveness {
            entry_alive,
            subtree_dirty,
        })
    }

    /// Computes and caches the keep-everything liveness.  The cache stays
    /// valid for the whole program: the input arena is immutable, and every
    /// `Src` reference still reachable after a folded selection lies in a
    /// selection-clean subtree, which is keep-everything-clean a fortiori.
    fn ensure_liveness(&mut self) -> Result<()> {
        if self.liveness.is_none() {
            self.liveness = Some(self.compute_liveness(&|_, _| true)?);
        }
        Ok(())
    }

    /// The overlay counterpart of `Store::retain_and_prune(keep = true)`:
    /// drops entries whose product became empty, propagating upwards.  Clean
    /// `Src` subtrees pass through untouched; only Mix nodes and dirty `Src`
    /// regions are rebuilt.
    fn prune(&mut self) -> Result<()> {
        self.ensure_liveness()?;
        let live = self.liveness.take().expect("liveness just ensured");
        let result = self.apply_prune(&live, &|_, _| true);
        self.liveness = Some(live);
        result
    }

    /// The overlay counterpart of the constant-selection operator
    /// (`Store::retain_and_prune` with the comparison as predicate): keeps
    /// the entries of `node`'s unions whose value satisfies `cmp value`, and
    /// prunes entries whose product became empty exactly as the merge/absorb
    /// prune does.  One fresh liveness sweep (the predicate changes per
    /// selection) plus a walk that rebuilds only dirty regions — subtrees
    /// the selection does not touch stay `Src` references.
    fn filter(&mut self, node: NodeId, cmp: ComparisonOp, value: Value) -> Result<()> {
        let keep = move |n: NodeId, v: Value| n != node || cmp.eval(v, value);
        let live = self.compute_liveness_cmp(node, cmp, value)?;
        self.apply_prune(&live, &keep)
    }

    /// Rewrites every root through [`Fusion::prune_union`].
    fn apply_prune<F: Fn(NodeId, Value) -> bool>(
        &mut self,
        live: &Liveness,
        keep: &F,
    ) -> Result<()> {
        let roots = self.roots.clone();
        self.roots = roots
            .into_iter()
            .map(|r| Ok(self.prune_union(r, live, keep)?.0))
            .collect::<Result<_>>()?;
        Ok(())
    }

    /// Prunes one virtual union under the given liveness/predicate; returns
    /// the pruned reference and whether it came out empty.
    fn prune_union<F: Fn(NodeId, Value) -> bool>(
        &mut self,
        v: VId,
        live: &Liveness,
        keep: &F,
    ) -> Result<(VId, bool)> {
        if let Some(uid) = v.as_src() {
            let uidx = uid as usize;
            if !live.subtree_dirty[uidx] {
                return Ok((v, self.src.union_len(uid) == 0));
            }
            let rec = self.src.unions[uidx];
            self.ctx.charge(1 + rec.entries_len as u64)?;
            let kid_count = self.src_kid_counts[rec.node.index()];
            let mut values = Vec::with_capacity(rec.entries_len as usize);
            let mut kids = Vec::with_capacity((rec.entries_len * kid_count) as usize);
            for i in 0..rec.entries_len {
                let e = (rec.entries_start + i) as usize;
                if !live.entry_alive[e] {
                    continue;
                }
                values.push(self.src.value_at(e as u32));
                let kids_start = self.src.kids_start_at(e as u32);
                for k in 0..kid_count {
                    let kid_uid = self.src.kids[(kids_start + k) as usize];
                    let (kid, _) = self.prune_union(VId::src(kid_uid), live, keep)?;
                    kids.push(kid);
                }
            }
            let empty = values.is_empty();
            let out = self.push_mix(Mix {
                node: rec.node,
                kid_count,
                values,
                kids,
            });
            Ok((out, empty))
        } else {
            let (node, kid_count, len) = {
                let mix = &self.mixes[v.mix_index()];
                (mix.node, mix.kid_count, mix.values.len() as u32)
            };
            self.ctx.charge(1 + len as u64)?;
            let kc = kid_count as usize;
            let mut values = Vec::with_capacity(len as usize);
            let mut kids = Vec::with_capacity(len as usize * kc);
            let mut pruned = Vec::with_capacity(kc);
            for i in 0..len {
                let value = self.mixes[v.mix_index()].values[i as usize];
                // An entry failing the predicate dies outright; its subtrees
                // are unreachable and need no rebuild.
                if !keep(node, value) {
                    continue;
                }
                pruned.clear();
                let mut alive = true;
                for k in 0..kid_count {
                    let kid = self.mixes[v.mix_index()].kids[(i * kid_count + k) as usize];
                    let (pk, empty) = self.prune_union(kid, live, keep)?;
                    alive &= !empty;
                    pruned.push(pk);
                }
                if alive {
                    values.push(value);
                    kids.extend_from_slice(&pruned);
                }
            }
            let empty = values.is_empty();
            let out = self.push_mix(Mix {
                node,
                kid_count,
                values,
                kids,
            });
            Ok((out, empty))
        }
    }

    // -----------------------------------------------------------------
    // Final emission
    // -----------------------------------------------------------------

    /// The single output pass: walks the overlay in root order and emits the
    /// final arena in the exact `Store::freeze` layout through a
    /// [`Rewriter`] — `Src` references become record-by-record copies,
    /// `Mix` nodes emit their own headers, value blocks and kid runs.
    fn into_store(self, src_tree: &FTree) -> Result<Store> {
        let mut rw = Rewriter::new(self.src, src_tree);
        let roots: Vec<u32> = self
            .roots
            .iter()
            .map(|&r| emit_union(&mut rw, &self.mixes, r, self.ctx))
            .collect::<Result<_>>()?;
        Ok(rw.finish(roots))
    }

    // -----------------------------------------------------------------
    // Aggregation over the overlay
    // -----------------------------------------------------------------

    /// Evaluates an aggregate over the overlay forest against the final
    /// simulated tree, instead of emitting an output arena.  The aggregate
    /// semantics live in the shared [`aggregate::evaluate_source`]
    /// scaffold; the overlay only supplies accessors, with untouched `Src`
    /// subtrees folded once and memoized by arena index (a shared subtree
    /// referenced from several overlay entries — e.g. a lifted push-up copy
    /// — is aggregated once), so the walk costs one visit per reachable
    /// input union plus one per `Mix` entry.  Entries failing `filter` —
    /// the folded trailing selections — contribute nothing, exactly as if a
    /// selection pass had removed and pruned them.
    fn aggregate(
        &self,
        final_tree: &FTree,
        kind: AggregateKind,
        group_by: &[AttrId],
        filter: &AggFilter,
    ) -> Result<AggregateResult> {
        if kind.is_distinct() {
            self.aggregate_typed::<DistinctAcc>(final_tree, kind, group_by, filter)
        } else {
            self.aggregate_typed::<Acc>(final_tree, kind, group_by, filter)
        }
    }

    /// [`Fusion::aggregate`] monomorphised over one accumulator algebra.
    fn aggregate_typed<A: Accumulator>(
        &self,
        final_tree: &FTree,
        kind: AggregateKind,
        group_by: &[AttrId],
        filter: &AggFilter,
    ) -> Result<AggregateResult> {
        let mut src = OverlaySource::<A> {
            fu: self,
            memo: vec![None; self.src.unions.len()],
            filter,
        };
        aggregate::evaluate_source(&mut src, final_tree, kind, group_by, filter, self.ctx)
    }
}

/// The fused overlay as an aggregation source (see [`Fusion::aggregate`]):
/// supplies the overlay's accessor surface to the shared
/// [`aggregate::evaluate_source`] scaffold, so arena and overlay aggregation
/// semantics cannot drift apart.
struct OverlaySource<'f, 'a, A> {
    fu: &'f Fusion<'a>,
    /// Per-`Src`-union accumulator cache.
    memo: Vec<Option<A>>,
    /// Folded trailing selections (see [`execute_fused_aggregate`]).
    filter: &'f AggFilter,
}

impl<A: Accumulator> OverlaySource<'_, '_, A> {
    /// Folds one virtual union into an accumulator (recursive over the
    /// overlay, memoized per `Src` arena index).  Entries failing the
    /// filter are skipped: their contribution is the additive identity, the
    /// same as an entry a selection pass would have removed.
    fn fold_union(&mut self, v: VId, target: AggTarget) -> Result<A> {
        if let Some(uid) = v.as_src() {
            if let Some(cached) = &self.memo[uid as usize] {
                return Ok(cached.clone());
            }
        }
        let node = self.fu.node_of(v);
        let carries = target.carried_by(node);
        let kid_count = self.fu.kid_count_of(v);
        let len = self.fu.len(v);
        self.fu.ctx.charge(1 + len as u64)?;
        let mut total = A::none();
        for i in 0..len {
            let value = self.fu.value(v, i);
            if !self.filter.passes(node, value) {
                continue;
            }
            let mut acc = A::singleton(value, carries);
            for k in 0..kid_count {
                acc = acc.product(self.fold_union(self.fu.kid(v, i, k), target)?);
            }
            total = total.add(acc);
        }
        if let Some(uid) = v.as_src() {
            self.memo[uid as usize] = Some(total.clone());
        }
        Ok(total)
    }
}

impl<A: Accumulator> aggregate::AggSource<A> for OverlaySource<'_, '_, A> {
    type Id = VId;

    fn roots(&self) -> Vec<VId> {
        self.fu.roots.clone()
    }

    fn node_of(&self, v: VId) -> NodeId {
        self.fu.node_of(v)
    }

    fn len(&self, v: VId) -> u32 {
        self.fu.len(v)
    }

    fn value(&self, v: VId, i: u32) -> Value {
        self.fu.value(v, i)
    }

    fn kid_count(&self, v: VId) -> u32 {
        self.fu.kid_count_of(v)
    }

    fn kid(&self, v: VId, i: u32, k: u32) -> VId {
        self.fu.kid(v, i, k)
    }

    fn acc_of(&mut self, v: VId, target: AggTarget) -> Result<A> {
        self.fold_union(v, target)
    }
}

/// Recursive emission of one virtual union (see [`Fusion::into_store`]).
/// Charges the governance context for every record written: `Mix` unions
/// charge their own header and value block, opaque `Src` subtree copies
/// charge the [`Rewriter::emitted_units`] delta they produce.
fn emit_union(rw: &mut Rewriter<'_>, mixes: &[Mix], v: VId, ctx: &ExecCtx) -> Result<u32> {
    if let Some(uid) = v.as_src() {
        let before = rw.emitted_units();
        let out = rw.copy_union(uid);
        ctx.charge(rw.emitted_units() - before)?;
        return Ok(out);
    }
    let mix = &mixes[v.mix_index()];
    ctx.charge(1 + mix.values.len() as u64)?;
    let out = rw.begin_union_raw(mix.node, mix.values.len() as u32);
    for &value in &mix.values {
        rw.push_value(value);
    }
    let kc = mix.kid_count as usize;
    for i in 0..mix.values.len() {
        let mark = rw.mark();
        for k in 0..kc {
            let kid = emit_union(rw, mixes, mix.kids[i * kc + k], ctx)?;
            rw.push_kid(kid);
        }
        rw.end_entry(out, i as u32, mark);
    }
    Ok(out)
}

/// The shared shape of the passes' entry-preserving union rebuilds: keep
/// every entry of virtual union `$v` and re-emit its `$kid_count` kid slots
/// through the `|$i, $k| -> VId` body (entry index and kid slot in scope),
/// collecting the result into a new [`Mix`] over `$node`.  A macro rather
/// than a closure-taking helper because the body must re-borrow the calling
/// pass (`self`) mutably to recurse.
macro_rules! rebuild_entries {
    ($pass:expr, $v:expr, $node:expr, $kid_count:expr, |$i:ident, $k:ident| $kid_out:expr) => {{
        let v = $v;
        let kid_count: u32 = $kid_count;
        let len = ($pass).fu.len(v);
        let mut values = Vec::with_capacity(len as usize);
        for i in 0..len {
            values.push(($pass).fu.value(v, i));
        }
        let mut kids = Vec::with_capacity((len as usize) * (kid_count as usize));
        for $i in 0..len {
            for $k in 0..kid_count {
                let kid: VId = $kid_out;
                kids.push(kid);
            }
        }
        ($pass).fu.push_mix(Mix {
            node: $node,
            kid_count,
            values,
            kids,
        })
    }};
}

// ---------------------------------------------------------------------
// Push-up (and normalisation) on the overlay
// ---------------------------------------------------------------------

/// Overlay counterpart of `restructure::PushUpRewrite`: the `A`-union loses
/// its `B` slot, each grandparent entry gains the lifted `B`-union (the copy
/// under the first `A`-entry) as a new last kid slot.
struct PushUpPass<'f, 'a> {
    fu: &'f mut Fusion<'a>,
    a: NodeId,
    b: NodeId,
    grandparent: Option<NodeId>,
    /// Ancestors of `A` in the old tree (so including the grandparent).
    on_path: BTreeSet<NodeId>,
    pos_a_in_g: Option<u32>,
    pos_b_in_a: u32,
    /// Old kid positions of `A`'s remaining children, in new child order.
    a_slots: Vec<u32>,
}

impl<'f, 'a> PushUpPass<'f, 'a> {
    fn new(
        fu: &'f mut Fusion<'a>,
        old_tree: &FTree,
        new_tree: &FTree,
        a: NodeId,
        b: NodeId,
    ) -> Self {
        let grandparent = old_tree.parent(a);
        PushUpPass {
            fu,
            a,
            b,
            grandparent,
            on_path: old_tree.ancestors(a).into_iter().collect(),
            pos_a_in_g: grandparent.map(|g| child_pos(old_tree.children(g), a)),
            pos_b_in_a: child_pos(old_tree.children(a), b),
            a_slots: new_tree
                .children(a)
                .iter()
                .map(|&c| child_pos(old_tree.children(a), c))
                .collect(),
        }
    }

    fn apply(mut self) {
        let old_roots = self.fu.roots.clone();
        let mut roots: Vec<VId> = old_roots.iter().map(|&r| self.emit(r)).collect();
        if self.grandparent.is_none() {
            // `B` became a root of the forest: lift its union out of the
            // pre-op `A`-root union, appended after the existing roots.
            let a_root = old_roots
                .iter()
                .copied()
                .find(|&r| self.fu.node_of(r) == self.a)
                .expect("validated representation: one root union per root node");
            let lifted = self.emit_lifted(a_root);
            roots.push(lifted);
        }
        self.fu.roots = roots;
    }

    fn emit(&mut self, v: VId) -> VId {
        let node = self.fu.node_of(v);
        if node == self.a {
            return self.emit_a(v);
        }
        if Some(node) == self.grandparent {
            return self.emit_grandparent(v);
        }
        if !self.on_path.contains(&node) {
            return v;
        }
        // A strict ancestor above the grandparent: child slots unchanged,
        // the transform happens below.
        let kid_count = self.fu.kid_count_of(v);
        rebuild_entries!(self, v, node, kid_count, |i, k| {
            let kid = self.fu.kid(v, i, k);
            self.emit(kid)
        })
    }

    /// The grandparent union: each entry gains the lifted `B`-union as a new
    /// last kid slot.
    fn emit_grandparent(&mut self, v: VId) -> VId {
        let node = self.fu.node_of(v);
        let old_kid_count = self.fu.kid_count_of(v);
        let pos_a = self.pos_a_in_g.expect("grandparent knows a's slot");
        rebuild_entries!(self, v, node, old_kid_count + 1, |i, k| {
            if k < old_kid_count {
                let kid = self.fu.kid(v, i, k);
                self.emit(kid)
            } else {
                let a_vid = self.fu.kid(v, i, pos_a);
                self.emit_lifted(a_vid)
            }
        })
    }

    /// The `A`-union without its `B` slot (pure references — nothing below
    /// the kept children changes).
    fn emit_a(&mut self, v: VId) -> VId {
        rebuild_entries!(self, v, self.a, self.a_slots.len() as u32, |i, k| self
            .fu
            .kid(v, i, self.a_slots[k as usize]))
    }

    /// The lifted `B`-union of one `A`-union: the copy under the first
    /// `A`-entry, or an empty `B`-union if the `A`-union has no entries.
    fn emit_lifted(&mut self, a_vid: VId) -> VId {
        if self.fu.len(a_vid) == 0 {
            return self.fu.push_mix(Mix {
                node: self.b,
                kid_count: 0,
                values: Vec::new(),
                kids: Vec::new(),
            });
        }
        self.fu.kid(a_vid, 0, self.pos_b_in_a)
    }
}

// ---------------------------------------------------------------------
// Swap on the overlay
// ---------------------------------------------------------------------

/// Overlay counterpart of `swap::SwapRewrite`: every `A`-union is regrouped
/// by `B`-value with the same flat pair sort; kept children of `B` and the
/// inner `A`-entries' subtrees become references.
struct SwapPass<'f, 'a> {
    fu: &'f mut Fusion<'a>,
    a: NodeId,
    b: NodeId,
    on_path: BTreeSet<NodeId>,
    old_a_children: Vec<NodeId>,
    a_slots: Vec<(bool, u32)>,
    b_slots: Vec<Option<u32>>,
    path_slots: Vec<(NodeId, Vec<u32>)>,
}

impl<'f, 'a> SwapPass<'f, 'a> {
    fn new(
        fu: &'f mut Fusion<'a>,
        old_tree: &FTree,
        new_tree: &FTree,
        outcome: &SwapOutcome,
    ) -> Self {
        let (a, b) = (outcome.old_parent, outcome.new_parent);
        let moved_down: BTreeSet<NodeId> = outcome.moved_down.iter().copied().collect();
        let old_a_children = old_tree.children(a).to_vec();
        let old_b_children = old_tree.children(b).to_vec();

        let a_slots = new_tree
            .children(a)
            .iter()
            .map(|&d| {
                if moved_down.contains(&d) {
                    (true, child_pos(&old_b_children, d))
                } else {
                    (false, child_pos(&old_a_children, d))
                }
            })
            .collect();
        let b_slots = new_tree
            .children(b)
            .iter()
            .map(|&c| {
                if c == a {
                    None
                } else {
                    Some(child_pos(&old_b_children, c))
                }
            })
            .collect();
        let path: Vec<NodeId> = old_tree.ancestors(a);
        let path_slots = path
            .iter()
            .map(|&n| {
                let old_children = old_tree.children(n);
                let slots = new_tree
                    .children(n)
                    .iter()
                    .map(|&c| child_pos(old_children, if c == b { a } else { c }))
                    .collect();
                (n, slots)
            })
            .collect();

        SwapPass {
            fu,
            a,
            b,
            on_path: path.into_iter().collect(),
            old_a_children,
            a_slots,
            b_slots,
            path_slots,
        }
    }

    fn apply(mut self) {
        let old_roots = self.fu.roots.clone();
        self.fu.roots = old_roots.iter().map(|&r| self.emit(r)).collect();
    }

    fn emit(&mut self, v: VId) -> VId {
        let node = self.fu.node_of(v);
        if node == self.a {
            return self.regroup(v);
        }
        if !self.on_path.contains(&node) {
            return v;
        }
        // An ancestor of `A`: same entries, kid slots re-emitted in the new
        // tree's child order.
        let pi = self
            .path_slots
            .iter()
            .position(|(n, _)| *n == node)
            .expect("path nodes are precomputed");
        let slots = self.path_slots[pi].1.clone();
        rebuild_entries!(self, v, node, slots.len() as u32, |i, k| {
            let kid = self.fu.kid(v, i, slots[k as usize]);
            self.emit(kid)
        })
    }

    /// Regroups one `A`-union into the corresponding `B`-union with the same
    /// pair sort as the step-wise operator.
    fn regroup(&mut self, a_vid: VId) -> VId {
        let pos_b = child_pos(&self.old_a_children, self.b);
        let a_len = self.fu.len(a_vid);
        let mut pairs: Vec<(Value, u32, VId, u32)> = Vec::new();
        for i in 0..a_len {
            let b_vid = self.fu.kid(a_vid, i, pos_b);
            for j in 0..self.fu.len(b_vid) {
                pairs.push((self.fu.value(b_vid, j), i, b_vid, j));
            }
        }
        // (b value, a entry) is unique per pair, so this reproduces the
        // step-wise full-tuple sort order exactly.
        pairs.sort_unstable_by_key(|p| (p.0, p.1));

        let mut values = Vec::new();
        let mut group_starts: Vec<u32> = Vec::new();
        for (idx, p) in pairs.iter().enumerate() {
            if idx == 0 || p.0 != pairs[idx - 1].0 {
                values.push(p.0);
                group_starts.push(idx as u32);
            }
        }
        group_starts.push(pairs.len() as u32);

        let kid_count = self.b_slots.len() as u32;
        let mut kids = Vec::with_capacity(values.len() * self.b_slots.len());
        for g in 0..values.len() {
            let (start, end) = (group_starts[g], group_starts[g + 1]);
            let (_, _a0, b_vid0, j0) = pairs[start as usize];
            for slot in 0..self.b_slots.len() {
                match self.b_slots[slot] {
                    // A kept child of `B` (F_b): all copies under the
                    // different a values are equal by independence, keep the
                    // first pair's.
                    Some(pos) => kids.push(self.fu.kid(b_vid0, j0, pos)),
                    // The inner union over `A`.
                    None => {
                        let inner = self.emit_inner_a(a_vid, &pairs, start, end);
                        kids.push(inner);
                    }
                }
            }
        }
        self.fu.push_mix(Mix {
            node: self.b,
            kid_count,
            values,
            kids,
        })
    }

    /// The inner `A`-union of one `B`-value: one entry per `(a, b)` pair,
    /// with `E_a` referenced from the old `A`-entry and `G_ab` from the
    /// pair's `B`-entry.
    fn emit_inner_a(
        &mut self,
        a_vid: VId,
        pairs: &[(Value, u32, VId, u32)],
        start: u32,
        end: u32,
    ) -> VId {
        let mut values = Vec::with_capacity((end - start) as usize);
        for p in start..end {
            values.push(self.fu.value(a_vid, pairs[p as usize].1));
        }
        let mut kids = Vec::with_capacity(values.len() * self.a_slots.len());
        for p in start..end {
            let (_, i, b_vid, j) = pairs[p as usize];
            for slot in 0..self.a_slots.len() {
                let (from_b, pos) = self.a_slots[slot];
                kids.push(if from_b {
                    self.fu.kid(b_vid, j, pos)
                } else {
                    self.fu.kid(a_vid, i, pos)
                });
            }
        }
        self.fu.push_mix(Mix {
            node: self.a,
            kid_count: self.a_slots.len() as u32,
            values,
            kids,
        })
    }
}

// ---------------------------------------------------------------------
// Merge on the overlay
// ---------------------------------------------------------------------

/// Overlay counterpart of `merge::MergeRewrite`: in every product context
/// the two sibling unions sort-merge join into one union over `a`; the
/// folded prune afterwards removes entries whose product became empty.
struct MergePass<'f, 'a> {
    fu: &'f mut Fusion<'a>,
    a: NodeId,
    parent: Option<NodeId>,
    on_path: BTreeSet<NodeId>,
    pos_a_in_p: Option<u32>,
    pos_b_in_p: Option<u32>,
    parent_slots: Vec<u32>,
    merged_slots: Vec<(bool, u32)>,
}

impl<'f, 'a> MergePass<'f, 'a> {
    fn new(
        fu: &'f mut Fusion<'a>,
        old_tree: &FTree,
        new_tree: &FTree,
        a: NodeId,
        b: NodeId,
        parent: Option<NodeId>,
    ) -> Self {
        MergePass {
            fu,
            a,
            parent,
            on_path: old_tree.ancestors(a).into_iter().collect(),
            pos_a_in_p: parent.map(|p| child_pos(old_tree.children(p), a)),
            pos_b_in_p: parent.map(|p| child_pos(old_tree.children(p), b)),
            parent_slots: parent
                .map(|p| {
                    new_tree
                        .children(p)
                        .iter()
                        .map(|&c| child_pos(old_tree.children(p), c))
                        .collect()
                })
                .unwrap_or_default(),
            merged_slots: new_tree
                .children(a)
                .iter()
                .map(|&c| {
                    if old_tree.children(b).contains(&c) {
                        (true, child_pos(old_tree.children(b), c))
                    } else {
                        (false, child_pos(old_tree.children(a), c))
                    }
                })
                .collect(),
        }
    }

    fn apply(mut self, b: NodeId) {
        let old_roots = self.fu.roots.clone();
        let roots: Vec<VId> = match self.parent {
            Some(_) => old_roots.iter().map(|&r| self.emit(r)).collect(),
            None => {
                // Both unions sit in the root product: the merged union
                // replaces them at the end of the root list.
                let root_of = |fu: &Fusion<'_>, node: NodeId| {
                    old_roots
                        .iter()
                        .copied()
                        .find(|&r| fu.node_of(r) == node)
                        .expect("validated representation: one root union per root node")
                };
                let a_root = root_of(self.fu, self.a);
                let b_root = root_of(self.fu, b);
                let mut roots: Vec<VId> = old_roots
                    .iter()
                    .copied()
                    .filter(|&r| r != a_root && r != b_root)
                    .collect();
                roots.push(self.merge_unions(a_root, b_root));
                roots
            }
        };
        self.fu.roots = roots;
    }

    fn emit(&mut self, v: VId) -> VId {
        let node = self.fu.node_of(v);
        if Some(node) == self.parent {
            return self.emit_parent(v);
        }
        if !self.on_path.contains(&node) {
            return v;
        }
        // A strict ancestor above the parent.
        let kid_count = self.fu.kid_count_of(v);
        rebuild_entries!(self, v, node, kid_count, |i, k| {
            let kid = self.fu.kid(v, i, k);
            self.emit(kid)
        })
    }

    /// The parent union: each entry's `A` and `B` kid slots fuse into one.
    fn emit_parent(&mut self, v: VId) -> VId {
        let node = self.fu.node_of(v);
        let pos_a = self.pos_a_in_p.expect("parent knows a's slot");
        let pos_b = self.pos_b_in_p.expect("parent knows b's slot");
        rebuild_entries!(self, v, node, self.parent_slots.len() as u32, |i, k| {
            let pos = self.parent_slots[k as usize];
            if pos == pos_a {
                let (av, bv) = (self.fu.kid(v, i, pos_a), self.fu.kid(v, i, pos_b));
                self.merge_unions(av, bv)
            } else {
                self.fu.kid(v, i, pos)
            }
        })
    }

    /// Sort-merge join of two sibling unions into one union over `a`.
    fn merge_unions(&mut self, a_vid: VId, b_vid: VId) -> VId {
        let (a_len, b_len) = (self.fu.len(a_vid), self.fu.len(b_vid));
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let (mut i, mut j) = (0u32, 0u32);
        while i < a_len && j < b_len {
            match self.fu.value(a_vid, i).cmp(&self.fu.value(b_vid, j)) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    pairs.push((i, j));
                    i += 1;
                    j += 1;
                }
            }
        }
        let mut values = Vec::with_capacity(pairs.len());
        for &(ai, _) in &pairs {
            values.push(self.fu.value(a_vid, ai));
        }
        let mut kids = Vec::with_capacity(pairs.len() * self.merged_slots.len());
        for &(ai, bi) in &pairs {
            for s in 0..self.merged_slots.len() {
                let (from_b, pos) = self.merged_slots[s];
                kids.push(if from_b {
                    self.fu.kid(b_vid, bi, pos)
                } else {
                    self.fu.kid(a_vid, ai, pos)
                });
            }
        }
        self.fu.push_mix(Mix {
            node: self.a,
            kid_count: self.merged_slots.len() as u32,
            values,
            kids,
        })
    }
}

// ---------------------------------------------------------------------
// Absorb on the overlay
// ---------------------------------------------------------------------

/// Overlay counterpart of `absorb::AbsorbRewrite`: the walk carries the
/// enclosing `A`-value, each `B`-parent union keeps only the entries whose
/// `B`-union has the context value (binary search) and splices the matched
/// entry's kid subtrees in; the folded prune cascades the removals upwards.
struct AbsorbPass<'f, 'a> {
    fu: &'f mut Fusion<'a>,
    a: NodeId,
    b_parent: NodeId,
    on_path: BTreeSet<NodeId>,
    pos_b: u32,
    spliced_slots: Vec<(bool, u32)>,
}

impl<'f, 'a> AbsorbPass<'f, 'a> {
    fn new(
        fu: &'f mut Fusion<'a>,
        old_tree: &FTree,
        new_tree: &FTree,
        a: NodeId,
        b: NodeId,
        b_parent: NodeId,
    ) -> Self {
        let old_b_children = old_tree.children(b);
        AbsorbPass {
            fu,
            a,
            b_parent,
            on_path: old_tree.ancestors(b).into_iter().collect(),
            pos_b: child_pos(old_tree.children(b_parent), b),
            spliced_slots: new_tree
                .children(b_parent)
                .iter()
                .map(|&c| {
                    if old_b_children.contains(&c) {
                        (true, child_pos(old_b_children, c))
                    } else {
                        (false, child_pos(old_tree.children(b_parent), c))
                    }
                })
                .collect(),
        }
    }

    fn apply(mut self) {
        let old_roots = self.fu.roots.clone();
        self.fu.roots = old_roots.iter().map(|&r| self.emit(r, None)).collect();
    }

    fn emit(&mut self, v: VId, ctx: Option<Value>) -> VId {
        let node = self.fu.node_of(v);
        if node == self.b_parent {
            return self.emit_spliced(v, ctx);
        }
        if node != self.a && !self.on_path.contains(&node) {
            return v;
        }
        // On the root-to-B path (possibly the A-union itself, which sets the
        // context value for its subtree).
        let sets_ctx = node == self.a;
        let kid_count = self.fu.kid_count_of(v);
        rebuild_entries!(self, v, node, kid_count, |i, k| {
            let entry_ctx = if sets_ctx {
                Some(self.fu.value(v, i))
            } else {
                ctx
            };
            let kid = self.fu.kid(v, i, k);
            self.emit(kid, entry_ctx)
        })
    }

    /// The `B`-parent union: entries restricted to those whose `B`-union
    /// holds the context value, the matched entry's kid subtrees spliced in.
    fn emit_spliced(&mut self, v: VId, ctx: Option<Value>) -> VId {
        let node = self.fu.node_of(v);
        let sets_ctx = node == self.a;
        let len = self.fu.len(v);
        let mut matches: Vec<(u32, VId, u32)> = Vec::new();
        for i in 0..len {
            let value = if sets_ctx {
                self.fu.value(v, i)
            } else {
                ctx.expect("the B-parent lies inside an A-entry subtree")
            };
            let b_vid = self.fu.kid(v, i, self.pos_b);
            if let Some(j) = self.fu.find_value(b_vid, value) {
                matches.push((i, b_vid, j));
            }
        }
        let mut values = Vec::with_capacity(matches.len());
        for &(i, _, _) in &matches {
            values.push(self.fu.value(v, i));
        }
        let mut kids = Vec::with_capacity(matches.len() * self.spliced_slots.len());
        for &(i, b_vid, j) in &matches {
            for s in 0..self.spliced_slots.len() {
                let (from_b, pos) = self.spliced_slots[s];
                kids.push(if from_b {
                    self.fu.kid(b_vid, j, pos)
                } else {
                    self.fu.kid(v, i, pos)
                });
            }
        }
        self.fu.push_mix(Mix {
            node,
            kid_count: self.spliced_slots.len() as u32,
            values,
            kids,
        })
    }
}

// ---------------------------------------------------------------------
// Projection leaf removal on the overlay
// ---------------------------------------------------------------------

/// Overlay counterpart of the leaf-removal rewrite in
/// [`crate::ops::project`]: every union over the removed leaf's parent loses
/// the leaf's kid slot (the kept children are pure references — nothing
/// below them changes), the leaf's unions become unreachable, and a root
/// leaf simply drops out of the root list.
struct RemoveLeafPass<'f, 'a> {
    fu: &'f mut Fusion<'a>,
    leaf: NodeId,
    parent: Option<NodeId>,
    /// Ancestors of the leaf in the old tree (so including the parent).
    on_path: BTreeSet<NodeId>,
    /// The parent's kid positions that survive (everything but the leaf's).
    kept_slots: Vec<u32>,
}

impl<'f, 'a> RemoveLeafPass<'f, 'a> {
    fn new(fu: &'f mut Fusion<'a>, old_tree: &FTree, leaf: NodeId, parent: Option<NodeId>) -> Self {
        RemoveLeafPass {
            fu,
            leaf,
            parent,
            on_path: old_tree.ancestors(leaf).into_iter().collect(),
            kept_slots: parent
                .map(|p| {
                    let pos_leaf = child_pos(old_tree.children(p), leaf);
                    (0..old_tree.children(p).len() as u32)
                        .filter(|&k| k != pos_leaf)
                        .collect()
                })
                .unwrap_or_default(),
        }
    }

    fn apply(mut self) {
        let old_roots = self.fu.roots.clone();
        self.fu.roots = match self.parent {
            Some(_) => old_roots.iter().map(|&r| self.emit(r)).collect(),
            // A root leaf: its union simply drops out of the root product.
            None => old_roots
                .iter()
                .copied()
                .filter(|&r| self.fu.node_of(r) != self.leaf)
                .collect(),
        };
    }

    fn emit(&mut self, v: VId) -> VId {
        let node = self.fu.node_of(v);
        if Some(node) == self.parent {
            // Drop the leaf's kid slot; everything below the others is
            // unchanged.
            return rebuild_entries!(self, v, node, self.kept_slots.len() as u32, |i, k| self
                .fu
                .kid(v, i, self.kept_slots[k as usize]));
        }
        if !self.on_path.contains(&node) {
            return v;
        }
        // A strict ancestor above the parent.
        let kid_count = self.fu.kid_count_of(v);
        rebuild_entries!(self, v, node, kid_count, |i, k| {
            let kid = self.fu.kid(v, i, k);
            self.emit(kid)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize;
    use crate::node::{Entry, Union};
    use crate::ops;
    use fdb_common::AttrId;
    use fdb_ftree::DepEdge;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// Applies the program step-wise through the PR 2 operators.
    fn stepwise(rep: &mut FRep, steps: &[FusedOp]) {
        for op in steps {
            match op {
                FusedOp::PushUp(b) => ops::push_up(rep, *b).unwrap(),
                FusedOp::Normalise => {
                    ops::normalise(rep).unwrap();
                }
                FusedOp::Swap(b) => {
                    ops::swap(rep, *b).unwrap();
                }
                FusedOp::Merge(a, b) => {
                    ops::merge(rep, *a, *b).unwrap();
                }
                FusedOp::Absorb(a, b) => {
                    ops::absorb(rep, *a, *b).unwrap();
                }
                FusedOp::SelectConst { attr, op, value } => {
                    ops::select_const(rep, *attr, *op, *value).unwrap();
                }
                FusedOp::Project(keep) => ops::project(rep, keep).unwrap(),
            }
        }
    }

    /// Fused and step-wise execution must agree bit for bit on the arena.
    fn check(rep: &FRep, steps: &[FusedOp], context: &str) {
        let mut fused = rep.clone();
        let mut reference = rep.clone();
        execute_fused(&mut fused, steps).unwrap_or_else(|e| panic!("{context}: fused: {e:?}"));
        stepwise(&mut reference, steps);
        fused
            .validate()
            .unwrap_or_else(|e| panic!("{context}: fused result invalid: {e:?}"));
        assert!(
            fused.store_identical(&reference),
            "{context}: fused and step-wise stores diverge\nfused:\n{}\nstep-wise:\n{}",
            fused.dump_store(),
            reference.dump_store()
        );
        assert_eq!(
            fused.tree().canonical_key(),
            reference.tree().canonical_key(),
            "{context}: trees diverge"
        );
    }

    /// A{0} → B{1} → (C{2}, D{3}) with C dependent on A and D independent —
    /// the general swap shape with both a `G_ab` and an `F_b` part.
    fn swap_shape() -> (FRep, NodeId, NodeId) {
        let edges = vec![
            DepEdge::new("RAB", attrs(&[0, 1]), 3),
            DepEdge::new("RAC", attrs(&[0, 2]), 3),
            DepEdge::new("RBD", attrs(&[1, 3]), 3),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
        let d = tree.add_node(attrs(&[3]), Some(b)).unwrap();
        let b_entry = |bv: u64, cv: u64, dv: u64| Entry {
            value: Value::new(bv),
            children: vec![
                Union::new(c, vec![Entry::leaf(Value::new(cv))]),
                Union::new(d, vec![Entry::leaf(Value::new(dv))]),
            ],
        };
        // C is a function of A alone (it must not vary with B, or the
        // independence premise of the swap operators would not hold).
        let a_union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        b,
                        vec![b_entry(10, 100, 7), b_entry(20, 100, 8)],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![b_entry(10, 300, 7)])],
                },
            ],
        );
        let rep = FRep::from_parts(tree, vec![a_union]).unwrap();
        (rep, a, b)
    }

    /// Two joined chains with a merge-able pair of roots after a product.
    fn product_shape() -> (FRep, NodeId, NodeId) {
        let side = |root_attr: u32, child_attr: u32, name: &str, rows: &[(u64, &[u64])]| {
            let edges = vec![DepEdge::new(
                name,
                attrs(&[root_attr, child_attr]),
                rows.len() as u64,
            )];
            let mut tree = FTree::new(edges);
            let root = tree.add_node(attrs(&[root_attr]), None).unwrap();
            let child = tree.add_node(attrs(&[child_attr]), Some(root)).unwrap();
            let entries = rows
                .iter()
                .map(|&(v, kids)| Entry {
                    value: Value::new(v),
                    children: vec![Union::new(
                        child,
                        kids.iter().map(|&k| Entry::leaf(Value::new(k))).collect(),
                    )],
                })
                .collect();
            FRep::from_parts(tree, vec![Union::new(root, entries)]).unwrap()
        };
        let left = side(0, 1, "R", &[(1, &[10]), (2, &[20, 21]), (3, &[30])]);
        let right = side(2, 3, "S", &[(2, &[77]), (3, &[88, 99]), (4, &[11])]);
        let rep = ops::product(left, right).unwrap();
        let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let b = rep.tree().node_of_attr(AttrId(2)).unwrap();
        (rep, a, b)
    }

    #[test]
    fn fused_single_swap_matches_stepwise() {
        let (rep, _, b) = swap_shape();
        check(&rep, &[FusedOp::Swap(b)], "single swap");
    }

    #[test]
    fn fused_swap_cycle_matches_stepwise() {
        let (rep, a, b) = swap_shape();
        // Swap B above A, then A back above B, then B up again: three full
        // regroupings whose intermediates the fusion never materialises.
        check(
            &rep,
            &[FusedOp::Swap(b), FusedOp::Swap(a), FusedOp::Swap(b)],
            "swap cycle",
        );
        // The relation is preserved.
        let mut fused = rep.clone();
        let before = materialize(&rep).unwrap().tuple_set();
        execute_fused(&mut fused, &[FusedOp::Swap(b), FusedOp::Swap(a)]).unwrap();
        assert_eq!(materialize(&fused).unwrap().tuple_set(), before);
    }

    #[test]
    fn fused_merge_then_swap_matches_stepwise() {
        let (rep, a, b) = product_shape();
        let child = rep.tree().node_of_attr(AttrId(1)).unwrap();
        check(
            &rep,
            &[
                FusedOp::Merge(a, b),
                FusedOp::Swap(child),
                FusedOp::Normalise,
            ],
            "merge, swap, normalise",
        );
    }

    #[test]
    fn fused_absorb_with_trailing_normalise_matches_stepwise() {
        // Chain A{0} → B{1} → C{2}; absorbing C into A triggers the folded
        // prune and the replayed normalisation.
        let edges = vec![
            DepEdge::new("RAB", attrs(&[0, 1]), 4),
            DepEdge::new("RBC", attrs(&[1, 2]), 4),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
        let b_entry = |bv: u64, cs: &[u64]| Entry {
            value: Value::new(bv),
            children: vec![Union::new(
                c,
                cs.iter().map(|&v| Entry::leaf(Value::new(v))).collect(),
            )],
        };
        let a_union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(b, vec![b_entry(10, &[1, 3]), b_entry(11, &[2])])],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![b_entry(10, &[1, 3])])],
                },
            ],
        );
        let rep = FRep::from_parts(tree, vec![a_union]).unwrap();
        check(&rep, &[FusedOp::Absorb(a, c)], "absorb");
        check(
            &rep,
            &[FusedOp::Absorb(a, c), FusedOp::Normalise],
            "absorb then redundant normalise",
        );
    }

    #[test]
    fn fused_push_up_run_matches_stepwise() {
        // C{2} → A{0} → B{1} with B independent of both: normalisation lifts
        // B twice (to C, then out of C), all folded into one emission.
        let edges = vec![
            DepEdge::new("RCA", attrs(&[2, 0]), 2),
            DepEdge::new("SB", attrs(&[1]), 1),
        ];
        let mut tree = FTree::new(edges);
        let c = tree.add_node(attrs(&[2]), None).unwrap();
        let a = tree.add_node(attrs(&[0]), Some(c)).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let make_b = || Union::new(b, vec![Entry::leaf(Value::new(9))]);
        let make_a = |vals: &[u64]| {
            Union::new(
                a,
                vals.iter()
                    .map(|&v| Entry {
                        value: Value::new(v),
                        children: vec![make_b()],
                    })
                    .collect(),
            )
        };
        let c_union = Union::new(
            c,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![make_a(&[10, 11])],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![make_a(&[12])],
                },
            ],
        );
        let rep = FRep::from_parts(tree, vec![c_union]).unwrap();
        check(&rep, &[FusedOp::PushUp(b)], "one push-up");
        check(&rep, &[FusedOp::Normalise], "normalisation run");
    }

    #[test]
    fn fused_merge_with_empty_result_matches_stepwise() {
        let side = |root_attr: u32, child_attr: u32, name: &str, v: u64| {
            let edges = vec![DepEdge::new(name, attrs(&[root_attr, child_attr]), 1)];
            let mut tree = FTree::new(edges);
            let root = tree.add_node(attrs(&[root_attr]), None).unwrap();
            let child = tree.add_node(attrs(&[child_attr]), Some(root)).unwrap();
            FRep::from_parts(
                tree,
                vec![Union::new(
                    root,
                    vec![Entry {
                        value: Value::new(v),
                        children: vec![Union::new(child, vec![Entry::leaf(Value::new(v * 10))])],
                    }],
                )],
            )
            .unwrap()
        };
        let rep = ops::product(side(0, 1, "R", 1), side(2, 3, "S", 2)).unwrap();
        let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let b = rep.tree().node_of_attr(AttrId(2)).unwrap();
        // Disjoint value sets: the merged union is empty, everything prunes.
        check(&rep, &[FusedOp::Merge(a, b)], "merge to empty");
        let mut fused = rep.clone();
        execute_fused(&mut fused, &[FusedOp::Merge(a, b)]).unwrap();
        assert!(fused.represents_empty());
    }

    #[test]
    fn failing_segment_leaves_the_representation_untouched() {
        let (rep, a, _) = swap_shape();
        let mut fused = rep.clone();
        // Swapping a root is invalid; the error must surface before any data
        // is modified.
        assert!(execute_fused(&mut fused, &[FusedOp::Swap(a)]).is_err());
        assert!(fused.store_identical(&rep));
    }

    #[test]
    fn empty_segment_is_identity() {
        let (rep, _, _) = swap_shape();
        let mut fused = rep.clone();
        execute_fused(&mut fused, &[]).unwrap();
        assert!(fused.store_identical(&rep));
    }

    /// Overlay aggregation must equal emitting the arena and aggregating it,
    /// for every kind and both grouped and ungrouped — on the plan's result.
    fn check_aggregates(rep: &FRep, steps: &[FusedOp], context: &str) {
        use crate::aggregate::{evaluate, AggregateKind};
        let mut emitted = rep.clone();
        execute_fused(&mut emitted, steps).unwrap();
        let mut kinds = vec![AggregateKind::Count];
        for attr in emitted.visible_attrs() {
            kinds.extend([
                AggregateKind::Sum(attr),
                AggregateKind::Min(attr),
                AggregateKind::Max(attr),
                AggregateKind::Avg(attr),
                AggregateKind::CountDistinct(attr),
                AggregateKind::SumDistinct(attr),
                AggregateKind::AvgDistinct(attr),
            ]);
        }
        let group_sets: Vec<Vec<AttrId>> =
            std::iter::once(Vec::new())
                .chain(
                    emitted.tree().roots().iter().flat_map(|&r| {
                        emitted.tree().visible_attrs(r).into_iter().map(|a| vec![a])
                    }),
                )
                .collect();
        for &kind in &kinds {
            for group in &group_sets {
                let on_arena = evaluate(&emitted, kind, group).unwrap();
                let on_overlay = execute_fused_aggregate(rep, steps, kind, group).unwrap();
                assert_eq!(
                    on_overlay, on_arena,
                    "{context}: {kind} group_by {group:?} diverges between overlay and arena"
                );
            }
        }
    }

    #[test]
    fn overlay_aggregates_match_the_emitted_arena() {
        let (rep, a, b) = swap_shape();
        check_aggregates(&rep, &[], "no steps");
        check_aggregates(&rep, &[FusedOp::Swap(b)], "single swap");
        check_aggregates(
            &rep,
            &[FusedOp::Swap(b), FusedOp::Swap(a), FusedOp::Swap(b)],
            "swap cycle",
        );
        let (rep, a, b) = product_shape();
        let child = rep.tree().node_of_attr(AttrId(1)).unwrap();
        check_aggregates(
            &rep,
            &[
                FusedOp::Merge(a, b),
                FusedOp::Swap(child),
                FusedOp::Normalise,
            ],
            "merge, swap, normalise",
        );
    }

    #[test]
    fn overlay_aggregates_handle_mid_segment_emptying() {
        // Merge over disjoint value sets empties the representation inside
        // the segment; the aggregate must see the empty result.
        use crate::aggregate::AggregateValue;
        let side = |root_attr: u32, child_attr: u32, name: &str, v: u64| {
            let edges = vec![DepEdge::new(name, attrs(&[root_attr, child_attr]), 1)];
            let mut tree = FTree::new(edges);
            let root = tree.add_node(attrs(&[root_attr]), None).unwrap();
            let child = tree.add_node(attrs(&[child_attr]), Some(root)).unwrap();
            FRep::from_parts(
                tree,
                vec![Union::new(
                    root,
                    vec![Entry {
                        value: Value::new(v),
                        children: vec![Union::new(child, vec![Entry::leaf(Value::new(v * 10))])],
                    }],
                )],
            )
            .unwrap()
        };
        let rep = ops::product(side(0, 1, "R", 1), side(2, 3, "S", 2)).unwrap();
        let a = rep.tree().node_of_attr(AttrId(0)).unwrap();
        let b = rep.tree().node_of_attr(AttrId(2)).unwrap();
        let steps = [FusedOp::Merge(a, b)];
        check_aggregates(&rep, &steps, "merge to empty");
        let count =
            execute_fused_aggregate(&rep, &steps, crate::aggregate::AggregateKind::Count, &[])
                .unwrap();
        assert_eq!(
            count.as_scalar().unwrap(),
            AggregateValue::Count(0),
            "emptied segment counts zero tuples"
        );
    }

    fn select(attr: u32, op: ComparisonOp, value: u64) -> FusedOp {
        FusedOp::SelectConst {
            attr: AttrId(attr),
            op,
            value: Value::new(value),
        }
    }

    #[test]
    fn fused_selection_matches_stepwise() {
        let (rep, _, b) = swap_shape();
        // Root selection, inner selection, one that empties a mid-tree union
        // (D keeps nothing, pruning cascades to the root), one binding a
        // constant, and selections composed with structural steps.
        for steps in [
            vec![select(0, ComparisonOp::Ge, 2)],
            vec![select(3, ComparisonOp::Le, 7)],
            vec![select(3, ComparisonOp::Gt, 99)],
            vec![select(0, ComparisonOp::Eq, 1)],
            vec![FusedOp::Swap(b), select(1, ComparisonOp::Ne, 10)],
            vec![
                select(2, ComparisonOp::Ge, 100),
                FusedOp::Swap(b),
                select(0, ComparisonOp::Le, 1),
                FusedOp::Normalise,
            ],
        ] {
            check(&rep, &steps, &format!("selection program {steps:?}"));
        }
    }

    #[test]
    fn fused_projection_matches_stepwise() {
        let (rep, _, b) = swap_shape();
        // Leaf projection, inner-node projection (forcing the swap-down
        // path), projection to nothing, and barrier-mixed programs.
        for steps in [
            vec![FusedOp::Project(attrs(&[0, 1, 2]))],
            vec![FusedOp::Project(attrs(&[0, 2, 3]))],
            vec![FusedOp::Project(attrs(&[2]))],
            vec![FusedOp::Project(attrs(&[]))],
            vec![
                select(3, ComparisonOp::Le, 7),
                FusedOp::Project(attrs(&[0, 1, 3])),
            ],
            vec![
                FusedOp::Project(attrs(&[0, 1, 3])),
                FusedOp::Swap(b),
                FusedOp::Normalise,
            ],
        ] {
            check(&rep, &steps, &format!("projection program {steps:?}"));
        }
    }

    #[test]
    fn fused_selection_on_missing_attribute_fails_cleanly() {
        let (rep, _, _) = swap_shape();
        let mut fused = rep.clone();
        assert!(execute_fused(&mut fused, &[select(9, ComparisonOp::Eq, 1)]).is_err());
        assert!(fused.store_identical(&rep));
    }

    #[test]
    fn trailing_selections_fold_into_the_aggregate_filter() {
        use crate::aggregate::evaluate;
        let (rep, a, b) = swap_shape();
        // Programs ending in selections: the fold must agree with emitting
        // the selected arena and aggregating it.
        let programs: Vec<Vec<FusedOp>> = vec![
            vec![select(0, ComparisonOp::Ge, 2)],
            vec![
                select(3, ComparisonOp::Le, 7),
                select(0, ComparisonOp::Ne, 2),
            ],
            vec![select(2, ComparisonOp::Gt, 99)],
            vec![FusedOp::Swap(b), select(1, ComparisonOp::Ne, 10)],
            vec![
                FusedOp::Swap(b),
                FusedOp::Swap(a),
                select(0, ComparisonOp::Eq, 1),
                select(3, ComparisonOp::Ge, 8),
            ],
        ];
        for steps in &programs {
            let mut emitted = rep.clone();
            execute_fused(&mut emitted, steps).unwrap();
            check_aggregates(&rep, steps, &format!("trailing selections {steps:?}"));
            // And explicitly against the emitted arena for COUNT.
            let on_arena = evaluate(&emitted, AggregateKind::Count, &[]).unwrap();
            let folded = execute_fused_aggregate(&rep, steps, AggregateKind::Count, &[]).unwrap();
            assert_eq!(folded, on_arena, "{steps:?}");
        }
    }

    #[test]
    fn projection_then_aggregate_runs_on_the_overlay() {
        let (rep, _, _) = swap_shape();
        // Projection dedups: COUNT after π must be the distinct count.
        let steps = vec![FusedOp::Project(attrs(&[0, 3]))];
        check_aggregates(&rep, &steps, "projection then aggregate");
    }
}
