//! The swap operator `χ_{A,B}`.
//!
//! Swap exchanges a node `B` with its parent `A`: the representation grouped
//! first by `A` then `B` is regrouped first by `B` then `A` (Figure 3(b)):
//!
//! ```text
//! ⋃_a ⟨A:a⟩ × E_a × ⋃_b (⟨B:b⟩ × F_b × G_ab)
//!     ⇒  ⋃_b ⟨B:b⟩ × F_b × ⋃_a (⟨A:a⟩ × E_a × G_ab)
//! ```
//!
//! where `E_a` are the subtrees under `A`, `F_b` the children of `B` that do
//! not depend on `A` (they stay with `B`), and `G_ab` the children of `B`
//! that do depend on `A` (they follow `A` down).  The regrouping is the
//! sort-merge equivalent of the paper's Figure 4 priority-queue algorithm:
//! values of `B` are gathered into an ordered map, and for each `B`-value the
//! pairing `A`-values arrive in increasing order because the outer union is
//! already sorted — the same `O(N log N)` bound with the same output.

use crate::frep::FRep;
use crate::node::{Entry, Union};
use crate::ops::{visit_contexts_of_node_mut, MutRep};
use fdb_common::{FdbError, Result, Value};
use fdb_ftree::{NodeId, SwapOutcome};
use std::collections::{BTreeMap, BTreeSet};

/// Swap operator `χ_{A,B}` where `b`'s parent is `A`: regroups the
/// representation by `B` before `A` and updates the f-tree accordingly.
pub fn swap(rep: &mut FRep, b: NodeId) -> Result<SwapOutcome> {
    let mut m = MutRep::thaw(rep);
    let outcome = swap_impl(&mut m, b)?;
    *rep = m.freeze();
    Ok(outcome)
}

/// The builder-form swap, shared with the projection operator (which swaps
/// repeatedly and freezes only once).
pub(crate) fn swap_impl(rep: &mut MutRep, b: NodeId) -> Result<SwapOutcome> {
    rep.tree.check_node(b)?;
    let Some(a) = rep.tree.parent(b) else {
        return Err(FdbError::InvalidOperator {
            detail: format!("swap: {b} is a root"),
        });
    };
    let grandparent = rep.tree.parent(a);
    // Which children of B depend on A (G_ab, they follow A down) and which do
    // not (F_b, they stay with B) — must match what the tree-level swap does.
    let moved_down: BTreeSet<NodeId> = rep
        .tree
        .children(b)
        .iter()
        .copied()
        .filter(|&c| rep.tree.depends_on_subtree(a, c))
        .collect();

    visit_contexts_of_node_mut(rep, grandparent, &mut |context: &mut Vec<Union>| {
        for union in context.iter_mut() {
            if union.node == a {
                let old = std::mem::replace(union, Union::empty(a));
                *union = regroup(old, a, b, &moved_down);
            }
        }
    });

    let outcome = rep.tree.swap_with_parent(b)?;
    debug_assert_eq!(
        outcome.moved_down.iter().copied().collect::<BTreeSet<_>>(),
        moved_down,
        "tree-level and data-level dependency splits must agree"
    );
    Ok(outcome)
}

/// Regroups one `A`-union into the corresponding `B`-union.
fn regroup(a_union: Union, a: NodeId, b: NodeId, moved_down: &BTreeSet<NodeId>) -> Union {
    struct PerB {
        /// The F_b factors (children of B independent of A), captured from
        /// the first (a, b) pair — all copies are equal by independence.
        f_b: Option<Vec<Union>>,
        /// The inner union over A being assembled for this B value.
        a_entries: Vec<Entry>,
    }
    let mut by_b: BTreeMap<Value, PerB> = BTreeMap::new();

    for a_entry in a_union.entries {
        let a_value = a_entry.value;
        let mut children = a_entry.children;
        let b_pos = children
            .iter()
            .position(|u| u.node == b)
            .expect("validated representation: every A-entry has a B child union");
        let b_union = children.remove(b_pos);
        let e_a = children; // the T_A subtrees

        for b_entry in b_union.entries {
            let (g_ab, f_b): (Vec<Union>, Vec<Union>) = b_entry
                .children
                .into_iter()
                .partition(|u| moved_down.contains(&u.node));
            let slot = by_b.entry(b_entry.value).or_insert(PerB {
                f_b: None,
                a_entries: Vec::new(),
            });
            if slot.f_b.is_none() {
                slot.f_b = Some(f_b);
            }
            let mut new_children = e_a.clone();
            new_children.extend(g_ab);
            slot.a_entries.push(Entry {
                value: a_value,
                children: new_children,
            });
        }
    }

    let entries: Vec<Entry> = by_b
        .into_iter()
        .map(|(b_value, slot)| {
            let mut children = slot.f_b.unwrap_or_default();
            children.push(Union::new(a, slot.a_entries));
            Entry {
                value: b_value,
                children,
            }
        })
        .collect();
    Union::new(b, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize;
    use fdb_common::AttrId;
    use fdb_ftree::{DepEdge, FTree};

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// The grocery Q1 result of Example 1 over the f-tree T1
    /// (item → (oid, location → dispatcher)), with values encoded as
    /// integers: Milk=1, Cheese=2, Melon=3; Istanbul=1, Izmir=2, Antalya=3;
    /// Adnan=1, Yasemin=2, Volkan=3.
    fn grocery_q1_over_t1() -> FRep {
        // Attribute ids: oid=0, Orders.item=1, Store.location=2,
        // Store.item=3, dispatcher=4, Disp.location=5.
        let edges = vec![
            DepEdge::new("Orders", attrs(&[0, 1]), 5),
            DepEdge::new("Store", attrs(&[2, 3]), 6),
            DepEdge::new("Disp", attrs(&[4, 5]), 4),
        ];
        let mut tree = FTree::new(edges);
        let item = tree.add_node(attrs(&[1, 3]), None).unwrap();
        let oid = tree.add_node(attrs(&[0]), Some(item)).unwrap();
        let location = tree.add_node(attrs(&[2, 5]), Some(item)).unwrap();
        let dispatcher = tree.add_node(attrs(&[4]), Some(location)).unwrap();

        let disp_union = |vals: &[u64]| {
            Union::new(
                dispatcher,
                vals.iter().map(|&v| Entry::leaf(Value::new(v))).collect(),
            )
        };
        let loc_entry = |loc: u64, dispatchers: &[u64]| Entry {
            value: Value::new(loc),
            children: vec![disp_union(dispatchers)],
        };
        let oid_union = |vals: &[u64]| {
            Union::new(
                oid,
                vals.iter().map(|&v| Entry::leaf(Value::new(v))).collect(),
            )
        };
        // Milk: orders {1}, locations Istanbul{Adnan,Yasemin}, Izmir{Adnan}, Antalya{Volkan}
        // Cheese: orders {1,3}, locations Istanbul{Adnan,Yasemin}, Antalya{Volkan}
        // Melon: orders {2,3}, locations Istanbul{Adnan,Yasemin}
        let item_union = Union::new(
            item,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![
                        oid_union(&[1]),
                        Union::new(
                            location,
                            vec![
                                loc_entry(1, &[1, 2]),
                                loc_entry(2, &[1]),
                                loc_entry(3, &[3]),
                            ],
                        ),
                    ],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![
                        oid_union(&[1, 3]),
                        Union::new(location, vec![loc_entry(1, &[1, 2]), loc_entry(3, &[3])]),
                    ],
                },
                Entry {
                    value: Value::new(3),
                    children: vec![
                        oid_union(&[2, 3]),
                        Union::new(location, vec![loc_entry(1, &[1, 2])]),
                    ],
                },
            ],
        );
        FRep::from_parts(tree, vec![item_union]).unwrap()
    }

    #[test]
    fn swapping_item_and_location_matches_example1() {
        // χ_{item,location} turns the T1 factorisation into the T2
        // factorisation of Example 1: grouped by location first.
        let mut rep = grocery_q1_over_t1();
        let before = materialize(&rep).unwrap().tuple_set();
        let location = rep.tree().node_of_attr(AttrId(2)).unwrap();
        let item = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let outcome = swap(&mut rep, location).unwrap();
        rep.validate().unwrap();
        assert_eq!(outcome.new_parent, location);
        assert_eq!(outcome.old_parent, item);
        // dispatcher stays with location, oid follows item (it depends on it).
        assert_eq!(outcome.kept.len(), 1);
        assert!(outcome.moved_down.is_empty());
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
        // T2 of Example 1: the root union now ranges over the three
        // locations; under Istanbul there are three items.
        let root = rep.root(0);
        assert_eq!(root.node(), location);
        assert_eq!(root.len(), 3);
        let istanbul = root.find_value(Value::new(1)).unwrap();
        let item_union = istanbul.child(item).unwrap();
        assert_eq!(item_union.len(), 3);
    }

    #[test]
    fn swap_back_restores_the_original_grouping() {
        let mut rep = grocery_q1_over_t1();
        let original_key = rep.tree().canonical_key();
        let original_size = rep.size();
        let before = materialize(&rep).unwrap().tuple_set();
        let location = rep.tree().node_of_attr(AttrId(2)).unwrap();
        swap(&mut rep, location).unwrap();
        let item = rep.tree().node_of_attr(AttrId(1)).unwrap();
        swap(&mut rep, item).unwrap();
        rep.validate().unwrap();
        assert_eq!(rep.tree().canonical_key(), original_key);
        assert_eq!(rep.size(), original_size);
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
    }

    #[test]
    fn swap_rejects_roots() {
        let mut rep = grocery_q1_over_t1();
        let item = rep.tree().node_of_attr(AttrId(1)).unwrap();
        assert!(swap(&mut rep, item).is_err());
    }

    #[test]
    fn dependent_children_follow_the_old_parent_down() {
        // Tree A{0} → B{1} → (C{2}, D{3}) with relations {0,1}, {0,2}, {1,3}:
        // C depends on A (G_ab), D does not (F_b).
        let edges = vec![
            DepEdge::new("RAB", attrs(&[0, 1]), 1),
            DepEdge::new("RAC", attrs(&[0, 2]), 1),
            DepEdge::new("RBD", attrs(&[1, 3]), 1),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
        let d = tree.add_node(attrs(&[3]), Some(b)).unwrap();

        // Data: A=1 with B∈{10, 20}; under (1,10): C={100}, D={7};
        //       under (1,20): C={200}, D={8};  A=2 with B={10}: C={300}, D={7}.
        let b_entry = |bv: u64, cv: u64, dv: u64| Entry {
            value: Value::new(bv),
            children: vec![
                Union::new(c, vec![Entry::leaf(Value::new(cv))]),
                Union::new(d, vec![Entry::leaf(Value::new(dv))]),
            ],
        };
        let a_union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        b,
                        vec![b_entry(10, 100, 7), b_entry(20, 200, 8)],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![b_entry(10, 300, 7)])],
                },
            ],
        );
        let mut rep = FRep::from_parts(tree, vec![a_union]).unwrap();
        let before = materialize(&rep).unwrap().tuple_set();
        let outcome = swap(&mut rep, b).unwrap();
        rep.validate().unwrap();
        assert_eq!(outcome.moved_down, vec![c]);
        assert_eq!(outcome.kept, vec![d]);
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
        // Structure: root over B with values 10, 20; under B=10 the D-union
        // {7} is shared while the A-union has entries 1 and 2 with their own
        // C-unions.
        let root = rep.root(0);
        assert_eq!(root.node(), b);
        assert_eq!(root.len(), 2);
        let b10 = root.find_value(Value::new(10)).unwrap();
        assert_eq!(b10.child(a).unwrap().len(), 2);
        assert_eq!(b10.child(d).unwrap().len(), 1);
        let a1 = b10.child(a).unwrap().find_value(Value::new(1)).unwrap();
        assert_eq!(a1.child(c).unwrap().entry(0).value(), Value::new(100));
    }
}
