//! The swap operator `χ_{A,B}`.
//!
//! Swap exchanges a node `B` with its parent `A`: the representation grouped
//! first by `A` then `B` is regrouped first by `B` then `A` (Figure 3(b)):
//!
//! ```text
//! ⋃_a ⟨A:a⟩ × E_a × ⋃_b (⟨B:b⟩ × F_b × G_ab)
//!     ⇒  ⋃_b ⟨B:b⟩ × F_b × ⋃_a (⟨A:a⟩ × E_a × G_ab)
//! ```
//!
//! where `E_a` are the subtrees under `A`, `F_b` the children of `B` that do
//! not depend on `A` (they stay with `B`), and `G_ab` the children of `B`
//! that do depend on `A` (they follow `A` down).
//!
//! The operator is **arena-native**: the output arena is emitted in one pass
//! over the input arena through a [`Rewriter`].  Unions on the root-to-`A`
//! path are re-emitted with their kid slots translated to the new tree's
//! child order, every union over `A` is regrouped in place (the `(b, a)`
//! pairs are gathered with one flat sort — the sort-merge equivalent of the
//! paper's Figure 4 priority-queue algorithm, the same `O(N log N)` bound),
//! and all unchanged subtrees are copied record-by-record.  No builder tree
//! is materialised; the thaw-path implementation survives only as the
//! [`crate::ops::oracle`].

use crate::frep::FRep;
use crate::ops::{child_pos, debug_validate};
use crate::store::{Rewriter, Store};
use fdb_common::{FdbError, Result, Value};
use fdb_ftree::{FTree, NodeId, SwapOutcome};
use std::collections::BTreeSet;

/// Swap operator `χ_{A,B}` where `b`'s parent is `A`: regroups the
/// representation by `B` before `A` and updates the f-tree accordingly.
pub fn swap(rep: &mut FRep, b: NodeId) -> Result<SwapOutcome> {
    rep.tree().check_node(b)?;
    if rep.tree().parent(b).is_none() {
        return Err(FdbError::InvalidOperator {
            detail: format!("swap: {b} is a root"),
        });
    }
    let mut new_tree = rep.tree().clone();
    let outcome = new_tree.swap_with_parent(b)?;
    let store = swap_rewrite(rep.store(), rep.tree(), &new_tree, &outcome);
    rep.replace_parts(new_tree, store);
    debug_validate(rep, "swap");
    Ok(outcome)
}

/// Emits the swapped arena.
fn swap_rewrite(src: &Store, old_tree: &FTree, new_tree: &FTree, outcome: &SwapOutcome) -> Store {
    let mut sw = SwapRewrite::new(src, old_tree, new_tree, outcome);
    let roots: Vec<u32> = src.roots.iter().map(|&r| sw.emit(r)).collect();
    sw.rw.finish(roots)
}

struct SwapRewrite<'a> {
    rw: Rewriter<'a>,
    a: NodeId,
    b: NodeId,
    /// Ancestors of `A` in the old tree: the unions that must be re-emitted
    /// (rather than copied) because the regrouping happens below them.
    on_path: BTreeSet<NodeId>,
    /// `A`'s old child list (kid-slot order of the input `A`-unions).
    old_a_children: Vec<NodeId>,
    /// For each new child of `A`: `(comes_from_b_side, old kid position)` —
    /// children of `B` that depend on `A` follow `A` down, the rest of `A`'s
    /// children keep their slots.
    a_slots: Vec<(bool, u32)>,
    /// For each new child of `B`: the old kid position of a kept child, or
    /// `None` for the slot of the new inner `A`-union.
    b_slots: Vec<Option<u32>>,
    /// For each ancestor on the path: the old kid position feeding each new
    /// kid slot (only the grandparent's order actually changes: `A`'s slot
    /// becomes `B`'s).
    path_slots: Vec<(NodeId, Vec<u32>)>,
    /// Scratch for the `(b value, a entry, b union, b entry)` pair sort.
    pairs: Vec<(Value, u32, u32, u32)>,
    /// Scratch: the distinct `B`-values of the union being regrouped.
    values: Vec<Value>,
    /// Scratch: start offset of each `B`-value's pair group in `pairs`.
    group_starts: Vec<u32>,
}

impl<'a> SwapRewrite<'a> {
    fn new(src: &'a Store, old_tree: &FTree, new_tree: &FTree, outcome: &SwapOutcome) -> Self {
        let (a, b) = (outcome.old_parent, outcome.new_parent);
        let moved_down: BTreeSet<NodeId> = outcome.moved_down.iter().copied().collect();
        let old_a_children = old_tree.children(a).to_vec();
        let old_b_children = old_tree.children(b).to_vec();

        let a_slots = new_tree
            .children(a)
            .iter()
            .map(|&d| {
                if moved_down.contains(&d) {
                    (true, child_pos(&old_b_children, d))
                } else {
                    (false, child_pos(&old_a_children, d))
                }
            })
            .collect();
        let b_slots = new_tree
            .children(b)
            .iter()
            .map(|&c| {
                if c == a {
                    None
                } else {
                    Some(child_pos(&old_b_children, c))
                }
            })
            .collect();

        let path: Vec<NodeId> = old_tree.ancestors(a);
        let path_slots = path
            .iter()
            .map(|&n| {
                let old_children = old_tree.children(n);
                let slots = new_tree
                    .children(n)
                    .iter()
                    .map(|&c| child_pos(old_children, if c == b { a } else { c }))
                    .collect();
                (n, slots)
            })
            .collect();

        SwapRewrite {
            rw: Rewriter::new(src, old_tree),
            a,
            b,
            on_path: path.into_iter().collect(),
            old_a_children,
            a_slots,
            b_slots,
            path_slots,
            pairs: Vec::new(),
            values: Vec::new(),
            group_starts: Vec::new(),
        }
    }

    fn emit(&mut self, uid: u32) -> u32 {
        let src = self.rw.src;
        let rec = src.unions[uid as usize];
        if rec.node == self.a {
            return self.regroup(uid);
        }
        if !self.on_path.contains(&rec.node) {
            // Nothing below this union changes.
            return self.rw.copy_union(uid);
        }
        // An ancestor of `A`: same entries, kid slots re-emitted in the new
        // tree's child order.
        let out = self
            .rw
            .begin_union(rec.node, src.value_slice(uid).iter().copied());
        let pi = self
            .path_slots
            .iter()
            .position(|(n, _)| *n == rec.node)
            .expect("path nodes are precomputed");
        let slot_count = self.path_slots[pi].1.len();
        for i in 0..rec.entries_len {
            let mark = self.rw.mark();
            for k in 0..slot_count {
                let pos = self.path_slots[pi].1[k];
                let kid = self.emit(src.kid(uid, i, pos));
                self.rw.push_kid(kid);
            }
            self.rw.end_entry(out, i, mark);
        }
        out
    }

    /// Regroups one `A`-union into the corresponding `B`-union.
    fn regroup(&mut self, a_uid: u32) -> u32 {
        let src = self.rw.src;
        let a_rec = src.unions[a_uid as usize];
        let pos_b = child_pos(&self.old_a_children, self.b);

        // Gather every (b value, a entry) pair, then sort by b value with
        // ties in a-entry order — within one b value the pairing a values
        // then arrive in increasing order, as the paper's priority queue
        // delivers them.
        self.pairs.clear();
        for i in 0..a_rec.entries_len {
            let b_uid = src.kid(a_uid, i, pos_b);
            for (j, &value) in src.value_slice(b_uid).iter().enumerate() {
                self.pairs.push((value, i, b_uid, j as u32));
            }
        }
        self.pairs.sort_unstable();

        self.values.clear();
        self.group_starts.clear();
        for (idx, p) in self.pairs.iter().enumerate() {
            if idx == 0 || p.0 != self.pairs[idx - 1].0 {
                self.values.push(p.0);
                self.group_starts.push(idx as u32);
            }
        }
        self.group_starts.push(self.pairs.len() as u32);

        let out_uid = {
            let values = std::mem::take(&mut self.values);
            let uid = self.rw.begin_union(self.b, values.iter().copied());
            self.values = values;
            uid
        };
        let group_count = self.group_starts.len() - 1;
        for g in 0..group_count {
            let (start, end) = (self.group_starts[g], self.group_starts[g + 1]);
            let (_, _a0, b_uid0, j0) = self.pairs[start as usize];
            let mark = self.rw.mark();
            for slot in 0..self.b_slots.len() {
                match self.b_slots[slot] {
                    // A kept child of `B` (F_b): all copies under the
                    // different a values are equal by independence, keep the
                    // first pair's.
                    Some(pos) => {
                        let kid = self.rw.copy_union(src.kid(b_uid0, j0, pos));
                        self.rw.push_kid(kid);
                    }
                    // The inner union over `A`.
                    None => {
                        let inner = self.emit_inner_a(a_uid, start, end);
                        self.rw.push_kid(inner);
                    }
                }
            }
            self.rw.end_entry(out_uid, g as u32, mark);
        }
        out_uid
    }

    /// Emits the inner `A`-union of one `B`-value: one entry per `(a, b)`
    /// pair, with `E_a` copied from the old `A`-entry and `G_ab` copied from
    /// the pair's `B`-entry.
    fn emit_inner_a(&mut self, a_uid: u32, start: u32, end: u32) -> u32 {
        let src = self.rw.src;
        let a_values = src.value_slice(a_uid);
        let inner = self.rw.begin_union_raw(self.a, end - start);
        for p in start..end {
            let (_, i, _, _) = self.pairs[p as usize];
            self.rw.push_value(a_values[i as usize]);
        }
        for k in 0..(end - start) {
            let (_, i, b_uid, j) = self.pairs[(start + k) as usize];
            let mark = self.rw.mark();
            for slot in 0..self.a_slots.len() {
                let (from_b, pos) = self.a_slots[slot];
                let kid = if from_b {
                    src.kid(b_uid, j, pos)
                } else {
                    src.kid(a_uid, i, pos)
                };
                let copied = self.rw.copy_union(kid);
                self.rw.push_kid(copied);
            }
            self.rw.end_entry(inner, k, mark);
        }
        inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize;
    use crate::node::{Entry, Union};
    use crate::ops::oracle;
    use fdb_common::AttrId;
    use fdb_ftree::{DepEdge, FTree};

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// The grocery Q1 result of Example 1 over the f-tree T1
    /// (item → (oid, location → dispatcher)), with values encoded as
    /// integers: Milk=1, Cheese=2, Melon=3; Istanbul=1, Izmir=2, Antalya=3;
    /// Adnan=1, Yasemin=2, Volkan=3.
    fn grocery_q1_over_t1() -> FRep {
        // Attribute ids: oid=0, Orders.item=1, Store.location=2,
        // Store.item=3, dispatcher=4, Disp.location=5.
        let edges = vec![
            DepEdge::new("Orders", attrs(&[0, 1]), 5),
            DepEdge::new("Store", attrs(&[2, 3]), 6),
            DepEdge::new("Disp", attrs(&[4, 5]), 4),
        ];
        let mut tree = FTree::new(edges);
        let item = tree.add_node(attrs(&[1, 3]), None).unwrap();
        let oid = tree.add_node(attrs(&[0]), Some(item)).unwrap();
        let location = tree.add_node(attrs(&[2, 5]), Some(item)).unwrap();
        let dispatcher = tree.add_node(attrs(&[4]), Some(location)).unwrap();

        let disp_union = |vals: &[u64]| {
            Union::new(
                dispatcher,
                vals.iter().map(|&v| Entry::leaf(Value::new(v))).collect(),
            )
        };
        let loc_entry = |loc: u64, dispatchers: &[u64]| Entry {
            value: Value::new(loc),
            children: vec![disp_union(dispatchers)],
        };
        let oid_union = |vals: &[u64]| {
            Union::new(
                oid,
                vals.iter().map(|&v| Entry::leaf(Value::new(v))).collect(),
            )
        };
        // Milk: orders {1}, locations Istanbul{Adnan,Yasemin}, Izmir{Adnan}, Antalya{Volkan}
        // Cheese: orders {1,3}, locations Istanbul{Adnan,Yasemin}, Antalya{Volkan}
        // Melon: orders {2,3}, locations Istanbul{Adnan,Yasemin}
        let item_union = Union::new(
            item,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![
                        oid_union(&[1]),
                        Union::new(
                            location,
                            vec![
                                loc_entry(1, &[1, 2]),
                                loc_entry(2, &[1]),
                                loc_entry(3, &[3]),
                            ],
                        ),
                    ],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![
                        oid_union(&[1, 3]),
                        Union::new(location, vec![loc_entry(1, &[1, 2]), loc_entry(3, &[3])]),
                    ],
                },
                Entry {
                    value: Value::new(3),
                    children: vec![
                        oid_union(&[2, 3]),
                        Union::new(location, vec![loc_entry(1, &[1, 2])]),
                    ],
                },
            ],
        );
        FRep::from_parts(tree, vec![item_union]).unwrap()
    }

    #[test]
    fn swapping_item_and_location_matches_example1() {
        // χ_{item,location} turns the T1 factorisation into the T2
        // factorisation of Example 1: grouped by location first.
        let mut rep = grocery_q1_over_t1();
        let before = materialize(&rep).unwrap().tuple_set();
        let location = rep.tree().node_of_attr(AttrId(2)).unwrap();
        let item = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let outcome = swap(&mut rep, location).unwrap();
        rep.validate().unwrap();
        assert_eq!(outcome.new_parent, location);
        assert_eq!(outcome.old_parent, item);
        // dispatcher stays with location, oid follows item (it depends on it).
        assert_eq!(outcome.kept.len(), 1);
        assert!(outcome.moved_down.is_empty());
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
        // T2 of Example 1: the root union now ranges over the three
        // locations; under Istanbul there are three items.
        let root = rep.root(0);
        assert_eq!(root.node(), location);
        assert_eq!(root.len(), 3);
        let istanbul = root.find_value(Value::new(1)).unwrap();
        let item_union = istanbul.child(item).unwrap();
        assert_eq!(item_union.len(), 3);
    }

    #[test]
    fn swap_back_restores_the_original_grouping() {
        let mut rep = grocery_q1_over_t1();
        let original_key = rep.tree().canonical_key();
        let original_size = rep.size();
        let before = materialize(&rep).unwrap().tuple_set();
        let location = rep.tree().node_of_attr(AttrId(2)).unwrap();
        swap(&mut rep, location).unwrap();
        let item = rep.tree().node_of_attr(AttrId(1)).unwrap();
        swap(&mut rep, item).unwrap();
        rep.validate().unwrap();
        assert_eq!(rep.tree().canonical_key(), original_key);
        assert_eq!(rep.size(), original_size);
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
    }

    #[test]
    fn swap_rejects_roots() {
        let mut rep = grocery_q1_over_t1();
        let item = rep.tree().node_of_attr(AttrId(1)).unwrap();
        assert!(swap(&mut rep, item).is_err());
    }

    #[test]
    fn arena_swap_is_store_identical_to_the_oracle() {
        let rep = grocery_q1_over_t1();
        let location = rep.tree().node_of_attr(AttrId(2)).unwrap();
        let mut arena = rep.clone();
        let mut reference = rep;
        swap(&mut arena, location).unwrap();
        oracle::swap(&mut reference, location).unwrap();
        assert!(
            arena.store_identical(&reference),
            "arena:\n{}\noracle:\n{}",
            arena.dump_store(),
            reference.dump_store()
        );
    }

    #[test]
    fn dependent_children_follow_the_old_parent_down() {
        // Tree A{0} → B{1} → (C{2}, D{3}) with relations {0,1}, {0,2}, {1,3}:
        // C depends on A (G_ab), D does not (F_b).
        let edges = vec![
            DepEdge::new("RAB", attrs(&[0, 1]), 1),
            DepEdge::new("RAC", attrs(&[0, 2]), 1),
            DepEdge::new("RBD", attrs(&[1, 3]), 1),
        ];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let c = tree.add_node(attrs(&[2]), Some(b)).unwrap();
        let d = tree.add_node(attrs(&[3]), Some(b)).unwrap();

        // Data: A=1 with B∈{10, 20}; under (1,10): C={100}, D={7};
        //       under (1,20): C={200}, D={8};  A=2 with B={10}: C={300}, D={7}.
        let b_entry = |bv: u64, cv: u64, dv: u64| Entry {
            value: Value::new(bv),
            children: vec![
                Union::new(c, vec![Entry::leaf(Value::new(cv))]),
                Union::new(d, vec![Entry::leaf(Value::new(dv))]),
            ],
        };
        let a_union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        b,
                        vec![b_entry(10, 100, 7), b_entry(20, 200, 8)],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![b_entry(10, 300, 7)])],
                },
            ],
        );
        let mut rep = FRep::from_parts(tree, vec![a_union]).unwrap();
        let reference = rep.clone();
        let before = materialize(&rep).unwrap().tuple_set();
        let outcome = swap(&mut rep, b).unwrap();
        rep.validate().unwrap();
        assert_eq!(outcome.moved_down, vec![c]);
        assert_eq!(outcome.kept, vec![d]);
        assert_eq!(materialize(&rep).unwrap().tuple_set(), before);
        // Structure: root over B with values 10, 20; under B=10 the D-union
        // {7} is shared while the A-union has entries 1 and 2 with their own
        // C-unions.
        let root = rep.root(0);
        assert_eq!(root.node(), b);
        assert_eq!(root.len(), 2);
        let b10 = root.find_value(Value::new(10)).unwrap();
        assert_eq!(b10.child(a).unwrap().len(), 2);
        assert_eq!(b10.child(d).unwrap().len(), 1);
        let a1 = b10.child(a).unwrap().find_value(Value::new(1)).unwrap();
        assert_eq!(a1.child(c).unwrap().entry(0).value(), Value::new(100));
        // And the arena is bit-for-bit what the thaw path would have built.
        let mut via_oracle = reference;
        oracle::swap(&mut via_oracle, b).unwrap();
        assert!(rep.store_identical(&via_oracle));
    }
}
