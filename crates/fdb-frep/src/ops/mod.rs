//! Data-level f-plan operators.
//!
//! Each operator of the paper's Section 3 transforms an f-representation
//! *and* its f-tree, keeping the two consistent:
//!
//! | operator | module | f-tree effect |
//! |---|---|---|
//! | Cartesian product `×` | [`mod@product`] | forests are concatenated |
//! | push-up `ψ_B`, normalisation `η` | [`restructure`] | a subtree moves one level up |
//! | swap `χ_{A,B}` | [`mod@swap`] | a child exchanges places with its parent |
//! | merge `µ_{A,B}` | [`mod@merge`] | two sibling nodes fuse |
//! | absorb `α_{A,B}` | [`mod@absorb`] | a node fuses into an ancestor |
//! | selection with constant `σ_{AθC}` | [`select`] | the node may become constant-bound |
//! | projection `π_Ā` | [`mod@project`] | projected leaves disappear |
//!
//! # Every operator is arena-native
//!
//! Since the arena refactor ([`crate::store`]) the value-level operators —
//! selection with a constant, Cartesian product, and pruning — run directly
//! on the flat arenas (a filtered rebuild, respectively an index-offset
//! concatenation).  As of PR 2 the *structural* operators (swap, merge,
//! absorb, push-up, projection) are arena-native too: each one clones the
//! f-tree, applies the schema-level transformation to the clone, and then
//! emits the output arena in a single pass through a
//! [`crate::store::Rewriter`] — union headers in depth-first preorder,
//! unchanged subtrees copied record-by-record, and the regrouped region
//! assembled directly in the *new* tree's child order.  The old
//! thaw-once/freeze-once design (thaw the arena into the owned
//! [`crate::node`] builder form, splice pointers, freeze back) paid two full
//! linear copies plus a heap allocation per union and entry around every
//! rewrite; the arena-native operators pay one flat copy and no per-node
//! allocation while keeping the same (quasi)linear operator cost bounds as
//! the paper.  The builder-form implementations survive verbatim in
//! [`oracle`] as the test and benchmark oracle — the rewriters reproduce the
//! freeze layout exactly, so equivalence tests compare stores bit for bit.
//!
//! On top of the per-operator passes, [`fuse`] compiles a *whole f-plan* —
//! structural operators, constant selections and projections alike — into a
//! single arena pass: the f-tree transforms are simulated up front, each
//! step rewrites a lightweight overlay of references into the input arena
//! (a selection is the liveness sweep with its comparison folded in, a
//! projection replays leaf removals and swap-downs), and one final emission
//! produces the freeze-layout output — a k-step plan pays one full copy
//! instead of k.  `fdb-plan` routes every multi-step plan through it, with
//! no segmentation barriers left.
//!
//! All operators preserve the invariants of [`crate::FRep`]: values inside
//! every union stay sorted and distinct, every entry carries one child union
//! per f-tree child, the path constraint holds, and (where the paper
//! promises it) normalisation is preserved.  Under `debug_assertions` every
//! structural rewrite re-validates the full arena ([`crate::FRep::validate`])
//! before it is installed.

pub mod absorb;
pub mod fuse;
pub mod merge;
#[doc(hidden)]
pub mod oracle;
pub mod product;
pub mod project;
pub mod restructure;
pub mod select;
pub mod swap;

pub use absorb::absorb;
pub use fuse::{
    execute_fused, execute_fused_aggregate, execute_fused_aggregate_ctx, execute_fused_ctx, FusedOp,
};
pub use merge::merge;
pub use product::product;
pub use project::project;
pub use restructure::{normalise, push_up};
pub use select::{select_const, select_const_ctx};
pub use swap::swap;

use crate::frep::FRep;
use fdb_ftree::NodeId;

/// Position of `node` in an f-tree child list.  The structural operators use
/// this to translate between the kid-slot orders of the input and output
/// trees; a miss means the representation disagrees with its tree, which
/// validation would have rejected.
pub(crate) fn child_pos(children: &[NodeId], node: NodeId) -> u32 {
    children
        .iter()
        .position(|&c| c == node)
        .expect("validated representation: node present in the child list") as u32
}

/// Debug-only full-arena invariant check, run after every arena-native
/// structural rewrite.  Release builds skip it: the rewriters maintain the
/// invariants by construction.
#[inline]
pub(crate) fn debug_validate(rep: &FRep, op: &str) {
    if cfg!(debug_assertions) {
        if let Err(e) = rep.validate() {
            panic!("{op}: arena-native rewrite broke an invariant: {e:?}");
        }
    }
}
