//! Data-level f-plan operators.
//!
//! Each operator of the paper's Section 3 transforms an f-representation
//! *and* its f-tree, keeping the two consistent:
//!
//! | operator | module | f-tree effect |
//! |---|---|---|
//! | Cartesian product `×` | [`mod@product`] | forests are concatenated |
//! | push-up `ψ_B`, normalisation `η` | [`restructure`] | a subtree moves one level up |
//! | swap `χ_{A,B}` | [`mod@swap`] | a child exchanges places with its parent |
//! | merge `µ_{A,B}` | [`mod@merge`] | two sibling nodes fuse |
//! | absorb `α_{A,B}` | [`mod@absorb`] | a node fuses into an ancestor |
//! | selection with constant `σ_{AθC}` | [`select`] | the node may become constant-bound |
//! | projection `π_Ā` | [`mod@project`] | projected leaves disappear |
//!
//! # Arena-native versus builder-form operators
//!
//! Since the arena refactor ([`crate::store`]) the value-level operators —
//! selection with a constant, Cartesian product, and pruning — run directly
//! on the flat arenas (a filtered rebuild, respectively an index-offset
//! concatenation), with no pointer tree in sight.  The *structural*
//! operators (swap, merge, absorb, push-up, projection) splice and regroup
//! subtrees arbitrarily, which is natural on the owned [`crate::node`]
//! builder form and hopeless in place on a flat arena; they thaw the store
//! once into a [`MutRep`], restructure, and freeze back — two linear passes
//! bracketing the same (quasi)linear rewriting logic as before, preserving
//! the paper's operator cost bounds.
//!
//! All operators preserve the invariants of [`crate::FRep`]: values inside
//! every union stay sorted and distinct, every entry carries one child union
//! per f-tree child, the path constraint holds, and (where the paper
//! promises it) normalisation is preserved.

pub mod absorb;
pub mod merge;
pub mod product;
pub mod project;
pub mod restructure;
pub mod select;
pub mod swap;

pub use absorb::absorb;
pub use merge::merge;
pub use product::product;
pub use project::project;
pub use restructure::{normalise, push_up};
pub use select::select_const;
pub use swap::swap;

use crate::frep::FRep;
use crate::node::{self, Union};
use fdb_ftree::{FTree, NodeId};

/// A representation thawed into the owned builder form, as the structural
/// operators rewrite it.  Constructed from an [`FRep`] with [`MutRep::thaw`]
/// and turned back with [`MutRep::freeze`]; the intermediate states may
/// violate the arena invariants (that is the point), the final freeze
/// re-establishes them.
pub(crate) struct MutRep {
    pub(crate) tree: FTree,
    pub(crate) roots: Vec<Union>,
}

impl MutRep {
    /// Thaws a representation (one linear pass over the arena).
    pub(crate) fn thaw(rep: &FRep) -> MutRep {
        MutRep {
            tree: rep.tree().clone(),
            roots: rep.to_forest(),
        }
    }

    /// Freezes the rewritten forest back into an arena-backed [`FRep`].
    pub(crate) fn freeze(self) -> FRep {
        FRep::from_parts_unchecked(self.tree, self.roots)
    }

    /// Removes entries whose product became empty, propagating upwards.
    pub(crate) fn prune_empty(&mut self) {
        node::prune_forest(&mut self.roots);
    }
}

/// Applies `f` to every union over `target` in the given builder forest.
/// Unions of a node are never nested inside one another, so recursion stops
/// once the target is found.
pub(crate) fn visit_unions_of_node_mut<F: FnMut(&mut Union)>(
    unions: &mut [Union],
    target: NodeId,
    f: &mut F,
) {
    for u in unions.iter_mut() {
        if u.node == target {
            f(u);
        } else {
            for entry in u.entries.iter_mut() {
                visit_unions_of_node_mut(&mut entry.children, target, f);
            }
        }
    }
}

/// Applies `f` to every *product context* (a mutable list of sibling unions)
/// that directly contains a union over a child of `parent`: the top-level
/// root list when `parent` is `None`, otherwise the children list of every
/// entry of every union over `parent`.
pub(crate) fn visit_contexts_of_node_mut<F: FnMut(&mut Vec<Union>)>(
    rep: &mut MutRep,
    parent: Option<NodeId>,
    f: &mut F,
) {
    match parent {
        None => f(&mut rep.roots),
        Some(p) => {
            visit_unions_of_node_mut(&mut rep.roots, p, &mut |parent_union: &mut Union| {
                for entry in parent_union.entries.iter_mut() {
                    f(&mut entry.children);
                }
            });
        }
    }
}
