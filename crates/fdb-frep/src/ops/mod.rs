//! Data-level f-plan operators.
//!
//! Each operator of the paper's Section 3 transforms an f-representation
//! *and* its f-tree, keeping the two consistent:
//!
//! | operator | module | f-tree effect |
//! |---|---|---|
//! | Cartesian product `×` | [`mod@product`] | forests are concatenated |
//! | push-up `ψ_B`, normalisation `η` | [`restructure`] | a subtree moves one level up |
//! | swap `χ_{A,B}` | [`mod@swap`] | a child exchanges places with its parent |
//! | merge `µ_{A,B}` | [`mod@merge`] | two sibling nodes fuse |
//! | absorb `α_{A,B}` | [`mod@absorb`] | a node fuses into an ancestor |
//! | selection with constant `σ_{AθC}` | [`select`] | the node may become constant-bound |
//! | projection `π_Ā` | [`mod@project`] | projected leaves disappear |
//!
//! All operators preserve the invariants of [`crate::FRep`]: values inside every
//! union stay sorted and distinct, every entry carries one child union per
//! f-tree child, the path constraint holds, and (where the paper promises
//! it) normalisation is preserved.  They run in time linear in the sizes of
//! their input and output representations, up to logarithmic factors for the
//! value regrouping done by swap and merge.

pub mod absorb;
pub mod merge;
pub mod product;
pub mod project;
pub mod restructure;
pub mod select;
pub mod swap;

pub use absorb::absorb;
pub use merge::merge;
pub use product::product;
pub use project::project;
pub use restructure::{normalise, push_up};
pub use select::select_const;
pub use swap::swap;

use crate::frep::Union;
use fdb_ftree::NodeId;

/// Applies `f` to every union over `target` in the representation rooted at
/// the given product context.  Unions of a node are never nested inside one
/// another, so recursion stops once the target is found.
pub(crate) fn visit_unions_of_node_mut<F: FnMut(&mut Union)>(
    unions: &mut [Union],
    target: NodeId,
    f: &mut F,
) {
    for u in unions.iter_mut() {
        if u.node == target {
            f(u);
        } else {
            for entry in u.entries.iter_mut() {
                visit_unions_of_node_mut(&mut entry.children, target, f);
            }
        }
    }
}

/// Applies `f` to every *product context* (a mutable list of sibling unions)
/// that directly contains a union over `target`: the top-level root list when
/// `target` is a root, otherwise the children list of every entry of every
/// union over `target`'s parent.
pub(crate) fn visit_contexts_of_node_mut<F: FnMut(&mut Vec<Union>)>(
    rep: &mut crate::frep::FRep,
    parent: Option<NodeId>,
    f: &mut F,
) {
    match parent {
        None => f(rep.roots_mut()),
        Some(p) => {
            visit_unions_of_node_mut(rep.roots_mut(), p, &mut |parent_union: &mut Union| {
                for entry in parent_union.entries.iter_mut() {
                    f(&mut entry.children);
                }
            });
        }
    }
}
