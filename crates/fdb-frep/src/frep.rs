//! The f-representation data structure, arena-backed.
//!
//! An [`FRep`] owns an [`FTree`] and, for every root of the forest, one
//! union.  A union over an f-tree node `N` labelled by class `{A₁,…,A_k}` is
//!
//! ```text
//!   ⋃_a ⟨A₁:a⟩ × … × ⟨A_k:a⟩ × E_a^{child₁} × … × E_a^{child_m}
//! ```
//!
//! i.e. a list of entries, one per distinct value `a` (kept in increasing
//! order, as all operators require), each carrying one child union per child
//! of `N` in the f-tree.  A forest is a product of its root unions.
//!
//! # Storage
//!
//! The unions are **not** stored as a pointer tree: they live in the
//! contiguous arenas of [`crate::store`] (union headers, entry records and a
//! child-slot table in fixed f-tree child order), which makes enumeration an
//! allocation-free walk over flat arrays and turns the whole-representation
//! statistics ([`FRep::size`], [`FRep::tuple_count`]) into flat loops.  Data
//! is read through [`UnionRef`]/[`EntryRef`] views; every operator —
//! including the structural ones — rewrites arena-to-arena ([`crate::ops`]),
//! and [`crate::build`] emits arena records directly.  The owned
//! [`Union`]/[`Entry`] builder form of [`crate::node`] remains the
//! hand-construction interface ([`FRep::from_parts`] / [`FRep::to_forest`])
//! and the substrate of the test oracle.
//!
//! The size of an f-representation is its number of singletons: every entry
//! of a union over `N` contributes one singleton per *visible* (not
//! projected-away) attribute of `N`'s class.

use crate::node;
use crate::store::Store;

// Convenience re-exports: the builder types and arena views travel with the
// representation they construct and read.
pub use crate::node::{Entry, Union};
pub use crate::store::{EntryRef, UnionRef};
use fdb_common::{AttrId, Result};
use fdb_ftree::{FTree, NodeId};
use std::fmt;

/// A factorised representation over an f-tree.
#[derive(Clone, Debug)]
pub struct FRep {
    tree: FTree,
    store: Store,
}

impl FRep {
    /// Creates an f-representation from its parts.  `roots` must contain one
    /// union per root of `tree`, in any order.
    pub fn from_parts(tree: FTree, roots: Vec<Union>) -> Result<Self> {
        tree.check_structure()?;
        tree.check_path_constraint()?;
        node::validate_forest(&tree, &roots)?;
        Ok(FRep::from_parts_unchecked(tree, roots))
    }

    /// Creates an f-representation from its parts without validating.  Used
    /// internally by operators that maintain the invariants themselves; tests
    /// call [`FRep::validate`] afterwards.
    pub(crate) fn from_parts_unchecked(tree: FTree, roots: Vec<Union>) -> Self {
        let store = Store::freeze(&tree, &roots);
        FRep { tree, store }
    }

    /// Creates an f-representation directly from an arena store.  Used by
    /// the arena-native operators and [`crate::build`], which maintain the
    /// invariants themselves.
    pub(crate) fn from_store(tree: FTree, store: Store) -> Self {
        FRep { tree, store }
    }

    /// Replaces both parts at once — how an arena-native structural operator
    /// installs its rewritten tree and arena.
    pub(crate) fn replace_parts(&mut self, tree: FTree, store: Store) {
        self.tree = tree;
        self.store = store;
    }

    /// Returns `true` if the two representations have bit-for-bit identical
    /// arenas (not merely the same represented relation).  Exposed for the
    /// oracle-equivalence tests; hidden because arena layout is not API.
    #[doc(hidden)]
    pub fn store_identical(&self, other: &FRep) -> bool {
        self.store == other.store
    }

    /// Debug rendering of the raw arena records, for oracle-equivalence test
    /// failure messages.
    #[doc(hidden)]
    pub fn dump_store(&self) -> String {
        format!("{:#?}", self.store)
    }

    /// The representation of the empty relation over the given f-tree.
    pub fn empty(tree: FTree) -> Self {
        let roots: Vec<Union> = tree.roots().iter().map(|&r| Union::empty(r)).collect();
        FRep::from_parts_unchecked(tree, roots)
    }

    /// The f-tree describing this representation's nesting structure.
    pub fn tree(&self) -> &FTree {
        &self.tree
    }

    /// Mutable access to the f-tree — reserved for the operator module,
    /// which keeps tree and data in lockstep.
    pub(crate) fn tree_mut(&mut self) -> &mut FTree {
        &mut self.tree
    }

    /// The arena store (crate-internal; operators rebuild it).
    pub(crate) fn store(&self) -> &Store {
        &self.store
    }

    /// Replaces the arena store (crate-internal).
    pub(crate) fn set_store(&mut self, store: Store) {
        self.store = store;
    }

    /// Mutable access to the arena store (crate-internal).
    pub(crate) fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Number of root unions (= number of f-tree roots).
    pub fn root_count(&self) -> usize {
        self.store.roots.len()
    }

    /// The `i`-th root union.
    pub fn root(&self, i: usize) -> UnionRef<'_> {
        UnionRef {
            tree: &self.tree,
            store: &self.store,
            id: self.store.roots[i],
        }
    }

    /// Iterates over the root unions.
    pub fn roots(&self) -> impl ExactSizeIterator<Item = UnionRef<'_>> {
        self.store.roots.iter().map(|&id| UnionRef {
            tree: &self.tree,
            store: &self.store,
            id,
        })
    }

    /// The first union over the given node found in the representation, if
    /// any (unions of one node are never nested inside one another).
    pub fn union_of_node(&self, node: NodeId) -> Option<UnionRef<'_>> {
        self.store
            .unions
            .iter()
            .position(|rec| rec.node == node)
            .map(|id| UnionRef {
                tree: &self.tree,
                store: &self.store,
                id: id as u32,
            })
    }

    /// Thaws the representation's data into the owned builder forest.
    pub fn to_forest(&self) -> Vec<Union> {
        self.store.thaw(&self.tree)
    }

    /// Decomposes the representation into its f-tree and builder forest.
    pub fn into_parts(self) -> (FTree, Vec<Union>) {
        let forest = self.store.thaw(&self.tree);
        (self.tree, forest)
    }

    /// The visible (non-projected) attributes of the representation, sorted.
    pub fn visible_attrs(&self) -> Vec<AttrId> {
        let mut attrs: Vec<AttrId> = self
            .tree
            .node_ids()
            .into_iter()
            .flat_map(|n| self.tree.visible_attrs(n).into_iter().collect::<Vec<_>>())
            .collect();
        attrs.sort_unstable();
        attrs
    }

    /// Returns `true` if the represented relation is empty: some root union
    /// is empty (a product with the empty relation is empty).  A forest with
    /// no nodes represents the relation containing the nullary tuple and is
    /// *not* empty.
    pub fn represents_empty(&self) -> bool {
        self.store
            .roots
            .iter()
            .any(|&r| self.store.union_len(r) == 0)
    }

    /// The size of the representation: its number of singletons.  Every
    /// entry of a union over node `N` contributes one singleton per visible
    /// attribute of `N`.  A flat loop over the union arena (every stored
    /// union is reachable).
    pub fn size(&self) -> usize {
        let visible: std::collections::BTreeMap<NodeId, usize> = self
            .tree
            .node_ids()
            .into_iter()
            .map(|n| (n, self.tree.visible_attrs(n).len()))
            .collect();
        self.store
            .unions
            .iter()
            .map(|rec| visible.get(&rec.node).copied().unwrap_or(0) * rec.entries_len as usize)
            .sum()
    }

    /// Number of tuples in the represented relation (without enumerating
    /// them): products multiply, unions add.  A flat bottom-up loop thanks
    /// to the arena's topological index order.
    pub fn tuple_count(&self) -> u128 {
        let store = &self.store;
        let mut counts = vec![0u128; store.unions.len()];
        for uid in (0..store.unions.len()).rev() {
            let rec = store.unions[uid];
            let kid_count = self.tree.children(rec.node).len();
            let mut total = 0u128;
            for e in rec.entries_start..rec.entries_start + rec.entries_len {
                let kids_start = store.kids_start_at(e) as usize;
                let mut product = 1u128;
                for k in 0..kid_count {
                    product *= counts[store.kids[kids_start + k] as usize];
                }
                total += product;
            }
            counts[uid] = total;
        }
        store.roots.iter().map(|&r| counts[r as usize]).product()
    }

    /// Checks all structural invariants:
    ///
    /// * the tree itself is well-formed and satisfies the path constraint;
    /// * there is exactly one root union per f-tree root;
    /// * every union's entries are sorted strictly increasing by value;
    /// * every entry has exactly one child union per f-tree child of its
    ///   node, laid out in f-tree child order;
    /// * the arena's index order is topological and every union reachable.
    pub fn validate(&self) -> Result<()> {
        self.tree.check_structure()?;
        self.tree.check_path_constraint()?;
        self.store.validate(&self.tree)
    }

    /// Removes entries whose product has become empty (some child union with
    /// no entries), propagating upwards.  Root unions are allowed to end up
    /// empty — that simply means the represented relation is empty.
    pub fn prune_empty(&mut self) {
        self.store = self.store.retain_and_prune(&self.tree, |_, _| true);
    }

    /// Renders the representation as nested text (values only), useful in
    /// examples and debugging.  Attribute names are resolved by `name`.
    pub fn render<F>(&self, mut name: F) -> String
    where
        F: FnMut(AttrId) -> String,
    {
        let mut out = String::new();
        for root in self.roots() {
            self.render_union(root, 0, &mut name, &mut out);
        }
        out
    }

    fn render_union<F>(&self, union: UnionRef<'_>, depth: usize, name: &mut F, out: &mut String)
    where
        F: FnMut(AttrId) -> String,
    {
        let label: Vec<String> = self
            .tree
            .class(union.node())
            .iter()
            .map(|&a| name(a))
            .collect();
        out.push_str(&format!("{}∪ {}:\n", "  ".repeat(depth), label.join(",")));
        for entry in union.entries() {
            out.push_str(&format!("{}⟨{}⟩\n", "  ".repeat(depth + 1), entry.value()));
            for child in entry.children() {
                self.render_union(child, depth + 2, name, out);
            }
        }
    }
}

impl fmt::Display for FRep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(|a| format!("{a}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Entry;
    use fdb_common::{FdbError, Value};
    use fdb_ftree::DepEdge;
    use std::collections::BTreeSet;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// Example 3 of the paper: R = {(1,1), (1,2), (2,2)} over {A, B} with the
    /// f-tree A → B.  Its unique f-representation is
    /// ⟨A:1⟩×(⟨B:1⟩ ∪ ⟨B:2⟩) ∪ ⟨A:2⟩×⟨B:2⟩.
    fn example3() -> FRep {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 3)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        b,
                        vec![Entry::leaf(Value::new(1)), Entry::leaf(Value::new(2))],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![Entry::leaf(Value::new(2))])],
                },
            ],
        );
        FRep::from_parts(tree, vec![union]).unwrap()
    }

    #[test]
    fn example3_size_and_count() {
        let rep = example3();
        // Singletons: ⟨A:1⟩, ⟨B:1⟩, ⟨B:2⟩, ⟨A:2⟩, ⟨B:2⟩ = 5.
        assert_eq!(rep.size(), 5);
        assert_eq!(rep.tuple_count(), 3);
        assert!(!rep.represents_empty());
        assert_eq!(rep.visible_attrs(), vec![AttrId(0), AttrId(1)]);
    }

    #[test]
    fn empty_representation() {
        let edges = vec![DepEdge::new("R", attrs(&[0]), 0)];
        let mut tree = FTree::new(edges);
        tree.add_node(attrs(&[0]), None).unwrap();
        let rep = FRep::empty(tree);
        rep.validate().unwrap();
        assert!(rep.represents_empty());
        assert_eq!(rep.size(), 0);
        assert_eq!(rep.tuple_count(), 0);
    }

    #[test]
    fn nullary_representation_has_one_tuple() {
        // An empty forest represents ⟨⟩, the relation with the nullary tuple.
        let rep = FRep::empty(FTree::new(vec![]));
        rep.validate().unwrap();
        assert!(!rep.represents_empty());
        assert_eq!(rep.tuple_count(), 1);
        assert_eq!(rep.size(), 0);
    }

    #[test]
    fn validation_rejects_out_of_order_values() {
        let rep = example3();
        let (tree, mut roots) = rep.into_parts();
        roots[0].entries.swap(0, 1);
        assert!(matches!(
            FRep::from_parts(tree, roots),
            Err(FdbError::MalformedRepresentation { .. })
        ));
    }

    #[test]
    fn validation_rejects_missing_children() {
        let rep = example3();
        let (tree, mut roots) = rep.into_parts();
        roots[0].entries[0].children.clear();
        assert!(matches!(
            FRep::from_parts(tree, roots),
            Err(FdbError::MalformedRepresentation { .. })
        ));
    }

    #[test]
    fn validation_rejects_wrong_root_set() {
        let rep = example3();
        let (tree, roots) = rep.into_parts();
        let b = tree.node_of_attr(AttrId(1)).unwrap();
        let bogus = vec![Union::empty(b), roots.into_iter().next().unwrap()];
        assert!(FRep::from_parts(tree, bogus).is_err());
    }

    #[test]
    fn arena_validation_catches_malformed_frozen_data() {
        // from_parts_unchecked freezes without checking; validate() must
        // still reject the malformation at the arena level.
        let rep = example3();
        let (tree, mut roots) = rep.into_parts();
        roots[0].entries[0].children.clear();
        let rep = FRep::from_parts_unchecked(tree, roots);
        assert!(matches!(
            rep.validate(),
            Err(FdbError::MalformedRepresentation { .. })
        ));
    }

    #[test]
    fn prune_removes_entries_with_empty_children() {
        let rep = example3();
        let (tree, mut roots) = rep.into_parts();
        // Make the B-union under A=1 empty: the A=1 entry must disappear.
        roots[0].entries[0].children[0].entries.clear();
        let mut rep = FRep::from_parts_unchecked(tree, roots);
        rep.prune_empty();
        rep.validate().unwrap();
        assert_eq!(rep.tuple_count(), 1);
        assert_eq!(rep.root(0).len(), 1);
        assert_eq!(rep.root(0).entry(0).value(), Value::new(2));
    }

    #[test]
    fn union_lookup_helpers() {
        let rep = example3();
        let root = rep.root(0);
        assert_eq!(root.len(), 2);
        assert!(root.find_value(Value::new(2)).is_some());
        assert!(root.find_value(Value::new(3)).is_none());
        let b = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let entry = root.find_value(Value::new(1)).unwrap();
        assert_eq!(entry.child(b).unwrap().len(), 2);
        assert_eq!(rep.union_of_node(root.node()).unwrap().len(), 2);
    }

    #[test]
    fn forest_round_trip_preserves_everything() {
        let rep = example3();
        let rebuilt = FRep::from_parts(rep.tree().clone(), rep.to_forest()).unwrap();
        assert_eq!(rebuilt.size(), rep.size());
        assert_eq!(rebuilt.tuple_count(), rep.tuple_count());
        assert_eq!(rebuilt.store(), rep.store());
    }

    #[test]
    fn render_contains_values() {
        let rep = example3();
        let text = rep.render(|a| {
            if a == AttrId(0) {
                "A".into()
            } else {
                "B".into()
            }
        });
        assert!(text.contains("∪ A:"));
        assert!(text.contains("⟨1⟩"));
        assert!(text.contains("∪ B:"));
    }
}
