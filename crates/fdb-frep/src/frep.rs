//! The f-representation data structure.
//!
//! An [`FRep`] owns an [`FTree`] and, for every root of the forest, one
//! [`Union`].  A union over an f-tree node `N` labelled by class
//! `{A₁,…,A_k}` is
//!
//! ```text
//!   ⋃_a ⟨A₁:a⟩ × … × ⟨A_k:a⟩ × E_a^{child₁} × … × E_a^{child_m}
//! ```
//!
//! i.e. a list of [`Entry`]s, one per distinct value `a` (kept in increasing
//! order, as all operators require), each carrying one child [`Union`] per
//! child of `N` in the f-tree.  A forest is a product of its root unions.
//!
//! The size of an f-representation is its number of singletons: every entry
//! of a union over `N` contributes one singleton per *visible* (not
//! projected-away) attribute of `N`'s class.

use fdb_common::{AttrId, FdbError, Result, Value};
use fdb_ftree::{FTree, NodeId};
use std::collections::BTreeSet;
use std::fmt;

/// One `⟨value⟩ × children…` term of a [`Union`].
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// The common value of all attributes labelling the union's node.
    pub value: Value,
    /// One child union per child of the node in the f-tree (in any order;
    /// each child union records which node it ranges over).
    pub children: Vec<Union>,
}

impl Entry {
    /// Creates an entry with no children (for unions over leaf nodes).
    pub fn leaf(value: Value) -> Self {
        Entry { value, children: Vec::new() }
    }

    /// Returns the child union over the given node, if present.
    pub fn child(&self, node: NodeId) -> Option<&Union> {
        self.children.iter().find(|u| u.node == node)
    }

    /// Returns a mutable reference to the child union over the given node.
    pub fn child_mut(&mut self, node: NodeId) -> Option<&mut Union> {
        self.children.iter_mut().find(|u| u.node == node)
    }

    /// Removes and returns the child union over the given node.
    pub fn take_child(&mut self, node: NodeId) -> Option<Union> {
        let idx = self.children.iter().position(|u| u.node == node)?;
        Some(self.children.remove(idx))
    }
}

/// A union of singleton-products over one f-tree node.
#[derive(Clone, Debug, PartialEq)]
pub struct Union {
    /// The f-tree node this union ranges over.
    pub node: NodeId,
    /// The entries, sorted strictly increasing by value.
    pub entries: Vec<Entry>,
}

impl Union {
    /// Creates an empty union over a node (represents the empty relation for
    /// that part of the factorisation).
    pub fn empty(node: NodeId) -> Self {
        Union { node, entries: Vec::new() }
    }

    /// Creates a union from entries (the caller must supply them sorted by
    /// value).
    pub fn new(node: NodeId, entries: Vec<Entry>) -> Self {
        Union { node, entries }
    }

    /// Returns `true` if the union has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries (distinct values).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Binary-searches for the entry with the given value.
    pub fn find_value(&self, value: Value) -> Option<&Entry> {
        self.entries
            .binary_search_by(|e| e.value.cmp(&value))
            .ok()
            .map(|i| &self.entries[i])
    }
}

/// A factorised representation over an f-tree.
#[derive(Clone, Debug)]
pub struct FRep {
    tree: FTree,
    roots: Vec<Union>,
}

impl FRep {
    /// Creates an f-representation from its parts.  `roots` must contain one
    /// union per root of `tree`, in any order.
    pub fn from_parts(tree: FTree, roots: Vec<Union>) -> Result<Self> {
        let rep = FRep { tree, roots };
        rep.validate()?;
        Ok(rep)
    }

    /// Creates an f-representation from its parts without validating.  Used
    /// internally by operators that maintain the invariants themselves; tests
    /// call [`FRep::validate`] afterwards.
    pub(crate) fn from_parts_unchecked(tree: FTree, roots: Vec<Union>) -> Self {
        FRep { tree, roots }
    }

    /// The representation of the empty relation over the given f-tree.
    pub fn empty(tree: FTree) -> Self {
        let roots = tree.roots().iter().map(|&r| Union::empty(r)).collect();
        FRep { tree, roots }
    }

    /// The f-tree describing this representation's nesting structure.
    pub fn tree(&self) -> &FTree {
        &self.tree
    }

    /// Mutable access to the f-tree — reserved for the operator module,
    /// which keeps tree and data in lockstep.
    pub(crate) fn tree_mut(&mut self) -> &mut FTree {
        &mut self.tree
    }

    /// The root unions (one per f-tree root).
    pub fn roots(&self) -> &[Union] {
        &self.roots
    }

    /// Mutable access to the root unions — reserved for the operator module.
    pub(crate) fn roots_mut(&mut self) -> &mut Vec<Union> {
        &mut self.roots
    }

    /// Decomposes the representation into its parts.
    pub fn into_parts(self) -> (FTree, Vec<Union>) {
        (self.tree, self.roots)
    }

    /// The visible (non-projected) attributes of the representation, sorted.
    pub fn visible_attrs(&self) -> Vec<AttrId> {
        let mut attrs: Vec<AttrId> = self
            .tree
            .node_ids()
            .into_iter()
            .flat_map(|n| self.tree.visible_attrs(n).into_iter().collect::<Vec<_>>())
            .collect();
        attrs.sort_unstable();
        attrs
    }

    /// Returns `true` if the represented relation is empty: some root union
    /// is empty (a product with the empty relation is empty).  A forest with
    /// no nodes represents the relation containing the nullary tuple and is
    /// *not* empty.
    pub fn represents_empty(&self) -> bool {
        self.roots.iter().any(Union::is_empty)
    }

    /// The size of the representation: its number of singletons.  Every
    /// entry of a union over node `N` contributes one singleton per visible
    /// attribute of `N`.
    pub fn size(&self) -> usize {
        let mut total = 0usize;
        for root in &self.roots {
            self.size_union(root, &mut total);
        }
        total
    }

    fn size_union(&self, union: &Union, total: &mut usize) {
        let singletons_per_entry = self.tree.visible_attrs(union.node).len();
        *total += singletons_per_entry * union.entries.len();
        for entry in &union.entries {
            for child in &entry.children {
                self.size_union(child, total);
            }
        }
    }

    /// Number of tuples in the represented relation (without enumerating
    /// them): products multiply, unions add.
    pub fn tuple_count(&self) -> u128 {
        self.roots.iter().map(|u| Self::count_union(u)).product()
    }

    fn count_union(union: &Union) -> u128 {
        union
            .entries
            .iter()
            .map(|e| e.children.iter().map(Self::count_union).product::<u128>())
            .sum()
    }

    /// Checks all structural invariants:
    ///
    /// * the tree itself is well-formed and satisfies the path constraint;
    /// * there is exactly one root union per f-tree root;
    /// * every union's entries are sorted strictly increasing by value;
    /// * every entry has exactly one child union per f-tree child of its
    ///   node.
    pub fn validate(&self) -> Result<()> {
        self.tree.check_structure()?;
        self.tree.check_path_constraint()?;
        let tree_roots: BTreeSet<NodeId> = self.tree.roots().iter().copied().collect();
        let rep_roots: BTreeSet<NodeId> = self.roots.iter().map(|u| u.node).collect();
        if tree_roots != rep_roots || self.roots.len() != self.tree.roots().len() {
            return Err(FdbError::MalformedRepresentation {
                detail: format!(
                    "root unions {rep_roots:?} do not match f-tree roots {tree_roots:?}"
                ),
            });
        }
        for root in &self.roots {
            self.validate_union(root)?;
        }
        Ok(())
    }

    fn validate_union(&self, union: &Union) -> Result<()> {
        self.tree.check_node(union.node)?;
        let expected_children: BTreeSet<NodeId> =
            self.tree.children(union.node).iter().copied().collect();
        let mut prev: Option<Value> = None;
        for entry in &union.entries {
            if let Some(p) = prev {
                if entry.value <= p {
                    return Err(FdbError::MalformedRepresentation {
                        detail: format!(
                            "union over {} has out-of-order or duplicate value {}",
                            union.node, entry.value
                        ),
                    });
                }
            }
            prev = Some(entry.value);
            let child_nodes: BTreeSet<NodeId> = entry.children.iter().map(|u| u.node).collect();
            if child_nodes != expected_children || entry.children.len() != expected_children.len() {
                return Err(FdbError::MalformedRepresentation {
                    detail: format!(
                        "entry {} of union over {} has children {child_nodes:?}, expected {expected_children:?}",
                        entry.value, union.node
                    ),
                });
            }
            for child in &entry.children {
                self.validate_union(child)?;
            }
        }
        Ok(())
    }

    /// Removes entries whose product has become empty (some child union with
    /// no entries), propagating upwards.  Root unions are allowed to end up
    /// empty — that simply means the represented relation is empty.
    pub fn prune_empty(&mut self) {
        for root in &mut self.roots {
            Self::prune_union(root);
        }
    }

    fn prune_union(union: &mut Union) {
        union.entries.retain_mut(|entry| {
            for child in &mut entry.children {
                Self::prune_union(child);
                if child.is_empty() {
                    return false;
                }
            }
            true
        });
    }

    /// Renders the representation as nested text (values only), useful in
    /// examples and debugging.  Attribute names are resolved by `name`.
    pub fn render<F>(&self, mut name: F) -> String
    where
        F: FnMut(AttrId) -> String,
    {
        let mut out = String::new();
        for root in &self.roots {
            self.render_union(root, 0, &mut name, &mut out);
        }
        out
    }

    fn render_union<F>(&self, union: &Union, depth: usize, name: &mut F, out: &mut String)
    where
        F: FnMut(AttrId) -> String,
    {
        let label: Vec<String> =
            self.tree.class(union.node).iter().map(|&a| name(a)).collect();
        out.push_str(&format!("{}∪ {}:\n", "  ".repeat(depth), label.join(",")));
        for entry in &union.entries {
            out.push_str(&format!("{}⟨{}⟩\n", "  ".repeat(depth + 1), entry.value));
            for child in &entry.children {
                self.render_union(child, depth + 2, name, out);
            }
        }
    }
}

impl fmt::Display for FRep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(|a| format!("{a}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_ftree::DepEdge;

    fn attrs(ids: &[u32]) -> BTreeSet<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    /// Example 3 of the paper: R = {(1,1), (1,2), (2,2)} over {A, B} with the
    /// f-tree A → B.  Its unique f-representation is
    /// ⟨A:1⟩×(⟨B:1⟩ ∪ ⟨B:2⟩) ∪ ⟨A:2⟩×⟨B:2⟩.
    fn example3() -> FRep {
        let edges = vec![DepEdge::new("R", attrs(&[0, 1]), 3)];
        let mut tree = FTree::new(edges);
        let a = tree.add_node(attrs(&[0]), None).unwrap();
        let b = tree.add_node(attrs(&[1]), Some(a)).unwrap();
        let union = Union::new(
            a,
            vec![
                Entry {
                    value: Value::new(1),
                    children: vec![Union::new(
                        b,
                        vec![Entry::leaf(Value::new(1)), Entry::leaf(Value::new(2))],
                    )],
                },
                Entry {
                    value: Value::new(2),
                    children: vec![Union::new(b, vec![Entry::leaf(Value::new(2))])],
                },
            ],
        );
        FRep::from_parts(tree, vec![union]).unwrap()
    }

    #[test]
    fn example3_size_and_count() {
        let rep = example3();
        // Singletons: ⟨A:1⟩, ⟨B:1⟩, ⟨B:2⟩, ⟨A:2⟩, ⟨B:2⟩ = 5.
        assert_eq!(rep.size(), 5);
        assert_eq!(rep.tuple_count(), 3);
        assert!(!rep.represents_empty());
        assert_eq!(rep.visible_attrs(), vec![AttrId(0), AttrId(1)]);
    }

    #[test]
    fn empty_representation() {
        let edges = vec![DepEdge::new("R", attrs(&[0]), 0)];
        let mut tree = FTree::new(edges);
        tree.add_node(attrs(&[0]), None).unwrap();
        let rep = FRep::empty(tree);
        rep.validate().unwrap();
        assert!(rep.represents_empty());
        assert_eq!(rep.size(), 0);
        assert_eq!(rep.tuple_count(), 0);
    }

    #[test]
    fn nullary_representation_has_one_tuple() {
        // An empty forest represents ⟨⟩, the relation with the nullary tuple.
        let rep = FRep::empty(FTree::new(vec![]));
        rep.validate().unwrap();
        assert!(!rep.represents_empty());
        assert_eq!(rep.tuple_count(), 1);
        assert_eq!(rep.size(), 0);
    }

    #[test]
    fn validation_rejects_out_of_order_values() {
        let rep = example3();
        let (tree, mut roots) = rep.into_parts();
        roots[0].entries.swap(0, 1);
        assert!(matches!(
            FRep::from_parts(tree, roots),
            Err(FdbError::MalformedRepresentation { .. })
        ));
    }

    #[test]
    fn validation_rejects_missing_children() {
        let rep = example3();
        let (tree, mut roots) = rep.into_parts();
        roots[0].entries[0].children.clear();
        assert!(matches!(
            FRep::from_parts(tree, roots),
            Err(FdbError::MalformedRepresentation { .. })
        ));
    }

    #[test]
    fn validation_rejects_wrong_root_set() {
        let rep = example3();
        let (tree, roots) = rep.into_parts();
        let b = tree.node_of_attr(AttrId(1)).unwrap();
        let bogus = vec![Union::empty(b), roots.into_iter().next().unwrap()];
        assert!(FRep::from_parts(tree, bogus).is_err());
    }

    #[test]
    fn prune_removes_entries_with_empty_children() {
        let rep = example3();
        let (tree, mut roots) = rep.into_parts();
        // Make the B-union under A=1 empty: the A=1 entry must disappear.
        roots[0].entries[0].children[0].entries.clear();
        let mut rep = FRep::from_parts_unchecked(tree, roots);
        rep.prune_empty();
        rep.validate().unwrap();
        assert_eq!(rep.tuple_count(), 1);
        assert_eq!(rep.roots()[0].entries.len(), 1);
        assert_eq!(rep.roots()[0].entries[0].value, Value::new(2));
    }

    #[test]
    fn union_lookup_helpers() {
        let rep = example3();
        let root = &rep.roots()[0];
        assert_eq!(root.len(), 2);
        assert!(root.find_value(Value::new(2)).is_some());
        assert!(root.find_value(Value::new(3)).is_none());
        let b = rep.tree().node_of_attr(AttrId(1)).unwrap();
        let entry = root.find_value(Value::new(1)).unwrap();
        assert_eq!(entry.child(b).unwrap().len(), 2);
    }

    #[test]
    fn render_contains_values() {
        let rep = example3();
        let text = rep.render(|a| if a == AttrId(0) { "A".into() } else { "B".into() });
        assert!(text.contains("∪ A:"));
        assert!(text.contains("⟨1⟩"));
        assert!(text.contains("∪ B:"));
    }
}
