//! Flat scan kernels over value arrays — the vectorised inner loops of the
//! SoA arena layout.
//!
//! The [`crate::store`] arenas keep entry values in a dense `&[Value]` array
//! per union (see the store docs for the SoA layout contract), so the hot
//! scans of the engine — predicate evaluation in the overlay's entry
//! filters and `retain_and_prune`, `find_value` probes, the priority
//! cursor's run boundaries, and the sortedness check in `validate` — all
//! reduce to a handful of kernels over a flat slice of 8-byte values.  This
//! module is the **single home** for those kernels and for the
//! binary-search probe contract ([`find_by_key`]) that the builder-form
//! [`crate::node::Union`] shares with the arena probes.
//!
//! # Dispatch
//!
//! Every kernel has a portable scalar implementation (`*_scalar`), compiled
//! and tested unconditionally.  With the `simd` cargo feature on x86-64 the
//! un-suffixed entry points dispatch at runtime to AVX2 implementations
//! (4 × u64 lanes, `std::arch` intrinsics behind
//! `is_x86_feature_detected!`); anywhere else they fall through to the
//! scalar code.  The paper's issue sketch names `std::simd`, but portable
//! SIMD is nightly-only; the stable-toolchain equivalent is explicit
//! intrinsics with runtime detection, which is what ships here.  The SIMD
//! and scalar paths are pinned bit-for-bit against each other by
//! `tests/simd_equivalence.rs` (run with the feature both on and off) and
//! the property tests in this module.
//!
//! Unsigned 64-bit comparisons have no direct AVX2 instruction; the ordered
//! kernels flip the sign bit of both operands (`x ^ 1 << 63`) and use the
//! signed `_mm256_cmpgt_epi64`, the standard bias trick.
//!
//! Dispatch is also gated on input *size*: `#[target_feature]` functions
//! cannot be inlined into their callers, so every AVX2 call pays a real
//! function-call (and dispatch-check) overhead.  On the tiny blocks the
//! engine sees constantly — three-entry unions, runs a handful of values
//! long — that overhead exceeds the whole scalar loop, so the dispatched
//! entry points fall through to scalar below per-kernel length thresholds
//! (`SIMD_MASK_MIN_LEN`, `SIMD_RUN_MIN_WINDOW`) chosen from the bench-pr10
//! crossover measurements.  One kernel is *never* dispatched: point probes
//! ([`lower_bound`], [`find_value`]) measured slower vectorised at every
//! slice length, so the engine keeps the scalar binary search and the
//! vector variant survives only as [`lower_bound_vector`] /
//! [`find_value_vector`] for pricing and equivalence pinning.

use fdb_common::{ComparisonOp, Value};

/// Smallest block for which [`fill_keep_mask`] dispatches to AVX2.  Below
/// this the non-inlinable `#[target_feature]` call costs more than the
/// whole scalar loop (the engine's unions are often only a few entries
/// wide); measured crossover on the bench-pr10 filter shapes.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
const SIMD_MASK_MIN_LEN: usize = 16;

/// Smallest gallop window for which [`run_end`] resolves with AVX2.  The
/// priority cursor's typical runs are short, leaving a window of a few
/// values where the linear scalar scan wins against the call overhead.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
const SIMD_RUN_MIN_WINDOW: usize = 32;

/// Reinterprets a value slice as its raw `u64` backing.  Sound because
/// [`Value`] is `repr(transparent)` over `u64`.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn raw(values: &[Value]) -> &[u64] {
    // SAFETY: Value is repr(transparent) over u64, so the layouts match.
    unsafe { std::slice::from_raw_parts(values.as_ptr() as *const u64, values.len()) }
}

/// Returns `true` when the AVX2 fast paths are compiled in and the CPU
/// supports them.  `false` on every configuration without the `simd`
/// feature, so the scalar kernels are the only code path CI's default build
/// can take.
#[inline]
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

// ---------------------------------------------------------------------
// The probe contract (shared binary search)
// ---------------------------------------------------------------------

/// Binary-searches a slice sorted strictly increasing by `key` for the item
/// whose key equals `target` — the **single probe contract** behind every
/// `find_value` in the crate: the builder-form [`crate::node::Union`], the
/// arena [`crate::UnionRef`], the fused overlay and the absorb operator all
/// delegate here (directly, or via [`find_value`] for flat value slices).
#[inline]
pub fn find_by_key<T>(
    items: &[T],
    mut key: impl FnMut(&T) -> Value,
    target: Value,
) -> Option<usize> {
    items.binary_search_by(|item| key(item).cmp(&target)).ok()
}

/// First index whose value is `>= target` in a strictly increasing slice
/// (`values.len()` when every value is smaller).
///
/// Deliberately **not** runtime-dispatched: the vectorised hybrid
/// ([`lower_bound_vector`]) measured *slower* than `partition_point` at
/// every slice length on the bench-pr10 probe shapes (0.2–0.6×) — a point
/// probe is a dependent-load chain that branchless binary search already
/// walks optimally, and the non-inlinable AVX2 call only adds overhead.
/// The engine therefore probes with the scalar search; the vector variant
/// stays available so the bench can keep pricing that negative result.
#[inline]
pub fn lower_bound(values: &[Value], target: Value) -> usize {
    lower_bound_scalar(values, target)
}

/// Scalar [`lower_bound`]: a plain binary search (`partition_point`).
#[inline]
pub fn lower_bound_scalar(values: &[Value], target: Value) -> usize {
    values.partition_point(|&v| v < target)
}

/// The vectorised [`lower_bound`] *candidate*: binary search down to a
/// small window, then an AVX2 population count of the lanes `< target`.
/// Runtime-dispatched (scalar without the `simd` feature or AVX2).  Kept
/// public, but **not** wired into the engine's probes — see
/// [`lower_bound`] for the measurement that rejected it.  The equivalence
/// suite still pins it bit-for-bit against the scalar oracle.
#[inline]
pub fn lower_bound_vector(values: &[Value], target: Value) -> usize {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: AVX2 support was just detected.
        return unsafe { avx2::lower_bound(raw(values), target.raw()) };
    }
    lower_bound_scalar(values, target)
}

/// Index of `target` in a strictly increasing value slice, if present —
/// the flat-slice form of the probe contract.  Scalar by design; see
/// [`lower_bound`].
#[inline]
pub fn find_value(values: &[Value], target: Value) -> Option<usize> {
    let i = lower_bound(values, target);
    (i < values.len() && values[i] == target).then_some(i)
}

/// Scalar [`find_value`], routed through the shared probe contract.
#[inline]
pub fn find_value_scalar(values: &[Value], target: Value) -> Option<usize> {
    find_by_key(values, |&v| v, target)
}

/// [`find_value`] on top of [`lower_bound_vector`] — the rejected
/// vectorised probe, kept for pricing and equivalence pinning.
#[inline]
pub fn find_value_vector(values: &[Value], target: Value) -> Option<usize> {
    let i = lower_bound_vector(values, target);
    (i < values.len() && values[i] == target).then_some(i)
}

// ---------------------------------------------------------------------
// Batched predicate evaluation (keep masks)
// ---------------------------------------------------------------------

/// Evaluates `value θ rhs` for every value of a block, writing one `bool`
/// per value — the batched form of the per-entry predicate in the overlay's
/// entry filters and `retain_and_prune`.  `out.len()` must equal
/// `values.len()`.  Runtime-dispatched.
#[inline]
pub fn fill_keep_mask(values: &[Value], op: ComparisonOp, rhs: Value, out: &mut [bool]) {
    assert_eq!(values.len(), out.len(), "mask length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if values.len() >= SIMD_MASK_MIN_LEN && simd_active() {
        // SAFETY: AVX2 support was just detected.
        unsafe { avx2::fill_keep_mask(raw(values), op, rhs.raw(), out) };
        return;
    }
    fill_keep_mask_scalar(values, op, rhs, out);
}

/// Scalar [`fill_keep_mask`]: one branch-free comparison per value.
#[inline]
pub fn fill_keep_mask_scalar(values: &[Value], op: ComparisonOp, rhs: Value, out: &mut [bool]) {
    assert_eq!(values.len(), out.len(), "mask length mismatch");
    for (o, &v) in out.iter_mut().zip(values) {
        *o = op.eval(v, rhs);
    }
}

// ---------------------------------------------------------------------
// Sortedness (validate) and run boundaries (priority cursor)
// ---------------------------------------------------------------------

/// First index `i` with `values[i + 1] <= values[i]` — the strict-increase
/// violation [`crate::store`]'s validator reports — or `None` when the
/// slice is strictly increasing.  Runtime-dispatched.
#[inline]
pub fn first_unsorted(values: &[Value]) -> Option<usize> {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: AVX2 support was just detected.
        return unsafe { avx2::first_unsorted(raw(values)) };
    }
    first_unsorted_scalar(values)
}

/// Scalar [`first_unsorted`]: a windowed pairwise scan.
#[inline]
pub fn first_unsorted_scalar(values: &[Value]) -> Option<usize> {
    values.windows(2).position(|w| w[1] <= w[0])
}

/// End of the run of values equal to `values[start]`: the first index
/// `>= start` holding a different value (`values.len()` when the run reaches
/// the end).  **Precondition:** the values equal to `values[start]` form one
/// contiguous run beginning at `start` — true for the grouped streams the
/// priority cursor emits — which is what licenses the galloping probe.
/// Runtime-dispatched.
#[inline]
pub fn run_end(values: &[Value], start: usize) -> usize {
    if start >= values.len() {
        return values.len();
    }
    let (gallop_lo, gallop_hi) = gallop_run(values, start);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if gallop_hi - gallop_lo >= SIMD_RUN_MIN_WINDOW && simd_active() {
        // SAFETY: AVX2 support was just detected.
        return unsafe { avx2::run_end(raw(values), gallop_lo, gallop_hi) };
    }
    run_end_linear(values, gallop_lo, gallop_hi)
}

/// Scalar [`run_end`] (same gallop, linear final window).
#[inline]
pub fn run_end_scalar(values: &[Value], start: usize) -> usize {
    if start >= values.len() {
        return values.len();
    }
    let (gallop_lo, gallop_hi) = gallop_run(values, start);
    run_end_linear(values, gallop_lo, gallop_hi)
}

/// Exponential (galloping) narrowing shared by both [`run_end`] paths:
/// doubles a step while the probed value still equals `values[start]`,
/// returning a window `[lo, hi)` known to contain the run's end (with
/// `values[lo - 1..]` still in the run).
#[inline]
fn gallop_run(values: &[Value], start: usize) -> (usize, usize) {
    let target = values[start];
    let n = values.len();
    let mut lo = start;
    let mut step = 1usize;
    loop {
        let probe = lo + step;
        if probe >= n || values[probe] != target {
            return (lo + 1, probe.min(n));
        }
        lo = probe;
        step *= 2;
    }
}

/// Linear resolution of the final gallop window.
#[inline]
fn run_end_linear(values: &[Value], lo: usize, hi: usize) -> usize {
    let target = values[lo - 1];
    (lo..hi).find(|&i| values[i] != target).unwrap_or(hi)
}

// ---------------------------------------------------------------------
// AVX2 implementations (the `simd` feature's fast paths)
// ---------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use fdb_common::ComparisonOp;
    use std::arch::x86_64::*;

    /// Sign-bit bias turning unsigned 64-bit order into the signed order
    /// `_mm256_cmpgt_epi64` implements.
    const BIAS: u64 = 1 << 63;

    /// Loads four values and applies the sign-bit bias.
    ///
    /// # Safety
    /// `ptr` must be valid for reading 32 bytes; AVX2 must be available.
    #[inline]
    unsafe fn load_biased(ptr: *const u64) -> __m256i {
        let lanes = _mm256_loadu_si256(ptr as *const __m256i);
        _mm256_xor_si256(lanes, _mm256_set1_epi64x(BIAS as i64))
    }

    /// One bit per 64-bit lane of a comparison result.
    #[inline]
    unsafe fn lane_mask(cmp: __m256i) -> u32 {
        _mm256_movemask_pd(_mm256_castsi256_pd(cmp)) as u32 & 0xF
    }

    /// Expands a 4-bit lane mask into four `bool` bytes (lane 0 in the
    /// lowest byte), so [`fill_keep_mask`] emits one 32-bit store per block
    /// instead of four byte stores.
    const MASK_LUT: [u32; 16] = {
        let mut lut = [0u32; 16];
        let mut m = 0usize;
        while m < 16 {
            let b = m as u32;
            lut[m] = (b & 1) | ((b >> 1) & 1) << 8 | ((b >> 2) & 1) << 16 | ((b >> 3) & 1) << 24;
            m += 1;
        }
        lut
    };

    /// AVX2 [`super::fill_keep_mask`].
    ///
    /// # Safety
    /// Requires AVX2; `values.len() == out.len()` is asserted by the caller.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fill_keep_mask(
        values: &[u64],
        op: ComparisonOp,
        rhs: u64,
        out: &mut [bool],
    ) {
        let n = values.len();
        let rhs_biased = _mm256_set1_epi64x((rhs ^ BIAS) as i64);
        let rhs_raw = _mm256_set1_epi64x(rhs as i64);
        let mut i = 0usize;
        while i + 4 <= n {
            let mask = match op {
                ComparisonOp::Eq | ComparisonOp::Ne => {
                    let lanes = _mm256_loadu_si256(values.as_ptr().add(i) as *const __m256i);
                    let eq = lane_mask(_mm256_cmpeq_epi64(lanes, rhs_raw));
                    if op == ComparisonOp::Eq {
                        eq
                    } else {
                        !eq & 0xF
                    }
                }
                ComparisonOp::Lt | ComparisonOp::Ge => {
                    let x = load_biased(values.as_ptr().add(i));
                    let lt = lane_mask(_mm256_cmpgt_epi64(rhs_biased, x));
                    if op == ComparisonOp::Lt {
                        lt
                    } else {
                        !lt & 0xF
                    }
                }
                ComparisonOp::Gt | ComparisonOp::Le => {
                    let x = load_biased(values.as_ptr().add(i));
                    let gt = lane_mask(_mm256_cmpgt_epi64(x, rhs_biased));
                    if op == ComparisonOp::Gt {
                        gt
                    } else {
                        !gt & 0xF
                    }
                }
            };
            // One 32-bit store of four valid `bool` bytes (each 0 or 1).
            (out.as_mut_ptr().add(i) as *mut u32).write_unaligned(MASK_LUT[mask as usize]);
            i += 4;
        }
        while i < n {
            *out.get_unchecked_mut(i) = op.eval(
                fdb_common::Value::new(*values.get_unchecked(i)),
                fdb_common::Value::new(rhs),
            );
            i += 1;
        }
    }

    /// AVX2 [`super::lower_bound`]: binary search down to a window, then a
    /// vectorised population count of the lanes `< target`.  The window is
    /// deliberately small — the scalar binary search compiles to branchless
    /// conditional moves, so the vector pass only pays off once it replaces
    /// the last few (cache-missing) halving steps, not dozens of them.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lower_bound(values: &[u64], target: u64) -> usize {
        const WINDOW: usize = 16;
        let mut lo = 0usize;
        let mut hi = values.len();
        while hi - lo > WINDOW {
            // Branchless halving (conditional moves, like `partition_point`
            // compiles to) — random probe targets make this branch
            // unpredictable, and a mispredict costs more than both moves.
            let mid = lo + (hi - lo) / 2;
            let less = *values.get_unchecked(mid) < target;
            lo = if less { mid + 1 } else { lo };
            hi = if less { hi } else { mid };
        }
        let target_biased = _mm256_set1_epi64x((target ^ BIAS) as i64);
        let mut count = 0usize;
        let mut i = lo;
        while i + 4 <= hi {
            let x = load_biased(values.as_ptr().add(i));
            count += lane_mask(_mm256_cmpgt_epi64(target_biased, x)).count_ones() as usize;
            i += 4;
        }
        while i < hi {
            count += (*values.get_unchecked(i) < target) as usize;
            i += 1;
        }
        lo + count
    }

    /// AVX2 [`super::first_unsorted`]: compares each four-lane block against
    /// the block one position over.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn first_unsorted(values: &[u64]) -> Option<usize> {
        let n = values.len();
        let mut i = 0usize;
        while i + 5 <= n {
            let a = load_biased(values.as_ptr().add(i));
            let b = load_biased(values.as_ptr().add(i + 1));
            let increasing = lane_mask(_mm256_cmpgt_epi64(b, a));
            if increasing != 0xF {
                return Some(i + (!increasing & 0xF).trailing_zeros() as usize);
            }
            i += 4;
        }
        while i + 1 < n {
            if values.get_unchecked(i + 1) <= values.get_unchecked(i) {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// AVX2 resolution of [`super::run_end`]'s final gallop window.
    ///
    /// # Safety
    /// Requires AVX2; `1 <= lo <= hi <= values.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn run_end(values: &[u64], lo: usize, hi: usize) -> usize {
        let target = _mm256_set1_epi64x(*values.get_unchecked(lo - 1) as i64);
        let mut i = lo;
        while i + 4 <= hi {
            let x = _mm256_loadu_si256(values.as_ptr().add(i) as *const __m256i);
            let eq = lane_mask(_mm256_cmpeq_epi64(x, target));
            if eq != 0xF {
                return i + (!eq & 0xF).trailing_zeros() as usize;
            }
            i += 4;
        }
        let target = *values.get_unchecked(lo - 1);
        while i < hi {
            if *values.get_unchecked(i) != target {
                return i;
            }
            i += 1;
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vals(raw: &[u64]) -> Vec<Value> {
        raw.iter().copied().map(Value::new).collect()
    }

    const ALL_OPS: [ComparisonOp; 6] = [
        ComparisonOp::Eq,
        ComparisonOp::Ne,
        ComparisonOp::Lt,
        ComparisonOp::Le,
        ComparisonOp::Gt,
        ComparisonOp::Ge,
    ];

    /// A strictly increasing slice of random length (possibly empty), with
    /// values clustered so probe targets hit and miss.
    fn random_sorted(rng: &mut StdRng) -> Vec<Value> {
        let len = rng.gen_range(0..200usize);
        let mut raw: Vec<u64> = (0..len).map(|_| rng.gen_range(0..500u64) * 3).collect();
        raw.sort_unstable();
        raw.dedup();
        vals(&raw)
    }

    #[test]
    fn lower_bound_matches_partition_point_on_random_slices() {
        let mut rng = StdRng::seed_from_u64(0x10_01);
        for _ in 0..500 {
            let values = random_sorted(&mut rng);
            for _ in 0..8 {
                let t = Value::new(rng.gen_range(0..1600u64));
                let expect = values.partition_point(|&v| v < t);
                assert_eq!(lower_bound_scalar(&values, t), expect);
                assert_eq!(lower_bound(&values, t), expect);
            }
        }
    }

    #[test]
    fn find_value_agrees_with_the_shared_probe_contract() {
        let mut rng = StdRng::seed_from_u64(0x10_02);
        for _ in 0..500 {
            let values = random_sorted(&mut rng);
            for _ in 0..8 {
                let t = Value::new(rng.gen_range(0..1600u64));
                let expect = values.binary_search(&t).ok();
                assert_eq!(find_by_key(&values, |&v| v, t), expect);
                assert_eq!(find_value_scalar(&values, t), expect);
                assert_eq!(find_value(&values, t), expect);
            }
        }
    }

    #[test]
    fn keep_masks_match_the_scalar_predicate() {
        let mut rng = StdRng::seed_from_u64(0x10_03);
        for _ in 0..300 {
            let len = rng.gen_range(0..100usize);
            let values: Vec<Value> = (0..len)
                .map(|_| Value::new(rng.gen_range(0..50u64)))
                .collect();
            let rhs = Value::new(rng.gen_range(0..50u64));
            for op in ALL_OPS {
                let expect: Vec<bool> = values.iter().map(|&v| op.eval(v, rhs)).collect();
                let mut scalar = vec![false; values.len()];
                fill_keep_mask_scalar(&values, op, rhs, &mut scalar);
                assert_eq!(scalar, expect);
                let mut dispatched = vec![false; values.len()];
                fill_keep_mask(&values, op, rhs, &mut dispatched);
                assert_eq!(dispatched, expect);
            }
        }
    }

    #[test]
    fn keep_masks_handle_the_unsigned_extremes() {
        let values = vals(&[0, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX]);
        for rhs in [Value::MIN, Value::new(u64::MAX / 2), Value::MAX] {
            for op in ALL_OPS {
                let expect: Vec<bool> = values.iter().map(|&v| op.eval(v, rhs)).collect();
                let mut out = vec![false; values.len()];
                fill_keep_mask(&values, op, rhs, &mut out);
                assert_eq!(out, expect, "op {op:?} rhs {rhs}");
            }
        }
    }

    #[test]
    fn first_unsorted_finds_the_first_violation() {
        let mut rng = StdRng::seed_from_u64(0x10_04);
        for _ in 0..500 {
            let mut values = random_sorted(&mut rng);
            // Half the time, plant a violation at a random position.
            if !values.is_empty() && rng.gen_bool(0.5) {
                let at = rng.gen_range(0..values.len());
                values.insert(at, Value::new(0));
            }
            let expect = values.windows(2).position(|w| w[1] <= w[0]);
            assert_eq!(first_unsorted_scalar(&values), expect);
            assert_eq!(first_unsorted(&values), expect);
        }
    }

    #[test]
    fn run_end_stops_at_the_first_differing_value() {
        let mut rng = StdRng::seed_from_u64(0x10_05);
        for _ in 0..500 {
            // Grouped data: a few runs of random lengths.
            let mut values = Vec::new();
            let mut v = 0u64;
            for _ in 0..rng.gen_range(1..6usize) {
                let len = rng.gen_range(1..40usize);
                values.extend(std::iter::repeat_n(Value::new(v), len));
                v += rng.gen_range(1..4u64);
            }
            let mut start = 0;
            while start < values.len() {
                let expect = (start..values.len())
                    .find(|&i| values[i] != values[start])
                    .unwrap_or(values.len());
                assert_eq!(run_end_scalar(&values, start), expect);
                assert_eq!(run_end(&values, start), expect);
                start = expect;
            }
            assert_eq!(run_end(&values, values.len()), values.len());
        }
    }

    #[test]
    fn empty_and_singleton_slices_are_handled() {
        let empty: Vec<Value> = Vec::new();
        assert_eq!(lower_bound(&empty, Value::new(5)), 0);
        assert_eq!(find_value(&empty, Value::new(5)), None);
        assert_eq!(first_unsorted(&empty), None);
        assert_eq!(run_end(&empty, 0), 0);
        let one = vals(&[7]);
        assert_eq!(lower_bound(&one, Value::new(7)), 0);
        assert_eq!(lower_bound(&one, Value::new(8)), 1);
        assert_eq!(find_value(&one, Value::new(7)), Some(0));
        assert_eq!(first_unsorted(&one), None);
        assert_eq!(run_end(&one, 0), 1);
    }
}
